"""Figure 10: response time via the Eq. 3–6 analytic model.

Paper (32 KB photo, t_hddr = 3 ms, t_query = 1 µs, t_classify = 0.4 µs):
FIFO improves 8–11 %, ARC the least at 1.5–2.5 %; the classification
overhead is negligible against the HDD miss penalty.
"""

import numpy as np
from common import POLICIES, emit

from repro.core.latency import LatencyModel


def bench_fig10(benchmark, capsys, grid):
    lm = LatencyModel()
    caps_gb = [grid.paper_gb(f) for f in grid.fractions]

    def compute():
        out = {}
        for policy in POLICIES:
            sweep = grid.sweep(policy, "hit_rate")
            orig = np.array(
                [lm.average_latency(h, classified=False) for h in sweep["original"]]
            )
            prop = np.array(
                [lm.average_latency(h, classified=True) for h in sweep["proposal"]]
            )
            out[policy] = (orig, prop)
        return out

    latencies = benchmark.pedantic(compute, rounds=3, iterations=1)

    lines = [
        "Figure 10 — response time (ms), original → proposal",
        "capacity (paper GB): " + " ".join(f"{g:6.0f}" for g in caps_gb),
    ]
    for policy in POLICIES:
        orig, prop = latencies[policy]
        lines.append(f"-- {policy.upper()} --")
        lines.append("  orig: " + " ".join(f"{1e3 * t:6.3f}" for t in orig))
        lines.append("  prop: " + " ".join(f"{1e3 * t:6.3f}" for t in prop))
        gain = (orig - prop) / orig
        lines.append(
            f"  gain: {100 * gain.min():+5.1f}% … {100 * gain.max():+5.1f}%"
        )
    lines.append("paper: FIFO +8–11%, ARC +1.5–2.5% (least)")
    emit(capsys, "fig10_response_time", "\n".join(lines))

    gain = {
        p: ((latencies[p][0] - latencies[p][1]) / latencies[p][0]).mean()
        for p in POLICIES
    }
    # Simple policies benefit most; FIFO tops the ranking, ARC near bottom.
    assert gain["fifo"] >= max(gain["arc"], gain["lirs"], gain["s3lru"])
    assert gain["lru"] > 0
    assert gain["fifo"] > 0.01
