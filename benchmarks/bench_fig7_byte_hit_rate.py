"""Figure 7: byte hit rate — same grid as Fig. 6, size-weighted.

Paper: FIFO +6–20 %, LRU +4–16 %, S3LRU +0.9–4 %; byte and file hit rates
track each other closely because QQ photos have similar sizes and the
classifier is not size-sensitive.
"""

import numpy as np
from common import POLICIES, emit, format_sweep_table


def bench_fig7(benchmark, capsys, grid):
    table = benchmark.pedantic(
        lambda: format_sweep_table(
            "Figure 7 — byte hit rate (original/proposal/ideal/belady)",
            grid,
            "byte_hit_rate",
        ),
        rounds=1,
        iterations=1,
    )

    summary = ["proposal − original byte-hit gains (percentage points):"]
    closeness = []
    for policy in POLICIES:
        sweep_b = grid.sweep(policy, "byte_hit_rate")
        sweep_f = grid.sweep(policy, "hit_rate")
        g = np.array(sweep_b["proposal"]) - np.array(sweep_b["original"])
        summary.append(
            f"  {policy:6s}: min={100 * g.min():+5.1f}  max={100 * g.max():+5.1f}"
        )
        closeness.append(
            np.abs(
                np.array(sweep_b["proposal"]) - np.array(sweep_f["proposal"])
            ).max()
        )
    summary.append(
        f"max |byte − file| hit-rate divergence: {100 * max(closeness):.1f}% "
        "(paper: no significant differences)"
    )
    emit(capsys, "fig7_byte_hit_rate", table + "\n\n" + "\n".join(summary))

    # Byte hit rate tracks file hit rate on this workload (paper §5.3.2).
    assert max(closeness) < 0.08
    g_lru = np.array(grid.sweep("lru", "byte_hit_rate")["proposal"]) - np.array(
        grid.sweep("lru", "byte_hit_rate")["original"]
    )
    assert g_lru.max() > 0.02
