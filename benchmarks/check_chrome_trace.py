"""CI sanity check for exported Chrome trace-event JSON artifacts.

``python benchmarks/check_chrome_trace.py scenario_trace.json`` loads the
file, validates it against the subset of the Chrome trace-event schema
this repo emits (via :func:`repro.obs.spans.validate_chrome_trace` — the
same checks Perfetto needs to load the file), and requires at least one
complete (``ph: "X"``) span, so an accidentally-empty export fails the
job instead of uploading a useless artifact.

Exit status: 0 valid, 1 invalid/empty/unreadable.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parent.parent

try:
    from repro.obs.spans import validate_chrome_trace
except ImportError:  # script run without PYTHONPATH=src
    sys.path.insert(0, str(_REPO_ROOT / "src"))
    from repro.obs.spans import validate_chrome_trace


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(
        description="Validate a Chrome trace-event JSON export."
    )
    ap.add_argument("path", help="trace JSON file to check")
    ap.add_argument("--min-spans", type=int, default=1,
                    help="minimum complete ('X') events required (default 1)")
    args = ap.parse_args(argv)

    try:
        with open(args.path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, ValueError) as exc:
        print(f"FAILED: cannot load {args.path}: {exc}", file=sys.stderr)
        return 1
    try:
        n_spans = validate_chrome_trace(doc)
    except ValueError as exc:
        print(f"FAILED: {args.path}: {exc}", file=sys.stderr)
        return 1
    if n_spans < args.min_spans:
        print(
            f"FAILED: {args.path}: {n_spans} span(s), "
            f"need at least {args.min_spans}",
            file=sys.stderr,
        )
        return 1
    print(f"{args.path}: OK ({n_spans} span(s), "
          f"{len(doc['traceEvents'])} trace events)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
