"""Staging harness: classifier vs flashiness vs composed, at the device.

Dual-mode module:

* **Script / CI**: ``python benchmarks/bench_staging.py [--quick]``
  replays the reference trace through the four admission schemes of
  :func:`repro.experiments.staging.run_staging_comparison` — no
  admission, the paper's classifier, the Flashield-style flashiness bar
  (:class:`repro.cache.staging.StagingCache`) and their composition —
  each against its own :class:`~repro.ssd.cache_device.CacheSSD` with a
  DFTL-style cached mapping table, then writes ``BENCH_staging.json``
  (``"kind": "staging"`` for ``bench_trend.py`` dispatch).  Both modes
  gate the composition contract (:func:`check_write_ordering`): composed
  must write no more than either mechanism alone while holding the
  ``min(classifier, flashiness)`` hit-rate floor within the documented
  slack.  The trend gate in CI then protects every scheme's hit rate and
  write count against silent drift between runs.
* **pytest-benchmark suite**: collected like the other ``bench_*``
  modules; runs quick mode and persists the table under ``results/``.

The capacity points are footprint fractions 0.02/0.05/0.10 — a small /
medium / large cut through the paper's 2–20 GB grid shape, small enough
that admission quality (not recency saturation) decides the outcome.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parent.parent

try:
    from repro.experiments.staging import (
        check_write_ordering,
        format_staging_table,
        run_staging_comparison,
    )
except ImportError:  # script run without PYTHONPATH=src
    sys.path.insert(0, str(_REPO_ROOT / "src"))
    from repro.experiments.staging import (
        check_write_ordering,
        format_staging_table,
        run_staging_comparison,
    )

from repro.trace.generator import WorkloadConfig, generate_trace

DEFAULT_OUTPUT = _REPO_ROOT / "BENCH_staging.json"

KIND = "staging"

#: Full-mode reference trace: the CLI's default workload, where the
#: acceptance contract ("composed ≤ writes of either mechanism alone")
#: is anchored.
FULL_OBJECTS = 25_000
FULL_DAYS = 9.0
#: Quick-mode trace for the CI smoke: same shape, CI-sized.
QUICK_OBJECTS = 4_000
QUICK_DAYS = 3.0
SEED = 7


class BenchError(AssertionError):
    """The composition contract failed."""


def run_staging_bench(
    *,
    quick: bool = False,
    objects: int | None = None,
    seed: int = SEED,
) -> dict:
    """Run the four-scheme sweep and shape the trend-gate report."""
    n_objects = objects if objects is not None else (
        QUICK_OBJECTS if quick else FULL_OBJECTS
    )
    days = QUICK_DAYS if quick else FULL_DAYS
    trace = generate_trace(
        WorkloadConfig(n_objects=n_objects, days=days, seed=seed)
    )
    comparison = run_staging_comparison(trace, training_rng=seed)
    return {
        "kind": KIND,
        "quick": quick,
        "workload": {"n_objects": n_objects, "days": days, "seed": seed},
        "footprint_bytes": comparison.footprint_bytes,
        "n_requests": comparison.n_requests,
        "flashiness_threshold": comparison.flashiness_threshold,
        "dram_fraction": comparison.dram_fraction,
        "points": [p.to_dict() for p in comparison.points],
        "violations": check_write_ordering(comparison),
        "warnings": list(comparison.warnings),
        "table": format_staging_table(comparison),
    }


def format_report(report: dict) -> str:
    mode = "quick" if report["quick"] else "full"
    w = report["workload"]
    lines = [
        f"staging head-to-head ({mode} mode, {w['n_objects']:,} objects, "
        f"{w['days']:g} days)",
        report["table"],
    ]
    for warning in report["warnings"]:
        lines.append(f"warning: {warning}")
    if report["violations"]:
        lines.append("composition contract VIOLATED:")
        lines.extend(f"  {v}" for v in report["violations"])
    else:
        lines.append(
            "composition contract holds: composed writes <= either "
            "mechanism alone at the hit-rate floor"
        )
    return "\n".join(lines)


def check_report(report: dict) -> None:
    """Raise :class:`BenchError` when the composition contract fails.

    Unlike the perf floors elsewhere, this gates in *both* modes: the
    sweep is seeded and deterministic, so a violation is a behaviour
    change, not noise.
    """
    if report["violations"]:
        raise BenchError(
            "composition contract failed: " + "; ".join(report["violations"])
        )


def write_report(report: dict, path: str) -> Path:
    out = Path(path)
    out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return out


def bench_staging(benchmark, capsys):
    """pytest-benchmark entry: quick-mode sweep + contract assertion."""
    from common import emit

    report = benchmark.pedantic(
        lambda: run_staging_bench(quick=True), rounds=1, iterations=1
    )
    check_report(report)
    emit(capsys, "staging", format_report(report))


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(
        description="Head-to-head admission comparison (classifier vs "
        "flashiness vs composed) judged at the SSD device."
    )
    ap.add_argument("--quick", action="store_true",
                    help="CI-sized trace (the contract still gates)")
    ap.add_argument("--objects", type=int, default=None,
                    help="override the trace object count")
    ap.add_argument("--seed", type=int, default=SEED)
    ap.add_argument("--output", default=str(DEFAULT_OUTPUT),
                    help=f"report path (default: {DEFAULT_OUTPUT})")
    args = ap.parse_args(argv)

    report = run_staging_bench(
        quick=args.quick, objects=args.objects, seed=args.seed
    )
    print(format_report(report))
    path = write_report(report, args.output)
    print(f"[report written to {path}]")
    try:
        check_report(report)
    except BenchError as exc:
        print(f"FAILED: {exc}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
