"""Figure 5: classification-system quality over time, LRU vs LIRS criteria.

Paper: precision/recall/accuracy per day for the daily-retrained tree;
the LIRS criterion (smaller M → nearer-future prediction) is *slightly*
easier than LRU's, and overall precision exceeds 0.8 / accuracy ≈ 0.86.
Also covers the §4.4.3 ablation: a never-retrained model decays.
"""

from common import emit

from repro.core.training import train_daily_classifier


def bench_fig5(benchmark, capsys, trace, grid):
    frac = grid.fractions[2]  # 6 GB-equivalent, mid-low capacity
    block = grid.block(frac)
    features = grid._features

    results = {
        "LRU": (block.criteria, block.training),
        "LIRS": (block.lirs_criteria, block.lirs_training),
    }

    # Ablation: static (never retrained) model under the LRU criterion.
    labels = block.labels
    static = train_daily_classifier(
        trace, features, labels, cost_v=block.cost_v, static_model=True, rng=0
    )

    # Timing: one daily-training pass (the recurring production cost).
    benchmark.pedantic(
        lambda: train_daily_classifier(
            trace, features, labels, cost_v=block.cost_v, rng=0
        ),
        rounds=2,
        iterations=1,
    )

    lines = [
        f"Figure 5 — daily classification quality "
        f"(capacity ≈ {grid.paper_gb(frac):.0f} paper-GB)",
    ]
    for name, (criteria, training) in results.items():
        lines.append(
            f"-- {name} criterion: M = {criteria.m_threshold:,.0f} "
            f"(rs = {criteria.rs:.2f}) --"
        )
        lines.append("  day  precision  recall  accuracy")
        for m in training.daily_metrics:
            if m["trained"]:
                lines.append(
                    f"  {m['segment']:3d} {m['precision']:10.3f} "
                    f"{m['recall']:7.3f} {m['accuracy']:9.3f}"
                )
        o = training.overall
        lines.append(
            f"  overall: precision={o['precision']:.3f} recall={o['recall']:.3f} "
            f"accuracy={o['accuracy']:.3f}  (paper: >0.8 precision)"
        )

    importances = results["LRU"][1].feature_importances()
    if importances:
        lines.append("-- what the deployed trees key on (mean importance) --")
        for name, value in importances.items():
            lines.append(f"  {name:18s} {value:.3f}")

    lines.append("-- §4.4.3 ablation: daily retraining vs static model --")
    daily_o = results["LRU"][1].overall
    static_o = static.overall
    lines.append(
        f"  daily accuracy={daily_o['accuracy']:.3f}  "
        f"static accuracy={static_o['accuracy']:.3f}  "
        f"(drifting workload: retraining wins)"
    )
    emit(capsys, "fig5_classification", "\n".join(lines))

    lru_o = results["LRU"][1].overall
    lirs_o = results["LIRS"][1].overall
    # LIRS predicts a nearer horizon: its quality is at least comparable.
    assert lirs_o["accuracy"] >= lru_o["accuracy"] - 0.05
    assert lru_o["precision"] > 0.7
    assert daily_o["accuracy"] >= static_o["accuracy"] - 0.01
