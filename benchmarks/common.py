"""Shared infrastructure for the figure/table benchmarks.

The heavy lifting lives in :mod:`repro.experiments.grid` (a library
feature); this module only fixes the benchmark scale and provides result
persistence.  Scale is controlled by ``REPRO_BENCH_OBJECTS`` (default
25 000 objects ≈ 100 k requests — a documented down-scale of the paper's
14 M-object sampled trace, see DESIGN.md §5).
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.experiments.grid import (  # noqa: F401  (re-exported for benches)
    CONFIGS,
    POLICIES,
    GridPoint,
    GridRunner,
    format_sweep_table,
)
from repro.trace.generator import WorkloadConfig

BENCH_OBJECTS = int(os.environ.get("REPRO_BENCH_OBJECTS", "25000"))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "9"))
BENCH_WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", "0"))

RESULTS_DIR = Path(__file__).parent / "results"


def make_bench_workload() -> WorkloadConfig:
    return WorkloadConfig(n_objects=BENCH_OBJECTS, seed=BENCH_SEED)


def write_result(name: str, content: str) -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(content + "\n")
    return path


def emit(capsys, name: str, content: str) -> None:
    """Print a result table live (bypassing capture) and persist it."""
    path = write_result(name, content)
    with capsys.disabled():
        print(f"\n{content}\n[saved to {path}]")
