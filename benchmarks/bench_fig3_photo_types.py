"""Figure 3: number of requests per photo type.

Paper: twelve types (6 resolutions × {png=0, jpg=5}) with hugely skewed
request counts; ``l5`` alone draws ≈45 % of requests and jpg dominates png
at every resolution.
"""

from common import emit

from repro.trace.stats import type_request_histogram


def bench_fig3(benchmark, capsys, trace):
    hist = benchmark.pedantic(
        lambda: type_request_histogram(trace), rounds=5, iterations=1
    )

    lines = [
        "Figure 3 — request share per photo type (paper: l5 ≈ 45%)",
        f"{'type':>5s} {'share':>8s}",
    ]
    for name, share in sorted(hist.items(), key=lambda kv: -kv[1]):
        lines.append(f"{name:>5s} {100 * share:7.1f}%  {'#' * int(100 * share)}")
    emit(capsys, "fig3_photo_types", "\n".join(lines))

    assert max(hist, key=hist.get) == "l5"
    assert 0.35 < hist["l5"] < 0.60
    for res in "abcmol":
        assert hist[f"{res}5"] > hist[f"{res}0"]
