"""Session fixtures for the figure/table benchmarks.

The trace and the simulation grid are built once per pytest session and
shared by all benchmarks; individual benchmarks time one representative
unit of work each (a simulation, a training run, …) so pytest-benchmark
reports meaningful per-component numbers without recomputing the grid.
"""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))

from common import BENCH_WORKERS, GridRunner, make_bench_workload  # noqa: E402

from repro.trace.generator import generate_trace  # noqa: E402


@pytest.fixture(scope="session")
def trace():
    return generate_trace(make_bench_workload())


@pytest.fixture(scope="session")
def grid(trace):
    runner = GridRunner(trace)
    if BENCH_WORKERS > 1:
        # Opt-in parallel precompute: REPRO_BENCH_WORKERS=N
        runner.precompute(max_workers=BENCH_WORKERS)
    return runner
