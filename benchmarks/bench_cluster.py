"""Two-tier cluster (§2.1, Fig. 1): the architecture the paper deploys in.

Not a numbered figure in the paper, but the evaluation's context: OC nodes
close to users, a DC cache protecting the backend.  The bench verifies the
tier semantics (DC absorbs OC-miss traffic; classifier at the OC tier cuts
fleet-wide SSD writes without hurting hit rate) on the benchmark trace.
"""

from common import emit

from repro.cache import LRUCache
from repro.cluster import CacheNode, TwoTierCluster, simulate_cluster
from repro.core.admission import ClassifierAdmission


def _build(trace, oc_cap, dc_cap, admission_factory=None, n_oc=4):
    nodes = {
        f"oc{i}": CacheNode(
            f"oc{i}",
            LRUCache(oc_cap),
            admission=admission_factory() if admission_factory else None,
        )
        for i in range(n_oc)
    }
    return TwoTierCluster(nodes, CacheNode("dc", LRUCache(dc_cap)))


def bench_cluster(benchmark, capsys, trace, grid):
    fp = trace.footprint_bytes
    dc_cap = max(1, fp // 25)
    # The OC tier behaves like one cache of its aggregate capacity over the
    # full request stream (each node sees 1/k of the traffic but holds 1/k
    # of the space), so the criterion is solved at tier level: use the grid
    # block whose capacity equals the tier total, and give each of the 4
    # nodes a quarter of it.
    tier_fraction = grid.fractions[3]  # ≈8 paper-GB tier
    block = grid.block(tier_fraction)
    oc_cap = max(1, grid.capacity_bytes(tier_fraction) // 4)

    plain = simulate_cluster(trace, _build(trace, oc_cap, dc_cap))
    filtered = simulate_cluster(
        trace,
        _build(
            trace,
            oc_cap,
            dc_cap,
            lambda: ClassifierAdmission.from_criteria(
                block.training.predictions, block.criteria
            ),
        ),
    )

    benchmark.pedantic(
        lambda: simulate_cluster(trace, _build(trace, oc_cap, dc_cap)),
        rounds=1,
        iterations=1,
    )

    saved = 1 - filtered.total_ssd_writes / plain.total_ssd_writes
    lines = [
        "Two-tier cluster (4 OC nodes + DC), traditional vs OC classifier",
        "-- traditional --",
        plain.summary(),
        "-- with OC-tier classifier --",
        filtered.summary(),
        f"fleet-wide SSD writes avoided: {100 * saved:.1f}%",
    ]
    emit(capsys, "cluster", "\n".join(lines))

    # Tier semantics.
    assert plain.bytes_to_backend < plain.bytes_to_dc < plain.bytes_total
    assert plain.dc_hit_rate > 0
    # Classifier benefits carry over to the fleet.
    assert filtered.total_ssd_writes < plain.total_ssd_writes
    assert filtered.oc_hit_rate >= plain.oc_hit_rate - 0.01
    assert saved > 0.15
