"""Grid fan-out benchmark: precompute wall time per start method.

Script mode (``python benchmarks/bench_grid.py [--quick]``) times
``GridRunner.precompute`` for each worker start method the platform offers
(plus the inline baseline) on identical traces, and prints a table of wall
times with the speedup over inline.  With the shared-memory fan-out every
method ships the trace columns, segment plan, feature matrix and re-access
distances as zero-copy views — the numbers quantify that ``spawn`` and
``forkserver`` now track ``fork`` instead of paying per-worker trace
pickling and plan recomputation (the pre-shm behaviour).

Scale knobs: ``REPRO_BENCH_OBJECTS`` (default 25 000) and
``REPRO_BENCH_WORKERS`` (default: one per capacity block).  The pytest
entry runs quick mode and persists the table under ``results/``.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parent.parent

try:
    from repro.experiments import GridRunner
except ImportError:  # script run without PYTHONPATH=src
    sys.path.insert(0, str(_REPO_ROOT / "src"))
    from repro.experiments import GridRunner

import multiprocessing

from repro.trace.generator import WorkloadConfig, generate_trace

QUICK_FRACTIONS = [0.01, 0.03]
FULL_FRACTIONS = [0.01, 0.02, 0.04, 0.06, 0.08]


def _methods() -> list:
    available = multiprocessing.get_all_start_methods()
    return ["inline"] + [
        m for m in ("fork", "forkserver", "spawn") if m in available
    ]


def run_grid_bench(
    *,
    objects: int,
    days: float,
    seed: int,
    fractions,
    policies=("lru", "fifo", "lirs"),
    workers: int | None = None,
) -> str:
    # Force a real pool even on single-core boxes (the default would
    # resolve to min(blocks, cpus) and fall back to inline on 1 CPU).
    if workers is None:
        workers = min(4, len(fractions))
    rows = []
    baseline = None
    for method in _methods():
        # A fresh trace per method: identical content (same seed), but no
        # shared memoisation — each run pays its own plan/feature costs.
        trace = generate_trace(
            WorkloadConfig(n_objects=objects, days=days, seed=seed)
        )
        runner = GridRunner(trace, fractions=fractions, policies=policies)
        t0 = time.perf_counter()
        if method == "inline":
            runner.precompute(max_workers=1)
        else:
            runner.precompute(max_workers=workers, start_method=method)
        elapsed = time.perf_counter() - t0
        fingerprint = runner.point(policies[0], fractions[0]).rate(
            "proposal", "hit_rate"
        )
        if baseline is None:
            baseline = (elapsed, fingerprint)
        else:
            assert fingerprint == baseline[1], (
                f"{method} diverged from inline: "
                f"{fingerprint} != {baseline[1]}"
            )
        rows.append((method, elapsed, baseline[0] / elapsed))
    lines = [
        "grid precompute wall time by start method "
        f"({objects} objects, {len(fractions)} capacities, "
        f"{len(policies)} policies)",
        f"{'method':>12s} {'seconds':>9s} {'vs inline':>10s}",
    ]
    for method, elapsed, speedup in rows:
        lines.append(f"{method:>12s} {elapsed:9.2f} {speedup:9.2f}x")
    return "\n".join(lines)


def bench_grid_start_methods(benchmark, capsys):
    """pytest-benchmark entry: quick-mode table, persisted to results/."""
    from common import emit

    table = benchmark.pedantic(
        lambda: run_grid_bench(
            objects=4000, days=2.0, seed=9, fractions=QUICK_FRACTIONS
        ),
        rounds=1,
        iterations=1,
    )
    emit(capsys, "grid_start_methods", table)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small trace + two capacities (CI smoke scale)")
    parser.add_argument("--objects", type=int, default=None)
    parser.add_argument("--days", type=float, default=None)
    parser.add_argument("--seed", type=int, default=9)
    parser.add_argument("--workers", type=int, default=None)
    args = parser.parse_args(argv)
    import os

    objects = args.objects or (
        4000 if args.quick
        else int(os.environ.get("REPRO_BENCH_OBJECTS", "25000"))
    )
    days = args.days or (2.0 if args.quick else 9.0)
    table = run_grid_bench(
        objects=objects,
        days=days,
        seed=args.seed,
        fractions=QUICK_FRACTIONS if args.quick else FULL_FRACTIONS,
        workers=args.workers,
    )
    print(table)
    return 0


if __name__ == "__main__":
    sys.exit(main())
