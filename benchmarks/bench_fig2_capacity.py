"""Figure 2: hit rate vs cache capacity for LRU, S3LRU, ARC, LIRS, Belady.

Paper observations to reproduce:
* Belady flattens beyond an inflection point X;
* the advanced algorithms (S3LRU/ARC/LIRS) beat LRU by only ~1 %;
* Belady − LRU ≈ 9 % around X, shrinking to ≈4 % at 4X.
"""

import numpy as np
from common import emit

from repro.cache import make_policy, simulate


def bench_fig2(benchmark, capsys, trace, grid):
    policies = ("lru", "s3lru", "arc", "lirs", "belady")
    fractions = grid.fractions
    caps_gb = [grid.paper_gb(f) for f in fractions]

    rates = {}
    for policy in policies:
        if policy == "belady":
            rates[policy] = [grid.block(f).belady.hit_rate for f in fractions]
        else:
            rates[policy] = [
                grid.point(policy, f).rate("original", "hit_rate")
                for f in fractions
            ]

    # Timing: one representative mid-capacity LRU replay.
    mid_cap = grid.capacity_bytes(fractions[len(fractions) // 2])
    benchmark.pedantic(
        lambda: simulate(trace, make_policy("lru", mid_cap)),
        rounds=3,
        iterations=1,
    )

    lines = [
        "Figure 2 — hit rate vs cache capacity (no admission filter)",
        "capacity (paper GB): " + " ".join(f"{g:6.0f}" for g in caps_gb),
    ]
    for policy in policies:
        lines.append(
            f"{policy:7s}: " + " ".join(f"{r:6.3f}" for r in rates[policy])
        )
    lru = np.array(rates["lru"])
    belady = np.array(rates["belady"])
    gaps = belady - lru
    lines.append(
        f"Belady − LRU gap: {100 * gaps[0]:.1f}% at {caps_gb[0]:.0f}GB → "
        f"{100 * gaps[-1]:.1f}% at {caps_gb[-1]:.0f}GB "
        "(paper: ≈9% at X → ≈4% at 4X)"
    )
    adv = np.mean(
        [np.array(rates[p]) - lru for p in ("s3lru", "arc", "lirs")], axis=0
    )
    lines.append(
        f"advanced − LRU (mean over upper half of sweep): "
        f"{100 * float(np.mean(adv[len(adv) // 2:])):.1f}% (paper: ≈1%)"
    )
    emit(capsys, "fig2_capacity", "\n".join(lines))

    # Shape assertions.
    assert (np.diff(lru) > -0.01).all()          # hit rate grows with capacity
    assert (belady + 1e-9 >= lru).all()          # Belady bounds LRU
    assert gaps[-1] < gaps[0]                    # gap shrinks with capacity
    assert belady[-1] - belady[len(belady) // 2] < 0.05  # flattens past X
