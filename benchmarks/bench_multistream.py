"""Extension: does lifetime-aware write placement help a *cache* SSD?

Multi-stream separation (hot/cold data in different erase blocks) is a
classic GC-write-amplification cure, and the admission classifier's
confidence is a free lifetime signal.  This bench measures it on the photo
cache — including a no-TRIM variant where dead data lingers — against a
single-stream baseline and an oracle lifetime router.

Expected (and measured) outcome: **little to gain.**  A cache writes each
object once at admission and invalidates it once at eviction, and LRU-ish
eviction order tracks insertion order — so blocks already die together
(the RIPQ/flash-friendliness observation), and TRIM reclaims them early.
The mechanism itself is real: on skewed in-place-overwrite workloads the
same FTL shows a clear WA reduction
(``tests/ssd/test_ftl.py::TestMultiStream``).  Negative results that
delimit a technique are results; this one says the paper's single-stream
deployment leaves little on the table.
"""

import numpy as np
from common import emit

from repro.cache import make_policy
from repro.core.admission import ClassifierAdmission
from repro.ssd import CacheSSD, simulate_on_ssd


def bench_multistream(benchmark, capsys, trace, grid):
    frac = grid.fractions[2]
    cap = grid.capacity_bytes(frac)
    block = grid.block(frac)

    # Oracle lifetime signal: short cache life = last access close to first.
    last = np.zeros(trace.n_objects, dtype=np.int64)
    first = np.full(trace.n_objects, -1, dtype=np.int64)
    for i, oid in enumerate(trace.object_ids.tolist()):
        last[oid] = i
        if first[oid] < 0:
            first[oid] = i
    short_lived = (last - first) < block.criteria.m_threshold

    def run(n_streams, temperature, trim):
        device = CacheSSD.for_capacity(
            cap,
            mean_object_bytes=trace.mean_object_size(),
            n_streams=n_streams,
            temperature=temperature,
            trim_on_evict=trim,
        )
        return simulate_on_ssd(
            trace,
            make_policy("lru", cap),
            admission=ClassifierAdmission.from_criteria(
                block.training.predictions, block.criteria
            ),
            device=device,
            policy_name="lru",
        )

    oracle_temp = lambda oid, size: 1 if short_lived[oid] else 0  # noqa: E731
    rows = [
        ("TRIM, 1-stream", run(1, None, True)),
        ("TRIM, 2-stream", run(2, oracle_temp, True)),
        ("no-TRIM, 1-stream", run(1, None, False)),
        ("no-TRIM, 2-stream", run(2, oracle_temp, False)),
    ]

    benchmark.pedantic(lambda: run(1, None, True), rounds=1, iterations=1)

    lines = [
        "Extension — lifetime-aware write streams on a cache SSD "
        f"(LRU + admission filter, ≈{grid.paper_gb(frac):.0f} paper-GB)",
        f"{'config':>20s} {'WA':>7s} {'erases':>7s} {'GC reloc':>9s}",
    ]
    for name, rep in rows:
        f = rep.device.ftl.stats
        lines.append(
            f"{name:>20s} {f.write_amplification:7.3f} {f.erases:7,d} "
            f"{f.gc_pages_relocated:9,d}"
        )
    lines.append(
        "\nreading: a cache's admission/eviction stream is already "
        "lifetime-ordered and TRIM reclaims blocks early, so multi-stream "
        "separation buys ~nothing here — unlike skewed overwrite workloads "
        "(see the FTL unit tests), where the same mechanism clearly wins. "
        "The paper's single-stream deployment is justified."
    )
    emit(capsys, "multistream", "\n".join(lines))

    wa = {name: rep.device.ftl.stats.write_amplification for name, rep in rows}
    # Cache-level behaviour identical everywhere.
    hits = {rep.simulation.stats.hits for _, rep in rows}
    assert len(hits) == 1
    # TRIM can only help.
    assert wa["TRIM, 1-stream"] <= wa["no-TRIM, 1-stream"] + 1e-9
    # Separation neither helps nor hurts materially on this workload.
    for trim_label in ("TRIM", "no-TRIM"):
        a = wa[f"{trim_label}, 1-stream"]
        b = wa[f"{trim_label}, 2-stream"]
        assert abs(a - b) < 0.12 * a