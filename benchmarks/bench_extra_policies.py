"""Extension: structural scan-resistance (2Q, GDSF, SIEVE) vs the filter.

2Q, GDSF and SIEVE attack one-time pollution *structurally* (probation
queues, size-aware priorities, lazy promotion) rather than by prediction.
This bench asks the natural follow-up question to the paper: how much of
the classifier's benefit do such policies already capture, and does the
classifier still help on top of them?
"""

from common import emit

from repro.cache import make_policy, simulate
from repro.core.admission import AlwaysAdmit, ClassifierAdmission

POLICIES = ("lru", "2q", "gdsf", "sieve", "arc")


def bench_extra_policies(benchmark, capsys, trace, grid):
    frac = grid.fractions[2]
    cap = grid.capacity_bytes(frac)
    block = grid.block(frac)

    def run(name, filtered):
        admission = (
            ClassifierAdmission.from_criteria(
                block.training.predictions, block.criteria
            )
            if filtered
            else AlwaysAdmit()
        )
        return simulate(
            trace, make_policy(name, cap, trace), admission=admission,
            policy_name=name,
        )

    rows = {
        name: (run(name, False), run(name, True)) for name in POLICIES
    }
    benchmark.pedantic(lambda: run("2q", False), rounds=1, iterations=1)

    lines = [
        "Extension — structural scan-resistance vs classifier admission "
        f"(≈{grid.paper_gb(frac):.0f} paper-GB)",
        f"{'policy':>7s} {'hit':>7s} {'hit+clf':>8s} {'Δhit':>6s} "
        f"{'writes':>8s} {'writes+clf':>11s} {'Δwrites':>8s}",
    ]
    for name, (plain, filt) in rows.items():
        dw = 1 - filt.stats.files_written / plain.stats.files_written
        lines.append(
            f"{name:>7s} {plain.hit_rate:7.3f} {filt.hit_rate:8.3f} "
            f"{100 * (filt.hit_rate - plain.hit_rate):+5.1f}% "
            f"{plain.stats.files_written:8,d} "
            f"{filt.stats.files_written:11,d} {100 * dw:7.1f}%"
        )
    lines.append(
        "\nreading: structural policies already avoid much of LRU's "
        "pollution *cost* (hit-rate side) but still pay every write — the "
        "classifier's write savings are policy-independent (paper §5.3.3)"
    )
    emit(capsys, "extra_policies", "\n".join(lines))

    for name, (plain, filt) in rows.items():
        # Write savings hold for every policy, structural or not.
        assert filt.stats.files_written < plain.stats.files_written * 0.85
    # Scan-resistant structures beat plain LRU at this capacity.
    assert rows["2q"][0].hit_rate >= rows["lru"][0].hit_rate - 0.03
    assert rows["gdsf"][0].hit_rate >= rows["lru"][0].hit_rate - 0.01
