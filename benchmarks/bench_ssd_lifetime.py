"""SSD lifetime extension — the paper's §1/§2 motivation, computed.

The paper argues qualitatively that avoiding unnecessary writes extends
SSD life.  With the device substrate we can quantify the full chain:

    admission filter → fewer host writes → less GC traffic (measured write
    amplification) → fewer erases → longer life under a P/E budget,

plus §1's write-density example (1 TB cache vs 20 TB backend ⇒ 20:1).
"""

from common import emit

from repro.cache import make_policy
from repro.core.admission import AlwaysAdmit, ClassifierAdmission, OracleAdmission
from repro.ssd import simulate_on_ssd
from repro.ssd.endurance import write_density_ratio


def bench_ssd_lifetime(benchmark, capsys, trace, grid):
    frac = grid.fractions[2]
    cap = grid.capacity_bytes(frac)
    block = grid.block(frac)

    def run(admission):
        return simulate_on_ssd(
            trace, make_policy("lru", cap), admission=admission,
            policy_name="lru",
        )

    original = run(AlwaysAdmit())
    proposal = run(
        ClassifierAdmission.from_criteria(
            block.training.predictions, block.criteria
        )
    )
    ideal = run(OracleAdmission(block.labels))

    benchmark.pedantic(lambda: run(AlwaysAdmit()), rounds=1, iterations=1)

    rows = [("original", original), ("proposal", proposal), ("ideal", ideal)]
    lines = [
        "SSD lifetime under one-time-access exclusion "
        f"(LRU, ≈{grid.paper_gb(frac):.0f} paper-GB)",
        f"{'config':>9s} {'host MiB':>9s} {'WA':>6s} {'erases':>7s} "
        f"{'wear-spread':>12s} {'lifetime-days':>14s} {'vs orig':>8s}",
    ]
    for name, rep in rows:
        f = rep.device.ftl.stats
        lines.append(
            f"{name:>9s} {rep.simulation.stats.bytes_written / 2**20:9.1f} "
            f"{f.write_amplification:6.3f} {f.erases:7,d} "
            f"{rep.device.wear.spread:12d} "
            f"{rep.lifetime.lifetime_days:14,.0f} "
            f"{rep.lifetime.ratio_vs(original.lifetime):7.2f}×"
        )

    density_full = write_density_ratio(1e12, 20e12, 1.0)
    prop_fraction = (
        proposal.simulation.stats.bytes_written
        / original.simulation.stats.bytes_written
    )
    lines.append(
        f"\n§1 write-density example: 1 TB cache / 20 TB backend = "
        f"{density_full:.0f}:1 unfiltered → "
        f"{write_density_ratio(1e12, 20e12, prop_fraction):.1f}:1 with the "
        "classifier"
    )
    emit(capsys, "ssd_lifetime", "\n".join(lines))

    assert proposal.lifetime.lifetime_days > original.lifetime.lifetime_days
    assert ideal.lifetime.lifetime_days > proposal.lifetime.lifetime_days
    # Lifetime gain at least tracks the host-write reduction.
    assert proposal.lifetime.ratio_vs(original.lifetime) > 1.0 / prop_fraction * 0.85
    assert density_full == 20.0
