"""Extension: how much DRAM does a cache node need in front of its SSD?

Production photo caches (§2.1, and the paper's Eq. 5/6 which stage reads
"from the HDD to the DRAM") put a small DRAM LRU in front of the flash.
The interesting interaction with admission control: a denied one-time
photo still gets its short burst of DRAM locality, so the filter's false
positives cost less than the flat-SSD analysis suggests.  This bench
sweeps the DRAM fraction with and without the classifier.
"""

from common import emit

from repro.cache import LRUCache, simulate
from repro.cache.hierarchy import HierarchicalCache
from repro.core.admission import AlwaysAdmit, ClassifierAdmission

DRAM_FRACTIONS = (0.0, 0.02, 0.05, 0.1, 0.2)


def bench_hierarchy(benchmark, capsys, trace, grid):
    frac = grid.fractions[2]
    cap = grid.capacity_bytes(frac)
    block = grid.block(frac)

    def run(dram_fraction, filtered):
        if dram_fraction == 0.0:
            policy = LRUCache(cap)
        else:
            policy = HierarchicalCache.with_lru_dram(
                LRUCache(cap), dram_fraction=dram_fraction
            )
        admission = (
            ClassifierAdmission.from_criteria(
                block.training.predictions, block.criteria
            )
            if filtered
            else AlwaysAdmit()
        )
        sim = simulate(trace, policy, admission=admission, policy_name="lru")
        return sim, policy

    rows = {
        d: (run(d, False), run(d, True)) for d in DRAM_FRACTIONS
    }
    benchmark.pedantic(lambda: run(0.05, True), rounds=1, iterations=1)

    lines = [
        "Extension — DRAM front sensitivity (SSD-tier LRU, "
        f"≈{grid.paper_gb(frac):.0f} paper-GB)",
        f"{'DRAM frac':>10s} {'hit':>7s} {'hit+clf':>8s} "
        f"{'ssd writes+clf':>15s} {'DRAM hits+clf':>14s}",
    ]
    for d, ((plain, _), (filt, policy)) in rows.items():
        dram_hits = getattr(policy, "l1_hits", 0)
        lines.append(
            f"{d:10.2f} {plain.hit_rate:7.3f} {filt.hit_rate:8.3f} "
            f"{filt.stats.files_written:15,d} {dram_hits:14,d}"
        )
    lines.append(
        "\nreading: DRAM adds little *total* hit rate (it caches what the "
        "SSD already holds) but absorbs the hottest traffic, and the "
        "admission filter's write savings are unaffected by the DRAM front"
    )
    emit(capsys, "hierarchy", "\n".join(lines))

    # DRAM must never hurt, and write savings must persist at every size.
    base_writes = rows[0.0][0][0].stats.files_written
    for d, ((plain, _), (filt, _)) in rows.items():
        assert filt.hit_rate >= rows[0.0][1][0].hit_rate - 0.02
        assert filt.stats.files_written < base_writes
    # Bigger DRAM absorbs more L1 hits.
    l1 = [getattr(rows[d][1][1], "l1_hits", 0) for d in DRAM_FRACTIONS]
    assert l1[-1] > l1[1]