"""Figure 6: file hit rate of the five replacement policies × four configs.

Paper: with the classifier, FIFO gains 5–20 % and LRU 3–17 %; advanced
policies (e.g. S3LRU) gain only 0.7–4 %; gains shrink as capacity grows.
"""

import numpy as np
from common import POLICIES, emit, format_sweep_table


def bench_fig6(benchmark, capsys, grid):
    table = benchmark.pedantic(
        lambda: format_sweep_table(
            "Figure 6 — file hit rate (original/proposal/ideal/belady)",
            grid,
            "hit_rate",
        ),
        rounds=1,
        iterations=1,
    )

    gains = {}
    for policy in POLICIES:
        sweep = grid.sweep(policy, "hit_rate")
        gains[policy] = np.array(sweep["proposal"]) - np.array(sweep["original"])

    summary = ["proposal − original gains (percentage points):"]
    for policy in POLICIES:
        g = gains[policy]
        summary.append(
            f"  {policy:6s}: min={100 * g.min():+5.1f}  max={100 * g.max():+5.1f}  "
            f"small-cap={100 * g[0]:+5.1f}  large-cap={100 * g[-1]:+5.1f}"
        )
    summary.append(
        "paper: FIFO +5–20, LRU +3–17, S3LRU +0.7–4; gains shrink with capacity"
    )
    emit(capsys, "fig6_file_hit_rate", table + "\n\n" + "\n".join(summary))

    # Shape: simple policies gain most; gains shrink with capacity.
    assert gains["fifo"].max() > gains["s3lru"].max()
    assert gains["lru"].max() > 0.02
    assert gains["lru"][0] > gains["lru"][-1] - 0.005
    for policy in POLICIES:
        sweep = grid.sweep(policy, "hit_rate")
        # Ideal dominates proposal; Belady dominates ideal (within noise).
        assert (
            np.array(sweep["ideal"]) + 1e-9 >= np.array(sweep["proposal"]) - 0.01
        ).all()
