"""Extension: feedback-controlled admission vs the static cost matrix.

The paper sets the precision/recall operating point statically (Table-4's
``v``).  Verdict ground truth matures ``M`` requests later, so the point
can instead be *controlled*: a proportional loop on matured denial
precision.  This bench runs the daily classifier's scores through both —
the fixed Elkan decision (reweighted training, hard verdicts) and the
adaptive threshold — on the drifting benchmark workload.
"""

import numpy as np
from common import emit

from repro.cache import make_policy, simulate
from repro.core.adaptive import AdaptiveThresholdAdmission
from repro.core.admission import ClassifierAdmission
from repro.core.history_table import HistoryTable
from repro.core.labeling import ONE_TIME, reaccess_distances
from repro.core.monitoring import evaluate_admission_decisions


def _segment_scores(trace, grid, block):
    """Per-access P(one-time) from the daily models (0.0 pre-model)."""
    ts = trace.timestamps
    X = grid._features.select(block.training.feature_names).X
    scores = np.zeros(trace.n_accesses)
    for meta, model in zip(block.training.daily_metrics, block.training.models):
        if model is None:
            continue
        lo, hi = np.searchsorted(ts, [meta["t_start"], meta["t_end"]])
        if hi > lo:
            proba = model.predict_proba(X[lo:hi])
            col = int(np.nonzero(model.classes_ == ONE_TIME)[0][0])
            scores[lo:hi] = proba[:, col]
    return scores


def bench_adaptive_threshold(benchmark, capsys, trace, grid):
    frac = grid.fractions[2]
    cap = grid.capacity_bytes(frac)
    block = grid.block(frac)
    m = block.criteria.m_threshold
    distances = reaccess_distances(trace.object_ids)
    scores = _segment_scores(trace, grid, block)
    target = 2.0 / 3.0  # the v=2 Elkan point

    static_adm = ClassifierAdmission.from_criteria(
        block.training.predictions, block.criteria
    )
    static = simulate(
        trace, make_policy("lru", cap), admission=static_adm, policy_name="lru"
    )
    static_denied = _decision_stream(trace, cap, static_adm)

    adaptive_adm = AdaptiveThresholdAdmission(
        scores, distances, m, target_precision=target,
        history_table=HistoryTable(1024),
    )
    adaptive = simulate(
        trace, make_policy("lru", cap), admission=adaptive_adm,
        policy_name="lru",
    )
    adaptive_denied = _decision_stream(trace, cap, adaptive_adm)

    benchmark.pedantic(
        lambda: simulate(
            trace,
            make_policy("lru", cap),
            admission=AdaptiveThresholdAdmission(scores, distances, m),
        ),
        rounds=1,
        iterations=1,
    )

    window = max(2000, trace.n_accesses // 10)
    q_static = evaluate_admission_decisions(
        trace.object_ids, static_denied, m, window_size=window
    )
    q_adaptive = evaluate_admission_decisions(
        trace.object_ids, adaptive_denied, m, window_size=window
    )

    lines = [
        "Extension — static cost matrix vs feedback-controlled threshold "
        f"(LRU, ≈{grid.paper_gb(frac):.0f} paper-GB, target precision "
        f"{target:.2f})",
        f"{'config':>9s} {'hit':>7s} {'writes':>8s} "
        f"{'precision σ across windows':>27s}",
    ]
    for name, sim, q in (
        ("static", static, q_static),
        ("adaptive", adaptive, q_adaptive),
    ):
        scored = q.n_scored > 0
        spread = float(np.nanstd(q.precision[scored]))
        lines.append(
            f"{name:>9s} {sim.hit_rate:7.3f} {sim.stats.files_written:8,d} "
            f"{spread:27.3f}"
        )
    lines.append(
        f"adaptive threshold trajectory: "
        f"{adaptive_adm.threshold_trace[0]:.2f} → "
        f"{adaptive_adm.final_threshold:.2f} over "
        f"{len(adaptive_adm.threshold_trace)} updates"
    )
    lines.append(
        "\nreading: the controller walks to the most aggressive threshold "
        "that still meets the precision target — trading a sliver of hit "
        "rate for substantially fewer writes.  The operating point becomes "
        "a dial (set a precision SLO) instead of a constant (pick v once)"
    )
    emit(capsys, "adaptive_threshold", "\n".join(lines))

    # Adaptive trades a bounded slice of hit rate for a large write cut.
    assert adaptive.hit_rate >= static.hit_rate - 0.04
    assert adaptive.stats.files_written < static.stats.files_written
    assert len(adaptive_adm.threshold_trace) > 3


def _decision_stream(trace, cap, admission) -> np.ndarray:
    """Re-run the admission against a fresh cache, recording denials."""
    admission.reset()
    policy = make_policy("lru", cap)
    denied = np.zeros(trace.n_accesses, dtype=bool)
    sizes = trace.catalog["size"][trace.object_ids].tolist()
    for i, oid in enumerate(trace.object_ids.tolist()):
        if oid in policy:
            policy.access(oid, sizes[i])
            admission.on_hit(i, oid, sizes[i])
        else:
            ok = admission.should_admit(i, oid, sizes[i])
            policy.access(oid, sizes[i], admit=ok)
            denied[i] = not ok
    return denied