"""§4.3 ablation: rudimentary vs reaccess-distance one-time criterion.

The paper first considers the *rudimentary* criterion ("accessed only one
time during the entire trace", reducing ~25 % of accesses), then argues a
better criterion must also exclude objects whose re-access arrives after
eviction — the reaccess-distance threshold ``M``.  This bench runs an
oracle admission filter under both criteria and shows why M wins.
"""

from common import emit

from repro.cache import make_policy, simulate
from repro.core.admission import OracleAdmission
from repro.core.labeling import rudimentary_one_time_labels


def bench_criteria(benchmark, capsys, trace, grid):
    lines = [
        "§4.3 ablation — rudimentary (exactly-once) vs reaccess-distance M "
        "criterion (oracle admission, LRU)",
        f"{'paper GB':>9s} {'orig hit':>9s} "
        f"{'rud hit':>8s} {'M hit':>7s} "
        f"{'rud writes':>11s} {'M writes':>9s} {'p(rud)':>7s} {'p(M)':>7s}",
    ]

    rud_labels = rudimentary_one_time_labels(trace.object_ids)

    rows = []
    for frac in grid.fractions[::3]:
        cap = grid.capacity_bytes(frac)
        block = grid.block(frac)
        original = block.originals["lru"]
        m_ideal = block.ideals["lru"]
        rud_ideal = simulate(
            trace,
            make_policy("lru", cap),
            admission=OracleAdmission(rud_labels),
            policy_name="lru",
        )
        rows.append((frac, original, rud_ideal, m_ideal, block))
        lines.append(
            f"{grid.paper_gb(frac):9.0f} {original.hit_rate:9.3f} "
            f"{rud_ideal.hit_rate:8.3f} {m_ideal.hit_rate:7.3f} "
            f"{rud_ideal.stats.files_written:11,d} "
            f"{m_ideal.stats.files_written:9,d} "
            f"{rud_labels.mean():7.3f} {block.labels.mean():7.3f}"
        )

    benchmark.pedantic(
        lambda: simulate(
            trace,
            make_policy("lru", grid.capacity_bytes(grid.fractions[0])),
            admission=OracleAdmission(rud_labels),
        ),
        rounds=1,
        iterations=1,
    )

    lines.append(
        "\nthe M criterion also bars objects that would be evicted before "
        "re-use, so it avoids more writes — and raises hit rate further by "
        "freeing that space (paper §4.3's motivation)"
    )
    emit(capsys, "ablation_criteria", "\n".join(lines))

    for frac, original, rud_ideal, m_ideal, block in rows:
        # Both criteria beat traditional caching …
        assert rud_ideal.hit_rate >= original.hit_rate - 0.005
        # … but M excludes strictly more useless writes,
        assert m_ideal.stats.files_written <= rud_ideal.stats.files_written
        # and never at the cost of hit rate (beyond noise).
        assert m_ideal.hit_rate >= rud_ideal.hit_rate - 0.01
        # M-based p covers the rudimentary share.
        assert block.labels.mean() >= rud_labels.mean() - 1e-9
