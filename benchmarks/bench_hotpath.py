"""Hot-path perf-regression harness: ns/decision for the admission stack.

Dual-mode module:

* **Script / CI**: ``python benchmarks/bench_hotpath.py [--quick]`` runs
  :func:`repro.perf.hotpath.run_hotpath_bench`, prints the component
  table, writes ``BENCH_hotpath.json`` (repo root by default) and exits
  non-zero if any parity check fails (fast vs reference admission
  decisions, segmented vs loop simulation) — or, outside ``--quick``, if
  the compiled tree misses the 5× single-row floor or segment batching
  misses the 3× end-to-end floor.  ``--components`` narrows the run to a
  subset of groups (the CI quick gate uses ``admission,segments``).
* **pytest-benchmark suite**: collected like the other ``bench_*``
  modules; runs quick mode and persists the table under ``results/``.

``repro bench-hotpath`` exposes the same harness through the CLI.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parent.parent

try:
    from repro.perf.hotpath import (
        COMPONENT_GROUPS,
        BenchError,
        check_report,
        format_report,
        run_hotpath_bench,
        write_report,
    )
except ImportError:  # script run without PYTHONPATH=src
    sys.path.insert(0, str(_REPO_ROOT / "src"))
    from repro.perf.hotpath import (
        COMPONENT_GROUPS,
        BenchError,
        check_report,
        format_report,
        run_hotpath_bench,
        write_report,
    )

DEFAULT_OUTPUT = _REPO_ROOT / "BENCH_hotpath.json"


def bench_hotpath(benchmark, capsys):
    """pytest-benchmark entry: quick-mode measurement + parity assertion."""
    from common import emit

    report = benchmark.pedantic(
        lambda: run_hotpath_bench(quick=True), rounds=1, iterations=1
    )
    check_report(report)  # exact decision parity, always
    emit(capsys, "hotpath", format_report(report))


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(
        description="Benchmark the per-miss admission hot path and assert "
        "fast/reference decision parity."
    )
    ap.add_argument("--quick", action="store_true",
                    help="small trace + short timing budgets (CI smoke mode)")
    ap.add_argument("--output", default=str(DEFAULT_OUTPUT),
                    help="where to write BENCH_hotpath.json")
    ap.add_argument("--objects", type=int, default=None,
                    help="objects to synthesise (default: mode-dependent)")
    ap.add_argument("--days", type=float, default=None)
    ap.add_argument("--seed", type=int, default=0)
    ap.add_argument("--min-speedup", type=float, default=None,
                    help="compiled single-row speedup floor "
                         "(default: 5.0 full mode, 0 = unchecked in --quick)")
    ap.add_argument("--min-segment-speedup", type=float, default=None,
                    help="segmented-simulation end-to-end speedup floor "
                         "(default: 3.0 full mode, 0 = unchecked in --quick)")
    ap.add_argument("--components", default=None,
                    help="comma-separated measurement groups to run "
                         f"(subset of {','.join(COMPONENT_GROUPS)}; "
                         "default: all)")
    args = ap.parse_args(argv)

    components = None
    if args.components is not None:
        components = [c.strip() for c in args.components.split(",") if c.strip()]

    report = run_hotpath_bench(
        objects=args.objects, days=args.days, seed=args.seed, quick=args.quick,
        components=components,
    )
    path = write_report(report, args.output)
    print(format_report(report))
    print(f"[saved to {path}]")

    min_speedup = args.min_speedup
    if min_speedup is None:
        min_speedup = 0.0 if args.quick else 5.0
    min_segment_speedup = args.min_segment_speedup
    if min_segment_speedup is None:
        min_segment_speedup = 0.0 if args.quick else 3.0
    try:
        check_report(
            report,
            min_speedup=min_speedup,
            min_segment_speedup=min_segment_speedup,
        )
    except BenchError as exc:
        print(f"FAILED: {exc}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
