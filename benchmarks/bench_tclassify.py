"""§5.3.5's ``t_classify``: measured per-decision classification cost.

The paper measures 0.4 µs per decision (classifier + history table) in its
production C implementation and argues via Eq. 6 that this is negligible
against a 3 ms HDD miss.  Here we *measure* the Python implementation's
per-miss decision time — feature construction + tree traversal + history
table — and verify the paper's conclusion still holds at our (much slower)
interpreted speed.
"""

from common import emit

from repro.cache import LRUCache, simulate
from repro.config import DEFAULT_LATENCY, LatencyConstants
from repro.core.features import PAPER_FEATURE_NAMES, extract_features
from repro.core.history_table import HistoryTable
from repro.core.latency import LatencyModel
from repro.core.online import OnlineClassifierAdmission, OnlineFeatureTracker
from repro.ml import DecisionTreeClassifier


def bench_tclassify(benchmark, capsys, trace, grid):
    block = grid.block(grid.fractions[2])
    fm = extract_features(trace).select(PAPER_FEATURE_NAMES)
    model = DecisionTreeClassifier(max_splits=30, rng=0).fit(fm.X, block.labels)

    cap = grid.capacity_bytes(grid.fractions[2])
    adm = OnlineClassifierAdmission(
        model,
        OnlineFeatureTracker(trace),
        block.criteria.m_threshold,
        HistoryTable(1024),
    )
    result = benchmark.pedantic(
        lambda: simulate(trace, LRUCache(cap), admission=adm),
        rounds=1,
        iterations=1,
    )

    t_measured = adm.mean_decision_seconds
    depth = model.get_depth()
    path_lengths = model.decision_path_lengths(fm.X[:1000])

    lm_paper = LatencyModel(DEFAULT_LATENCY)
    lm_measured = LatencyModel(
        LatencyConstants(t_classify=t_measured)
    )
    h = result.hit_rate
    overhead_paper = lm_paper.miss_penalty(classified=True) / lm_paper.miss_penalty(
        classified=False
    )
    overhead_measured = lm_measured.miss_penalty(
        classified=True
    ) / lm_measured.miss_penalty(classified=False)

    lines = [
        "§5.3.5 — measured per-decision classification cost (t_classify)",
        f"decisions measured        : {adm.decisions:,}",
        f"mean decision time        : {1e6 * t_measured:8.2f} µs "
        "(paper's C implementation: 0.40 µs)",
        f"tree height               : {depth} "
        f"(paper: ≈5; mean path {path_lengths.mean():.1f} comparisons)",
        f"miss-penalty inflation    : ×{overhead_measured:.4f} measured "
        f"(×{overhead_paper:.6f} with paper constants)",
        f"online-run hit rate       : {h:.3f}",
        "conclusion: even at Python speed, classification adds <1% to the "
        "3 ms HDD miss penalty — the Eq. 6 argument holds",
    ]
    emit(capsys, "tclassify", "\n".join(lines))

    assert t_measured < 1e-3               # ≪ the 3 ms HDD read
    assert overhead_measured < 1.1         # <10% miss-penalty inflation
    assert depth <= 30
