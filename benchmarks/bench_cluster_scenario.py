"""Cluster-scenario benchmark: the reference fault timeline, end to end.

Dual-mode module, like ``bench_hotpath.py``:

* **Script / CI**: ``python benchmarks/bench_cluster_scenario.py [--quick]``
  synthesises a workload, runs the repository's reference scenario
  (4 OC nodes, replication 2, hot-key flood + node kill/cold restart +
  rolling admission deploy) through :func:`repro.scenario.run_scenario`,
  prints the per-phase table and writes ``BENCH_cluster_scenario.json``.
  Exits non-zero if the pristine phases diverge from the failure-free
  baseline (exact counter equality) — that equality is the scenario
  engine's correctness gate, the analogue of bench_hotpath's parity
  checks.  ``--quick`` shrinks the trace for the CI smoke job (< 30 s);
  the default run uses the full ISSUE-6 scale (200 k base requests).
* **pytest-benchmark suite**: collected like the other ``bench_*``
  modules; runs quick mode and persists the table under ``results/``.

The JSON report is tagged ``"kind": "cluster_scenario"`` and carries the
per-phase oracle gaps that ``bench_trend.py`` tracks across CI runs.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parent.parent

try:
    from repro.obs.spans import Tracer, validate_chrome_trace
    from repro.scenario import format_report, reference_scenario, run_scenario
    from repro.trace.generator import WorkloadConfig, generate_trace
except ImportError:  # script run without PYTHONPATH=src
    sys.path.insert(0, str(_REPO_ROOT / "src"))
    from repro.obs.spans import Tracer, validate_chrome_trace
    from repro.scenario import format_report, reference_scenario, run_scenario
    from repro.trace.generator import WorkloadConfig, generate_trace

DEFAULT_OUTPUT = _REPO_ROOT / "BENCH_cluster_scenario.json"

#: ISSUE-6 reference scale; ``--quick`` divides by ~7 for the CI smoke job.
FULL_REQUESTS = 200_000
QUICK_REQUESTS = 30_000

#: The generator yields ≈3.95 accesses/object, so this many objects gives
#: a trace comfortably longer than the requested replay.
_ACCESSES_PER_OBJECT = 3.5


def run_scenario_bench(
    *, quick: bool = False, requests: int | None = None, seed: int = 0,
    tracer=None,
):
    """Build the workload, run the reference scenario, return the report."""
    if requests is None:
        requests = QUICK_REQUESTS if quick else FULL_REQUESTS
    objects = max(2_000, int(requests / _ACCESSES_PER_OBJECT))
    trace = generate_trace(WorkloadConfig(n_objects=objects, seed=seed))
    if trace.n_accesses < requests:  # heavy-tail draw came up short
        requests = trace.n_accesses
    spec = reference_scenario(requests, seed=seed)
    return run_scenario(spec, trace, tracer=tracer)


def bench_cluster_scenario(benchmark, capsys):
    """pytest-benchmark entry: quick-mode run + baseline-equality gate."""
    from common import emit

    report = benchmark.pedantic(
        lambda: run_scenario_bench(quick=True), rounds=1, iterations=1
    )
    assert report.baseline_equal, (
        "pristine phases diverged from the failure-free baseline"
    )
    emit(capsys, "cluster_scenario", format_report(report))


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(
        description="Run the reference fault-injection scenario and write "
        "BENCH_cluster_scenario.json."
    )
    ap.add_argument("--quick", action="store_true",
                    help="small trace (CI smoke mode, < 30 s)")
    ap.add_argument("--requests", type=int, default=None,
                    help="base requests (default: 200k full, 30k quick)")
    ap.add_argument("--seed", type=int, default=0)
    ap.add_argument("--output", default=str(DEFAULT_OUTPUT),
                    help="where to write BENCH_cluster_scenario.json")
    ap.add_argument("--chrome-trace", default=None,
                    help="also write per-phase replay spans as Chrome "
                         "trace-event JSON to this path (Perfetto-loadable)")
    args = ap.parse_args(argv)

    tracer = Tracer() if args.chrome_trace else None
    report = run_scenario_bench(
        quick=args.quick, requests=args.requests, seed=args.seed,
        tracer=tracer,
    )
    payload = report.to_dict()
    payload["quick"] = bool(args.quick)
    with open(args.output, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
    print(format_report(report))
    print(f"[saved to {args.output}]")
    if tracer is not None:
        doc = tracer.to_chrome(process_name="repro-scenario")
        n_spans = validate_chrome_trace(doc)
        with open(args.chrome_trace, "w", encoding="utf-8") as fh:
            json.dump(doc, fh)
        print(f"[{n_spans} span(s) written to {args.chrome_trace}]")

    if not report.baseline_equal:
        print(
            "FAILED: pristine phases diverged from the failure-free baseline",
            file=sys.stderr,
        )
        return 1
    if report.ledger is not None and not report.ledger["exact"]:
        print(
            "FAILED: write ledger does not sum to the cluster's SSD writes",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
