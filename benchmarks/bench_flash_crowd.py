"""Extension: flash crowds — the admission filter's adversarial case.

A photo that goes viral looks *exactly* like a one-time photo at its first
access (no history — the paper's core difficulty), so a non-history
classifier will often deny it.  §4.4.2's history table exists for precisely
this: the viral photo's immediate second miss proves the verdict wrong and
rectifies it.  This bench injects flash crowds and measures how much viral
traffic each configuration loses.
"""

from common import BENCH_SEED, make_bench_workload, emit

from repro.cache import make_policy, simulate
from repro.core.admission import AlwaysAdmit, ClassifierAdmission
from repro.core.criteria import solve_criteria
from repro.core.features import extract_features
from repro.core.history_table import HistoryTable
from repro.core.labeling import one_time_labels, reaccess_distances
from repro.core.training import train_daily_classifier
from repro.trace.generator import generate_trace


def bench_flash_crowd(benchmark, capsys, trace, grid):
    cfg = make_bench_workload().with_(
        viral_fraction=0.004, viral_boost=25.0, seed=BENCH_SEED + 1
    )
    vtrace = generate_trace(cfg)
    viral_access = vtrace.viral_mask[vtrace.object_ids]

    cap = max(1, int(0.01 * vtrace.footprint_bytes))
    base = simulate(vtrace, make_policy("lru", cap), admission=AlwaysAdmit())
    criteria = solve_criteria(
        reaccess_distances(vtrace.object_ids),
        cap,
        vtrace.mean_object_size(),
        hit_rate=base.hit_rate,
    )
    labels = one_time_labels(vtrace.object_ids, criteria.m_threshold)
    training = train_daily_classifier(
        vtrace, extract_features(vtrace), labels, rng=0
    )

    def run(history_entries):
        adm = ClassifierAdmission(
            training.predictions,
            criteria.m_threshold,
            HistoryTable(history_entries),
        )
        # Per-access hit bookkeeping for the viral subset.
        policy = make_policy("lru", cap)
        viral_hits = viral_total = 0
        denied_viral_first = 0
        seen = set()
        oids = vtrace.object_ids.tolist()
        sizes = vtrace.catalog["size"][vtrace.object_ids].tolist()
        for i, oid in enumerate(oids):
            is_viral = bool(viral_access[i])
            hit = oid in policy
            if hit:
                policy.access(oid, sizes[i])
            else:
                ok = adm.should_admit(i, oid, sizes[i])
                policy.access(oid, sizes[i], admit=ok)
                if is_viral and oid not in seen and not ok:
                    denied_viral_first += 1
            seen.add(oid)
            if is_viral:
                viral_total += 1
                viral_hits += hit
        return viral_hits / max(viral_total, 1), denied_viral_first, adm

    paper_entries = HistoryTable.paper_capacity(
        criteria.m_threshold, criteria.hit_rate, criteria.one_time_share
    )
    no_table = run(1)
    with_table = run(max(paper_entries, 8))

    benchmark.pedantic(
        lambda: simulate(
            vtrace,
            make_policy("lru", cap),
            admission=ClassifierAdmission(
                training.predictions, criteria.m_threshold,
                HistoryTable(max(paper_entries, 8)),
            ),
        ),
        rounds=1,
        iterations=1,
    )

    n_viral = int(vtrace.viral_mask.sum())
    lines = [
        "Extension — flash crowds vs the history table (§4.4.2's purpose)",
        f"{n_viral} viral photos "
        f"({100 * viral_access.mean():.1f}% of requests), LRU, 1% capacity",
        f"{'config':>16s} {'viral hit rate':>15s} "
        f"{'viral first-miss denials':>25s} {'rectified':>10s}",
    ]
    for name, (vhr, denied, adm) in (
        ("no history", no_table),
        ("paper history", with_table),
    ):
        lines.append(
            f"{name:>16s} {vhr:15.3f} {denied:25,d} "
            f"{adm.rectified_admits:10,d}"
        )
    lines.append(
        "\nreading: viral onsets are structurally indistinguishable from "
        "one-time photos, so some first misses are denied — the history "
        "table admits them on the immediate second miss, capping the loss "
        "at ~one extra miss per viral photo"
    )
    emit(capsys, "flash_crowd", "\n".join(lines))

    # The history table must rectify and must not hurt viral hit rate.
    assert with_table[2].rectified_admits >= no_table[2].rectified_admits
    assert with_table[0] >= no_table[0] - 0.005
    # Viral traffic is overwhelmingly re-accesses: hit rate stays high.
    assert with_table[0] > 0.8
