"""Learned-eviction harness: Belady-gap closure across the capacity grid.

Dual-mode module:

* **Script / CI**: ``python benchmarks/bench_learned_eviction.py
  [--quick]`` replays the reference trace through LRU, the learned
  policy (:class:`repro.cache.learned.LearnedCache` with the catalog
  metadata features) and the offline-optimal
  :class:`~repro.cache.belady.BeladyCache` at the paper's capacity
  points, reports the file-hit-rate **gap closure**

      (learned − lru) / (belady − lru)

  plus the SSD file-write rates and the timed per-eviction decision
  cost, writes ``BENCH_learned_eviction.json`` (``"kind":
  "learned_eviction"`` for ``bench_trend.py`` dispatch) and exits
  non-zero when a floor is missed.  Full-mode floors: mean closure
  ≥ 25 % of the LRU→Belady gap, a compiled single prediction in the ns
  range (< 1 µs), and a mean eviction decision within its budget.  The
  decision budget is the 2 µs reference figure hardware-normalised:
  ``max(2 µs, 16 × the same-run LRU cost per replayed access)``.  On
  the reference core where an LRU replay access is ~125 ns the two
  bounds coincide at 2 µs; on slower or noisier runners the relative
  form keeps the gate measuring the *policy* (a decision may cost at
  most 16 plain-LRU accesses) instead of the machine.  Both modes
  always verify that every pre-existing registry policy stays
  bit-identical under segmented replay — the learned policy must not
  disturb the nine incumbents.
* **pytest-benchmark suite**: collected like the other ``bench_*``
  modules; runs quick mode and persists the table under ``results/``.

The capacity points are the paper's own (0.47 %–4.7 % of the trace
footprint, :func:`repro.config.paper_capacity_fractions`): tiny caches
are where eviction quality matters — at 5–20 % of footprint LRU is
recency-saturated and every policy converges.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parent.parent

try:
    from repro.cache.simulator import POLICY_REGISTRY, make_policy, simulate
except ImportError:  # script run without PYTHONPATH=src
    sys.path.insert(0, str(_REPO_ROOT / "src"))
    from repro.cache.simulator import POLICY_REGISTRY, make_policy, simulate

from repro.cache.learned import LearnedCache, eviction_metadata
from repro.config import paper_capacity_fractions
from repro.trace.generator import WorkloadConfig, generate_trace

DEFAULT_OUTPUT = _REPO_ROOT / "BENCH_learned_eviction.json"

KIND = "learned_eviction"

#: Full-mode reference trace: large enough that the online trainer has
#: matured labels well before the measured steady state.
FULL_OBJECTS = 50_000
#: Quick-mode trace for the CI smoke: same shape, CI-sized.
QUICK_OBJECTS = 4_000
SEED = 7

#: Full-mode floors (quick mode reports but never gates — the tiny trace
#: under-trains the head, that's expected).
MIN_MEAN_CLOSURE = 0.25
#: Reference-hardware absolute decision budget (ns).
MAX_MEAN_DECISION_NS = 2_000.0
#: Machine-independent form of the same budget: a decision may cost at
#: most this many plain-LRU replay accesses, measured in the same run.
DECISION_BUDGET_LRU_MULTIPLE = 16.0
#: The compiled fast path itself must stay in the ns range everywhere.
MAX_PREDICT_NS = 1_000.0


class BenchError(AssertionError):
    """A quality floor or parity invariant failed."""


def _point_fractions() -> tuple[float, ...]:
    return tuple(paper_capacity_fractions())


def _time_predict(policy: LearnedCache, reps: int = 5_000) -> float | None:
    """ns per compiled single-row prediction on the policy's own head.

    Uses a real feature row from the post-replay resident set, so the
    measured walk takes the branch profile the eviction loop sees.
    Returns None when the head never trained (quick mode's tiny trace).
    """
    predict = policy.trainer.predict_one
    if predict is None or not len(policy):
        return None
    oid = next(iter(policy._recency))
    row = policy._feature_row(
        policy._meta[oid], policy._recency[oid], policy._clock, oid
    )
    predict(row)  # warm the code object before the timed reps
    t0 = time.perf_counter()
    for _ in range(reps):
        predict(row)
    return 1e9 * (time.perf_counter() - t0) / reps


def run_learned_eviction_bench(
    *,
    quick: bool = False,
    objects: int | None = None,
    seed: int = SEED,
) -> dict:
    """Measure closure/writes/decision-cost per capacity point."""
    n_objects = objects if objects is not None else (
        QUICK_OBJECTS if quick else FULL_OBJECTS
    )
    cfg = WorkloadConfig(n_objects=n_objects, seed=seed)
    trace = generate_trace(cfg)
    footprint = int(trace.catalog["size"].sum())
    metadata = eviction_metadata(trace)

    points = []
    for fraction in _point_fractions():
        cap = max(1, int(fraction * footprint))
        t0 = time.perf_counter()
        lru = simulate(trace, make_policy("lru", cap), policy_name="lru")
        lru_wall = time.perf_counter() - t0
        lru_ns = 1e9 * lru_wall / max(1, lru.stats.requests)
        belady = simulate(
            trace, make_policy("belady", cap, trace), policy_name="belady"
        )
        policy = LearnedCache(cap, metadata=metadata, timing=True)
        t0 = time.perf_counter()
        learned = simulate(trace, policy, policy_name="learned")
        wall = time.perf_counter() - t0
        gap = belady.hit_rate - lru.hit_rate
        closure = (learned.hit_rate - lru.hit_rate) / gap if gap > 0 else 0.0
        stats = policy.decision_stats()
        points.append(
            {
                "fraction": fraction,
                "capacity_bytes": cap,
                "lru_hit_rate": lru.hit_rate,
                "learned_hit_rate": learned.hit_rate,
                "belady_hit_rate": belady.hit_rate,
                "gap_closure": closure,
                "lru_file_write_rate": lru.file_write_rate,
                "learned_file_write_rate": learned.file_write_rate,
                "belady_file_write_rate": belady.file_write_rate,
                "mean_decision_ns": stats["mean_decision_ns"],
                "lru_access_ns": lru_ns,
                "predict_ns": _time_predict(policy),
                "decision_stats": {
                    k: stats[k]
                    for k in (
                        "decisions",
                        "learned_evictions",
                        "fallback_evictions",
                        "protected_skips",
                        "churn_inserts",
                        "fits",
                        "matured_samples",
                    )
                },
                "simulate_seconds": wall,
            }
        )

    closures = [p["gap_closure"] for p in points]
    decision_ns = [
        p["mean_decision_ns"] for p in points if p["mean_decision_ns"]
    ]
    predict_ns = [p["predict_ns"] for p in points if p["predict_ns"]]
    lru_ns = [p["lru_access_ns"] for p in points]
    mean_lru_ns = sum(lru_ns) / len(lru_ns)
    return {
        "kind": KIND,
        "quick": quick,
        "workload": {"n_objects": n_objects, "seed": seed},
        "footprint_bytes": footprint,
        "points": points,
        "mean_gap_closure": sum(closures) / len(closures),
        "min_gap_closure": min(closures),
        "mean_decision_ns": (
            sum(decision_ns) / len(decision_ns) if decision_ns else None
        ),
        "mean_predict_ns": (
            sum(predict_ns) / len(predict_ns) if predict_ns else None
        ),
        "mean_lru_access_ns": mean_lru_ns,
        "decision_budget_ns": max(
            MAX_MEAN_DECISION_NS, DECISION_BUDGET_LRU_MULTIPLE * mean_lru_ns
        ),
        "segment_parity": check_segment_parity(seed=seed),
    }


def check_segment_parity(*, seed: int = SEED) -> dict:
    """Replay every registry policy with segments on/off; compare stats.

    The learned policy's arrival must leave the nine incumbents
    bit-identical under segmented replay — and the learned policy itself
    (which declines ``can_batch_hits``) trivially so.  Uses a small trace
    so both bench modes can afford the double replay.
    """
    trace = generate_trace(WorkloadConfig(n_objects=2_000, seed=seed))
    cap = int(0.05 * trace.catalog["size"].sum())
    equal: dict[str, bool] = {}
    for name in sorted(POLICY_REGISTRY):
        seg = simulate(trace, make_policy(name, cap, trace), use_segments=True)
        loop = simulate(trace, make_policy(name, cap, trace), use_segments=False)
        equal[name] = seg.stats == loop.stats
    return {"policies": equal, "all_equal": all(equal.values())}


def format_report(report: dict) -> str:
    mode = "quick" if report["quick"] else "full"
    lines = [
        f"learned eviction vs LRU/Belady ({mode} mode, "
        f"{report['workload']['n_objects']:,} objects)",
        f"{'frac':>6} {'lru':>7} {'learned':>8} {'belady':>7} "
        f"{'closure':>8} {'dec ns':>8}",
    ]
    for p in report["points"]:
        ns = p["mean_decision_ns"]
        ns_cell = f"{ns:>8.0f}" if ns is not None else f"{'-':>8}"
        lines.append(
            f"{p['fraction']:>6.4f} {p['lru_hit_rate']:>7.4f} "
            f"{p['learned_hit_rate']:>8.4f} {p['belady_hit_rate']:>7.4f} "
            f"{p['gap_closure']:>+8.3f} {ns_cell}"
        )
    lines.append(
        f"mean closure {report['mean_gap_closure']:+.3f} "
        f"(min {report['min_gap_closure']:+.3f})"
    )
    if report["mean_decision_ns"] is not None:
        lines.append(
            f"mean decision {report['mean_decision_ns']:.0f} ns "
            f"(budget {report['decision_budget_ns']:.0f} ns = "
            f"max({MAX_MEAN_DECISION_NS:.0f}, "
            f"{DECISION_BUDGET_LRU_MULTIPLE:.0f} x "
            f"{report['mean_lru_access_ns']:.0f} ns LRU access))"
        )
    if report["mean_predict_ns"] is not None:
        lines.append(
            f"compiled prediction {report['mean_predict_ns']:.0f} ns"
        )
    parity = report["segment_parity"]
    lines.append(
        "segment parity: "
        + ("all equal" if parity["all_equal"] else "MISMATCH "
           + ", ".join(n for n, ok in parity["policies"].items() if not ok))
    )
    return "\n".join(lines)


def check_report(report: dict, *, quick: bool | None = None) -> None:
    """Raise :class:`BenchError` on any failed floor or parity break."""
    if not report["segment_parity"]["all_equal"]:
        bad = [
            n for n, ok in report["segment_parity"]["policies"].items()
            if not ok
        ]
        raise BenchError(f"segmented replay diverged for: {', '.join(bad)}")
    quick = report["quick"] if quick is None else quick
    if quick:
        return
    if report["mean_gap_closure"] < MIN_MEAN_CLOSURE:
        raise BenchError(
            f"mean Belady-gap closure {report['mean_gap_closure']:.3f} "
            f"is below the {MIN_MEAN_CLOSURE:.2f} floor"
        )
    if (
        report["mean_predict_ns"] is not None
        and report["mean_predict_ns"] > MAX_PREDICT_NS
    ):
        raise BenchError(
            f"compiled prediction {report['mean_predict_ns']:.0f} ns is "
            f"out of the ns range (>{MAX_PREDICT_NS:.0f} ns) — the fast "
            "path is not being used"
        )
    budget = report["decision_budget_ns"]
    if (
        report["mean_decision_ns"] is not None
        and report["mean_decision_ns"] > budget
    ):
        raise BenchError(
            f"mean eviction decision {report['mean_decision_ns']:.0f} ns "
            f"exceeds the {budget:.0f} ns budget "
            f"(max({MAX_MEAN_DECISION_NS:.0f} ns, "
            f"{DECISION_BUDGET_LRU_MULTIPLE:.0f} x LRU access))"
        )


def write_report(report: dict, path: str) -> Path:
    out = Path(path)
    out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return out


def bench_learned_eviction(benchmark, capsys):
    """pytest-benchmark entry: quick-mode measurement + parity assertion."""
    from common import emit

    report = benchmark.pedantic(
        lambda: run_learned_eviction_bench(quick=True), rounds=1, iterations=1
    )
    check_report(report)  # parity always; floors are full-mode only
    emit(capsys, "learned_eviction", format_report(report))


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(
        description="Belady-gap closure of the learned-eviction policy "
        "across the paper's capacity points."
    )
    ap.add_argument("--quick", action="store_true",
                    help="CI-sized trace; floors are reported, not gated")
    ap.add_argument("--objects", type=int, default=None,
                    help="override the trace object count")
    ap.add_argument("--seed", type=int, default=SEED)
    ap.add_argument("--output", default=str(DEFAULT_OUTPUT),
                    help=f"report path (default: {DEFAULT_OUTPUT})")
    args = ap.parse_args(argv)

    report = run_learned_eviction_bench(
        quick=args.quick, objects=args.objects, seed=args.seed
    )
    print(format_report(report))
    path = write_report(report, args.output)
    print(f"[report written to {path}]")
    try:
        check_report(report)
    except BenchError as exc:
        print(f"FAILED: {exc}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
