"""Extension: the paper's CART vs a modern GBDT in the admission loop.

Later learned-cache systems (LRB and descendants) replaced single trees
with gradient-boosted ensembles.  This bench swaps the daily-retrained
model family and asks whether the better classifier translates into better
*caching* — and at what compute cost (the §3.1.1 trade revisited with a
2020s model).
"""

import time

from common import emit

from repro.cache import make_policy, simulate
from repro.core.admission import ClassifierAdmission
from repro.core.training import train_daily_classifier
from repro.ml.cost_sensitive import CostMatrix, CostSensitiveClassifier
from repro.ml.gbdt import GradientBoostingClassifier


def bench_modern_classifier(benchmark, capsys, trace, grid):
    frac = grid.fractions[2]
    cap = grid.capacity_bytes(frac)
    block = grid.block(frac)
    labels = block.labels
    criteria = block.criteria

    def run(model_factory, label):
        t0 = time.perf_counter()
        training = train_daily_classifier(
            trace,
            grid._features,
            labels,
            cost_v=block.cost_v,
            model_factory=model_factory,
            rng=0,
        )
        train_s = time.perf_counter() - t0
        sim = simulate(
            trace,
            make_policy("lru", cap),
            admission=ClassifierAdmission.from_criteria(
                training.predictions, criteria
            ),
            policy_name="lru",
        )
        return training, sim, train_s

    cart = run(None, "cart")  # paper default
    gbdt = run(
        lambda seed: CostSensitiveClassifier(
            GradientBoostingClassifier(
                50, max_depth=3, learning_rate=0.2, rng=seed
            ),
            CostMatrix(fn_cost=1.0, fp_cost=block.cost_v),
        ),
        "gbdt",
    )

    benchmark.pedantic(lambda: run(None, "cart"), rounds=1, iterations=1)

    original = block.originals["lru"]
    lines = [
        "Extension — CART (paper) vs GBDT (modern) in the daily admission "
        f"loop (LRU, ≈{grid.paper_gb(frac):.0f} paper-GB)",
        f"{'model':>6s} {'precision':>10s} {'recall':>8s} {'accuracy':>9s} "
        f"{'hit rate':>9s} {'writes':>8s} {'train s':>8s}",
        f"{'(none)':>6s} {'-':>10s} {'-':>8s} {'-':>9s} "
        f"{original.hit_rate:9.3f} {original.stats.files_written:8,d} "
        f"{'-':>8s}",
    ]
    for name, (training, sim, train_s) in (("cart", cart), ("gbdt", gbdt)):
        o = training.overall
        lines.append(
            f"{name:>6s} {o['precision']:10.3f} {o['recall']:8.3f} "
            f"{o['accuracy']:9.3f} {sim.hit_rate:9.3f} "
            f"{sim.stats.files_written:8,d} {train_s:8.1f}"
        )
    ratio = gbdt[2] / max(cart[2], 1e-9)
    lines.append(
        f"\nGBDT training cost: {ratio:.1f}× the single tree — the paper's "
        "§3.1.1 compute-vs-accuracy trade, updated for the boosted era"
    )
    emit(capsys, "modern_classifier", "\n".join(lines))

    # The better classifier must translate into at least as good caching.
    assert gbdt[0].overall["accuracy"] >= cart[0].overall["accuracy"] - 0.02
    assert gbdt[1].hit_rate >= cart[1].hit_rate - 0.01
    assert gbdt[1].hit_rate > original.hit_rate