"""Figure 9: byte write rate — SSD write *traffic*, size-weighted.

Paper: byte writes fall for every policy, 60–80 % for LIRS.  Byte write
rate = bytes written to SSD / total requested bytes.
"""

import numpy as np
from common import POLICIES, emit, format_sweep_table


def bench_fig9(benchmark, capsys, grid):
    table = benchmark.pedantic(
        lambda: format_sweep_table(
            "Figure 9 — byte write rate (original/proposal/ideal/belady)",
            grid,
            "byte_write_rate",
        ),
        rounds=1,
        iterations=1,
    )

    summary = ["relative byte-write reduction, proposal vs original:"]
    for policy in POLICIES:
        sweep = grid.sweep(policy, "byte_write_rate")
        red = 1.0 - np.array(sweep["proposal"]) / np.array(sweep["original"])
        summary.append(
            f"  {policy:6s}: {100 * red.min():4.0f}%–{100 * red.max():4.0f}%"
        )
        assert (red > 0.05).all()
    summary.append("paper: LIRS −60–80%")

    # Byte and file write reductions must agree in direction and magnitude.
    for policy in POLICIES:
        f = grid.sweep(policy, "file_write_rate")
        b = grid.sweep(policy, "byte_write_rate")
        f_red = 1.0 - np.array(f["proposal"]) / np.array(f["original"])
        b_red = 1.0 - np.array(b["proposal"]) / np.array(b["original"])
        assert np.abs(f_red - b_red).max() < 0.15

    emit(capsys, "fig9_byte_writes", table + "\n\n" + "\n".join(summary))
