"""§2.2 trace statistics: the numbers that motivate the whole paper.

Paper: 61.5 % of objects accessed once, one-time accesses are a minority of
traffic, and with infinite cache the hit rate caps at ≈74.5 % (1 − N/A).
"""

from common import make_bench_workload, emit

from repro.trace import compute_stats
from repro.trace.generator import generate_trace


def bench_trace_generation(benchmark, capsys, trace):
    """Times a full 9-day synthesis; prints the §2.2 statistics table."""
    generated = benchmark.pedantic(
        lambda: generate_trace(make_bench_workload()), rounds=3, iterations=1
    )
    stats = compute_stats(generated)

    lines = [
        "§2.2 trace statistics (paper values in brackets)",
        f"one-time object fraction : {100 * stats.one_time_object_fraction:5.1f}%  [61.5%]",
        f"one-time access fraction : {100 * stats.one_time_access_fraction:5.1f}%  "
        "[15.5% from the paper's own totals; the text says 25.5%]",
        f"hit-rate cap (1 - N/A)   : {100 * stats.hit_rate_cap:5.1f}%  [≈74.5%]",
        f"mean accesses per object : {stats.mean_accesses_per_object:5.2f}   [3.95]",
        f"diurnal volume peak hour : {stats.diurnal_peak_hour}:00   [≈20:00]",
        f"objects={stats.n_objects:,} accesses={stats.n_accesses:,} "
        f"footprint={stats.footprint_bytes / 2**30:.3f} GiB",
    ]
    emit(capsys, "trace_stats", "\n".join(lines))

    assert abs(stats.one_time_object_fraction - 0.615) < 0.02
    assert abs(stats.hit_rate_cap - 0.745) < 0.02
