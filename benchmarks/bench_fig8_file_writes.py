"""Figure 8: file write rate — the headline SSD-lifetime result.

Paper: the classifier slashes SSD file writes for every policy; LIRS drops
65–81 %.  Write rate = files written to SSD / total requests.
"""

import numpy as np
from common import POLICIES, emit, format_sweep_table


def bench_fig8(benchmark, capsys, grid):
    table = benchmark.pedantic(
        lambda: format_sweep_table(
            "Figure 8 — file write rate (original/proposal/ideal/belady)",
            grid,
            "file_write_rate",
        ),
        rounds=1,
        iterations=1,
    )

    summary = ["relative write reduction, proposal vs original:"]
    reductions = {}
    for policy in POLICIES:
        sweep = grid.sweep(policy, "file_write_rate")
        orig = np.array(sweep["original"])
        prop = np.array(sweep["proposal"])
        red = 1.0 - prop / orig
        reductions[policy] = red
        summary.append(
            f"  {policy:6s}: {100 * red.min():4.0f}%–{100 * red.max():4.0f}%"
        )
    summary.append("paper: LIRS −65–81%; every policy improves substantially")
    emit(capsys, "fig8_file_writes", table + "\n\n" + "\n".join(summary))

    for policy in POLICIES:
        # Writes must drop everywhere, and meaningfully on average.
        assert (reductions[policy] > 0.05).all()
        assert reductions[policy].mean() > 0.25
