"""§3.2.2 ablation: greedy information-gain feature selection.

Regenerates the paper's selection procedure: rank features by information
gain, add them greedily while cross-validated accuracy improves, and
compare the resulting set with the paper's final five (average views,
recency, photo age, access time, photo type).
"""

import numpy as np
from common import emit

from repro.core.features import FEATURE_NAMES, PAPER_FEATURE_NAMES
from repro.core.training import sample_per_minute
from repro.ml import DecisionTreeClassifier, greedy_forward_selection


def bench_feature_selection(benchmark, capsys, trace, grid):
    labels = grid.block(grid.fractions[2]).labels
    X = grid._features.X

    rng = np.random.default_rng(0)
    day1 = np.nonzero(trace.timestamps < 86400.0)[0]
    picked = day1[sample_per_minute(trace.timestamps[day1], 60, rng)]

    result = benchmark.pedantic(
        lambda: greedy_forward_selection(
            DecisionTreeClassifier(max_splits=30, rng=0),
            X[picked],
            labels[picked],
            min_improvement=0.002,
        ),
        rounds=1,
        iterations=1,
    )

    gain_order = sorted(result.gains.items(), key=lambda kv: -kv[1])
    lines = [
        "§3.2.2 ablation — greedy information-gain feature selection",
        "information gain per candidate feature:",
    ]
    for j, gain in gain_order:
        marker = "*" if FEATURE_NAMES[j] in PAPER_FEATURE_NAMES else " "
        lines.append(f"  {marker} {FEATURE_NAMES[j]:22s} {gain:.4f}")
    lines.append(
        "selected (in order): "
        + ", ".join(result.names(list(FEATURE_NAMES)))
    )
    lines.append(
        "cv accuracy trajectory: "
        + " → ".join(f"{s:.3f}" for s in result.scores)
    )
    lines.append(f"paper's final set: {', '.join(PAPER_FEATURE_NAMES)}")
    overlap = set(result.names(list(FEATURE_NAMES))) & set(PAPER_FEATURE_NAMES)
    lines.append(f"overlap with paper set: {len(overlap)}/{len(result.selected)}")
    emit(capsys, "ablation_features", "\n".join(lines))

    assert len(result.selected) >= 1
    # The strongest features must come from the paper's five.
    top2 = {FEATURE_NAMES[j] for j, _ in gain_order[:2]}
    assert top2 & set(PAPER_FEATURE_NAMES)
    # Accuracy trajectory is strictly improving by construction.
    assert all(b > a for a, b in zip(result.scores, result.scores[1:]))
