"""§4.4.3 ablation: model-update cadence.

The paper weighs two refresh strategies — offline daily retraining (chosen,
minimal load impact) vs real-time incremental updating — and observes that
classification quality is time-bounded.  This bench sweeps the retrain
period from "never" (static) through daily to 2-hourly and reports quality
plus the number of (re)trainings the cache server must pay for.
"""

from common import emit

from repro.core.training import DAY, train_daily_classifier


def bench_retrain_period(benchmark, capsys, trace, grid):
    block = grid.block(grid.fractions[2])
    labels = block.labels
    features = grid._features

    def run(period=None, static=False):
        return train_daily_classifier(
            trace,
            features,
            labels,
            cost_v=block.cost_v,
            retrain_period=period or DAY,
            train_window=DAY,
            static_model=static,
            rng=0,
        )

    rows = {
        "static (train once)": run(static=True),
        "daily (paper)": run(DAY),
        "12-hourly": run(DAY / 2),
        "6-hourly": run(DAY / 4),
        "2-hourly": run(DAY / 12),
    }

    benchmark.pedantic(lambda: run(DAY), rounds=1, iterations=1)

    lines = [
        "§4.4.3 ablation — retraining cadence (LRU criterion, "
        f"≈{grid.paper_gb(grid.fractions[2]):.0f} paper-GB)",
        f"{'cadence':>20s} {'precision':>10s} {'recall':>8s} {'accuracy':>9s} "
        f"{'trainings':>10s}",
    ]
    for name, r in rows.items():
        o = r.overall
        n_trainings = sum(1 for m in r.models if m is not None)
        if name.startswith("static"):
            n_trainings = 1
        lines.append(
            f"{name:>20s} {o['precision']:10.3f} {o['recall']:8.3f} "
            f"{o['accuracy']:9.3f} {n_trainings:10d}"
        )
    lines.append(
        "paper: daily offline retraining chosen — quality is time-bounded, "
        "but real-time updating would load the cache servers"
    )
    emit(capsys, "ablation_retraining", "\n".join(lines))

    static_acc = rows["static (train once)"].overall["accuracy"]
    daily_acc = rows["daily (paper)"].overall["accuracy"]
    fast_prec = rows["2-hourly"].overall["precision"]
    daily_prec = rows["daily (paper)"].overall["precision"]
    # Retraining must not be worse than a frozen model on a drifting trace,
    # and faster cadence buys (some) precision.
    assert daily_acc >= static_acc - 0.01
    assert fast_prec >= daily_prec - 0.02
