"""Table 1: performance comparison of seven classifiers.

Paper values (precision / recall / accuracy / AUC):

    Naive Bayes       0.378 / 0.993 / 0.459 / 0.689
    Decision Tree     0.800 / 0.765 / 0.860 / 0.899
    BP NN             0.626 / 0.158 / 0.692 / 0.722
    KNN               0.687 / 0.544 / 0.768 / 0.826
    AdaBoost          0.807 / 0.785 / 0.868 / 0.936
    Random Forest     0.802 / 0.779 / 0.864 / 0.932
    Logistic Reg.     0.893 / 0.174 / 0.721 / 0.835

The *geometry* to reproduce: trees/ensembles lead accuracy and AUC with
balanced precision/recall; logistic regression is high-precision /
low-recall; NB and the shallow NN trail; and 30-tree ensembles buy only
~1 % accuracy over a single tree at ~30× the cost (§3.1.1).
"""

import time

import numpy as np
from common import emit

from repro.core.criteria import solve_criteria
from repro.core.features import PAPER_FEATURE_NAMES, extract_features
from repro.core.labeling import one_time_labels, reaccess_distances
from repro.core.training import sample_per_minute
from repro.ml import (
    AdaBoostClassifier,
    DecisionTreeClassifier,
    GaussianNB,
    KNeighborsClassifier,
    LogisticRegression,
    MLPClassifier,
    RandomForestClassifier,
    StratifiedKFold,
    cross_validate_metrics,
)

PAPER_ROWS = {
    "Naive Bayes": (0.378, 0.993, 0.459, 0.689),
    "Decision Tree": (0.800, 0.765, 0.860, 0.899),
    "BP NN": (0.626, 0.158, 0.692, 0.722),
    "KNN": (0.687, 0.544, 0.768, 0.826),
    "AdaBoost": (0.807, 0.785, 0.868, 0.936),
    "Random Forest": (0.802, 0.779, 0.864, 0.932),
    "Logistic Regression": (0.893, 0.174, 0.721, 0.835),
}


def _dataset(trace):
    distances = reaccess_distances(trace.object_ids)
    criteria = solve_criteria(
        distances,
        cache_bytes=trace.footprint_bytes // 100,
        mean_object_size=trace.mean_object_size(),
    )
    labels = one_time_labels(trace.object_ids, criteria.m_threshold)
    features = extract_features(trace).select(PAPER_FEATURE_NAMES)
    rng = np.random.default_rng(3)
    day1 = np.nonzero(trace.timestamps < 86400.0)[0]
    picked = day1[sample_per_minute(trace.timestamps[day1], 100, rng)]
    return features.X[picked], labels[picked]


def bench_table1(benchmark, capsys, trace):
    X, y = _dataset(trace)
    cv = StratifiedKFold(5, rng=0)
    candidates = {
        "Naive Bayes": lambda: GaussianNB(),
        "Decision Tree": lambda: DecisionTreeClassifier(max_splits=30, rng=0),
        "BP NN": lambda: MLPClassifier(16, epochs=30, rng=0),
        "KNN": lambda: KNeighborsClassifier(7),
        "AdaBoost": lambda: AdaBoostClassifier(10, rng=0),
        "Random Forest": lambda: RandomForestClassifier(10, max_splits=30, rng=0),
        "Logistic Regression": lambda: LogisticRegression(max_iter=800),
    }

    rows = {}
    times = {}
    for name, make in candidates.items():
        t0 = time.perf_counter()
        rows[name] = cross_validate_metrics(make(), X, y, cv=cv)
        times[name] = time.perf_counter() - t0

    # pytest-benchmark times the paper's chosen configuration: one
    # cross-validated decision tree (the deployed classifier).
    benchmark.pedantic(
        lambda: cross_validate_metrics(
            DecisionTreeClassifier(max_splits=30, rng=0), X, y, cv=cv
        ),
        rounds=2,
        iterations=1,
    )

    lines = [
        "Table 1 — classifier comparison (measured | paper)",
        f"dataset: {X.shape[0]:,} day-1 samples (100/min), "
        f"{100 * y.mean():.1f}% one-time",
        f"{'Algorithm':22s} {'Precision':>17s} {'Recall':>17s} "
        f"{'Accuracy':>17s} {'AUC':>17s} {'cv-time':>8s}",
    ]
    for name, m in rows.items():
        p, r, a, auc = PAPER_ROWS[name]
        lines.append(
            f"{name:22s} {m['precision']:7.3f} | {p:5.3f} "
            f"{m['recall']:7.3f} | {r:5.3f} "
            f"{m['accuracy']:7.3f} | {a:5.3f} "
            f"{m['auc']:7.3f} | {auc:5.3f} {times[name]:7.1f}s"
        )

    # §3.1.1: ensemble vs single tree, accuracy per compute.
    tree_acc = rows["Decision Tree"]["accuracy"]
    rf30 = cross_validate_metrics(
        RandomForestClassifier(30, max_splits=30, rng=0), X, y, cv=cv
    )
    lines.append(
        f"\n§3.1.1: RandomForest(30) accuracy {rf30['accuracy']:.3f} vs single "
        f"tree {tree_acc:.3f} (Δ={rf30['accuracy'] - tree_acc:+.3f}) — the "
        "paper reports ≈+1% for ≈30× compute, hence deploys a single tree"
    )

    # Post-2018 baseline: gradient boosting (the LRB-era model family).
    from repro.ml import GradientBoostingClassifier

    gbm = cross_validate_metrics(
        GradientBoostingClassifier(60, max_depth=3, rng=0), X, y, cv=cv
    )
    lines.append(
        f"modern baseline — GBDT(60): precision={gbm['precision']:.3f} "
        f"recall={gbm['recall']:.3f} accuracy={gbm['accuracy']:.3f} "
        f"auc={gbm['auc']:.3f} (no paper counterpart)"
    )
    emit(capsys, "table1_classifiers", "\n".join(lines))

    # Geometry assertions (who-wins, not absolute values).
    tree = rows["Decision Tree"]
    assert tree["auc"] >= max(rows["Naive Bayes"]["auc"], rows["BP NN"]["auc"])
    assert rows["Logistic Regression"]["precision"] >= tree["precision"] - 0.05
    assert rows["Logistic Regression"]["recall"] < tree["recall"]
    assert abs(rf30["accuracy"] - tree_acc) < 0.05
    assert gbm["auc"] >= tree["auc"] - 0.01  # the modern family leads
