"""Serving-layer throughput: loadgen vs. cache node over localhost TCP.

Measures the asyncio node end to end — framing, sequencing, micro-batched
inference, cache access — under open-loop load, with and without the
classifier, reporting achieved requests/s and latency percentiles.  The
classifier's serving overhead is the Eq.-6 question asked of the *whole
service* rather than the bare decision path (``bench_tclassify``).

Scale: ``REPRO_BENCH_SERVER_REQUESTS`` trace requests (default 30 000),
offered at ``REPRO_BENCH_SERVER_RATE`` req/s (default 50 000 — beyond
capacity, so the achieved rate *is* the node's throughput).
"""

import asyncio
import os

from common import emit

from repro.server.loadgen import LoadgenConfig, run_loadgen
from repro.server.node import CacheNode, CacheNodeServer, NodeConfig

REQUESTS = int(os.environ.get("REPRO_BENCH_SERVER_REQUESTS", "30000"))
RATE = float(os.environ.get("REPRO_BENCH_SERVER_RATE", "50000"))
CONNECTIONS = 8


async def _serve_and_replay(trace, classifier: bool):
    node = CacheNode(
        trace, NodeConfig(capacity_fraction=0.02, classifier=classifier)
    )
    server = CacheNodeServer(node, port=0, queue_depth=4096)
    await server.start()
    try:
        result = await run_loadgen(
            trace,
            LoadgenConfig(
                port=server.port,
                rate=RATE,
                connections=CONNECTIONS,
                limit=REQUESTS,
            ),
        )
    finally:
        await server.shutdown()
    return node, result


def _row(label, result):
    lat = result.latency
    s = result.server_stats
    return (
        f"{label:14s} {result.achieved_rate:10,.0f} "
        f"{1e3 * lat['p50']:8.2f} {1e3 * lat['p99']:8.2f} "
        f"{s['hit_rate']:8.3f} {s['files_written']:10,d} "
        f"{result.errors:7d}"
    )


def bench_server_throughput(benchmark, trace, capsys):
    def run():
        baseline = asyncio.run(_serve_and_replay(trace, classifier=False))
        classified = asyncio.run(_serve_and_replay(trace, classifier=True))
        return baseline, classified

    (_, bres), (_, cres) = benchmark.pedantic(run, rounds=1, iterations=1)

    assert bres.errors == 0 and cres.errors == 0
    n_replayed = min(REQUESTS, trace.n_accesses)
    header = (
        f"{'config':14s} {'req/s':>10s} {'p50 ms':>8s} {'p99 ms':>8s} "
        f"{'hit':>8s} {'writes':>10s} {'errors':>7s}"
    )
    overhead = (
        1.0 - cres.achieved_rate / bres.achieved_rate
        if bres.achieved_rate
        else 0.0
    )
    write_cut = (
        1.0 - cres.server_stats["files_written"] / bres.server_stats["files_written"]
        if bres.server_stats["files_written"]
        else 0.0
    )
    t = cres.server_stats["t_classify"]
    lines = [
        "serving throughput — open-loop trace replay over localhost TCP",
        f"requests={n_replayed:,} offered={RATE:,.0f}/s "
        f"connections={CONNECTIONS}",
        header,
        _row("always-admit", bres),
        _row("classified", cres),
        f"classifier throughput overhead : {100 * overhead:+.1f}%",
        f"SSD write reduction            : {100 * write_cut:.1f}%",
        f"amortised t_classify           : {1e6 * t['mean']:.2f} µs mean, "
        f"{1e6 * t['p99']:.2f} µs p99 (micro-batched)",
    ]
    emit(capsys, "server_throughput", "\n".join(lines))
