"""Serving-layer throughput: loadgen vs. cache node over localhost TCP.

Dual-mode module, like ``bench_hotpath.py``/``bench_cluster_scenario.py``:

* **Script / CI**: ``python benchmarks/bench_server_throughput.py
  [--quick]`` replays the same open-loop workload through every serving
  mode — JSON vs binary (v2) framing crossed with per-row vs columnar
  feature extraction, plus a uvloop variant of the headline mode when the
  wheel is importable — prints the matrix and writes
  ``BENCH_server_throughput.json`` (``"kind": "server_throughput"``) for
  the CI trend gate.  The run fails unless every mode finishes with zero
  errors and **bit-identical server state**: the same stats counters, the
  same write-ledger totals, and the same per-request denied mask, replay
  for replay.  ``--min-speedup`` additionally gates the headline
  binary+columnar mode against the ``json-row`` baseline (the PR-7
  serving path).
* **pytest-benchmark suite**: collected like the other ``bench_*``
  modules; runs the quick matrix on the session trace and persists the
  table under ``results/``.

Scale: ``REPRO_BENCH_SERVER_REQUESTS`` trace requests per mode (default
30 000 full / 6 000 quick), offered at ``REPRO_BENCH_SERVER_RATE`` req/s
(default 1 000 000 — far beyond capacity, so the achieved rate *is* the
node's throughput).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import sys
from pathlib import Path

import numpy as np

_REPO_ROOT = Path(__file__).resolve().parent.parent

try:
    from repro.server.loadgen import LoadgenConfig, run_loadgen
    from repro.server.loop import (
        install_uvloop,
        loop_label,
        reset_loop_policy,
        uvloop_available,
    )
    from repro.server.node import CacheNode, CacheNodeServer, NodeConfig
    from repro.trace.generator import WorkloadConfig, generate_trace
except ImportError:  # script run without PYTHONPATH=src
    sys.path.insert(0, str(_REPO_ROOT / "src"))
    from repro.server.loadgen import LoadgenConfig, run_loadgen
    from repro.server.loop import (
        install_uvloop,
        loop_label,
        reset_loop_policy,
        uvloop_available,
    )
    from repro.server.node import CacheNode, CacheNodeServer, NodeConfig
    from repro.trace.generator import WorkloadConfig, generate_trace

KIND = "server_throughput"
DEFAULT_OUTPUT = _REPO_ROOT / "BENCH_server_throughput.json"

FULL_REQUESTS = int(os.environ.get("REPRO_BENCH_SERVER_REQUESTS", "30000"))
QUICK_REQUESTS = 6_000
RATE = float(os.environ.get("REPRO_BENCH_SERVER_RATE", "1000000"))
CONNECTIONS = 8
#: Replays per mode in full mode — the matrix reports each mode's best
#: rate (parity is asserted on *every* replay), which is the standard
#: noise shield for throughput numbers on shared machines.
FULL_REPEATS = int(os.environ.get("REPRO_BENCH_SERVER_REPEATS", "3"))

#: The serving matrix: wire protocol × feature-extraction batching.
#: ``json-row`` is the PR-7 serving path and the speedup denominator;
#: ``binary-columnar`` is the headline fast path.
MODES = (
    ("json-row", "json", False),
    ("json-columnar", "json", True),
    ("binary-row", "binary", False),
    ("binary-columnar", "binary", True),
)
BASELINE_MODE = "json-row"
HEADLINE_MODE = "binary-columnar"

#: Stats keys that must match bit-for-bit across every mode — the server's
#: entire admission outcome, excluding only wall-clock timings.
PARITY_STATS = (
    "requests",
    "hits",
    "hit_rate",
    "byte_hit_rate",
    "files_written",
    "bytes_written",
    "evictions",
    "admissions_denied",
    "rectified_admits",
)

#: The generator yields ≈3.95 accesses/object; size the synthetic trace so
#: it comfortably covers the requested replay length.
_ACCESSES_PER_OBJECT = 3.5


async def _serve_and_replay(trace, *, protocol, columnar, requests, rate):
    node = CacheNode(
        trace,
        NodeConfig(capacity_fraction=0.02, classifier=True, columnar=columnar),
    )
    server = CacheNodeServer(node, port=0, queue_depth=4096)
    await server.start()
    try:
        result = await run_loadgen(
            trace,
            LoadgenConfig(
                port=server.port,
                rate=rate,
                connections=CONNECTIONS,
                limit=requests,
                protocol=protocol,
            ),
        )
    finally:
        await server.shutdown()
    return result, node.denied_mask.copy()


def _run_mode(trace, *, protocol, columnar, requests, rate, uvloop=False):
    """One replay; returns ``(result, parity_fingerprint)``."""
    installed = install_uvloop(uvloop)
    try:
        result, denied = asyncio.run(
            _serve_and_replay(
                trace,
                protocol=protocol,
                columnar=columnar,
                requests=requests,
                rate=rate,
            )
        )
    finally:
        if installed:
            reset_loop_policy()
    stats = result.server_stats or {}
    fingerprint = {
        "stats": {k: stats.get(k) for k in PARITY_STATS},
        "ledger": stats.get("ledger"),
        "denied": denied,
    }
    return result, installed, fingerprint


def _fingerprints_equal(a: dict, b: dict) -> bool:
    return (
        a["stats"] == b["stats"]
        and a["ledger"] == b["ledger"]
        and np.array_equal(a["denied"], b["denied"])
    )


def run_throughput_bench(
    *,
    quick: bool = False,
    trace=None,
    requests: int | None = None,
    rate: float | None = None,
    seed: int = 0,
    uvloop_modes: bool | None = None,
    repeats: int | None = None,
) -> dict:
    """Replay the mode matrix and return the trend-gate report dict.

    Every mode replays the *same* trace prefix against a fresh node; the
    report carries per-mode achieved req/s plus a parity verdict proving
    the fast paths changed nothing but speed.  ``uvloop_modes`` defaults
    to auto-detection (the wheel is optional); when active the headline
    mode is rerun under uvloop's loop as an extra row.  Each mode replays
    ``repeats`` times (3 full / 1 quick by default) and reports its best
    rate; parity is asserted on every replay, so the noise shield cannot
    hide a correctness break.
    """
    if requests is None:
        requests = QUICK_REQUESTS if quick else FULL_REQUESTS
    if rate is None:
        rate = RATE
    if repeats is None:
        repeats = 1 if quick else FULL_REPEATS
    if trace is None:
        objects = max(2_000, int(requests / _ACCESSES_PER_OBJECT))
        trace = generate_trace(WorkloadConfig(n_objects=objects, seed=seed))
    requests = min(requests, trace.n_accesses)
    if uvloop_modes is None:
        uvloop_modes = uvloop_available()

    runs = [(label, proto, col, False) for label, proto, col in MODES]
    if uvloop_modes:
        runs.append((f"{HEADLINE_MODE}-uvloop", "binary", True, True))

    modes: dict = {}
    fingerprints: dict = {}
    diverged: set = set()
    best: dict = {}
    # Rounds are interleaved (every mode once per round, repeated) rather
    # than back-to-back per mode, so a slow phase on a shared host hits
    # all modes symmetrically instead of biasing whichever mode it lands
    # on — best-of-rounds then compares like against like.
    for _ in range(max(1, repeats)):
        for label, proto, col, uv in runs:
            result, installed, fp = _run_mode(
                trace,
                protocol=proto,
                columnar=col,
                requests=requests,
                rate=rate,
                uvloop=uv,
            )
            prior = fingerprints.setdefault(label, fp)
            if prior is not fp and not _fingerprints_equal(prior, fp):
                diverged.add(label)  # replay nondeterminism inside one mode
            held = best.get(label)
            if held is None or result.achieved_rate > held[0].achieved_rate:
                best[label] = (result, installed)
    for label, proto, col, uv in runs:
        result, installed = best[label]
        lat = result.latency
        modes[label] = {
            "protocol": proto,
            "columnar": col,
            "loop": loop_label(installed),
            "requests_per_second": result.achieved_rate,
            "p50_ms": 1e3 * lat["p50"],
            "p99_ms": 1e3 * lat["p99"],
            "completed": result.completed,
            "errors": result.errors,
            "hit_rate": result.hit_rate,
        }

    ref = fingerprints[BASELINE_MODE]
    mismatched = sorted(
        diverged
        | {
            label
            for label, fp in fingerprints.items()
            if not _fingerprints_equal(ref, fp)
        }
    )
    base_rate = modes[BASELINE_MODE]["requests_per_second"]
    head_rate = modes[HEADLINE_MODE]["requests_per_second"]
    return {
        "kind": KIND,
        "quick": quick,
        "requests": requests,
        "rate_offered": rate,
        "connections": CONNECTIONS,
        "repeats": max(1, repeats),
        "trace": {"objects": trace.n_objects, "seed": seed},
        "modes": modes,
        "parity": {
            "identical": not mismatched,
            "mismatched_modes": mismatched,
            "stats": ref["stats"],
            "ledger": ref["ledger"],
            "denied": int(np.count_nonzero(ref["denied"])),
        },
        "speedup": head_rate / base_rate if base_rate else 0.0,
    }


class ThroughputError(AssertionError):
    """A serving-mode invariant (errors, parity, speed floor) failed."""


def check_report(report: dict, *, min_speedup: float = 0.0) -> None:
    """Raise :class:`ThroughputError` on errors, divergence, or a missed floor."""
    errored = {
        label: m["errors"] for label, m in report["modes"].items() if m["errors"]
    }
    if errored:
        raise ThroughputError(f"modes finished with errors: {errored}")
    if not report["parity"]["identical"]:
        raise ThroughputError(
            "server state diverged across serving modes: "
            f"{report['parity']['mismatched_modes']} != {BASELINE_MODE}"
        )
    if min_speedup > 0 and report["speedup"] < min_speedup:
        raise ThroughputError(
            f"{HEADLINE_MODE} is {report['speedup']:.2f}× {BASELINE_MODE}, "
            f"below the {min_speedup:.1f}× floor"
        )


def format_report(report: dict) -> str:
    lines = [
        "serving throughput — open-loop trace replay over localhost TCP "
        f"({'quick' if report['quick'] else 'full'} mode)",
        f"requests={report['requests']:,} "
        f"offered={report['rate_offered']:,.0f}/s "
        f"connections={report['connections']}",
        f"{'mode':24s} {'loop':>8s} {'req/s':>10s} "
        f"{'p50 ms':>8s} {'p99 ms':>8s} {'errors':>7s}",
    ]
    for label, m in report["modes"].items():
        lines.append(
            f"{label:24s} {m['loop']:>8s} {m['requests_per_second']:10,.0f} "
            f"{m['p50_ms']:8.2f} {m['p99_ms']:8.2f} {m['errors']:7d}"
        )
    parity = report["parity"]
    stats = parity["stats"]
    lines += [
        f"{HEADLINE_MODE} vs {BASELINE_MODE}: {report['speedup']:.2f}×",
        "server-state parity across modes: "
        + ("IDENTICAL" if parity["identical"] else "DIVERGED"),
        f"  hits={stats['hits']:,} writes={stats['files_written']:,} "
        f"bytes={stats['bytes_written']:,} denied={parity['denied']:,} "
        f"ledger_writes={parity['ledger']['total_writes']:,}",
    ]
    return "\n".join(lines)


def bench_server_throughput(benchmark, trace, capsys):
    """pytest-benchmark entry: quick matrix on the session trace."""
    from common import emit

    report = benchmark.pedantic(
        lambda: run_throughput_bench(quick=True, trace=trace),
        rounds=1,
        iterations=1,
    )
    check_report(report)
    emit(capsys, "server_throughput", format_report(report))


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(
        description="Replay the serving-mode matrix and write "
        "BENCH_server_throughput.json."
    )
    ap.add_argument("--quick", action="store_true",
                    help="small replay (CI smoke mode)")
    ap.add_argument("--requests", type=int, default=None,
                    help="requests per mode (default: 30k full, 6k quick)")
    ap.add_argument("--rate", type=float, default=None,
                    help=f"offered req/s (default: {RATE:,.0f})")
    ap.add_argument("--seed", type=int, default=0)
    ap.add_argument("--min-speedup", type=float, default=None,
                    help="floor for binary-columnar vs json-row "
                         "(default: 3.0 full, 0 quick)")
    ap.add_argument("--no-uvloop", action="store_true",
                    help="skip the uvloop variant even when importable")
    ap.add_argument("--repeats", type=int, default=None,
                    help="replays per mode, best rate wins "
                         f"(default: {FULL_REPEATS} full, 1 quick)")
    ap.add_argument("--output", default=str(DEFAULT_OUTPUT),
                    help="where to write BENCH_server_throughput.json")
    args = ap.parse_args(argv)

    min_speedup = args.min_speedup
    if min_speedup is None:
        min_speedup = 0.0 if args.quick else 3.0

    report = run_throughput_bench(
        quick=args.quick,
        requests=args.requests,
        rate=args.rate,
        seed=args.seed,
        uvloop_modes=False if args.no_uvloop else None,
        repeats=args.repeats,
    )
    with open(args.output, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
    print(format_report(report))
    print(f"[saved to {args.output}]")
    try:
        check_report(report, min_speedup=min_speedup)
    except ThroughputError as exc:
        print(f"FAILED: {exc}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
