"""§4.4.1 ablation: the cost-matrix penalty v.

The paper selects v = 2 for 2–12 GB caches and v = 3 for 12–20 GB after a
sensitivity study.  This bench regenerates that study: precision rises and
recall falls monotonically with v; cache hit rate peaks at a moderate v.
"""

import numpy as np
from common import emit

from repro.cache import make_policy, simulate
from repro.core.admission import ClassifierAdmission
from repro.core.training import train_daily_classifier


def bench_cost_matrix(benchmark, capsys, trace, grid):
    frac = grid.fractions[2]
    cap = grid.capacity_bytes(frac)
    block = grid.block(frac)
    criteria, labels = block.criteria, block.labels

    def run_v(v):
        training = train_daily_classifier(
            trace, grid._features, labels, cost_v=v, rng=0
        )
        adm = ClassifierAdmission.from_criteria(training.predictions, criteria)
        sim = simulate(trace, make_policy("lru", cap), admission=adm)
        return training.overall, sim

    vs = (1.0, 2.0, 3.0, 5.0, 8.0)
    rows = {v: run_v(v) for v in vs}

    benchmark.pedantic(lambda: run_v(2.0), rounds=1, iterations=1)

    lines = [
        f"§4.4.1 ablation — cost penalty v (LRU, ≈{grid.paper_gb(frac):.0f} paper-GB)",
        f"{'v':>4s} {'precision':>10s} {'recall':>8s} {'hit rate':>9s} "
        f"{'writes':>9s}",
    ]
    for v in vs:
        o, sim = rows[v]
        lines.append(
            f"{v:4.0f} {o['precision']:10.3f} {o['recall']:8.3f} "
            f"{sim.hit_rate:9.3f} {sim.stats.files_written:9,d}"
        )
    lines.append("paper: v=2 below 12 GB, v=3 above (penalise false positives)")
    emit(capsys, "ablation_cost_matrix", "\n".join(lines))

    precisions = [rows[v][0]["precision"] for v in vs]
    recalls = [rows[v][0]["recall"] for v in vs]
    # v sweeps precision up and recall down (allowing minor non-monotone noise).
    assert precisions[-1] > precisions[0]
    assert recalls[-1] < recalls[0]
    # The deployed v must not be dominated at the hit-rate level.
    hits = np.array([rows[v][1].hit_rate for v in vs])
    assert hits[1] >= hits.max() - 0.02  # v=2 near-optimal at this capacity
