"""§5.2's claim, quantified: how accurate must the classifier be?

The paper observes that advanced replacement policies (LIRS, ARC) "have
their own strategies in reducing the adverse impact of one-time-access
files, thus higher classification accuracy is required for further
improvement".  This bench sweeps a noise-corrupted oracle from perfect to
badly wrong and locates, per policy, the accuracy below which the
admission filter stops paying off.
"""

from common import emit

from repro.cache import make_policy, simulate
from repro.core.admission import NoisyOracleAdmission

POLICIES = ("lru", "fifo", "arc", "lirs")
ERROR_RATES = (0.0, 0.1, 0.2, 0.3, 0.45)


def bench_accuracy_sensitivity(benchmark, capsys, trace, grid):
    frac = grid.fractions[2]
    cap = grid.capacity_bytes(frac)
    block = grid.block(frac)
    labels = block.labels

    def run(policy, err):
        adm = NoisyOracleAdmission(labels, fn_rate=err, fp_rate=err, rng=0)
        sim = simulate(
            trace, make_policy(policy, cap, trace), admission=adm,
            policy_name=policy,
        )
        return sim, adm.effective_accuracy

    results = {
        policy: [run(policy, err) for err in ERROR_RATES]
        for policy in POLICIES
    }
    benchmark.pedantic(lambda: run("lru", 0.2), rounds=1, iterations=1)

    lines = [
        "§5.2 quantified — hit-rate gain vs classifier error rate "
        f"(≈{grid.paper_gb(frac):.0f} paper-GB; symmetric fn/fp noise)",
        "error rate:        " + "".join(f"{e:8.2f}" for e in ERROR_RATES),
        "oracle accuracy:   "
        + "".join(f"{results['lru'][i][1]:8.3f}" for i in range(len(ERROR_RATES))),
    ]
    breakeven = {}
    for policy in POLICIES:
        original = block.originals.get(policy)
        if original is None:
            original = simulate(
                trace, make_policy(policy, cap, trace), policy_name=policy
            )
        gains = [
            results[policy][i][0].hit_rate - original.hit_rate
            for i in range(len(ERROR_RATES))
        ]
        lines.append(
            f"{policy:>6s} gain (pp):  "
            + "".join(f"{100 * g:+8.1f}" for g in gains)
        )
        # First error rate at which the filter no longer helps.
        idx = next(
            (i for i, g in enumerate(gains) if g < 0), len(ERROR_RATES)
        )
        breakeven[policy] = (
            "never harmful" if idx == len(ERROR_RATES)
            else f"err ≥ {ERROR_RATES[idx]:.2f}"
        )
    lines.append(
        "break-even: "
        + "  ".join(f"{p}: {b}" for p, b in breakeven.items())
    )
    lines.append(
        "\nreading: simple policies tolerate a sloppier classifier; "
        "ARC/LIRS flip negative at lower error rates — the paper's §5.2 "
        "observation, quantified"
    )
    emit(capsys, "accuracy_sensitivity", "\n".join(lines))

    # Perfect oracle helps every policy.
    for policy in POLICIES:
        assert results[policy][0][0].hit_rate > (
            block.originals[policy].hit_rate
            if policy in block.originals
            else 0
        ) - 1e-9
    # Gains shrink monotonically-ish with error.
    lru_gains = [
        results["lru"][i][0].hit_rate for i in range(len(ERROR_RATES))
    ]
    assert lru_gains[0] > lru_gains[-1]
    # LRU tolerates at least as much error as ARC before flipping negative.
    def flip_index(policy):
        orig = block.originals[policy].hit_rate
        for i in range(len(ERROR_RATES)):
            if results[policy][i][0].hit_rate < orig:
                return i
        return len(ERROR_RATES)

    assert flip_index("lru") >= flip_index("arc")