"""Bench-trend gate: diff two ``BENCH_hotpath.json`` reports in CI.

The perf-smoke job uploads its report as an artifact on every run; on the
next run it downloads the previous report and calls this script to diff
ns/op per component.  A component that got more than ``--threshold``
(default 20 %) slower fails the job, which is what makes a perf
regression *visible at the PR that introduced it* instead of months later
in a profile.

Robustness rules, in order:

* **No baseline** (first run on a branch, expired artifact, download
  failure): print a notice and exit 0 — the gate cannot diff against
  nothing, and failing would block every fresh branch.
* **Disjoint components** (a group was added/removed or the selection
  changed): only the intersection is compared; additions and removals are
  listed but never fail the gate.
* **Quick-vs-full mismatch**: mode is reported in the table header; the
  numbers are still compared because CI always runs the same mode.

Exit status: 0 = no regression beyond threshold, 1 = regression,
2 = bad invocation (unreadable *current* report).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

__all__ = ["compare_reports", "format_markdown", "main"]

DEFAULT_THRESHOLD = 0.20


def compare_reports(
    baseline: dict, current: dict, *, threshold: float = DEFAULT_THRESHOLD
) -> dict:
    """Diff per-component ``ns_per_op`` between two bench reports.

    Returns ``{rows, added, removed, regressions, threshold, modes}``
    where each row is ``{component, baseline_ns, current_ns, delta}``
    (``delta`` is fractional change: +0.25 = 25 % slower) and
    ``regressions`` lists the components whose delta exceeds
    ``threshold``.
    """
    base_components = baseline.get("components", {})
    cur_components = current.get("components", {})
    shared = sorted(set(base_components) & set(cur_components))
    rows = []
    regressions = []
    for name in shared:
        b = base_components[name]["ns_per_op"]
        c = cur_components[name]["ns_per_op"]
        delta = (c - b) / b if b > 0 else 0.0
        rows.append(
            {
                "component": name,
                "baseline_ns": b,
                "current_ns": c,
                "delta": delta,
            }
        )
        if delta > threshold:
            regressions.append(name)
    return {
        "rows": rows,
        "added": sorted(set(cur_components) - set(base_components)),
        "removed": sorted(set(base_components) - set(cur_components)),
        "regressions": regressions,
        "threshold": threshold,
        "modes": {
            "baseline": "quick" if baseline.get("quick") else "full",
            "current": "quick" if current.get("quick") else "full",
        },
    }


def _fmt_delta(delta: float) -> str:
    return f"{100 * delta:+.1f}%"


def format_markdown(result: dict) -> str:
    """GitHub-flavoured markdown delta table for ``$GITHUB_STEP_SUMMARY``."""
    modes = result["modes"]
    lines = [
        "## Hot-path bench trend",
        "",
        f"Threshold: **{100 * result['threshold']:.0f}%** slower fails "
        f"(baseline: {modes['baseline']} mode, current: {modes['current']} "
        "mode).",
        "",
        "| component | baseline ns/op | current ns/op | delta | status |",
        "|---|---:|---:|---:|---|",
    ]
    for row in result["rows"]:
        if row["delta"] > result["threshold"]:
            status = "REGRESSION"
        elif row["delta"] < -result["threshold"]:
            status = "improved"
        else:
            status = "ok"
        lines.append(
            f"| `{row['component']}` | {row['baseline_ns']:,.0f} "
            f"| {row['current_ns']:,.0f} | {_fmt_delta(row['delta'])} "
            f"| {status} |"
        )
    if not result["rows"]:
        lines.append("| _no shared components_ | | | | |")
    if result["added"]:
        lines += ["", "New components (no baseline): "
                  + ", ".join(f"`{c}`" for c in result["added"])]
    if result["removed"]:
        lines += ["", "Dropped components: "
                  + ", ".join(f"`{c}`" for c in result["removed"])]
    if result["regressions"]:
        lines += ["", "**FAILED** — regressed beyond threshold: "
                  + ", ".join(f"`{c}`" for c in result["regressions"])]
    else:
        lines += ["", "No component regressed beyond the threshold."]
    return "\n".join(lines)


def _load(path: str) -> dict | None:
    p = Path(path)
    if not p.is_file():
        return None
    try:
        return json.loads(p.read_text())
    except (json.JSONDecodeError, OSError):
        return None


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(
        description="Diff two BENCH_hotpath.json reports and fail on "
        "per-component ns/op regressions."
    )
    ap.add_argument("--baseline", required=True,
                    help="previous run's BENCH_hotpath.json (may be missing)")
    ap.add_argument("--current", required=True,
                    help="this run's BENCH_hotpath.json")
    ap.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD,
                    help="fractional slowdown that fails (default: 0.20)")
    ap.add_argument("--summary", default=None,
                    help="append the markdown table to this file (e.g. "
                         "$GITHUB_STEP_SUMMARY); defaults to the "
                         "GITHUB_STEP_SUMMARY env var when set")
    args = ap.parse_args(argv)

    current = _load(args.current)
    if current is None:
        print(f"cannot read current report {args.current!r}", file=sys.stderr)
        return 2

    baseline = _load(args.baseline)
    summary_path = args.summary or os.environ.get("GITHUB_STEP_SUMMARY")
    if baseline is None:
        msg = (f"no baseline report at {args.baseline!r} — first run on this "
               "branch or expired artifact; trend gate skipped")
        print(msg)
        if summary_path:
            with open(summary_path, "a") as fh:
                fh.write(f"## Hot-path bench trend\n\n{msg}\n")
        return 0

    result = compare_reports(baseline, current, threshold=args.threshold)
    table = format_markdown(result)
    print(table)
    if summary_path:
        with open(summary_path, "a") as fh:
            fh.write(table + "\n")
    return 1 if result["regressions"] else 0


if __name__ == "__main__":
    sys.exit(main())
