"""Bench-trend gate: diff two benchmark JSON reports in CI.

The perf-smoke, scenario-smoke and server-throughput-smoke jobs upload
their reports as artifacts on every run; on the next run they download
the previous report and call this script to diff it against the fresh
one.  Three report kinds are understood, dispatched on the reports'
``"kind"`` field:

* **hot-path reports** (``BENCH_hotpath.json``, no kind tag): ns/op per
  component.  A component more than ``--threshold`` (default 20 %)
  slower fails the job, which is what makes a perf regression *visible
  at the PR that introduced it* instead of months later in a profile.
* **cluster-scenario reports** (``BENCH_cluster_scenario.json``,
  ``"kind": "cluster_scenario"``): per-phase oracle gaps — the
  hit/write-rate distance between the faulted cluster and an idealised
  single cache.  A phase whose absolute gap grew more than
  ``--threshold`` beyond a small absolute slack fails: the commit made
  failover behaviour worse, not the workload.
* **server-throughput reports** (``BENCH_server_throughput.json``,
  ``"kind": "server_throughput"``): achieved req/s per serving mode
  (protocol × batching × loop).  A mode more than ``--threshold``
  *slower* than its baseline fails; faster is always fine.
* **learned-eviction reports** (``BENCH_learned_eviction.json``,
  ``"kind": "learned_eviction"``): Belady-gap closure per capacity
  point.  Replays are seeded and deterministic, so any drop is a real
  behaviour change; a point whose closure fell more than ``--threshold``
  of the baseline closure plus a small absolute slack fails.  Decision
  cost is reported but never gated here — wall-clock on shared runners
  is noise; the bench's own hardware-normalised budget gates it.
* **staging reports** (``BENCH_staging.json``, ``"kind": "staging"``):
  per-capacity-point, per-scheme hit rate and SSD write count for the
  admission head-to-head (no-admission / classifier / flashiness /
  composed).  Deterministic like the eviction bench; a scheme whose hit
  rate fell or whose write count grew beyond the threshold plus a small
  absolute slack fails.  Write amplification and lifetime ride along in
  the step summary but never gate (they follow from the write counts).

Robustness rules, in order:

* **No baseline** (first run on a branch, expired artifact, download
  failure): print a notice and exit 0 — the gate cannot diff against
  nothing, and failing would block every fresh branch.
* **Disjoint components** (a group was added/removed or the selection
  changed): only the intersection is compared; additions and removals are
  listed but never fail the gate.
* **Quick-vs-full mismatch**: mode is reported in the table header; the
  numbers are still compared because CI always runs the same mode.

Exit status: 0 = no regression beyond threshold, 1 = regression,
2 = bad invocation (unreadable *current* report).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

__all__ = [
    "compare_eviction_reports",
    "compare_reports",
    "compare_scenario_reports",
    "compare_server_reports",
    "compare_staging_reports",
    "format_eviction_markdown",
    "format_markdown",
    "format_scenario_markdown",
    "format_server_markdown",
    "format_staging_markdown",
    "main",
]

DEFAULT_THRESHOLD = 0.20

SCENARIO_KIND = "cluster_scenario"
SERVER_KIND = "server_throughput"
EVICTION_KIND = "learned_eviction"
#: Absolute slack added on top of the relative threshold when gating
#: oracle gaps: a gap moving 0.001 → 0.002 is +100 % relative but pure
#: noise — only growth beyond ``base*(1+threshold) + slack`` fails.
SCENARIO_SLACK = 0.005
#: Absolute closure slack for the learned-eviction gate: quick-mode
#: closures sit near zero (the tiny trace under-trains the head), where
#: a purely relative threshold would flag meaningless wiggles.
EVICTION_SLACK = 0.02
STAGING_KIND = "staging"
#: Absolute hit-rate slack for the staging gate (same rationale as the
#: eviction slack: small quick-mode rates where relative-only gating
#: would flag noise-scale wiggles on intentional workload tweaks).
STAGING_HIT_SLACK = 0.02
#: Absolute write-count slack: a handful of writes moving on a tiny
#: quick-mode trace is a workload detail, not an admission regression.
STAGING_WRITE_SLACK = 16


def compare_reports(
    baseline: dict, current: dict, *, threshold: float = DEFAULT_THRESHOLD
) -> dict:
    """Diff per-component ``ns_per_op`` between two bench reports.

    Returns ``{rows, added, removed, regressions, threshold, modes}``
    where each row is ``{component, baseline_ns, current_ns, delta}``
    (``delta`` is fractional change: +0.25 = 25 % slower) and
    ``regressions`` lists the components whose delta exceeds
    ``threshold``.
    """
    base_components = baseline.get("components", {})
    cur_components = current.get("components", {})
    shared = sorted(set(base_components) & set(cur_components))
    rows = []
    regressions = []
    for name in shared:
        b = base_components[name]["ns_per_op"]
        c = cur_components[name]["ns_per_op"]
        delta = (c - b) / b if b > 0 else 0.0
        rows.append(
            {
                "component": name,
                "baseline_ns": b,
                "current_ns": c,
                "delta": delta,
            }
        )
        if delta > threshold:
            regressions.append(name)
    return {
        "rows": rows,
        "added": sorted(set(cur_components) - set(base_components)),
        "removed": sorted(set(base_components) - set(cur_components)),
        "regressions": regressions,
        "threshold": threshold,
        "modes": {
            "baseline": "quick" if baseline.get("quick") else "full",
            "current": "quick" if current.get("quick") else "full",
        },
    }


def _fmt_delta(delta: float) -> str:
    return f"{100 * delta:+.1f}%"


def format_markdown(result: dict) -> str:
    """GitHub-flavoured markdown delta table for ``$GITHUB_STEP_SUMMARY``."""
    modes = result["modes"]
    lines = [
        "## Hot-path bench trend",
        "",
        f"Threshold: **{100 * result['threshold']:.0f}%** slower fails "
        f"(baseline: {modes['baseline']} mode, current: {modes['current']} "
        "mode).",
        "",
        "| component | baseline ns/op | current ns/op | delta | status |",
        "|---|---:|---:|---:|---|",
    ]
    for row in result["rows"]:
        if row["delta"] > result["threshold"]:
            status = "REGRESSION"
        elif row["delta"] < -result["threshold"]:
            status = "improved"
        else:
            status = "ok"
        lines.append(
            f"| `{row['component']}` | {row['baseline_ns']:,.0f} "
            f"| {row['current_ns']:,.0f} | {_fmt_delta(row['delta'])} "
            f"| {status} |"
        )
    if not result["rows"]:
        lines.append("| _no shared components_ | | | | |")
    if result["added"]:
        lines += ["", "New components (no baseline): "
                  + ", ".join(f"`{c}`" for c in result["added"])]
    if result["removed"]:
        lines += ["", "Dropped components: "
                  + ", ".join(f"`{c}`" for c in result["removed"])]
    if result["regressions"]:
        lines += ["", "**FAILED** — regressed beyond threshold: "
                  + ", ".join(f"`{c}`" for c in result["regressions"])]
    else:
        lines += ["", "No component regressed beyond the threshold."]
    return "\n".join(lines)


def compare_scenario_reports(
    baseline: dict,
    current: dict,
    *,
    threshold: float = DEFAULT_THRESHOLD,
    slack: float = SCENARIO_SLACK,
) -> dict:
    """Diff per-phase oracle gaps between two cluster-scenario reports.

    Phases are matched by position (the reference scenario is stable, so
    position ≙ identity); a current run with more/fewer phases than the
    baseline compares the common prefix and reports the difference
    without failing.  For each phase and each of ``hit_gap``/``write_gap``
    the *absolute* gap is compared: regression when
    ``current > baseline * (1 + threshold) + slack``.
    """
    b_phases = baseline.get("phases", [])
    c_phases = current.get("phases", [])
    rows = []
    regressions = []
    for b, c in zip(b_phases, c_phases):
        for metric in ("hit_gap", "write_gap"):
            bv, cv = b.get(metric), c.get(metric)
            if bv is None or cv is None:
                continue
            b_abs, c_abs = abs(bv), abs(cv)
            regressed = c_abs > b_abs * (1 + threshold) + slack
            label = f"phase{b.get('index', '?')}:{metric}"
            rows.append(
                {
                    "phase": b.get("index"),
                    "metric": metric,
                    "active": ", ".join(c.get("active", [])) or "steady",
                    "baseline": b_abs,
                    "current": c_abs,
                    "regressed": regressed,
                }
            )
            if regressed:
                regressions.append(label)
    return {
        "rows": rows,
        "regressions": regressions,
        "threshold": threshold,
        "slack": slack,
        "phase_count_delta": len(c_phases) - len(b_phases),
        "baseline_equal": current.get("baseline_equal"),
    }


def format_scenario_markdown(result: dict) -> str:
    """GitHub-flavoured markdown for the scenario oracle-gap trend."""
    lines = [
        "## Cluster-scenario oracle-gap trend",
        "",
        f"Threshold: gap > baseline × **{1 + result['threshold']:.2f}** + "
        f"{result['slack']:.3f} absolute slack fails.",
        "",
        "| phase | metric | active | baseline | current | status |",
        "|---:|---|---|---:|---:|---|",
    ]
    for row in result["rows"]:
        status = "REGRESSION" if row["regressed"] else "ok"
        lines.append(
            f"| {row['phase']} | {row['metric']} | {row['active']} "
            f"| {row['baseline']:.4f} | {row['current']:.4f} | {status} |"
        )
    if not result["rows"]:
        lines.append("| _no comparable phases_ | | | | | |")
    if result["phase_count_delta"]:
        lines += ["", f"Phase count changed by {result['phase_count_delta']:+d} "
                  "(scenario shape changed; only the common prefix compared)."]
    if result.get("baseline_equal") is False:
        lines += ["", "**Note**: the current report's pristine phases did not "
                  "match its failure-free baseline (the benchmark itself "
                  "fails on this)."]
    if result["regressions"]:
        lines += ["", "**FAILED** — oracle gap regressed: "
                  + ", ".join(f"`{r}`" for r in result["regressions"])]
    else:
        lines += ["", "No phase's oracle gap regressed beyond the threshold."]
    return "\n".join(lines)


def compare_server_reports(
    baseline: dict, current: dict, *, threshold: float = DEFAULT_THRESHOLD
) -> dict:
    """Diff per-mode achieved req/s between two throughput reports.

    Modes are matched by label (``json-row``, ``binary-columnar``, …);
    labels present on only one side (a mode was added, or the uvloop
    wheel appeared/disappeared) are listed but never fail the gate.  A
    shared mode regresses when its rate *dropped* by more than
    ``threshold``: ``current < baseline * (1 - threshold)``.
    """
    base_modes = baseline.get("modes", {})
    cur_modes = current.get("modes", {})
    shared = sorted(set(base_modes) & set(cur_modes))
    rows = []
    regressions = []
    for label in shared:
        b = base_modes[label]["requests_per_second"]
        c = cur_modes[label]["requests_per_second"]
        delta = (c - b) / b if b > 0 else 0.0
        rows.append(
            {
                "mode": label,
                "baseline_rps": b,
                "current_rps": c,
                "delta": delta,
            }
        )
        if delta < -threshold:
            regressions.append(label)
    return {
        "rows": rows,
        "added": sorted(set(cur_modes) - set(base_modes)),
        "removed": sorted(set(base_modes) - set(cur_modes)),
        "regressions": regressions,
        "threshold": threshold,
        "speedup": {
            "baseline": baseline.get("speedup"),
            "current": current.get("speedup"),
        },
        "modes": {
            "baseline": "quick" if baseline.get("quick") else "full",
            "current": "quick" if current.get("quick") else "full",
        },
    }


def format_server_markdown(result: dict) -> str:
    """GitHub-flavoured markdown for the serving-throughput trend."""
    modes = result["modes"]
    lines = [
        "## Serving-throughput trend",
        "",
        f"Threshold: **{100 * result['threshold']:.0f}%** fewer req/s fails "
        f"(baseline: {modes['baseline']} mode, current: {modes['current']} "
        "mode).",
        "",
        "| mode | baseline req/s | current req/s | delta | status |",
        "|---|---:|---:|---:|---|",
    ]
    for row in result["rows"]:
        if row["delta"] < -result["threshold"]:
            status = "REGRESSION"
        elif row["delta"] > result["threshold"]:
            status = "improved"
        else:
            status = "ok"
        lines.append(
            f"| `{row['mode']}` | {row['baseline_rps']:,.0f} "
            f"| {row['current_rps']:,.0f} | {_fmt_delta(row['delta'])} "
            f"| {status} |"
        )
    if not result["rows"]:
        lines.append("| _no shared modes_ | | | | |")
    speed = result["speedup"]
    if speed["baseline"] is not None and speed["current"] is not None:
        lines += ["", f"binary-columnar vs json-row: "
                  f"{speed['baseline']:.2f}× → {speed['current']:.2f}×"]
    if result["added"]:
        lines += ["", "New modes (no baseline): "
                  + ", ".join(f"`{m}`" for m in result["added"])]
    if result["removed"]:
        lines += ["", "Dropped modes: "
                  + ", ".join(f"`{m}`" for m in result["removed"])]
    if result["regressions"]:
        lines += ["", "**FAILED** — throughput regressed beyond threshold: "
                  + ", ".join(f"`{m}`" for m in result["regressions"])]
    else:
        lines += ["", "No mode's throughput regressed beyond the threshold."]
    return "\n".join(lines)


def compare_eviction_reports(
    baseline: dict,
    current: dict,
    *,
    threshold: float = DEFAULT_THRESHOLD,
    slack: float = EVICTION_SLACK,
) -> dict:
    """Diff per-capacity-point Belady-gap closure between two reports.

    Points are matched by capacity fraction (the paper's grid is stable).
    A point regresses when its closure *fell* below
    ``baseline - max(threshold * |baseline|, slack)`` — relative for the
    meaningful full-mode closures, absolute slack for the near-zero
    quick-mode ones.  Decision cost rides along in the rows for the step
    summary but never regresses the gate (wall-clock on shared runners).
    """
    b_points = {round(p["fraction"], 6): p for p in baseline.get("points", [])}
    c_points = {round(p["fraction"], 6): p for p in current.get("points", [])}
    shared = sorted(set(b_points) & set(c_points))
    rows = []
    regressions = []
    for frac in shared:
        b, c = b_points[frac], c_points[frac]
        bv, cv = b["gap_closure"], c["gap_closure"]
        floor = bv - max(threshold * abs(bv), slack)
        regressed = cv < floor
        rows.append(
            {
                "fraction": frac,
                "baseline_closure": bv,
                "current_closure": cv,
                "baseline_ns": b.get("mean_decision_ns"),
                "current_ns": c.get("mean_decision_ns"),
                "regressed": regressed,
            }
        )
        if regressed:
            regressions.append(f"frac={frac:g}")
    return {
        "rows": rows,
        "added": sorted(set(c_points) - set(b_points)),
        "removed": sorted(set(b_points) - set(c_points)),
        "regressions": regressions,
        "threshold": threshold,
        "slack": slack,
        "mean_closure": {
            "baseline": baseline.get("mean_gap_closure"),
            "current": current.get("mean_gap_closure"),
        },
        "modes": {
            "baseline": "quick" if baseline.get("quick") else "full",
            "current": "quick" if current.get("quick") else "full",
        },
    }


def format_eviction_markdown(result: dict) -> str:
    """GitHub-flavoured markdown for the Belady-gap-closure trend."""
    modes = result["modes"]
    lines = [
        "## Learned-eviction closure trend",
        "",
        f"Threshold: closure below baseline − "
        f"max(**{100 * result['threshold']:.0f}%**, {result['slack']:.2f} "
        f"absolute) fails (baseline: {modes['baseline']} mode, current: "
        f"{modes['current']} mode).",
        "",
        "| capacity frac | baseline closure | current closure | "
        "decision ns | status |",
        "|---:|---:|---:|---:|---|",
    ]
    for row in result["rows"]:
        status = "REGRESSION" if row["regressed"] else "ok"
        ns = row["current_ns"]
        ns_cell = f"{ns:,.0f}" if ns is not None else "—"
        lines.append(
            f"| {row['fraction']:g} | {row['baseline_closure']:+.3f} "
            f"| {row['current_closure']:+.3f} | {ns_cell} | {status} |"
        )
    if not result["rows"]:
        lines.append("| _no shared capacity points_ | | | | |")
    mc = result["mean_closure"]
    if mc["baseline"] is not None and mc["current"] is not None:
        lines += ["", f"Mean closure: {mc['baseline']:+.3f} → "
                  f"{mc['current']:+.3f}"]
    if result["added"]:
        lines += ["", "New capacity points (no baseline): "
                  + ", ".join(f"{f:g}" for f in result["added"])]
    if result["removed"]:
        lines += ["", "Dropped capacity points: "
                  + ", ".join(f"{f:g}" for f in result["removed"])]
    if result["regressions"]:
        lines += ["", "**FAILED** — Belady-gap closure regressed: "
                  + ", ".join(f"`{r}`" for r in result["regressions"])]
    else:
        lines += ["", "No capacity point's closure regressed beyond the "
                  "threshold."]
    return "\n".join(lines)


def compare_staging_reports(
    baseline: dict,
    current: dict,
    *,
    threshold: float = DEFAULT_THRESHOLD,
    hit_slack: float = STAGING_HIT_SLACK,
    write_slack: int = STAGING_WRITE_SLACK,
) -> dict:
    """Diff per-point, per-scheme hit rate and writes between reports.

    Points are matched by capacity fraction, schemes by name; schemes or
    points present on only one side are listed but never fail the gate.
    A (point, scheme) pair regresses when its hit rate fell below
    ``baseline - max(threshold * baseline, hit_slack)`` or its SSD write
    count grew beyond ``baseline * (1 + threshold) + write_slack`` — the
    admission schemes exist to *avoid* writes, so write growth is as
    much a regression as hit-rate loss.
    """
    b_points = {round(p["fraction"], 6): p for p in baseline.get("points", [])}
    c_points = {round(p["fraction"], 6): p for p in current.get("points", [])}
    shared = sorted(set(b_points) & set(c_points))
    rows = []
    regressions = []
    for frac in shared:
        b_schemes = b_points[frac].get("schemes", {})
        c_schemes = c_points[frac].get("schemes", {})
        for scheme in sorted(set(b_schemes) & set(c_schemes)):
            b, c = b_schemes[scheme], c_schemes[scheme]
            hit_floor = b["hit_rate"] - max(
                threshold * b["hit_rate"], hit_slack
            )
            write_ceiling = b["ssd_writes"] * (1 + threshold) + write_slack
            hit_regressed = c["hit_rate"] < hit_floor
            write_regressed = c["ssd_writes"] > write_ceiling
            rows.append(
                {
                    "fraction": frac,
                    "scheme": scheme,
                    "baseline_hit_rate": b["hit_rate"],
                    "current_hit_rate": c["hit_rate"],
                    "baseline_writes": b["ssd_writes"],
                    "current_writes": c["ssd_writes"],
                    "baseline_wa": b.get("write_amplification"),
                    "current_wa": c.get("write_amplification"),
                    "regressed": hit_regressed or write_regressed,
                }
            )
            if hit_regressed:
                regressions.append(f"frac={frac:g}:{scheme}:hit_rate")
            if write_regressed:
                regressions.append(f"frac={frac:g}:{scheme}:writes")
    return {
        "rows": rows,
        "added": sorted(set(c_points) - set(b_points)),
        "removed": sorted(set(b_points) - set(c_points)),
        "regressions": regressions,
        "threshold": threshold,
        "hit_slack": hit_slack,
        "write_slack": write_slack,
        "violations": {
            "baseline": baseline.get("violations"),
            "current": current.get("violations"),
        },
        "modes": {
            "baseline": "quick" if baseline.get("quick") else "full",
            "current": "quick" if current.get("quick") else "full",
        },
    }


def format_staging_markdown(result: dict) -> str:
    """GitHub-flavoured markdown for the staging head-to-head trend."""
    modes = result["modes"]
    lines = [
        "## Staging admission trend",
        "",
        f"Threshold: hit rate below baseline − "
        f"max(**{100 * result['threshold']:.0f}%**, "
        f"{result['hit_slack']:.2f} absolute) or writes above baseline × "
        f"**{1 + result['threshold']:.2f}** + {result['write_slack']} fails "
        f"(baseline: {modes['baseline']} mode, current: {modes['current']} "
        "mode).",
        "",
        "| capacity frac | scheme | baseline hit | current hit | "
        "baseline writes | current writes | status |",
        "|---:|---|---:|---:|---:|---:|---|",
    ]
    for row in result["rows"]:
        status = "REGRESSION" if row["regressed"] else "ok"
        lines.append(
            f"| {row['fraction']:g} | `{row['scheme']}` "
            f"| {row['baseline_hit_rate']:.4f} "
            f"| {row['current_hit_rate']:.4f} "
            f"| {row['baseline_writes']:,} | {row['current_writes']:,} "
            f"| {status} |"
        )
    if not result["rows"]:
        lines.append("| _no shared capacity points_ | | | | | | |")
    if result["added"]:
        lines += ["", "New capacity points (no baseline): "
                  + ", ".join(f"{f:g}" for f in result["added"])]
    if result["removed"]:
        lines += ["", "Dropped capacity points: "
                  + ", ".join(f"{f:g}" for f in result["removed"])]
    if result["violations"].get("current"):
        lines += ["", "**Note**: the current report carries composition-"
                  "contract violations (the benchmark itself fails on this)."]
    if result["regressions"]:
        lines += ["", "**FAILED** — staging scheme regressed: "
                  + ", ".join(f"`{r}`" for r in result["regressions"])]
    else:
        lines += ["", "No scheme's hit rate or write count regressed beyond "
                  "the threshold."]
    return "\n".join(lines)


def _load(path: str) -> dict | None:
    p = Path(path)
    if not p.is_file():
        return None
    try:
        return json.loads(p.read_text())
    except (json.JSONDecodeError, OSError):
        return None


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(
        description="Diff two BENCH_hotpath.json reports and fail on "
        "per-component ns/op regressions."
    )
    ap.add_argument("--baseline", required=True,
                    help="previous run's BENCH_hotpath.json (may be missing)")
    ap.add_argument("--current", required=True,
                    help="this run's BENCH_hotpath.json")
    ap.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD,
                    help="fractional slowdown that fails (default: 0.20)")
    ap.add_argument("--summary", default=None,
                    help="append the markdown table to this file (e.g. "
                         "$GITHUB_STEP_SUMMARY); defaults to the "
                         "GITHUB_STEP_SUMMARY env var when set")
    args = ap.parse_args(argv)

    current = _load(args.current)
    if current is None:
        print(f"cannot read current report {args.current!r}", file=sys.stderr)
        return 2

    baseline = _load(args.baseline)
    summary_path = args.summary or os.environ.get("GITHUB_STEP_SUMMARY")
    if baseline is None:
        msg = (f"no baseline report at {args.baseline!r} — first run on this "
               "branch or expired artifact; trend gate skipped")
        print(msg)
        if summary_path:
            with open(summary_path, "a") as fh:
                fh.write(f"## Hot-path bench trend\n\n{msg}\n")
        return 0

    base_kind = baseline.get("kind")
    cur_kind = current.get("kind")
    if base_kind != cur_kind:
        msg = (f"report kinds differ (baseline={base_kind!r}, "
               f"current={cur_kind!r}) — trend gate skipped")
        print(msg)
        if summary_path:
            with open(summary_path, "a") as fh:
                fh.write(f"## Bench trend\n\n{msg}\n")
        return 0
    if cur_kind == SCENARIO_KIND:
        result = compare_scenario_reports(
            baseline, current, threshold=args.threshold
        )
        table = format_scenario_markdown(result)
    elif cur_kind == SERVER_KIND:
        result = compare_server_reports(
            baseline, current, threshold=args.threshold
        )
        table = format_server_markdown(result)
    elif cur_kind == EVICTION_KIND:
        result = compare_eviction_reports(
            baseline, current, threshold=args.threshold
        )
        table = format_eviction_markdown(result)
    elif cur_kind == STAGING_KIND:
        result = compare_staging_reports(
            baseline, current, threshold=args.threshold
        )
        table = format_staging_markdown(result)
    else:
        result = compare_reports(baseline, current, threshold=args.threshold)
        table = format_markdown(result)
    print(table)
    if summary_path:
        with open(summary_path, "a") as fh:
            fh.write(table + "\n")
    return 1 if result["regressions"] else 0


if __name__ == "__main__":
    sys.exit(main())
