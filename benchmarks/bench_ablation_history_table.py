"""§4.4.2 ablation: the history table's contribution and sizing.

The table rectifies false one-time verdicts; the paper sizes it at
``M(1−h)p × 0.05`` entries (2–5 % of the SSD metadata table) with FIFO
eviction.  The bench sweeps the capacity multiplier, including 'off'.
"""

from common import emit

from repro.cache import make_policy, simulate
from repro.core.admission import ClassifierAdmission
from repro.core.history_table import HistoryTable


def bench_history_table(benchmark, capsys, trace, grid):
    frac = grid.fractions[2]
    cap = grid.capacity_bytes(frac)
    block = grid.block(frac)
    criteria, training = block.criteria, block.training
    base_entries = HistoryTable.paper_capacity(
        criteria.m_threshold, criteria.hit_rate, criteria.one_time_share
    )

    def run(entries):
        adm = ClassifierAdmission(
            training.predictions, criteria.m_threshold, HistoryTable(entries)
        )
        sim = simulate(trace, make_policy("lru", cap), admission=adm)
        return sim, adm

    multipliers = (0, 1, 4, 16, 64)
    rows = {}
    for mult in multipliers:
        entries = max(1, base_entries * max(mult, 1)) if mult else 1
        rows[mult] = run(entries)

    benchmark.pedantic(
        lambda: run(max(1, base_entries)), rounds=1, iterations=1
    )

    lines = [
        f"§4.4.2 ablation — history table (LRU, ≈{grid.paper_gb(frac):.0f} "
        f"paper-GB; paper sizing = {base_entries} entries)",
        f"{'capacity':>10s} {'hit rate':>9s} {'rectified':>10s} {'denied':>9s}",
    ]
    for mult in multipliers:
        sim, adm = rows[mult]
        label = "off (1)" if mult == 0 else f"{mult}× paper"
        lines.append(
            f"{label:>10s} {sim.hit_rate:9.3f} {adm.rectified_admits:10,d} "
            f"{adm.denied:9,d}"
        )
    emit(capsys, "ablation_history_table", "\n".join(lines))

    # Rectifications must grow with table capacity, and the table must
    # never hurt the hit rate.
    assert rows[64][1].rectified_admits >= rows[1][1].rectified_admits
    assert rows[64][0].hit_rate >= rows[0][0].hit_rate - 0.005
