"""§3.1.2/§4.4.1 ablation: were the paper's hyper-parameters right?

The paper fixes the split budget at 30 (≈3× the feature count) and the
cost penalty v by a sensitivity study.  This bench re-derives both on the
synthetic workload with an honest grid search: split budget by
cross-validated accuracy, and v by the *system-level* objective (hit
rate) it actually serves.
"""

import numpy as np
from common import emit

from repro.core.training import sample_per_minute
from repro.ml import DecisionTreeClassifier, GridSearchCV, StratifiedKFold


def bench_hyperparams(benchmark, capsys, trace, grid):
    block = grid.block(grid.fractions[2])
    labels = block.labels
    X = grid._features.X

    rng = np.random.default_rng(0)
    day1 = np.nonzero(trace.timestamps < 86400.0)[0]
    picked = day1[sample_per_minute(trace.timestamps[day1], 80, rng)]

    search = benchmark.pedantic(
        lambda: GridSearchCV(
            lambda **p: DecisionTreeClassifier(rng=0, **p),
            {
                "max_splits": [5, 15, 30, 60, 120],
                "min_samples_leaf": [1, 10],
            },
            cv=StratifiedKFold(3, rng=0),
        ).fit(X[picked], labels[picked]),
        rounds=1,
        iterations=1,
    )

    lines = [
        "§3.1.2 ablation — grid search over the tree's capacity",
        f"{'max_splits':>11s} {'min_leaf':>9s} {'cv accuracy':>12s}",
    ]
    for row in sorted(
        search.results_,
        key=lambda r: (r["params"]["max_splits"], r["params"]["min_samples_leaf"]),
    ):
        p = row["params"]
        lines.append(
            f"{p['max_splits']:11d} {p['min_samples_leaf']:9d} "
            f"{row['mean_accuracy']:12.3f}"
        )
    best = search.best_params_
    lines.append(
        f"best: max_splits={best['max_splits']} "
        f"min_samples_leaf={best['min_samples_leaf']} "
        f"(cv accuracy {search.best_score_:.3f})"
    )
    at30 = next(
        r["mean_accuracy"]
        for r in search.results_
        if r["params"]["max_splits"] == 30
        and r["params"]["min_samples_leaf"] == best["min_samples_leaf"]
    )
    lines.append(
        f"paper's 30-split budget scores {at30:.3f} — within "
        f"{search.best_score_ - at30:.3f} of the grid optimum, confirming "
        "§3.1.2's '≈3× the feature count' rule of thumb"
    )
    emit(capsys, "ablation_hyperparams", "\n".join(lines))

    # The paper's choice must be near-optimal on this workload.
    assert search.best_score_ - at30 < 0.03
    # Degenerate budgets must clearly lose.
    worst_small = min(
        r["mean_accuracy"]
        for r in search.results_
        if r["params"]["max_splits"] == 5
    )
    assert search.best_score_ > worst_small