"""Legacy setup shim.

The execution environment has no network and no ``wheel`` package, so PEP
517/660 builds (which need ``bdist_wheel``) fail.  Keeping a ``setup.py``
and omitting ``[build-system]`` from pyproject.toml lets
``pip install -e .`` take the legacy ``setup.py develop`` path, which works
offline.
"""

from setuptools import setup

setup()
