#!/usr/bin/env python
"""Domain scenario 5 — from cache admission to flash lifetime.

Runs the same workload through the cache simulator *with the SSD device
model attached*, comparing the traditional cache against the paper's
classifier admission at the flash level: write amplification, garbage
collection, wear spread, and projected device lifetime.

Run:  python examples/ssd_lifetime_study.py
"""

from repro.cache import make_policy
from repro.core.admission import AlwaysAdmit, ClassifierAdmission, OracleAdmission
from repro.core.criteria import solve_criteria
from repro.core.features import extract_features
from repro.core.labeling import one_time_labels, reaccess_distances
from repro.core.training import train_daily_classifier
from repro.ssd import simulate_on_ssd
from repro.ssd.endurance import write_density_ratio
from repro.trace import WorkloadConfig, generate_trace


def main() -> None:
    trace = generate_trace(WorkloadConfig(n_objects=20_000, seed=23))
    capacity = max(1, trace.footprint_bytes // 60)

    # Build the classifier admission once (criterion → labels → training).
    distances = reaccess_distances(trace.object_ids)
    criteria = solve_criteria(distances, capacity, trace.mean_object_size())
    labels = one_time_labels(trace.object_ids, criteria.m_threshold)
    training = train_daily_classifier(
        trace, extract_features(trace), labels, rng=0
    )

    configs = {
        "original": AlwaysAdmit(),
        "proposal": ClassifierAdmission.from_criteria(
            training.predictions, criteria
        ),
        "ideal": OracleAdmission(labels),
    }

    print(f"cache capacity: {capacity / 2**20:.1f} MiB, "
          f"criterion M = {criteria.m_threshold:,.0f}\n")
    reports = {}
    for name, admission in configs.items():
        report = simulate_on_ssd(
            trace, make_policy("lru", capacity), admission=admission,
            policy_name="lru",
        )
        reports[name] = report
        print(f"=== {name} ===")
        print(report.summary())
        print()

    base = reports["original"].lifetime
    for name in ("proposal", "ideal"):
        print(f"lifetime extension ({name} vs original): "
              f"{reports[name].lifetime.ratio_vs(base):.2f}×")

    print("\n§1 write-density sanity check (1 TB cache, 20 TB backend):")
    frac = (
        reports["proposal"].simulation.stats.bytes_written
        / reports["original"].simulation.stats.bytes_written
    )
    print(f"  unfiltered : {write_density_ratio(1e12, 20e12, 1.0):.0f}:1")
    print(f"  filtered   : {write_density_ratio(1e12, 20e12, frac):.1f}:1")


if __name__ == "__main__":
    main()
