#!/usr/bin/env python
"""Domain scenario 9 — two tenants sharing one cache tier.

Composes two differently-shaped workloads (a normal album tenant and a
colder, more one-time-heavy tenant) onto one timeline with
``interleave_traces``, then asks: does the one-time-access-exclusion
filter protect the mixed cache better than it protects either tenant
alone?  Also demonstrates ``scale_rate`` for a traffic-surge what-if.

Run:  python examples/multi_tenant.py
"""

from repro.cache import LRUCache, simulate
from repro.core.admission import AlwaysAdmit, OracleAdmission
from repro.core.criteria import solve_criteria
from repro.core.labeling import one_time_labels, reaccess_distances
from repro.trace import WorkloadConfig, compute_stats, generate_trace
from repro.trace.mixer import interleave_traces, scale_rate


def evaluate(trace, label):
    capacity = max(1, trace.footprint_bytes // 80)
    base = simulate(trace, LRUCache(capacity), admission=AlwaysAdmit())
    criteria = solve_criteria(
        reaccess_distances(trace.object_ids),
        capacity,
        trace.mean_object_size(),
        hit_rate=base.hit_rate,
    )
    labels = one_time_labels(trace.object_ids, criteria.m_threshold)
    ideal = simulate(
        trace, LRUCache(capacity), admission=OracleAdmission(labels)
    )
    write_cut = 1 - ideal.stats.files_written / base.stats.files_written
    print(f"{label:18s} hit {base.hit_rate:.3f} → {ideal.hit_rate:.3f}   "
          f"writes −{100 * write_cut:.0f}%   "
          f"(p = {labels.mean():.2f}, M = {criteria.m_threshold:,.0f})")
    return base, ideal


def main() -> None:
    album = generate_trace(WorkloadConfig(n_objects=12_000, seed=31))
    cold = generate_trace(
        WorkloadConfig(
            n_objects=8_000,
            seed=32,
            one_time_fraction=0.8,   # a colder tenant (e.g. chat thumbnails)
            mean_accesses=2.2,
        )
    )

    print("=== tenants in isolation ===")
    evaluate(album, "album tenant")
    evaluate(cold, "cold tenant")

    print("\n=== shared cache (interleaved timeline) ===")
    mixed = interleave_traces(album, cold)
    stats = compute_stats(mixed)
    print(f"mixed trace: {stats.n_accesses:,} accesses, "
          f"{100 * stats.one_time_object_fraction:.1f}% one-time objects")
    evaluate(mixed, "shared cache")

    print("\n=== traffic surge what-if (same mix, 3× the rate) ===")
    surged = scale_rate(mixed, 3.0)
    evaluate(surged, "shared @ 3× rate")
    print("(identical cache metrics — replacement depends on request "
          "*order*, not wall-clock; what a surge does change is the "
          "time-based features and the daily-retraining windows of the "
          "learned classifier, cf. repro.core.training)")
    print("\nreading: the cold tenant pollutes the shared tier, so the "
          "exclusion filter's write savings are larger on the mix than on "
          "the album tenant alone — admission control matters more, not "
          "less, under consolidation.")


if __name__ == "__main__":
    main()
