#!/usr/bin/env python
"""Domain scenario 2 — choosing the classifier (paper §3.1, Table 1).

Builds the paper's training set (one day of trace, thinned to 100 records
per minute, labelled by the one-time-access criterion), cross-validates the
seven candidate classifiers, and prints a Table-1-style comparison plus the
ensemble-vs-single-tree cost/benefit note of §3.1.1.

Run:  python examples/classifier_comparison.py
"""

import time

import numpy as np

from repro.core.criteria import solve_criteria
from repro.core.features import PAPER_FEATURE_NAMES, extract_features
from repro.core.labeling import one_time_labels, reaccess_distances
from repro.core.training import sample_per_minute
from repro.ml import (
    AdaBoostClassifier,
    DecisionTreeClassifier,
    GaussianNB,
    KNeighborsClassifier,
    LogisticRegression,
    MLPClassifier,
    RandomForestClassifier,
    StratifiedKFold,
    cross_validate_metrics,
)
from repro.trace import WorkloadConfig, generate_trace


def build_dataset(n_objects: int = 40_000, seed: int = 3):
    trace = generate_trace(WorkloadConfig(n_objects=n_objects, seed=seed))
    distances = reaccess_distances(trace.object_ids)
    criteria = solve_criteria(
        distances, cache_bytes=trace.footprint_bytes // 100,
        mean_object_size=trace.mean_object_size(),
    )
    labels = one_time_labels(trace.object_ids, criteria.m_threshold)
    features = extract_features(trace).select(PAPER_FEATURE_NAMES)

    # Day-1 sample at 100 records/minute (§3.1.1).
    rng = np.random.default_rng(seed)
    day1 = np.nonzero(trace.timestamps < 86400.0)[0]
    picked = day1[sample_per_minute(trace.timestamps[day1], 100, rng)]
    return features.X[picked], labels[picked]


def main() -> None:
    X, y = build_dataset()
    print(f"dataset: {X.shape[0]:,} samples, {X.shape[1]} features, "
          f"{100 * y.mean():.1f}% one-time")

    candidates = {
        "Naive Bayes": GaussianNB(),
        "Decision Tree": DecisionTreeClassifier(max_splits=30, rng=0),
        "BP NN": MLPClassifier(16, epochs=30, rng=0),
        "KNN": KNeighborsClassifier(7),
        "AdaBoost": AdaBoostClassifier(10, rng=0),
        "Random Forest": RandomForestClassifier(10, max_splits=30, rng=0),
        "Logistic Regression": LogisticRegression(max_iter=800),
    }

    print(f"\n{'Algorithm':22s} {'Precision':>9s} {'Recall':>8s} "
          f"{'Accuracy':>9s} {'AUC':>7s} {'fit+cv':>8s}")
    cv = StratifiedKFold(5, rng=0)
    for name, model in candidates.items():
        t0 = time.perf_counter()
        m = cross_validate_metrics(model, X, y, cv=cv)
        dt = time.perf_counter() - t0
        print(f"{name:22s} {m['precision']:9.3f} {m['recall']:8.3f} "
              f"{m['accuracy']:9.3f} {m['auc']:7.3f} {dt:7.1f}s")

    print("\n§3.1.1 check — ensemble gain vs computational cost:")
    for n in (1, 10, 30):
        t0 = time.perf_counter()
        m = cross_validate_metrics(
            RandomForestClassifier(n, max_splits=30, rng=0), X, y, cv=cv
        )
        dt = time.perf_counter() - t0
        print(f"  RandomForest({n:2d} trees): accuracy={m['accuracy']:.3f} "
              f"({dt:5.1f}s)")


if __name__ == "__main__":
    main()
