#!/usr/bin/env python
"""Domain scenario 11 — serve a cache node over TCP and replay a trace.

Runs the whole serving stack in one process, end to end:

* a :class:`~repro.server.node.CacheNodeServer` (asyncio TCP) wrapping a
  DRAM+SSD hierarchical cache with the online admission classifier;
* the open-loop load generator replaying the same trace over several
  concurrent connections;
* an offline ``simulate()`` of the identical stack, to show the served
  replay reproduces the batch simulator's cache statistics exactly;
* a :class:`~repro.server.retrainer.Retrainer` pass at the end, refitting
  the cost-sensitive CART on matured labels and atomically swapping the
  model (what the background daily schedule — or a RELOAD — does live).

The same components are available from the command line:

    repro serve   --trace t.npz --port 8642
    repro loadgen --trace t.npz --port 8642 --rate 5000

Run:  python examples/serve_and_replay.py
"""

import asyncio

from repro.server.loadgen import LoadgenConfig, run_loadgen
from repro.server.metrics import format_metrics, metrics_snapshot
from repro.server.node import CacheNode, CacheNodeServer, NodeConfig, replay_offline
from repro.server.retrainer import Retrainer, RetrainerConfig
from repro.trace import WorkloadConfig, generate_trace

RATE = 20_000.0
CONNECTIONS = 6


async def serve_and_replay(trace, cfg: NodeConfig):
    # No background retrainer here: a mid-replay model swap would (correctly)
    # change admissions, and this demo checks exact parity with the offline
    # batch run of the static seed model.
    node = CacheNode(trace, cfg)
    server = CacheNodeServer(node, port=0)
    await server.start()
    print(f"node listening on 127.0.0.1:{server.port} (model v{node.model_version})")
    try:
        result = await run_loadgen(
            trace,
            LoadgenConfig(port=server.port, rate=RATE, connections=CONNECTIONS),
        )
    finally:
        await server.shutdown()
    return node, result


def main() -> None:
    trace = generate_trace(WorkloadConfig(n_objects=4000, seed=21))
    cfg = NodeConfig(capacity_fraction=0.02)
    print(
        f"replaying {trace.n_accesses:,} requests over {CONNECTIONS} "
        f"connections at {RATE:,.0f} req/s offered"
    )

    node, result = asyncio.run(serve_and_replay(trace, cfg))
    print("\n=== load generator (client view) ===")
    print(result.summary())

    print("\n=== server metrics ===")
    print(format_metrics(metrics_snapshot(node)))

    # The served replay is bit-identical to the offline batch simulation
    # of the same trace + admission stack — concurrency is invisible to
    # cache state thanks to the single-writer sequencer.
    ref = replay_offline(trace, cfg)
    assert node.stats.hits == ref.stats.hits
    assert node.stats.files_written == ref.stats.files_written
    assert node.stats.admissions_denied == ref.stats.admissions_denied
    print(
        f"\nparity with offline simulate(): hits {node.stats.hits:,}, "
        f"SSD writes {node.stats.files_written:,}, "
        f"denied {node.stats.admissions_denied:,} — exact match"
    )

    # ---- daily retraining, off the hot path: refit on matured labels and
    # atomically swap the model (a live node does this in the background or
    # on a RELOAD request).
    retrainer = Retrainer(node, RetrainerConfig())
    record = asyncio.run(retrainer.retrain_now())
    print(
        f"\nretrain at t={record['t_cut'] / 3600:.1f} h: "
        f"{record['n_train']:,} matured samples → model v{record['model_version']}"
        f" (worst 10k-window accuracy {record['worst_window_accuracy']:.3f})"
    )


if __name__ == "__main__":
    main()
