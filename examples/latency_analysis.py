#!/usr/bin/env python
"""Domain scenario 4 — response-time analysis (paper §5.3.5, Fig. 10).

Evaluates the Eq. 3–6 latency model on measured hit rates and explores its
sensitivity to device constants: how slow would classification have to be
before the proposal stops paying off?

Run:  python examples/latency_analysis.py
"""

from repro import WorkloadConfig, run_experiment
from repro.config import LatencyConstants
from repro.core.latency import LatencyModel


def main() -> None:
    trace_cfg = WorkloadConfig(n_objects=25_000, seed=9)

    print("=== measured latency per policy (Fig. 10 style) ===")
    print(f"{'policy':8s} {'orig ms':>9s} {'prop ms':>9s} {'gain':>7s}")
    results = {}
    for policy in ("lru", "fifo", "s3lru", "arc", "lirs"):
        r = run_experiment(
            trace_cfg, policy=policy, capacity_fraction=0.01,
            include_belady=False, include_ideal=False, rng=0,
        )
        results[policy] = r
        print(f"{policy:8s} {1e3 * r.latency_original:9.3f} "
              f"{1e3 * r.latency_proposal:9.3f} "
              f"{100 * r.latency_improvement:6.1f}%")

    # --------------------------------------------------- sensitivity study
    print("\n=== how slow may classification get? (LRU) ===")
    r = results["lru"]
    h_orig, h_prop = r.original.hit_rate, r.proposal.hit_rate
    print(f"hit rates: original={h_orig:.3f} proposal={h_prop:.3f}")
    print(f"{'t_classify':>12s} {'improvement':>12s}")
    for t_classify in (0.4e-6, 4e-6, 40e-6, 400e-6, 1.2e-3):
        lm = LatencyModel(LatencyConstants(t_classify=t_classify))
        gain = (
            lm.average_latency(h_orig, classified=False)
            - lm.average_latency(h_prop, classified=True)
        ) / lm.average_latency(h_orig, classified=False)
        print(f"{1e6 * t_classify:10.1f}us {100 * gain:+11.2f}%")

    print("\n=== faster backends shrink the payoff ===")
    print(f"{'t_hddr':>10s} {'improvement':>12s}")
    for t_hddr in (10e-3, 3e-3, 1e-3, 0.3e-3):
        lm = LatencyModel(LatencyConstants(t_hddr=t_hddr))
        gain = lm.improvement(h_orig, h_prop)
        print(f"{1e3 * t_hddr:8.1f}ms {100 * gain:+11.2f}%")


if __name__ == "__main__":
    main()
