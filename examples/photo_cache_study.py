#!/usr/bin/env python
"""Domain scenario 1 — a Tencent-style photo-cache capacity study.

Reproduces the paper's §2 analysis workflow on a synthetic 9-day trace:

1. trace statistics (the §2.2 one-time-access numbers);
2. the Fig.-3 photo-type request histogram;
3. a Fig.-2-style capacity sweep across replacement policies, showing the
   inflection point X and the shrinking Belady gap;
4. the one-time-access-exclusion payoff for LRU at two capacities.

Run:  python examples/photo_cache_study.py [--objects N]
"""

import argparse

from repro import WorkloadConfig, run_experiment
from repro.cache import make_policy, simulate
from repro.config import paper_capacity_fractions, paper_equivalent_bytes
from repro.trace import compute_stats, generate_trace
from repro.trace.stats import type_request_histogram


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--objects", type=int, default=60_000)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    print("=== generating 9-day QQPhoto-like trace ===")
    trace = generate_trace(WorkloadConfig(n_objects=args.objects, seed=args.seed))
    stats = compute_stats(trace)
    print(stats.summary())

    print("\n=== photo-type request shares (paper Fig. 3) ===")
    hist = type_request_histogram(trace)
    for name, share in sorted(hist.items(), key=lambda kv: -kv[1]):
        print(f"  {name}: {100 * share:5.1f}%  {'#' * int(80 * share)}")

    print("\n=== capacity sweep (paper Fig. 2) ===")
    fracs = paper_capacity_fractions()[::3]  # 2, 8, 14, 20 GB equivalents
    footprint = trace.footprint_bytes
    header = "policy   " + "".join(
        f"{paper_equivalent_bytes(f, footprint).paper_gb:>8.0f}GB" for f in fracs
    )
    print(header)
    for policy in ("lru", "s3lru", "arc", "lirs", "belady"):
        rates = []
        for f in fracs:
            cap = paper_equivalent_bytes(f, footprint).bytes
            rates.append(simulate(trace, make_policy(policy, cap, trace)).hit_rate)
        print(f"{policy:8s}" + "".join(f"{r:10.3f}" for r in rates))

    print("\n=== one-time-access exclusion for LRU ===")
    for f in (fracs[0], fracs[-1]):
        result = run_experiment(trace, policy="lru", capacity_fraction=f)
        print()
        print(result.summary())


if __name__ == "__main__":
    main()
