#!/usr/bin/env python
"""Domain scenario 3 — ablating the admission system's design choices.

Three ablations the paper motivates but does not plot:

1. **History table on/off** (§4.4.2): how much hit rate the FIFO
   rectification table recovers from classifier false positives.
2. **Cost matrix v** (§4.4.1, Table 4): precision/recall/hit-rate trade-off
   as the false-positive penalty grows.
3. **Daily retraining vs a static model** (§4.4.3): accuracy decay when the
   model is never refreshed.

Run:  python examples/admission_ablation.py
"""

from repro.cache import make_policy, simulate
from repro.core.admission import AlwaysAdmit, ClassifierAdmission
from repro.core.criteria import solve_criteria
from repro.core.features import extract_features
from repro.core.history_table import HistoryTable
from repro.core.labeling import one_time_labels, reaccess_distances
from repro.core.training import train_daily_classifier
from repro.trace import WorkloadConfig, generate_trace

CAPACITY_FRACTION = 0.01


def main() -> None:
    trace = generate_trace(WorkloadConfig(n_objects=30_000, seed=17))
    capacity = max(1, int(CAPACITY_FRACTION * trace.footprint_bytes))

    baseline = simulate(
        trace, make_policy("lru", capacity), admission=AlwaysAdmit()
    )
    distances = reaccess_distances(trace.object_ids)
    criteria = solve_criteria(
        distances, capacity, trace.mean_object_size(), hit_rate=baseline.hit_rate
    )
    labels = one_time_labels(trace.object_ids, criteria.m_threshold)
    features = extract_features(trace)

    print(f"baseline LRU: hit={baseline.hit_rate:.3f} "
          f"writes={baseline.stats.files_written:,}")
    print(f"criterion M = {criteria.m_threshold:,.0f} requests, "
          f"p = {criteria.one_time_share:.3f}")

    # ---------------------------------------------------------------- (1)
    print("\n--- ablation 1: history table ---")
    training = train_daily_classifier(trace, features, labels, rng=0)
    for label, table in [
        ("without history table", HistoryTable(1)),  # capacity 1 ≈ disabled
        ("with history table", None),                # paper's sizing rule
    ]:
        adm = (
            ClassifierAdmission.from_criteria(training.predictions, criteria)
            if table is None
            else ClassifierAdmission(
                training.predictions, criteria.m_threshold, table
            )
        )
        r = simulate(trace, make_policy("lru", capacity), admission=adm)
        print(f"  {label:24s} hit={r.hit_rate:.3f} "
              f"writes={r.stats.files_written:,} "
              f"rectified={adm.rectified_admits:,}")

    # ---------------------------------------------------------------- (2)
    print("\n--- ablation 2: cost-matrix penalty v ---")
    for v in (1.0, 2.0, 3.0, 5.0):
        tr = train_daily_classifier(trace, features, labels, cost_v=v, rng=0)
        adm = ClassifierAdmission.from_criteria(tr.predictions, criteria)
        r = simulate(trace, make_policy("lru", capacity), admission=adm)
        o = tr.overall
        print(f"  v={v:3.0f}: precision={o['precision']:.3f} "
              f"recall={o['recall']:.3f} hit={r.hit_rate:.3f} "
              f"writes={r.stats.files_written:,}")

    # ---------------------------------------------------------------- (3)
    print("\n--- ablation 3: daily retraining vs static model ---")
    daily = train_daily_classifier(trace, features, labels, rng=0)
    static = train_daily_classifier(trace, features, labels, static_model=True, rng=0)
    print("  day  daily-acc  static-acc")
    for md, ms in zip(daily.daily_metrics, static.daily_metrics):
        if md["trained"] and ms["trained"]:
            print(f"  {md['segment']:3d}  {md['accuracy']:9.3f} "
                  f"{ms['accuracy']:11.3f}")
    print(f"  overall: daily={daily.overall['accuracy']:.3f} "
          f"static={static.overall['accuracy']:.3f}")


if __name__ == "__main__":
    main()
