#!/usr/bin/env python
"""Domain scenario 6 — the §2.1 two-tier photo caching architecture.

Simulates Fig. 1's download path: requests land on consistent-hash-sharded
Outside Cache (OC) nodes; misses fall through to the Datacenter Cache (DC)
and finally the backend photo store.  Compares the fleet with and without
the one-time-access-exclusion classifier at the OC tier, and sweeps the OC
node count to show shard-balance effects.

Run:  python examples/two_tier_cluster.py
"""

from repro.cache import LRUCache
from repro.cluster import CacheNode, TwoTierCluster, simulate_cluster
from repro.core.admission import ClassifierAdmission
from repro.core.criteria import solve_criteria
from repro.core.features import extract_features
from repro.core.labeling import one_time_labels, reaccess_distances
from repro.core.training import train_daily_classifier
from repro.trace import WorkloadConfig, generate_trace

N_OC = 4


def build_cluster(trace, oc_capacity, dc_capacity, admission_factory=None):
    nodes = {
        f"oc{i}": CacheNode(
            f"oc{i}",
            LRUCache(oc_capacity),
            admission=admission_factory() if admission_factory else None,
        )
        for i in range(N_OC)
    }
    return TwoTierCluster(nodes, CacheNode("dc", LRUCache(dc_capacity)))


def main() -> None:
    trace = generate_trace(WorkloadConfig(n_objects=25_000, seed=3))
    fp = trace.footprint_bytes
    oc_capacity = max(1, fp // 200)   # each OC node: 0.5 % of footprint
    dc_capacity = max(1, fp // 25)    # DC: 4 % of footprint

    print(f"trace: {trace.n_accesses:,} requests, footprint {fp / 2**30:.2f} GiB")
    print(f"{N_OC} OC nodes × {oc_capacity / 2**20:.0f} MiB + "
          f"DC {dc_capacity / 2**20:.0f} MiB\n")

    print("=== traditional cluster (admit everything) ===")
    plain = simulate_cluster(trace, build_cluster(trace, oc_capacity, dc_capacity))
    print(plain.summary())

    # One classifier serves the whole OC tier (trained centrally at 05:00).
    # The criterion is solved at *tier* capacity: each node holds 1/k of the
    # space but also sees only 1/k of the stream, so the tier behaves like
    # one cache of the aggregate size.
    distances = reaccess_distances(trace.object_ids)
    criteria = solve_criteria(
        distances, N_OC * oc_capacity, trace.mean_object_size()
    )
    labels = one_time_labels(trace.object_ids, criteria.m_threshold)
    training = train_daily_classifier(trace, extract_features(trace), labels, rng=0)

    print("\n=== classifier at the OC tier ===")
    filtered = simulate_cluster(
        trace,
        build_cluster(
            trace,
            oc_capacity,
            dc_capacity,
            lambda: ClassifierAdmission.from_criteria(
                training.predictions, criteria
            ),
        ),
    )
    print(filtered.summary())

    saved = 1 - filtered.total_ssd_writes / plain.total_ssd_writes
    print(f"\nfleet-wide SSD writes avoided: {100 * saved:.1f}%")
    print(f"OC hit rate: {plain.oc_hit_rate:.3f} → {filtered.oc_hit_rate:.3f}")
    print(f"mean latency: {1e3 * plain.mean_latency:.3f} → "
          f"{1e3 * filtered.mean_latency:.3f} ms")

    print("\n=== node failure at mid-trace (consistent hashing at work) ===")
    from repro.cluster import simulate_cluster_with_events

    fail_at = trace.n_accesses // 2
    window = max(500, trace.n_accesses // 18)
    _, healthy = simulate_cluster_with_events(
        trace, build_cluster(trace, oc_capacity, dc_capacity), [],
        window_size=window,
    )
    result, series = simulate_cluster_with_events(
        trace,
        build_cluster(trace, oc_capacity, dc_capacity),
        [(fail_at, lambda c: c.remove_node("oc1"))],
        window_size=window,
    )
    print("window  healthy  with-failure")
    for w, (h, f) in enumerate(zip(healthy, series)):
        marker = "  ← oc1 fails" if w == fail_at // window else ""
        print(f"  {w:4d} {h:8.3f} {f:13.3f}{marker}")
    print(f"only oc1's shard re-missed: "
          f"{result.per_node_requests.get('oc1', 0):,} requests reached oc1 "
          f"(pre-failure traffic only)")

    print("\n=== shard balance vs OC node count ===")
    print(f"{'nodes':>6s} {'imbalance':>10s} {'OC hit':>8s}")
    for n in (2, 4, 8, 16):
        nodes = {
            f"oc{i}": CacheNode(f"oc{i}", LRUCache(max(1, 4 * oc_capacity // n)))
            for i in range(n)
        }
        cluster = TwoTierCluster(nodes, CacheNode("dc", LRUCache(dc_capacity)))
        r = simulate_cluster(trace, cluster)
        print(f"{n:6d} {r.load_imbalance:10.2f} {r.oc_hit_rate:8.3f}")


if __name__ == "__main__":
    main()
