#!/usr/bin/env python
"""Domain scenario 7 — characterising a photo workload before tuning it.

Uses the analysis toolkit the way the paper's §2 uses its production trace:
check Zipf-likeness of popularity, derive the LRU hit-rate curve
analytically from stack distances (no simulation), inspect reuse intervals,
and plot (textually) the diurnal one-time-share cycle that schedules
retraining.

Run:  python examples/workload_analysis.py
"""

import numpy as np

from repro.trace import (
    WorkloadConfig,
    compute_stats,
    generate_trace,
    one_time_share_by_hour,
    popularity_zipf_fit,
    reuse_interval_stats,
    stack_distance_profile,
)


def main() -> None:
    trace = generate_trace(WorkloadConfig(n_objects=30_000, seed=2))
    print(compute_stats(trace).summary())

    print("\n=== popularity (paper cites Breslau et al.: Zipf-like) ===")
    fit = popularity_zipf_fit(trace, min_rank=5)
    print(f"Zipf exponent α = {fit.exponent:.2f}  (R² = {fit.r_squared:.3f}, "
          f"zipf-like: {fit.is_zipf_like})")
    print(f"top 1% of photos draw {100 * fit.top_1pct_share:.1f}% of requests")

    print("\n=== analytic LRU hit-rate curve (Mattson stack distances) ===")
    caps = np.array([100, 500, 2000, 8000, 30_000])
    profile = stack_distance_profile(trace, caps)
    print(f"{'objects':>9s} {'hit rate':>9s}")
    for cap, h in zip(caps, profile):
        print(f"{cap:9,d} {h:9.3f}")

    print("\n=== reuse intervals (why small caches work) ===")
    ri = reuse_interval_stats(trace)
    print(f"median gap: {ri.median_seconds / 3600:.1f} h   "
          f"p90: {ri.p90_seconds / 3600:.1f} h")
    print(f"re-accesses within an hour: {100 * ri.within_hour_fraction:.0f}%  "
          f"within a day: {100 * ri.within_day_fraction:.0f}%")

    print("\n=== one-time share by hour (schedules the 05:00 retrain) ===")
    share = one_time_share_by_hour(trace)
    peak = int(np.argmax(share))
    trough = int(np.argmin(share))
    for h in range(24):
        bar = "#" * int(80 * share[h])
        marker = " ←p max" if h == peak else (" ←p min" if h == trough else "")
        print(f"  {h:02d}:00 {share[h]:.3f} {bar}{marker}")


if __name__ == "__main__":
    main()
