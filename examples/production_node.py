#!/usr/bin/env python
"""Domain scenario 8 — a production cache node, end to end.

Assembles the full stack a deployed server would run:

* DRAM LRU in front of an SSD-tier ARC cache (hierarchical node);
* the one-time-access-exclusion classifier on the *online* path
  (per-request feature construction, measured t_classify);
* the flash device model attached, so the run reports write
  amplification, wear and projected SSD lifetime.

Compares the node with and without the classification system.

Run:  python examples/production_node.py
"""

from repro.cache import LRUCache
from repro.cache.hierarchy import HierarchicalCache
from repro.core.admission import AlwaysAdmit
from repro.core.criteria import solve_criteria
from repro.core.features import PAPER_FEATURE_NAMES, extract_features
from repro.core.history_table import HistoryTable
from repro.core.labeling import one_time_labels, reaccess_distances
from repro.core.online import OnlineClassifierAdmission, OnlineFeatureTracker
from repro.ml import DecisionTreeClassifier
from repro.ml.cost_sensitive import CostMatrix, CostSensitiveClassifier
from repro.ssd import simulate_on_ssd
from repro.trace import WorkloadConfig, generate_trace


def build_node(ssd_capacity: int) -> HierarchicalCache:
    return HierarchicalCache.with_lru_dram(
        LRUCache(ssd_capacity), dram_fraction=0.05
    )


def main() -> None:
    trace = generate_trace(WorkloadConfig(n_objects=15_000, seed=13))
    ssd_capacity = max(1, trace.footprint_bytes // 60)
    print(
        f"node: DRAM {0.05 * ssd_capacity / 2**20:.0f} MiB + "
        f"SSD {ssd_capacity / 2**20:.0f} MiB (LRU), "
        f"{trace.n_accesses:,} requests over 9 days"
    )

    # ---- train the admission classifier on day-1-style data
    distances = reaccess_distances(trace.object_ids)
    criteria = solve_criteria(distances, ssd_capacity, trace.mean_object_size())
    labels = one_time_labels(trace.object_ids, criteria.m_threshold)
    fm = extract_features(trace).select(PAPER_FEATURE_NAMES)
    day1 = trace.timestamps < 86400.0
    model = CostSensitiveClassifier(
        DecisionTreeClassifier(max_splits=30, rng=0),
        CostMatrix(fn_cost=1.0, fp_cost=2.0),
    ).fit(fm.X[day1], labels[day1])

    # ---- baseline node
    base = simulate_on_ssd(
        trace, build_node(ssd_capacity), admission=AlwaysAdmit(),
        policy_name="dram+lru",
    )
    print("\n=== without classification ===")
    print(base.summary())

    # ---- node with the online classification system
    table_cap = HistoryTable.paper_capacity(
        criteria.m_threshold, criteria.hit_rate, criteria.one_time_share
    )
    admission = OnlineClassifierAdmission(
        model,
        OnlineFeatureTracker(trace),
        criteria.m_threshold,
        HistoryTable(max(table_cap, 8)),
    )
    node = build_node(ssd_capacity)
    filtered = simulate_on_ssd(
        trace, node, admission=admission, policy_name="dram+lru+clf"
    )
    print("\n=== with online classification ===")
    print(filtered.summary())
    print(
        f"per-decision cost: {1e6 * admission.mean_decision_seconds:.1f} µs "
        f"over {admission.decisions:,} decisions "
        f"(denied {admission.denied:,}, rectified {admission.rectified_admits:,})"
    )
    print(
        f"DRAM absorbed {node.l1_hits:,} hits; SSD served {node.l2_hits:,}"
    )

    print(
        f"\nSSD lifetime: {base.lifetime.lifetime_days:,.0f} → "
        f"{filtered.lifetime.lifetime_days:,.0f} days "
        f"({filtered.lifetime.ratio_vs(base.lifetime):.2f}×)"
    )
    print(
        f"total hit rate: {base.simulation.hit_rate:.3f} → "
        f"{filtered.simulation.hit_rate:.3f}"
    )


if __name__ == "__main__":
    main()
