#!/usr/bin/env python
"""Quickstart: the one-time-access-exclusion cache in ~20 lines.

Generates a small QQPhoto-like workload, runs the four configurations the
paper compares (Original, Proposal, Ideal, Belady) for an LRU cache at 1 %
of the trace footprint, and prints the headline numbers.

Run:  python examples/quickstart.py
"""

from repro import WorkloadConfig, run_experiment


def main() -> None:
    workload = WorkloadConfig(n_objects=20_000, seed=42)
    result = run_experiment(workload, policy="lru", capacity_fraction=0.01)

    print(result.summary())
    print()
    clf = result.training.overall
    print(
        f"classifier (daily-retrained CART): "
        f"precision={clf['precision']:.3f} recall={clf['recall']:.3f} "
        f"accuracy={clf['accuracy']:.3f}"
    )
    print(
        f"SSD writes avoided: {100 * result.write_reduction:.1f}% of files, "
        f"{100 * result.byte_write_reduction:.1f}% of bytes"
    )
    print(f"hit-rate gain: {100 * result.hit_rate_gain:+.1f} pp")
    print(f"latency: {100 * result.latency_improvement:+.1f}%")


if __name__ == "__main__":
    main()
