"""Tests for trace composition (interleave / concat / rate-scale)."""

import numpy as np
import pytest

from repro.trace import WorkloadConfig, compute_stats, generate_trace
from repro.trace.mixer import concat_traces, interleave_traces, scale_rate


@pytest.fixture(scope="module")
def pair():
    a = generate_trace(WorkloadConfig(n_objects=1500, days=2.0, seed=101))
    b = generate_trace(WorkloadConfig(n_objects=1000, days=2.0, seed=102))
    return a, b


class TestInterleave:
    def test_counts_add_up(self, pair):
        a, b = pair
        m = interleave_traces(a, b)
        assert m.n_accesses == a.n_accesses + b.n_accesses
        assert m.n_objects == a.n_objects + b.n_objects

    def test_sorted_and_valid(self, pair):
        a, b = pair
        m = interleave_traces(a, b)  # Trace validates in __post_init__
        assert (np.diff(m.timestamps) >= 0).all()

    def test_id_spaces_disjoint(self, pair):
        a, b = pair
        m = interleave_traces(a, b)
        # b's accesses map onto catalog rows at offset a.n_objects.
        b_rows = m.catalog[a.n_objects:]
        np.testing.assert_array_equal(b_rows["size"], b.catalog["size"])

    def test_owner_features_preserved(self, pair):
        a, b = pair
        m = interleave_traces(a, b)
        np.testing.assert_array_equal(
            m.owner_avg_views[: a.owner_avg_views.shape[0]], a.owner_avg_views
        )
        # b's owner ids were offset to its appended table.
        boid = m.catalog["owner_id"][a.n_objects:]
        np.testing.assert_array_equal(
            m.owner_avg_views[boid],
            b.owner_avg_views[b.catalog["owner_id"]],
        )

    def test_statistics_blend(self, pair):
        a, b = pair
        m = interleave_traces(a, b)
        sa, sm = compute_stats(a), compute_stats(m)
        # Both inputs are calibrated to 61.5%: the blend must stay close.
        assert sm.one_time_object_fraction == pytest.approx(
            sa.one_time_object_fraction, abs=0.05
        )

    def test_viral_mask_propagates(self):
        a = generate_trace(
            WorkloadConfig(n_objects=800, days=2.0, seed=103, viral_fraction=0.02)
        )
        b = generate_trace(WorkloadConfig(n_objects=500, days=2.0, seed=104))
        m = interleave_traces(a, b)
        assert m.viral_mask is not None
        assert m.viral_mask.sum() == a.viral_mask.sum()


class TestConcat:
    def test_b_follows_a(self, pair):
        a, b = pair
        m = concat_traces(a, b)
        assert m.duration == a.duration + b.duration
        # The first a.n_accesses entries are exactly a's.
        np.testing.assert_array_equal(
            m.timestamps[: a.n_accesses], a.timestamps
        )
        assert m.timestamps[a.n_accesses] >= a.duration

    def test_ages_consistent_after_shift(self, pair):
        a, b = pair
        m = concat_traces(a, b)
        # For b's first access, age (t − upload) must equal the original.
        i = a.n_accesses
        oid = m.object_ids[i]
        age_m = m.timestamps[i] - m.catalog["upload_time"][oid]
        age_b = b.timestamps[0] - b.catalog["upload_time"][b.object_ids[0]]
        assert age_m == pytest.approx(age_b)


class TestInterleaveProperties:
    def test_per_object_sequences_preserved(self, pair):
        """Interleaving must not reorder either tenant's own accesses."""
        a, b = pair
        m = interleave_traces(a, b)
        a_positions = m.object_ids < a.n_objects
        np.testing.assert_array_equal(
            m.object_ids[a_positions], a.object_ids
        )
        np.testing.assert_array_equal(
            m.object_ids[~a_positions] - a.n_objects, b.object_ids
        )

    def test_access_counts_additive(self, pair):
        a, b = pair
        m = interleave_traces(a, b)
        np.testing.assert_array_equal(
            m.access_counts(),
            np.concatenate([a.access_counts(), b.access_counts()]),
        )

    def test_simulation_runs_on_composite(self, pair):
        from repro.cache import LRUCache, simulate

        a, b = pair
        m = interleave_traces(a, b)
        result = simulate(m, LRUCache(max(1, m.footprint_bytes // 50)))
        assert result.stats.requests == m.n_accesses


class TestScaleRate:
    def test_duration_and_order(self, pair):
        a, _ = pair
        fast = scale_rate(a, 2.0)
        assert fast.duration == pytest.approx(a.duration / 2)
        assert fast.n_accesses == a.n_accesses
        np.testing.assert_array_equal(fast.object_ids, a.object_ids)

    def test_rate_scaling_compresses_reuse_gaps(self, pair):
        from repro.trace import reuse_interval_stats

        a, _ = pair
        fast = scale_rate(a, 4.0)
        assert reuse_interval_stats(fast).median_seconds == pytest.approx(
            reuse_interval_stats(a).median_seconds / 4
        )

    def test_invalid_factor(self, pair):
        with pytest.raises(ValueError):
            scale_rate(pair[0], 0.0)

    def test_original_untouched(self, pair):
        a, _ = pair
        before = a.timestamps.copy()
        scale_rate(a, 3.0)
        np.testing.assert_array_equal(a.timestamps, before)
