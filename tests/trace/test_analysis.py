"""Tests for the workload-analysis toolkit."""

import numpy as np
import pytest

from repro.cache import LRUCache
from repro.trace import WorkloadConfig, generate_trace
from repro.trace.analysis import (
    one_time_share_by_hour,
    popularity_zipf_fit,
    reuse_interval_stats,
    stack_distance_profile,
)


@pytest.fixture(scope="module")
def trace():
    return generate_trace(WorkloadConfig(n_objects=8000, seed=71))


class TestZipfFit:
    def test_synthetic_workload_is_zipf_like(self, trace):
        fit = popularity_zipf_fit(trace, min_rank=5)
        assert fit.is_zipf_like
        assert 0.3 < fit.exponent < 2.5
        assert fit.top_1pct_share > 0.05

    def test_r_squared_bounded(self, trace):
        fit = popularity_zipf_fit(trace)
        assert 0.0 <= fit.r_squared <= 1.0

    def test_uniform_counts_not_zipf(self):
        """A flat popularity distribution must not pass the Zipf test."""
        tr = generate_trace(
            WorkloadConfig(
                n_objects=3000,
                one_time_fraction=0.0,
                extra_tail_alpha=50.0,  # nearly constant access counts
                propensity_weight=0.1,
                seed=5,
            )
        )
        fit = popularity_zipf_fit(tr)
        assert fit.exponent < 0.4

    def test_too_small_rejected(self):
        tiny = generate_trace(WorkloadConfig(n_objects=8, seed=0))
        with pytest.raises(ValueError):
            popularity_zipf_fit(tiny, min_rank=5)


class TestStackDistanceProfile:
    def test_matches_unit_size_lru_simulation(self, trace):
        """The Mattson profile must equal an actual unit-size LRU run."""
        caps = [50, 500, 3000]
        profile = stack_distance_profile(trace, caps)
        for cap, predicted in zip(caps, profile):
            lru = LRUCache(cap)  # unit-size objects
            hits = 0
            for oid in trace.object_ids.tolist():
                hits += lru.access(oid, 1).hit
            assert hits / trace.n_accesses == pytest.approx(predicted, abs=1e-9)

    def test_monotone_in_capacity(self, trace):
        profile = stack_distance_profile(trace, [10, 100, 1000, 10_000])
        assert (np.diff(profile) >= 0).all()

    def test_cap_is_reuse_share(self, trace):
        """With capacity ≥ #objects the profile hits the 1 − N/A cap."""
        profile = stack_distance_profile(trace, [trace.n_objects + 1])
        expected = 1.0 - trace.n_objects / trace.n_accesses
        assert profile[0] == pytest.approx(expected, abs=1e-9)

    def test_invalid(self, trace):
        with pytest.raises(ValueError):
            stack_distance_profile(trace, [])
        with pytest.raises(ValueError):
            stack_distance_profile(trace, [0])


class TestReuseIntervals:
    def test_burst_locality(self, trace):
        stats = reuse_interval_stats(trace)
        assert stats.median_seconds > 0
        assert stats.p90_seconds >= stats.median_seconds
        # The generator's burst structure keeps most reuse within a day.
        assert stats.within_day_fraction > 0.5
        assert 0 <= stats.within_hour_fraction <= stats.within_day_fraction

    def test_no_reuse_rejected(self):
        tr = generate_trace(
            WorkloadConfig(n_objects=300, mean_accesses=1.0,
                           one_time_fraction=0.0, seed=1)
        )
        # mean_accesses=1.0 with one_time_fraction=0 still gives ≥2 per
        # object... construct a genuinely reuse-free case instead:
        from repro.trace.records import ACCESS_DTYPE, Trace

        acc = np.zeros(5, dtype=ACCESS_DTYPE)
        acc["timestamp"] = np.arange(5.0)
        acc["object_id"] = np.arange(5)
        single = Trace(
            accesses=acc,
            catalog=tr.catalog[:5].copy(),
            owner_active_friends=tr.owner_active_friends,
            owner_avg_views=tr.owner_avg_views,
            duration=10.0,
        )
        with pytest.raises(ValueError):
            reuse_interval_stats(single)


class TestHourlyOneTimeShare:
    def test_shape_and_range(self, trace):
        share = one_time_share_by_hour(trace)
        assert share.shape == (24,)
        assert ((share >= 0) & (share <= 1)).all()

    def test_morning_exceeds_evening(self, trace):
        """§4.4.3's cycle: p high in the early morning, low in the evening."""
        share = one_time_share_by_hour(trace)
        assert share[4:10].mean() > share[18:23].mean()
