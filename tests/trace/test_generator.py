"""Tests for the synthetic workload generator and its calibration."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trace import WorkloadConfig, compute_stats, generate_trace
from repro.trace.popularity import DAY


@pytest.fixture(scope="module")
def medium_trace():
    return generate_trace(WorkloadConfig(n_objects=30_000, seed=11))


class TestConfigValidation:
    def test_defaults_valid(self):
        WorkloadConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_objects": 1},
            {"days": 0},
            {"mean_accesses": 0.5},
            {"one_time_fraction": 1.0},
            {"extra_tail_alpha": 1.0},
            {"cold_hour_flatness": 1.5},
            {"mobile_base": 2.0},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            WorkloadConfig(**kwargs)

    def test_with_helper(self):
        cfg = WorkloadConfig(n_objects=100)
        cfg2 = cfg.with_(seed=5)
        assert cfg2.seed == 5 and cfg2.n_objects == 100
        assert cfg.seed is None  # original untouched


class TestCalibration:
    """The generator must reproduce the paper's published trace statistics."""

    def test_one_time_object_fraction(self, medium_trace):
        st_ = compute_stats(medium_trace)
        assert st_.one_time_object_fraction == pytest.approx(0.615, abs=0.02)

    def test_mean_accesses(self, medium_trace):
        st_ = compute_stats(medium_trace)
        assert st_.mean_accesses_per_object == pytest.approx(3.95, abs=0.1)

    def test_hit_rate_cap_near_paper(self, medium_trace):
        st_ = compute_stats(medium_trace)
        assert st_.hit_rate_cap == pytest.approx(0.745, abs=0.02)

    def test_every_object_accessed(self, medium_trace):
        assert (medium_trace.access_counts() >= 1).all()

    def test_diurnal_peak_in_evening(self, medium_trace):
        # Burst starts peak at 20:00; request volume lags a couple of hours
        # behind because burst offsets are strictly forward in time.
        st_ = compute_stats(medium_trace)
        assert 19 <= st_.diurnal_peak_hour <= 23

    def test_one_time_share_peaks_early_morning(self, medium_trace):
        """§4.4.3: p is highest around 05:00, lowest around 20:00."""
        tr = medium_trace
        counts = tr.access_counts()
        one_time_access = counts[tr.object_ids] == 1
        hours = ((tr.timestamps % DAY) / 3600.0).astype(int)
        p_by_hour = np.array(
            [
                one_time_access[hours == h].mean() if (hours == h).any() else 0
                for h in range(24)
            ]
        )
        morning = p_by_hour[3:8].mean()
        evening = p_by_hour[18:23].mean()
        assert morning > evening

    def test_request_shares_follow_fig3(self, medium_trace):
        from repro.trace.stats import type_request_histogram

        h = type_request_histogram(medium_trace)
        assert max(h, key=h.get) == "l5"
        assert h["l5"] > 0.35
        # jpg of each resolution dominates its png sibling.
        for res in "abcmol":
            assert h[f"{res}5"] > h[f"{res}0"]

    def test_popularity_is_heavy_tailed(self, medium_trace):
        counts = np.sort(medium_trace.access_counts())[::-1]
        top1 = counts[: len(counts) // 100].sum() / counts.sum()
        assert top1 > 0.08  # top 1% of photos draw ≫1% of requests

    def test_features_correlate_with_reaccess(self, medium_trace):
        """Owner average views must be informative about cold/hot."""
        tr = medium_trace
        counts = tr.access_counts()
        cold = counts == 1
        views = tr.owner_avg_views[tr.catalog["owner_id"]]
        assert views[~cold].mean() > 1.2 * views[cold].mean()


class TestStructure:
    def test_sorted_by_time(self, medium_trace):
        assert (np.diff(medium_trace.timestamps) >= 0).all()

    def test_times_within_duration(self, medium_trace):
        assert medium_trace.timestamps.min() >= 0
        assert medium_trace.timestamps.max() < medium_trace.duration

    def test_terminal_values(self, medium_trace):
        assert set(np.unique(medium_trace.accesses["terminal"])) <= {0, 1}

    def test_deterministic_given_seed(self):
        a = generate_trace(WorkloadConfig(n_objects=2000, seed=3))
        b = generate_trace(WorkloadConfig(n_objects=2000, seed=3))
        np.testing.assert_array_equal(a.accesses, b.accesses)
        np.testing.assert_array_equal(a.catalog, b.catalog)

    def test_different_seeds_differ(self):
        a = generate_trace(WorkloadConfig(n_objects=2000, seed=3))
        b = generate_trace(WorkloadConfig(n_objects=2000, seed=4))
        assert not np.array_equal(a.accesses, b.accesses)

    def test_sizes_positive(self, medium_trace):
        assert medium_trace.catalog["size"].min() > 0

    def test_slice_time(self, medium_trace):
        day1 = medium_trace.slice_time(0.0, DAY)
        assert day1.timestamps.max() < DAY
        assert day1.n_accesses < medium_trace.n_accesses
        with pytest.raises(ValueError):
            medium_trace.slice_time(5.0, 5.0)

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=10, deadline=None)
    def test_small_configs_always_valid(self, seed):
        tr = generate_trace(
            WorkloadConfig(n_objects=50, mean_accesses=3.0, seed=seed)
        )
        assert tr.n_accesses >= 50
        assert (np.diff(tr.timestamps) >= 0).all()

    def test_viral_extension(self):
        cfg = WorkloadConfig(
            n_objects=4000, seed=8, viral_fraction=0.01, viral_boost=15.0
        )
        tr = generate_trace(cfg)
        assert tr.viral_mask is not None
        n_viral = int(tr.viral_mask.sum())
        assert n_viral == pytest.approx(40, abs=5)
        counts = tr.access_counts()
        # Viral photos dwarf ordinary hot photos in access count.
        ordinary_hot = (~tr.viral_mask) & (counts > 1)
        assert counts[tr.viral_mask].mean() > 5 * counts[ordinary_hot].mean()
        # And none of them is one-time.
        assert (counts[tr.viral_mask] >= 2).all()

    def test_viral_off_by_default(self, medium_trace):
        assert medium_trace.viral_mask is None

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"viral_fraction": 1.0},
            {"viral_boost": 0.5},
            {"viral_onset_delay": -1.0},
        ],
    )
    def test_viral_validation(self, kwargs):
        with pytest.raises(ValueError):
            WorkloadConfig(**kwargs)

    def test_zero_one_time_fraction(self):
        tr = generate_trace(
            WorkloadConfig(n_objects=500, one_time_fraction=0.0, seed=0)
        )
        assert (tr.access_counts() >= 2).all()


class TestTraceValidation:
    def test_unsorted_accesses_rejected(self, medium_trace):
        from repro.trace.records import Trace

        bad = medium_trace.accesses.copy()
        bad["timestamp"][0] = 1e12
        with pytest.raises(ValueError):
            Trace(
                accesses=bad,
                catalog=medium_trace.catalog,
                owner_active_friends=medium_trace.owner_active_friends,
                owner_avg_views=medium_trace.owner_avg_views,
                duration=medium_trace.duration,
            )

    def test_object_id_out_of_range_rejected(self, medium_trace):
        from repro.trace.records import Trace

        bad = medium_trace.accesses.copy()
        bad["object_id"][0] = medium_trace.n_objects + 10
        with pytest.raises(ValueError):
            Trace(
                accesses=bad,
                catalog=medium_trace.catalog,
                owner_active_friends=medium_trace.owner_active_friends,
                owner_avg_views=medium_trace.owner_avg_views,
                duration=medium_trace.duration,
            )
