"""Tests for owners, catalog, popularity models, sampler, stats, and IO."""

import numpy as np
import pytest

from repro.trace import (
    PHOTO_TYPES,
    DiurnalModel,
    WorkloadConfig,
    compute_stats,
    generate_owners,
    generate_trace,
    sample_objects,
)
from repro.trace.catalog import generate_catalog, type_request_share_array
from repro.trace.io import export_csv, load_trace, save_trace
from repro.trace.popularity import DAY, age_decay


class TestOwners:
    def test_counts_and_positivity(self):
        o = generate_owners(1000, np.random.default_rng(0))
        assert o.n_owners == 1000
        assert (o.popularity > 0).all()
        assert (o.avg_views > 0).all()
        assert (o.active_friends >= 0).all()

    def test_popularity_mean_near_one(self):
        o = generate_owners(50_000, np.random.default_rng(1))
        assert o.popularity.mean() == pytest.approx(1.0, rel=0.1)

    def test_views_correlate_with_popularity(self):
        o = generate_owners(20_000, np.random.default_rng(2))
        r = np.corrcoef(np.log(o.popularity), np.log(o.avg_views))[0, 1]
        assert r > 0.9

    def test_friends_correlate_with_popularity(self):
        o = generate_owners(20_000, np.random.default_rng(3))
        r = np.corrcoef(o.popularity, o.active_friends)[0, 1]
        assert r > 0.5

    def test_invalid_params(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            generate_owners(0, rng)
        with pytest.raises(ValueError):
            generate_owners(10, rng, sigma=0)


class TestCatalog:
    @pytest.fixture(scope="class")
    def catalog(self):
        rng = np.random.default_rng(4)
        owners = generate_owners(500, rng)
        return generate_catalog(20_000, owners, 9 * DAY, rng)

    def test_twelve_types(self):
        assert len(PHOTO_TYPES) == 12
        assert len(set(PHOTO_TYPES)) == 12

    def test_request_shares_sum_to_one(self):
        assert type_request_share_array().sum() == pytest.approx(1.0)

    def test_type_range(self, catalog):
        assert catalog["photo_type"].min() >= 0
        assert catalog["photo_type"].max() < 12

    def test_sizes_scale_with_resolution(self, catalog):
        # 'o' (original, type indices 8/9) photos are larger than 'a'
        # thumbnails (indices 0/1) on average.
        a_mask = catalog["photo_type"] <= 1
        o_mask = (catalog["photo_type"] == 8) | (catalog["photo_type"] == 9)
        assert catalog["size"][o_mask].mean() > 5 * catalog["size"][a_mask].mean()

    def test_png_larger_than_jpg(self, catalog):
        # Same resolution, png (even index) vs jpg (odd index).
        png = catalog["photo_type"] % 2 == 0
        l_png = catalog["size"][(catalog["photo_type"] == 10)]
        l_jpg = catalog["size"][(catalog["photo_type"] == 11)]
        if l_png.shape[0] > 30 and l_jpg.shape[0] > 30:
            assert l_png.mean() > l_jpg.mean()
        assert png.any()

    def test_pre_trace_fraction(self, catalog):
        pre = (catalog["upload_time"] < 0).mean()
        assert pre == pytest.approx(0.35, abs=0.03)

    def test_invalid_params(self):
        rng = np.random.default_rng(0)
        owners = generate_owners(10, rng)
        with pytest.raises(ValueError):
            generate_catalog(0, owners, DAY, rng)
        with pytest.raises(ValueError):
            generate_catalog(10, owners, DAY, rng, pre_trace_fraction=2.0)


class TestDiurnal:
    def test_rate_peaks_at_peak_hour(self):
        m = DiurnalModel(peak_hour=20.0, amplitude=0.75)
        hours = np.arange(24) * 3600.0
        rates = m.rate(hours)
        assert np.argmax(rates) == 20
        assert rates.min() > 0

    def test_sampling_matches_density(self):
        m = DiurnalModel()
        rng = np.random.default_rng(5)
        s = m.sample_time_of_day(200_000, rng)
        assert ((s >= 0) & (s < DAY)).all()
        hours = (s / 3600).astype(int)
        hist = np.bincount(hours, minlength=24) / s.shape[0]
        assert np.argmax(hist) in (19, 20, 21)
        # Peak-to-trough ratio approximates (1+A)/(1−A) = 7 for A=0.75.
        assert hist.max() / hist.min() > 3.0

    def test_full_flatness_is_uniform(self):
        m = DiurnalModel()
        rng = np.random.default_rng(6)
        s = m.sample_time_of_day(100_000, rng, flatness=1.0)
        hist = np.bincount((s / 3600).astype(int), minlength=24)
        assert hist.max() / hist.min() < 1.2

    def test_zero_samples(self):
        assert DiurnalModel().sample_time_of_day(0, np.random.default_rng(0)).shape == (0,)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            DiurnalModel(peak_hour=24.0)
        with pytest.raises(ValueError):
            DiurnalModel(amplitude=1.0)
        with pytest.raises(ValueError):
            DiurnalModel().sample_time_of_day(5, np.random.default_rng(0), flatness=2.0)


class TestAgeDecay:
    def test_decreasing(self):
        ages = np.array([0.0, DAY, 7 * DAY, 30 * DAY])
        d = age_decay(ages)
        assert (np.diff(d) < 0).all()

    def test_half_life_semantics(self):
        assert age_decay(7 * DAY, half_life=7 * DAY) == pytest.approx(0.5)

    def test_fresh_photo_full_popularity(self):
        assert age_decay(0.0) == pytest.approx(1.0)

    def test_negative_age_clamped(self):
        assert age_decay(-100.0) == pytest.approx(1.0)

    def test_invalid_half_life(self):
        with pytest.raises(ValueError):
            age_decay(1.0, half_life=0)


class TestSampler:
    @pytest.fixture(scope="class")
    def trace(self):
        return generate_trace(WorkloadConfig(n_objects=20_000, seed=9))

    def test_sample_rate_approximate(self, trace):
        s = sample_objects(trace, 0.1, rng=0)
        assert s.n_objects == pytest.approx(2000, rel=0.15)

    def test_access_counts_preserved(self, trace):
        """Object-level sampling keeps each kept object's full history."""
        s = sample_objects(trace, 0.2, rng=1)
        st_full = compute_stats(trace)
        st_samp = compute_stats(s)
        assert st_samp.one_time_object_fraction == pytest.approx(
            st_full.one_time_object_fraction, abs=0.03
        )
        assert st_samp.mean_accesses_per_object == pytest.approx(
            st_full.mean_accesses_per_object, rel=0.15
        )

    def test_ids_redensified(self, trace):
        s = sample_objects(trace, 0.1, rng=2)
        assert s.object_ids.max() < s.n_objects
        assert (np.diff(s.timestamps) >= 0).all()

    def test_full_rate_keeps_everything(self, trace):
        s = sample_objects(trace, 1.0, rng=3)
        assert s.n_accesses == trace.n_accesses

    def test_invalid_rate(self, trace):
        with pytest.raises(ValueError):
            sample_objects(trace, 0.0)
        with pytest.raises(ValueError):
            sample_objects(trace, 1.5)

    def test_empty_sample_raises(self):
        tiny = generate_trace(WorkloadConfig(n_objects=5, seed=0))
        with pytest.raises(ValueError):
            sample_objects(tiny, 1e-9, rng=0)


class TestIO:
    def test_npz_roundtrip(self, tmp_path, tiny_trace):
        p = tmp_path / "trace.npz"
        save_trace(tiny_trace, p)
        loaded = load_trace(p)
        np.testing.assert_array_equal(loaded.accesses, tiny_trace.accesses)
        np.testing.assert_array_equal(loaded.catalog, tiny_trace.catalog)
        assert loaded.duration == tiny_trace.duration

    def test_csv_export(self, tmp_path, tiny_trace):
        p = tmp_path / "trace.csv"
        n = export_csv(tiny_trace, p, limit=100)
        assert n == 100
        lines = p.read_text().strip().splitlines()
        assert len(lines) == 101  # header + rows
        assert lines[0].startswith("timestamp,object_id")

    def test_csv_full(self, tmp_path, tiny_trace):
        p = tmp_path / "full.csv"
        n = export_csv(tiny_trace, p)
        assert n == tiny_trace.n_accesses

    def test_viral_mask_roundtrip(self, tmp_path):
        tr = generate_trace(
            WorkloadConfig(n_objects=800, seed=6, viral_fraction=0.02)
        )
        p = tmp_path / "viral.npz"
        save_trace(tr, p)
        loaded = load_trace(p)
        np.testing.assert_array_equal(loaded.viral_mask, tr.viral_mask)
