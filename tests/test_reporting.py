"""Tests for the reporting module (tables + markdown report)."""

import pytest

from repro.core.pipeline import run_experiment
from repro.reporting import (
    experiment_section,
    format_table,
    markdown_report,
    write_report,
)
from repro.trace import WorkloadConfig, generate_trace


@pytest.fixture(scope="module")
def trace():
    return generate_trace(WorkloadConfig(n_objects=2000, days=2.0, seed=81))


@pytest.fixture(scope="module")
def result(trace):
    return run_experiment(
        trace, policy="lru", capacity_fraction=0.02, rng=0
    )


class TestFormatTable:
    def test_plain_alignment(self):
        out = format_table(["name", "value"], [["a", 1.5], ["bb", 22.25]])
        lines = out.splitlines()
        assert len(lines) == 3
        assert all(len(line) == len(lines[0]) for line in lines)
        assert "1.500" in out

    def test_markdown_structure(self):
        out = format_table(["a", "b"], [[1, 2]], markdown=True)
        lines = out.splitlines()
        assert lines[0].startswith("| ")
        assert set(lines[1]) <= {"|", "-"}

    def test_custom_float_format(self):
        out = format_table(["x"], [[0.123456]], floatfmt=".1f")
        assert "0.1" in out and "0.12" not in out

    def test_empty_rows_ok(self):
        out = format_table(["h1", "h2"], [])
        assert "h1" in out

    def test_validation(self):
        with pytest.raises(ValueError):
            format_table([], [])
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])


class TestExperimentSection:
    def test_contains_all_configs(self, result):
        text = experiment_section(result)
        for config in ("original", "proposal", "ideal", "belady"):
            assert config in text
        assert "criterion M" in text
        assert "LRU" in text

    def test_plain_mode(self, result):
        text = experiment_section(result, markdown=False)
        assert "###" not in text


class TestMarkdownReport:
    def test_full_report(self, trace, result):
        report = markdown_report(trace, [result])
        assert report.startswith("# One-time-access-exclusion report")
        assert "## Workload" in report
        assert "## Experiments" in report
        assert "one-time object fraction" in report

    def test_write_report(self, tmp_path, trace, result):
        path = write_report(tmp_path / "r.md", trace, [result], title="T")
        content = path.read_text()
        assert content.startswith("# T")


class TestReportCLI:
    def test_cli_report(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "report.md"
        code = main(
            [
                "report",
                str(out),
                "--objects", "1200",
                "--days", "2",
                "--seed", "4",
                "--policies", "lru",
            ]
        )
        assert code == 0
        assert out.exists()
        assert "## Experiments" in out.read_text()
