"""Tests for the evaluation grid (repro.experiments.grid)."""

import numpy as np
import pytest

from repro.experiments import CONFIGS, GridRunner, format_sweep_table
from repro.trace import WorkloadConfig, generate_trace


@pytest.fixture(scope="module")
def small_grid():
    trace = generate_trace(WorkloadConfig(n_objects=2500, days=3.0, seed=31))
    return GridRunner(
        trace, fractions=[0.01, 0.03], policies=("lru", "fifo", "lirs")
    )


class TestGridRunner:
    def test_point_has_all_configs(self, small_grid):
        gp = small_grid.point("lru", 0.01)
        assert set(gp.results) == set(CONFIGS)
        assert gp.capacity_bytes == small_grid.capacity_bytes(0.01)

    def test_unknown_policy_rejected(self, small_grid):
        with pytest.raises(ValueError):
            small_grid.point("arc", 0.01)  # not in this grid's policy set

    def test_blocks_shared_across_policies(self, small_grid):
        a = small_grid.point("lru", 0.01)
        b = small_grid.point("fifo", 0.01)
        # Belady is capacity-level, identical object for both policies.
        assert a.results["belady"] is b.results["belady"]

    def test_sweep_lengths(self, small_grid):
        sweep = small_grid.sweep("lru", "hit_rate")
        assert set(sweep) == set(CONFIGS)
        assert all(len(v) == 2 for v in sweep.values())

    def test_ordering_invariants(self, small_grid):
        sweep = small_grid.sweep("lru", "hit_rate")
        belady = np.array(sweep["belady"])
        original = np.array(sweep["original"])
        assert (belady + 1e-9 >= original).all()

    def test_lirs_uses_scaled_criterion(self, small_grid):
        info = small_grid.block_info(0.01)
        assert info["lirs_criteria_m"] < info["criteria_m"]
        assert info["cost_v"] in (2.0, 3.0)

    def test_block_exposes_full_state(self, small_grid):
        block = small_grid.block(0.01)
        assert block.labels.shape[0] == small_grid.trace.n_accesses
        assert block.training.predictions.shape == block.labels.shape

    def test_classifier_metrics_attached(self, small_grid):
        gp = small_grid.point("lru", 0.01)
        assert {"precision", "recall", "accuracy"} <= set(gp.classifier_metrics)

    def test_memoisation(self, small_grid):
        a = small_grid.point("lru", 0.01)
        b = small_grid.point("lru", 0.01)
        assert a.results["original"] is b.results["original"]


class TestParallelPrecompute:
    def test_parallel_matches_serial(self):
        trace = generate_trace(WorkloadConfig(n_objects=1500, days=2.0, seed=33))
        fractions = [0.02, 0.05]
        serial = GridRunner(trace, fractions=fractions, policies=("lru", "lirs"))
        serial.precompute(max_workers=1)
        parallel = GridRunner(trace, fractions=fractions, policies=("lru", "lirs"))
        parallel.precompute(max_workers=2)
        for f in fractions:
            s = serial.point("lru", f)
            p = parallel.point("lru", f)
            for config in CONFIGS:
                assert s.rate(config, "hit_rate") == pytest.approx(
                    p.rate(config, "hit_rate")
                )
                assert s.rate(config, "byte_write_rate") == pytest.approx(
                    p.rate(config, "byte_write_rate")
                )

    def test_precompute_idempotent(self):
        trace = generate_trace(WorkloadConfig(n_objects=1000, days=2.0, seed=34))
        runner = GridRunner(trace, fractions=[0.05], policies=("lru",))
        runner.precompute(max_workers=1)
        blocks_before = dict(runner._blocks)
        runner.precompute(max_workers=2)  # nothing left to do
        assert runner._blocks == blocks_before


class TestFormatting:
    def test_table_mentions_every_policy_and_config(self, small_grid):
        table = format_sweep_table("T", small_grid, "hit_rate")
        for policy in small_grid.policies:
            assert policy.upper() in table
        for config in CONFIGS:
            assert config in table

    def test_percent_and_raw_modes(self, small_grid):
        pct = format_sweep_table("T", small_grid, "hit_rate", percent=True)
        raw = format_sweep_table("T", small_grid, "hit_rate", percent=False)
        assert "%" in pct
        assert "%" not in raw.replace("%", "", 0) or "%" not in raw
