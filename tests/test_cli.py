"""Tests for the command-line interface."""

import shutil
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cli import build_parser, main
from repro.trace.io import load_trace


BASE = ["--objects", "1500", "--days", "2", "--seed", "4"]


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    @pytest.mark.parametrize(
        "argv",
        [
            ["stats"],
            ["simulate", "--policy", "arc"],
            ["experiment", "--cost-v", "3"],
            ["sweep", "--policy", "lirs"],
            ["grid", "--workers", "2", "--start-method", "inline"],
            ["serve", "--port", "0", "--no-classifier", "--retrain-period",
             "86400"],
            ["loadgen", "--rate", "5000", "--connections", "8", "--limit",
             "1000"],
            ["bench-hotpath", "--quick"],
            ["bench-hotpath", "--components", "spans"],
            ["scenario", "--requests", "500", "--no-oracle"],
            ["staging", "--fractions", "0.02", "0.05", "--redemption-delta",
             "2", "--no-check"],
            ["staging", "--learned-flashiness", "--cmt-fraction", "0.5"],
            ["serve", "--port", "0", "--spans", "--spans-capacity", "4096"],
            ["loadgen", "--chrome-trace", "lg.json"],
            ["scenario", "--requests", "500", "--chrome-trace", "sc.json"],
        ],
    )
    def test_commands_parse(self, argv):
        args = build_parser().parse_args(argv + BASE)
        assert args.command == argv[0]

    def test_spans_dump_parses_without_trace_args(self):
        args = build_parser().parse_args(
            ["spans-dump", "--port", "9999", "--limit", "50",
             "--output", "t.json"]
        )
        assert args.command == "spans-dump"
        assert args.port == 9999 and args.limit == 50


class TestConsoleScript:
    """The ``repro`` entry point (and its ``python -m repro`` twin)."""

    def test_pyproject_declares_entry_point(self):
        pyproject = Path(__file__).resolve().parents[1] / "pyproject.toml"
        text = pyproject.read_text()
        assert "[project.scripts]" in text
        assert 'repro = "repro.cli:main"' in text

    def test_module_help_exits_zero(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "--help"],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0
        assert "serve" in proc.stdout and "loadgen" in proc.stdout

    def test_installed_script_help_exits_zero(self):
        script = shutil.which("repro")
        if script is None:
            pytest.skip("console script not installed in this environment")
        proc = subprocess.run([script, "--help"], capture_output=True, text=True)
        assert proc.returncode == 0
        assert "loadgen" in proc.stdout


class TestCommands:
    def test_stats(self, capsys):
        assert main(["stats", *BASE]) == 0
        out = capsys.readouterr().out
        assert "one-time objects" in out

    def test_stats_with_types(self, capsys):
        assert main(["stats", "--types", *BASE]) == 0
        assert "l5" in capsys.readouterr().out

    def test_generate_and_reload(self, tmp_path, capsys):
        path = tmp_path / "t.npz"
        assert main(["generate", str(path), *BASE]) == 0
        trace = load_trace(path)
        assert trace.n_objects == 1500
        assert "saved" in capsys.readouterr().out

    def test_simulate_from_saved_trace(self, tmp_path, capsys):
        path = tmp_path / "t.npz"
        main(["generate", str(path), *BASE])
        assert main(["simulate", "--trace", str(path), "--policy", "lru"]) == 0
        out = capsys.readouterr().out
        assert "hit rate" in out

    def test_simulate_all_policies(self, capsys):
        for policy in ("lru", "fifo", "s3lru", "arc", "lirs", "belady", "lfu"):
            assert main(["simulate", "--policy", policy, *BASE]) == 0
        assert "hit rate" in capsys.readouterr().out

    def test_experiment(self, capsys):
        assert main(["experiment", "--no-belady", *BASE]) == 0
        out = capsys.readouterr().out
        assert "proposal" in out and "classifier" in out

    def test_sweep(self, capsys):
        assert main(["sweep", "--policy", "lru", *BASE]) == 0
        out = capsys.readouterr().out
        assert out.count("\n") >= 11  # header + 10 capacities

    def test_grid_inline(self, capsys):
        argv = ["grid", "--policies", "lru", "--fractions", "0.02",
                "--start-method", "inline", *BASE]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "LRU" in out and "proposal" in out

    def test_grid_parallel_spawn(self, capsys):
        import multiprocessing

        method = "spawn" if "spawn" in \
            multiprocessing.get_all_start_methods() else "fork"
        argv = ["grid", "--policies", "lru", "--fractions", "0.02", "0.05",
                "--metric", "byte_write_rate", "--workers", "2",
                "--start-method", method, *BASE]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "byte_write_rate" in out and "belady" in out

    def test_grid_rejects_unknown_start_method(self):
        with pytest.raises(ValueError):
            main(["grid", "--start-method", "warp-drive", *BASE])

    def test_analyze(self, capsys):
        assert main(["analyze", *BASE]) == 0
        out = capsys.readouterr().out
        assert "Zipf" in out and "reuse" in out and "stack profile" in out

    def test_bench_hotpath_quick(self, tmp_path, capsys):
        import json

        output = tmp_path / "BENCH_hotpath.json"
        argv = ["bench-hotpath", "--quick", "--output", str(output),
                "--objects", "600", "--days", "1", "--seed", "3"]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "decision parity" in out and "IDENTICAL" in out
        report = json.loads(output.read_text())
        assert report["schema"] == "repro.bench_hotpath/v1"
        assert report["parity"]["identical"] is True
        assert "tree_single_compiled" in report["components"]

    def test_scenario_reference(self, tmp_path, capsys):
        import json

        output = tmp_path / "scenario.json"
        argv = ["scenario", "--requests", "2000", "--json", str(output),
                *BASE]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "pristine phases vs failure-free baseline: exact match" in out
        assert "oc1 down" in out
        report = json.loads(output.read_text())
        assert report["kind"] == "cluster_scenario"
        assert report["baseline_equal"] is True
        assert report["phases"]

    def test_scenario_chrome_trace_and_ledger(self, tmp_path, capsys):
        import json

        from repro.obs import validate_chrome_trace

        output = tmp_path / "scenario.json"
        trace_out = tmp_path / "trace.json"
        argv = ["scenario", "--requests", "2000", "--json", str(output),
                "--chrome-trace", str(trace_out), "--no-oracle", *BASE]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "write provenance (exact" in out
        assert "ui.perfetto.dev" in out

        report = json.loads(output.read_text())
        led = report["ledger"]
        assert led["exact"] is True
        assert sum(led["writes_by_cause"].values()) == led["cluster_ssd_writes"]

        doc = json.loads(trace_out.read_text())
        n_spans = validate_chrome_trace(doc)
        # One span per phase plus the replay root.
        assert n_spans == len(report["phases"]) + 1

    def test_staging_comparison(self, tmp_path, capsys):
        import json

        output = tmp_path / "staging.json"
        argv = ["staging", "--fractions", "0.05", "--json", str(output),
                *BASE]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "scheme" in out and "composed" in out and "life(d)" in out
        report = json.loads(output.read_text())
        assert report["flashiness_threshold"] == 1
        assert report["n_requests"] > 0
        (point,) = report["points"]
        assert point["fraction"] == pytest.approx(0.05)
        schemes = point["schemes"]
        assert set(schemes) == {
            "no-admission", "classifier", "flashiness", "composed"
        }
        assert (
            schemes["composed"]["ssd_writes"]
            <= schemes["no-admission"]["ssd_writes"]
        )

    def test_scenario_from_spec_file(self, tmp_path, capsys):
        import json

        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps({
            "name": "tiny",
            "nodes": 2,
            "requests": 1500,
            "events": [{"kind": "node_kill", "at": 700, "node": "oc1"}],
        }))
        argv = ["scenario", "--spec", str(spec_path), "--no-oracle", *BASE]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "scenario 'tiny'" in out and "exact match" in out

    def test_scenario_rejects_bad_spec(self, tmp_path):
        spec_path = tmp_path / "bad.json"
        spec_path.write_text('{"nodes": 2, "requests": 100, "bogus": 1}')
        with pytest.raises(ValueError, match="unknown scenario keys"):
            main(["scenario", "--spec", str(spec_path), *BASE])
