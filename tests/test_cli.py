"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.trace.io import load_trace


BASE = ["--objects", "1500", "--days", "2", "--seed", "4"]


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    @pytest.mark.parametrize(
        "argv",
        [
            ["stats"],
            ["simulate", "--policy", "arc"],
            ["experiment", "--cost-v", "3"],
            ["sweep", "--policy", "lirs"],
        ],
    )
    def test_commands_parse(self, argv):
        args = build_parser().parse_args(argv + BASE)
        assert args.command == argv[0]


class TestCommands:
    def test_stats(self, capsys):
        assert main(["stats", *BASE]) == 0
        out = capsys.readouterr().out
        assert "one-time objects" in out

    def test_stats_with_types(self, capsys):
        assert main(["stats", "--types", *BASE]) == 0
        assert "l5" in capsys.readouterr().out

    def test_generate_and_reload(self, tmp_path, capsys):
        path = tmp_path / "t.npz"
        assert main(["generate", str(path), *BASE]) == 0
        trace = load_trace(path)
        assert trace.n_objects == 1500
        assert "saved" in capsys.readouterr().out

    def test_simulate_from_saved_trace(self, tmp_path, capsys):
        path = tmp_path / "t.npz"
        main(["generate", str(path), *BASE])
        assert main(["simulate", "--trace", str(path), "--policy", "lru"]) == 0
        out = capsys.readouterr().out
        assert "hit rate" in out

    def test_simulate_all_policies(self, capsys):
        for policy in ("lru", "fifo", "s3lru", "arc", "lirs", "belady", "lfu"):
            assert main(["simulate", "--policy", policy, *BASE]) == 0
        assert "hit rate" in capsys.readouterr().out

    def test_experiment(self, capsys):
        assert main(["experiment", "--no-belady", *BASE]) == 0
        out = capsys.readouterr().out
        assert "proposal" in out and "classifier" in out

    def test_sweep(self, capsys):
        assert main(["sweep", "--policy", "lru", *BASE]) == 0
        out = capsys.readouterr().out
        assert out.count("\n") >= 11  # header + 10 capacities

    def test_analyze(self, capsys):
        assert main(["analyze", *BASE]) == 0
        out = capsys.readouterr().out
        assert "Zipf" in out and "reuse" in out and "stack profile" in out
