"""Tests for the CI bench-trend gate (``benchmarks/bench_trend.py``)."""

import importlib.util
import json
import sys
from pathlib import Path

import pytest

_BENCH_DIR = Path(__file__).resolve().parents[2] / "benchmarks"
_spec = importlib.util.spec_from_file_location(
    "bench_trend", _BENCH_DIR / "bench_trend.py"
)
bench_trend = importlib.util.module_from_spec(_spec)
sys.modules["bench_trend"] = bench_trend
_spec.loader.exec_module(bench_trend)


def report(quick=True, **ns_per_component):
    return {
        "schema": "repro.bench_hotpath/v1",
        "quick": quick,
        "components": {
            name: {"ns_per_op": ns, "ops": 1000, "speedup_vs_reference": 1.0}
            for name, ns in ns_per_component.items()
        },
    }


class TestCompareReports:
    def test_injected_regression_beyond_threshold_fails(self):
        base = report(simulate_segments=100.0, admission_fast=1000.0)
        cur = report(simulate_segments=125.0, admission_fast=1000.0)  # +25%
        result = bench_trend.compare_reports(base, cur, threshold=0.20)
        assert result["regressions"] == ["simulate_segments"]

    def test_small_regression_within_threshold_passes(self):
        base = report(simulate_segments=100.0)
        cur = report(simulate_segments=115.0)  # +15% < 20%
        result = bench_trend.compare_reports(base, cur, threshold=0.20)
        assert result["regressions"] == []
        assert result["rows"][0]["delta"] == pytest.approx(0.15)

    def test_improvement_passes(self):
        base = report(admission_fast=2000.0)
        cur = report(admission_fast=900.0)
        result = bench_trend.compare_reports(base, cur)
        assert result["regressions"] == []
        assert result["rows"][0]["delta"] < 0

    def test_boundary_is_strict(self):
        base = report(x=100.0)
        cur = report(x=120.0)  # exactly +20%
        result = bench_trend.compare_reports(base, cur, threshold=0.20)
        assert result["regressions"] == []

    def test_only_intersection_compared(self):
        base = report(old_only=10.0, shared=100.0)
        cur = report(new_only=10.0, shared=100.0)
        result = bench_trend.compare_reports(base, cur)
        assert [r["component"] for r in result["rows"]] == ["shared"]
        assert result["added"] == ["new_only"]
        assert result["removed"] == ["old_only"]

    def test_zero_baseline_does_not_divide(self):
        base = report(weird=0.0)
        cur = report(weird=50.0)
        result = bench_trend.compare_reports(base, cur)
        assert result["regressions"] == []


class TestFormatMarkdown:
    def test_table_contains_deltas_and_status(self):
        base = report(simulate_segments=100.0, admission_fast=100.0)
        cur = report(simulate_segments=150.0, admission_fast=60.0)
        result = bench_trend.compare_reports(base, cur)
        table = bench_trend.format_markdown(result)
        assert "| `simulate_segments` |" in table
        assert "+50.0%" in table and "REGRESSION" in table
        assert "-40.0%" in table and "improved" in table
        assert "**FAILED**" in table

    def test_clean_run_says_so(self):
        result = bench_trend.compare_reports(report(a=10.0), report(a=10.0))
        table = bench_trend.format_markdown(result)
        assert "No component regressed" in table


def scenario_report(gaps, *, baseline_equal=True):
    """Minimal cluster-scenario report: ``gaps`` is [(hit_gap, write_gap)]."""
    return {
        "kind": "cluster_scenario",
        "baseline_equal": baseline_equal,
        "phases": [
            {"index": i, "active": [], "hit_gap": hg, "write_gap": wg}
            for i, (hg, wg) in enumerate(gaps)
        ],
    }


class TestCompareScenarioReports:
    def test_gap_growth_beyond_threshold_and_slack_fails(self):
        base = scenario_report([(0.10, 0.05)])
        cur = scenario_report([(0.13, 0.05)])  # 0.13 > 0.10*1.2 + 0.005
        result = bench_trend.compare_scenario_reports(base, cur)
        assert result["regressions"] == ["phase0:hit_gap"]

    def test_slack_absorbs_noise_on_tiny_gaps(self):
        base = scenario_report([(0.001, 0.0)])
        cur = scenario_report([(0.004, 0.002)])  # huge relative, tiny absolute
        result = bench_trend.compare_scenario_reports(base, cur)
        assert result["regressions"] == []

    def test_absolute_gap_compared_sign_ignored(self):
        base = scenario_report([(-0.05, 0.02)])
        cur = scenario_report([(0.05, -0.02)])
        result = bench_trend.compare_scenario_reports(base, cur)
        assert result["regressions"] == []
        assert result["rows"][0]["baseline"] == pytest.approx(0.05)

    def test_improvement_passes(self):
        base = scenario_report([(0.20, 0.20)])
        cur = scenario_report([(0.05, 0.01)])
        assert bench_trend.compare_scenario_reports(
            base, cur
        )["regressions"] == []

    def test_null_gaps_skipped(self):
        base = scenario_report([(None, None)])
        cur = scenario_report([(0.9, 0.9)])
        result = bench_trend.compare_scenario_reports(base, cur)
        assert result["rows"] == [] and result["regressions"] == []

    def test_phase_count_delta_reported_not_failed(self):
        base = scenario_report([(0.1, 0.1), (0.1, 0.1)])
        cur = scenario_report([(0.1, 0.1)])
        result = bench_trend.compare_scenario_reports(base, cur)
        assert result["phase_count_delta"] == -1
        assert result["regressions"] == []

    def test_markdown_flags_regressions_and_baseline_mismatch(self):
        base = scenario_report([(0.10, 0.05)])
        cur = scenario_report([(0.50, 0.05)], baseline_equal=False)
        table = bench_trend.format_scenario_markdown(
            bench_trend.compare_scenario_reports(base, cur)
        )
        assert "REGRESSION" in table and "**FAILED**" in table
        assert "did not" in table  # baseline-mismatch note

    def test_markdown_clean_run_says_so(self):
        table = bench_trend.format_scenario_markdown(
            bench_trend.compare_scenario_reports(
                scenario_report([(0.1, 0.1)]), scenario_report([(0.1, 0.1)])
            )
        )
        assert "No phase's oracle gap regressed" in table


def server_report(*, quick=False, speedup=3.3, **rps_per_mode):
    """Minimal serving-throughput report: per-mode achieved req/s."""
    return {
        "kind": "server_throughput",
        "quick": quick,
        "speedup": speedup,
        "modes": {
            label: {"requests_per_second": rps}
            for label, rps in rps_per_mode.items()
        },
    }


class TestCompareServerReports:
    def test_rate_drop_beyond_threshold_fails(self):
        base = server_report(**{"json-row": 30_000.0, "binary-columnar": 95_000.0})
        cur = server_report(**{"json-row": 30_000.0, "binary-columnar": 70_000.0})
        result = bench_trend.compare_server_reports(base, cur, threshold=0.20)
        assert result["regressions"] == ["binary-columnar"]

    def test_drop_within_threshold_passes(self):
        base = server_report(**{"binary-columnar": 100_000.0})
        cur = server_report(**{"binary-columnar": 85_000.0})  # -15% > -20%
        result = bench_trend.compare_server_reports(base, cur, threshold=0.20)
        assert result["regressions"] == []
        assert result["rows"][0]["delta"] == pytest.approx(-0.15)

    def test_rate_gain_never_fails(self):
        base = server_report(**{"binary-columnar": 50_000.0})
        cur = server_report(**{"binary-columnar": 100_000.0})
        result = bench_trend.compare_server_reports(base, cur)
        assert result["regressions"] == []
        assert result["rows"][0]["delta"] == pytest.approx(1.0)

    def test_added_and_removed_modes_reported_not_failed(self):
        base = server_report(**{"json-row": 1.0, "binary-columnar-uvloop": 2.0})
        cur = server_report(**{"json-row": 1.0, "binary-row": 3.0})
        result = bench_trend.compare_server_reports(base, cur)
        assert result["added"] == ["binary-row"]
        assert result["removed"] == ["binary-columnar-uvloop"]
        assert result["regressions"] == []

    def test_zero_baseline_does_not_divide(self):
        base = server_report(**{"json-row": 0.0})
        cur = server_report(**{"json-row": 10.0})
        result = bench_trend.compare_server_reports(base, cur)
        assert result["regressions"] == []

    def test_markdown_carries_speedup_and_status(self):
        base = server_report(speedup=3.5, **{"binary-columnar": 100_000.0})
        cur = server_report(speedup=2.0, **{"binary-columnar": 60_000.0})
        table = bench_trend.format_server_markdown(
            bench_trend.compare_server_reports(base, cur)
        )
        assert "Serving-throughput trend" in table
        assert "REGRESSION" in table and "**FAILED**" in table
        assert "3.50× → 2.00×" in table

    def test_markdown_clean_run_says_so(self):
        rep = server_report(**{"json-row": 10.0})
        table = bench_trend.format_server_markdown(
            bench_trend.compare_server_reports(rep, rep)
        )
        assert "No mode's throughput regressed" in table


def eviction_report(closures, *, quick=True, ns=5_000.0):
    points = [
        {
            "fraction": frac,
            "capacity_bytes": 1_000_000,
            "gap_closure": closure,
            "mean_decision_ns": ns,
        }
        for frac, closure in closures
    ]
    return {
        "kind": "learned_eviction",
        "quick": quick,
        "points": points,
        "mean_gap_closure": sum(c for _, c in closures) / len(closures),
    }


class TestCompareEvictionReports:
    def test_detects_closure_regression(self):
        base = eviction_report([(0.01, 0.30), (0.02, 0.28)], quick=False)
        cur = eviction_report([(0.01, 0.30), (0.02, 0.15)], quick=False)
        result = bench_trend.compare_eviction_reports(base, cur, threshold=0.20)
        assert result["regressions"] == ["frac=0.02"]

    def test_slack_forgives_near_zero_wiggles(self):
        """Quick-mode closures sit near zero; the absolute slack keeps a
        0.03 → 0.02 move from tripping a 20%-relative gate."""
        base = eviction_report([(0.01, 0.03)])
        cur = eviction_report([(0.01, 0.02)])
        result = bench_trend.compare_eviction_reports(base, cur, threshold=0.20)
        assert result["regressions"] == []

    def test_improvement_never_fails(self):
        base = eviction_report([(0.01, 0.20)], quick=False)
        cur = eviction_report([(0.01, 0.45)], quick=False)
        result = bench_trend.compare_eviction_reports(base, cur)
        assert result["regressions"] == []

    def test_disjoint_points_listed_not_failed(self):
        base = eviction_report([(0.01, 0.30), (0.02, 0.30)], quick=False)
        cur = eviction_report([(0.02, 0.30), (0.04, 0.01)], quick=False)
        result = bench_trend.compare_eviction_reports(base, cur)
        assert result["regressions"] == []
        assert result["added"] == [0.04]
        assert result["removed"] == [0.01]

    def test_decision_cost_is_reported_not_gated(self):
        base = eviction_report([(0.01, 0.30)], quick=False, ns=1_000.0)
        cur = eviction_report([(0.01, 0.30)], quick=False, ns=50_000.0)
        result = bench_trend.compare_eviction_reports(base, cur)
        assert result["regressions"] == []
        assert result["rows"][0]["current_ns"] == 50_000.0

    def test_markdown_renders_failure_line(self):
        base = eviction_report([(0.01, 0.30)], quick=False)
        cur = eviction_report([(0.01, 0.10)], quick=False)
        result = bench_trend.compare_eviction_reports(base, cur)
        text = bench_trend.format_eviction_markdown(result)
        assert "Learned-eviction closure trend" in text
        assert "REGRESSION" in text
        assert "**FAILED**" in text


def staging_report(points, *, quick=True, violations=()):
    """Minimal staging report: ``points`` maps
    ``fraction -> {scheme: (hit_rate, ssd_writes)}``."""
    return {
        "kind": "staging",
        "quick": quick,
        "violations": list(violations),
        "points": [
            {
                "fraction": frac,
                "schemes": {
                    name: {
                        "hit_rate": hit,
                        "ssd_writes": writes,
                        "write_amplification": 1.2,
                    }
                    for name, (hit, writes) in schemes.items()
                },
            }
            for frac, schemes in points.items()
        ],
    }


class TestCompareStagingReports:
    def test_hit_rate_drop_beyond_threshold_and_slack_fails(self):
        base = staging_report({0.02: {"flashiness": (0.30, 450)}})
        cur = staging_report({0.02: {"flashiness": (0.20, 450)}})
        result = bench_trend.compare_staging_reports(base, cur, threshold=0.20)
        assert result["regressions"] == ["frac=0.02:flashiness:hit_rate"]

    def test_hit_slack_absorbs_low_rate_wiggles(self):
        """At near-zero hit rates the 20%-relative band is microscopic;
        the absolute slack keeps 0.05 → 0.04 from tripping the gate."""
        base = staging_report({0.02: {"composed": (0.05, 400)}})
        cur = staging_report({0.02: {"composed": (0.04, 400)}})
        result = bench_trend.compare_staging_reports(base, cur, threshold=0.20)
        assert result["regressions"] == []

    def test_write_growth_beyond_ceiling_fails(self):
        base = staging_report({0.02: {"composed": (0.33, 400)}})
        cur = staging_report({0.02: {"composed": (0.33, 500)}})  # > 400*1.2+16
        result = bench_trend.compare_staging_reports(base, cur, threshold=0.20)
        assert result["regressions"] == ["frac=0.02:composed:writes"]

    def test_write_slack_absorbs_small_absolute_growth(self):
        base = staging_report({0.02: {"composed": (0.33, 10)}})
        cur = staging_report({0.02: {"composed": (0.33, 25)}})  # <= 10*1.2+16
        result = bench_trend.compare_staging_reports(base, cur, threshold=0.20)
        assert result["regressions"] == []

    def test_improvement_never_fails(self):
        base = staging_report({0.02: {"flashiness": (0.30, 500)}})
        cur = staging_report({0.02: {"flashiness": (0.40, 300)}})
        result = bench_trend.compare_staging_reports(base, cur)
        assert result["regressions"] == []
        assert result["rows"][0]["regressed"] is False

    def test_disjoint_points_and_schemes_listed_not_failed(self):
        base = staging_report(
            {0.02: {"composed": (0.3, 400), "old": (0.1, 9_000)}, 0.05: {"composed": (0.4, 300)}}
        )
        cur = staging_report(
            {0.02: {"composed": (0.3, 400), "new": (0.0, 9_999)}, 0.10: {"composed": (0.5, 200)}}
        )
        result = bench_trend.compare_staging_reports(base, cur)
        assert result["regressions"] == []
        assert result["added"] == [0.10]
        assert result["removed"] == [0.05]
        assert [(r["fraction"], r["scheme"]) for r in result["rows"]] == [
            (0.02, "composed")
        ]

    def test_markdown_flags_regression_and_violations(self):
        base = staging_report({0.02: {"flashiness": (0.30, 450)}})
        cur = staging_report(
            {0.02: {"flashiness": (0.10, 450)}},
            violations=["frac=0.02: composed wrote more than flashiness"],
        )
        text = bench_trend.format_staging_markdown(
            bench_trend.compare_staging_reports(base, cur)
        )
        assert "Staging admission trend" in text
        assert "REGRESSION" in text and "**FAILED**" in text
        assert "composition-" in text  # violations note

    def test_markdown_clean_run_says_so(self):
        rep = staging_report({0.02: {"composed": (0.33, 400)}})
        text = bench_trend.format_staging_markdown(
            bench_trend.compare_staging_reports(rep, rep)
        )
        assert "No scheme's hit rate or write count regressed" in text


class TestMain:
    def _write(self, tmp_path, name, rep):
        p = tmp_path / name
        p.write_text(json.dumps(rep))
        return str(p)

    def test_regression_exits_nonzero(self, tmp_path):
        base = self._write(tmp_path, "base.json", report(a=100.0))
        cur = self._write(tmp_path, "cur.json", report(a=200.0))
        assert bench_trend.main(["--baseline", base, "--current", cur]) == 1

    def test_clean_exits_zero_and_writes_summary(self, tmp_path, monkeypatch):
        monkeypatch.delenv("GITHUB_STEP_SUMMARY", raising=False)
        base = self._write(tmp_path, "base.json", report(a=100.0))
        cur = self._write(tmp_path, "cur.json", report(a=101.0))
        summary = tmp_path / "summary.md"
        rc = bench_trend.main(
            ["--baseline", base, "--current", cur, "--summary", str(summary)]
        )
        assert rc == 0
        assert "Hot-path bench trend" in summary.read_text()

    def test_missing_baseline_skips_gracefully(self, tmp_path, monkeypatch):
        monkeypatch.delenv("GITHUB_STEP_SUMMARY", raising=False)
        cur = self._write(tmp_path, "cur.json", report(a=100.0))
        rc = bench_trend.main(
            ["--baseline", str(tmp_path / "nope.json"), "--current", cur]
        )
        assert rc == 0

    def test_corrupt_baseline_skips_gracefully(self, tmp_path, monkeypatch):
        monkeypatch.delenv("GITHUB_STEP_SUMMARY", raising=False)
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        cur = self._write(tmp_path, "cur.json", report(a=100.0))
        assert bench_trend.main(
            ["--baseline", str(bad), "--current", cur]
        ) == 0

    def test_missing_current_is_an_error(self, tmp_path):
        base = self._write(tmp_path, "base.json", report(a=100.0))
        rc = bench_trend.main(
            ["--baseline", base, "--current", str(tmp_path / "nope.json")]
        )
        assert rc == 2

    def test_custom_threshold(self, tmp_path):
        base = self._write(tmp_path, "base.json", report(a=100.0))
        cur = self._write(tmp_path, "cur.json", report(a=110.0))
        args = ["--baseline", base, "--current", cur]
        assert bench_trend.main([*args, "--threshold", "0.05"]) == 1
        assert bench_trend.main([*args, "--threshold", "0.20"]) == 0

    def test_scenario_kind_dispatch(self, tmp_path, monkeypatch):
        monkeypatch.delenv("GITHUB_STEP_SUMMARY", raising=False)
        base = self._write(
            tmp_path, "base.json", scenario_report([(0.10, 0.05)])
        )
        clean = self._write(
            tmp_path, "clean.json", scenario_report([(0.10, 0.05)])
        )
        worse = self._write(
            tmp_path, "worse.json", scenario_report([(0.40, 0.05)])
        )
        assert bench_trend.main(["--baseline", base, "--current", clean]) == 0
        assert bench_trend.main(["--baseline", base, "--current", worse]) == 1

    def test_kind_mismatch_skips_gracefully(self, tmp_path, monkeypatch):
        """A hotpath baseline against a scenario current (or vice versa)
        is a pipeline change, not a regression — the gate steps aside."""
        monkeypatch.delenv("GITHUB_STEP_SUMMARY", raising=False)
        hotpath = self._write(tmp_path, "hot.json", report(a=100.0))
        scenario = self._write(
            tmp_path, "scn.json", scenario_report([(0.9, 0.9)])
        )
        server = self._write(
            tmp_path, "srv.json", server_report(**{"json-row": 1.0})
        )
        assert bench_trend.main(
            ["--baseline", hotpath, "--current", scenario]
        ) == 0
        assert bench_trend.main(
            ["--baseline", scenario, "--current", hotpath]
        ) == 0
        assert bench_trend.main(
            ["--baseline", hotpath, "--current", server]
        ) == 0
        assert bench_trend.main(
            ["--baseline", server, "--current", scenario]
        ) == 0

    def test_eviction_kind_dispatch(self, tmp_path, monkeypatch):
        monkeypatch.delenv("GITHUB_STEP_SUMMARY", raising=False)
        base = self._write(
            tmp_path, "base.json",
            eviction_report([(0.01, 0.30)], quick=False),
        )
        clean = self._write(
            tmp_path, "clean.json",
            eviction_report([(0.01, 0.29)], quick=False),
        )
        worse = self._write(
            tmp_path, "worse.json",
            eviction_report([(0.01, 0.10)], quick=False),
        )
        assert bench_trend.main(["--baseline", base, "--current", clean]) == 0
        assert bench_trend.main(["--baseline", base, "--current", worse]) == 1

    def test_staging_kind_dispatch(self, tmp_path, monkeypatch):
        monkeypatch.delenv("GITHUB_STEP_SUMMARY", raising=False)
        base = self._write(
            tmp_path, "base.json",
            staging_report({0.02: {"composed": (0.33, 400)}}),
        )
        clean = self._write(
            tmp_path, "clean.json",
            staging_report({0.02: {"composed": (0.33, 410)}}),
        )
        worse = self._write(
            tmp_path, "worse.json",
            staging_report({0.02: {"composed": (0.10, 400)}}),
        )
        hotpath = self._write(tmp_path, "hot.json", report(a=100.0))
        assert bench_trend.main(["--baseline", base, "--current", clean]) == 0
        assert bench_trend.main(["--baseline", base, "--current", worse]) == 1
        # Kind mismatch is a pipeline change, not a regression.
        assert bench_trend.main(["--baseline", hotpath, "--current", base]) == 0
        assert bench_trend.main(["--baseline", base, "--current", hotpath]) == 0

    def test_server_kind_dispatch(self, tmp_path, monkeypatch):
        monkeypatch.delenv("GITHUB_STEP_SUMMARY", raising=False)
        base = self._write(
            tmp_path,
            "base.json",
            server_report(**{"json-row": 30_000.0, "binary-columnar": 95_000.0}),
        )
        clean = self._write(
            tmp_path,
            "clean.json",
            server_report(**{"json-row": 31_000.0, "binary-columnar": 93_000.0}),
        )
        worse = self._write(
            tmp_path,
            "worse.json",
            server_report(**{"json-row": 30_000.0, "binary-columnar": 40_000.0}),
        )
        assert bench_trend.main(["--baseline", base, "--current", clean]) == 0
        assert bench_trend.main(["--baseline", base, "--current", worse]) == 1
