"""Tests for the hot-path benchmark harness (``repro bench-hotpath``)."""

import json

import pytest

from repro.perf.hotpath import (
    COMPONENT_GROUPS,
    SCHEMA,
    BenchError,
    check_report,
    format_report,
    run_hotpath_bench,
    write_report,
)
from repro.trace import WorkloadConfig, generate_trace

COMPONENTS = {
    "tree_single_reference",
    "tree_single_predict_one",
    "tree_single_compiled",
    "tree_batch_reference",
    "tree_batch_compiled",
    "tracker_features_reference",
    "tracker_features_into",
    "admission_reference",
    "admission_fast",
    "simulate_loop_reference",
    "simulate_segments",
    "spans_enabled_reference",
    "spans_disabled_noop",
    "gbdt_single_reference",
    "gbdt_single_compiled",
    "gbdt_batch_reference",
    "gbdt_batch_compiled",
}


@pytest.fixture(scope="module")
def report():
    trace = generate_trace(WorkloadConfig(n_objects=600, days=1.0, seed=3))
    return run_hotpath_bench(trace=trace, quick=True, budget_seconds=0.005)


class TestRunHotpathBench:
    def test_schema_and_components(self, report):
        assert report["schema"] == SCHEMA
        assert report["quick"] is True
        assert report["components_selected"] == sorted(COMPONENT_GROUPS)
        assert set(report["components"]) == COMPONENTS
        for comp in report["components"].values():
            assert comp["ns_per_op"] > 0
            assert comp["ops"] > 0
            assert comp["speedup_vs_reference"] > 0
        for name in COMPONENTS:
            if name.endswith("_reference"):
                assert report["components"][name]["speedup_vs_reference"] == 1.0

    def test_segments_section(self, report):
        seg = report["segments"]
        assert seg["requests"] > 0
        assert 0.0 < seg["coverage"] <= 1.0
        assert seg["parity"]["identical"] is True
        assert seg["parity"]["always_admit"]["identical"] is True
        assert seg["parity"]["denying"]["identical"] is True
        # The denying replay actually exercised the admission policy.
        assert seg["parity"]["denying"]["decisions"] > 0

    def test_parity_holds(self, report):
        parity = report["parity"]
        assert parity["identical"] is True
        assert parity["requests"] > 0
        assert parity["decisions"] > 0
        assert parity["stats_fast"] == parity["stats_reference"]
        check_report(report)  # must not raise

    def test_t_classify_section(self, report):
        t = report["t_classify_us"]
        assert t["paper"] == 0.4
        assert t["fast"] > 0 and t["reference"] > 0

    def test_write_report_round_trips(self, report, tmp_path):
        path = write_report(report, tmp_path / "BENCH_hotpath.json")
        assert json.loads(path.read_text()) == json.loads(
            json.dumps(report)
        )

    def test_format_report_mentions_parity(self, report):
        text = format_report(report)
        assert "IDENTICAL" in text
        assert "t_classify" in text


class TestCheckReport:
    def test_parity_failure_raises(self, report):
        doctored = json.loads(json.dumps(report))
        doctored["parity"]["identical"] = False
        with pytest.raises(BenchError, match="diverged"):
            check_report(doctored)

    def test_speedup_floor_enforced(self, report):
        doctored = json.loads(json.dumps(report))
        doctored["components"]["tree_single_compiled"][
            "speedup_vs_reference"
        ] = 1.5
        with pytest.raises(BenchError, match="floor"):
            check_report(doctored, min_speedup=5.0)

    def test_floor_skipped_when_zero(self, report):
        doctored = json.loads(json.dumps(report))
        doctored["components"]["tree_single_compiled"][
            "speedup_vs_reference"
        ] = 0.5
        check_report(doctored, min_speedup=0.0)  # parity only

    def test_segment_parity_failure_raises(self, report):
        doctored = json.loads(json.dumps(report))
        doctored["segments"]["parity"]["identical"] = False
        with pytest.raises(BenchError, match="diverged"):
            check_report(doctored)

    def test_segment_floor_enforced(self, report):
        doctored = json.loads(json.dumps(report))
        doctored["components"]["simulate_segments"][
            "speedup_vs_reference"
        ] = 1.1
        with pytest.raises(BenchError, match="floor"):
            check_report(doctored, min_segment_speedup=3.0)


class TestComponentSelection:
    @pytest.fixture(scope="class")
    def segments_only(self):
        return run_hotpath_bench(quick=True, components=["segments"])

    def test_only_selected_sections_present(self, segments_only):
        assert segments_only["components_selected"] == ["segments"]
        assert set(segments_only["components"]) == {
            "simulate_loop_reference",
            "simulate_segments",
        }
        assert "parity" not in segments_only
        assert "t_classify_us" not in segments_only
        assert "trace" not in segments_only
        assert segments_only["segments"]["parity"]["identical"] is True

    def test_check_and_format_tolerate_missing_sections(self, segments_only):
        check_report(segments_only, min_speedup=5.0)  # no tree section: skip
        text = format_report(segments_only)
        assert "simulate_segments" in text
        assert "t_classify" not in text

    def test_spans_group_benches_both_paths(self):
        report = run_hotpath_bench(
            quick=True, components=["spans"], budget_seconds=0.005
        )
        assert report["components_selected"] == ["spans"]
        assert set(report["components"]) == {
            "spans_enabled_reference",
            "spans_disabled_noop",
        }
        enabled = report["components"]["spans_enabled_reference"]
        noop = report["components"]["spans_disabled_noop"]
        assert enabled["speedup_vs_reference"] == 1.0
        # The whole point of the no-op path: disabled tracing must be
        # meaningfully cheaper than recording.
        assert noop["ns_per_op"] < enabled["ns_per_op"]
        assert noop["speedup_vs_reference"] > 1.0

    def test_unknown_group_rejected(self):
        with pytest.raises(ValueError, match="unknown component groups"):
            run_hotpath_bench(quick=True, components=["segments", "nope"])

    def test_empty_selection_rejected(self):
        with pytest.raises(ValueError, match="at least one group"):
            run_hotpath_bench(quick=True, components=[])
