"""Spawn-safe shared-memory grid workers: differential, lifecycle, leaks.

Four layers of guarantees:

* **Round-trip** — :class:`SharedColumnStore` / :class:`SharedTraceBuffer`
  reproduce every column (values, dtypes, order) bit-exactly, including
  zero-length and single-request edge cases (hypothesis-driven).
* **Differential** — ``GridRunner.precompute`` produces bit-identical grid
  results across inline, fork, spawn and forkserver execution, for both
  ``use_segments`` settings, with the admission-filtered Proposal/Ideal
  configurations included (they are part of every capacity block).
* **No hidden serialisation** — the trace never rides through pickle to the
  workers; only the compact handle does (serialisation-counter test).
* **No leaks** — shared blocks are unlinked after normal completion, after
  a worker exception, and after a SIGKILLed pool child; worker
  initialisation is explicit (nothing relies on fork inheritance).
"""

import multiprocessing
import os
import pickle
import signal
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cache.segments import SegmentPlan
from repro.core.features import FeatureMatrix, extract_features
from repro.core.labeling import reaccess_distances
from repro.experiments import (
    CONFIGS,
    GridRunner,
    SharedColumnStore,
    SharedTraceBuffer,
    resolve_start_method,
)
from repro.experiments import grid as grid_mod
from repro.trace import Trace, WorkloadConfig, generate_trace
from repro.trace.records import (
    ACCESS_DTYPE,
    CATALOG_DTYPE,
    reset_trace_pickle_count,
    trace_pickle_count,
)

MP_METHODS = multiprocessing.get_all_start_methods()
#: Every parallel start method this platform offers (differential axis).
PARALLEL = [m for m in ("fork", "spawn", "forkserver") if m in MP_METHODS]
#: One non-fork method, preferring spawn (the portable worst case).
NON_FORK = next((m for m in ("spawn", "forkserver") if m in MP_METHODS), None)

_GRID_KW = dict(fractions=[0.02, 0.05], policies=("lru", "lirs"))


def _shm_blocks():
    """Current /dev/shm psm_* names, or None where not observable."""
    if not os.path.isdir("/dev/shm"):
        return None
    return {f for f in os.listdir("/dev/shm") if f.startswith("psm_")}


@pytest.fixture()
def no_new_shm_blocks():
    """Assert the test body leaves no new psm_* block behind."""
    before = _shm_blocks()
    yield
    after = _shm_blocks()
    if before is not None:
        assert after - before == set()


def _make_trace(seed=33, n_objects=1500, days=2.0):
    return generate_trace(
        WorkloadConfig(n_objects=n_objects, days=days, seed=seed)
    )


def _grid_fingerprint(runner):
    """Every stat counter of every (policy, fraction, config) point."""
    out = {}
    for policy in runner.policies:
        for fraction in runner.fractions:
            point = runner.point(policy, fraction)
            for config in CONFIGS:
                out[(policy, fraction, config)] = point.results[config].stats
    return out


@pytest.fixture(scope="module")
def trace():
    return _make_trace()


@pytest.fixture(scope="module")
def inline_grid(trace):
    runner = GridRunner(trace, **_GRID_KW)
    runner.precompute(start_method="inline")
    return runner


# --------------------------------------------------------------------------
# SharedColumnStore round-trip
# --------------------------------------------------------------------------


class TestSharedColumnStore:
    def test_round_trip_mixed_dtypes(self, no_new_shm_blocks):
        arrays = {
            "structured": np.array(
                [(0.5, 3, 1), (1.5, 4, 0)], dtype=ACCESS_DTYPE
            ),
            "floats": np.linspace(0, 1, 7),
            "small_ints": np.arange(5, dtype=np.int8),
            "matrix": np.arange(12, dtype=np.float64).reshape(3, 4),
            "empty": np.empty(0, dtype=np.int64),
            "empty_2d": np.empty((4, 0), dtype=np.float32),
        }
        with SharedColumnStore.create(arrays) as store:
            attached = SharedColumnStore.attach(store.handle)
            got = attached.arrays()
            assert list(got) == list(arrays)  # column order preserved
            for key, arr in arrays.items():
                assert got[key].dtype == arr.dtype
                assert got[key].shape == arr.shape
                np.testing.assert_array_equal(got[key], arr)
            attached.close()

    def test_views_are_read_only_and_zero_copy(self, no_new_shm_blocks):
        arrays = {"col": np.arange(10, dtype=np.int64)}
        with SharedColumnStore.create(arrays) as store:
            attached = SharedColumnStore.attach(store.handle)
            view = attached.arrays()["col"]
            with pytest.raises(ValueError):
                view[0] = 99
            # A view over the mapped block, not a private copy of the data.
            assert view.flags.owndata is False
            np.testing.assert_array_equal(view, arrays["col"])
            attached.close()

    def test_handle_is_compact_and_picklable(self, no_new_shm_blocks):
        big = {"col": np.zeros(200_000, dtype=np.float64)}
        with SharedColumnStore.create(big) as store:
            payload = pickle.dumps(store.handle)
            # The whole point: metadata only, never the 1.6 MB column.
            assert len(payload) < 2000

    def test_close_is_idempotent_and_unlinks(self):
        store = SharedColumnStore.create({"x": np.arange(4)})
        created = set(store.block_names)
        assert created
        live = _shm_blocks()
        if live is not None:
            assert created <= live
        store.close()
        store.close()
        after = _shm_blocks()
        if after is not None:
            assert not (created & after)

    def test_attach_only_never_unlinks(self, no_new_shm_blocks):
        store = SharedColumnStore.create({"x": np.arange(4)})
        try:
            attached = SharedColumnStore.attach(store.handle)
            with pytest.raises(RuntimeError):
                attached.unlink()
            attached.close()
            # Owner's block survives the attachment's close.
            again = SharedColumnStore.attach(store.handle)
            np.testing.assert_array_equal(
                again.arrays()["x"], np.arange(4)
            )
            again.close()
        finally:
            store.close()

    @settings(max_examples=25, deadline=None)
    @given(
        data=st.lists(
            st.tuples(
                st.sampled_from(
                    [np.int8, np.int64, np.float32, np.float64]
                ),
                st.integers(min_value=0, max_value=40),
            ),
            min_size=1,
            max_size=5,
        ),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_round_trip_property(self, data, seed):
        rng = np.random.default_rng(seed)
        arrays = {
            f"col{i}": rng.integers(-100, 100, size=n).astype(dtype)
            for i, (dtype, n) in enumerate(data)
        }
        with SharedColumnStore.create(arrays) as store:
            attached = SharedColumnStore.attach(store.handle)
            got = attached.arrays()
            assert list(got) == list(arrays)
            for key, arr in arrays.items():
                assert got[key].dtype == arr.dtype
                np.testing.assert_array_equal(got[key], arr)
            attached.close()


# --------------------------------------------------------------------------
# SharedTraceBuffer round-trip
# --------------------------------------------------------------------------


def _random_trace(rng, n_objects, n_accesses):
    catalog = np.zeros(n_objects, dtype=CATALOG_DTYPE)
    catalog["size"] = rng.integers(1, 10_000, size=n_objects)
    catalog["photo_type"] = rng.integers(0, 12, size=n_objects)
    catalog["owner_id"] = rng.integers(0, 3, size=n_objects)
    catalog["upload_time"] = -rng.random(n_objects) * 100.0
    accesses = np.zeros(n_accesses, dtype=ACCESS_DTYPE)
    accesses["timestamp"] = np.sort(rng.random(n_accesses) * 500.0)
    accesses["object_id"] = rng.integers(0, n_objects, size=n_accesses)
    accesses["terminal"] = rng.integers(0, 2, size=n_accesses)
    return Trace(
        accesses=accesses,
        catalog=catalog,
        owner_active_friends=rng.integers(0, 50, size=3),
        owner_avg_views=rng.random(3) * 10,
        duration=600.0,
        viral_mask=(
            rng.random(n_objects) < 0.2 if rng.random() < 0.5 else None
        ),
    )


class TestTraceRoundTrip:
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        n_objects=st.integers(min_value=1, max_value=30),
        n_accesses=st.integers(min_value=1, max_value=80),
    )
    def test_trace_columns_round_trip(self, seed, n_objects, n_accesses):
        trace = _random_trace(
            np.random.default_rng(seed), n_objects, n_accesses
        )
        with SharedTraceBuffer.create(trace) as buffer:
            attached = SharedTraceBuffer.attach(buffer.handle)
            got = attached.trace
            assert got.duration == trace.duration
            originals = trace.column_arrays()
            copies = got.column_arrays()
            assert list(copies) == list(originals)
            for key, arr in originals.items():
                assert copies[key].dtype == arr.dtype
                np.testing.assert_array_equal(copies[key], arr)
            attached.close()

    def test_single_request_trace(self, no_new_shm_blocks):
        trace = _random_trace(np.random.default_rng(7), 1, 1)
        with SharedTraceBuffer.create(trace) as buffer:
            attached = SharedTraceBuffer.attach(buffer.handle)
            assert attached.trace.n_accesses == 1
            np.testing.assert_array_equal(
                attached.trace.accesses, trace.accesses
            )
            attached.close()

    def test_zero_width_feature_matrix(self, no_new_shm_blocks):
        # A zero-length column: carried inline in the handle, since POSIX
        # shared memory cannot map an empty block.
        trace = _random_trace(np.random.default_rng(8), 4, 10)
        features = FeatureMatrix(X=np.empty((10, 0)), names=())
        with SharedTraceBuffer.create(trace, features=features) as buffer:
            attached = SharedTraceBuffer.attach(buffer.handle)
            assert attached.features.X.shape == (10, 0)
            assert attached.features.names == ()
            attached.close()

    def test_plan_features_distances_round_trip(self, trace,
                                                no_new_shm_blocks):
        plan = SegmentPlan.for_trace(trace)
        features = extract_features(trace)
        distances = reaccess_distances(trace.object_ids)
        cap = trace.footprint_bytes // 20
        with SharedTraceBuffer.create(
            trace, plan=plan, features=features, distances=distances
        ) as buffer:
            attached = SharedTraceBuffer.attach(buffer.handle)
            # The plan is pre-installed: for_trace must find it, not rebuild.
            assert SegmentPlan.for_trace(attached.trace) is attached.plan
            assert attached.plan.min_run == plan.min_run
            np.testing.assert_array_equal(
                attached.plan.hit_runs(cap), plan.hit_runs(cap)
            )
            np.testing.assert_array_equal(attached.features.X, features.X)
            assert attached.features.names == features.names
            np.testing.assert_array_equal(attached.distances, distances)
            # Zero-copy: views alias shared blocks, not private copies.
            assert not attached.features.X.flags.writeable
            attached.close()

    def test_mismatched_plan_rejected(self):
        trace = _random_trace(np.random.default_rng(9), 5, 30)
        other = _random_trace(np.random.default_rng(10), 5, 40)
        with pytest.raises(ValueError):
            SharedTraceBuffer.create(trace, plan=SegmentPlan(other))


# --------------------------------------------------------------------------
# Cross-start-method differential grid
# --------------------------------------------------------------------------


class TestCrossStartMethod:
    @pytest.mark.parametrize("method", PARALLEL)
    def test_bit_identical_across_methods(self, method, trace, inline_grid,
                                          no_new_shm_blocks):
        runner = GridRunner(trace, **_GRID_KW)
        runner.precompute(max_workers=2, start_method=method)
        assert _grid_fingerprint(runner) == _grid_fingerprint(inline_grid)

    @pytest.mark.skipif(NON_FORK is None, reason="only fork available")
    def test_bit_identical_without_segments(self, trace, no_new_shm_blocks):
        inline = GridRunner(trace, use_segments=False, **_GRID_KW)
        inline.precompute(start_method="inline")
        runner = GridRunner(trace, use_segments=False, **_GRID_KW)
        runner.precompute(max_workers=2, start_method=NON_FORK)
        assert _grid_fingerprint(runner) == _grid_fingerprint(inline)
        # And the segmented inline grid agrees too (admission variants
        # included: Proposal/Ideal are part of every block).
        assert _grid_fingerprint(runner) == _grid_fingerprint(
            GridRunner(trace, **_GRID_KW)
        )

    @pytest.mark.skipif(NON_FORK is None, reason="only fork available")
    @settings(max_examples=2, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(min_value=0, max_value=2**16),
           fraction=st.sampled_from([0.01, 0.03, 0.08]))
    def test_hypothesis_grid_configs(self, seed, fraction):
        trace = _make_trace(seed=seed, n_objects=700, days=1.5)
        kw = dict(fractions=[fraction], policies=("lru", "fifo"))
        inline = GridRunner(trace, **kw)
        inline.precompute(start_method="inline")
        parallel = GridRunner(trace, **kw)
        parallel.precompute(max_workers=2, start_method=NON_FORK)
        assert _grid_fingerprint(parallel) == _grid_fingerprint(inline)

    def test_no_trace_serialisation(self, trace, no_new_shm_blocks):
        method = NON_FORK or PARALLEL[0]
        runner = GridRunner(trace, **_GRID_KW)
        reset_trace_pickle_count()
        # Sanity: the counter does observe trace pickles.
        pickle.dumps(trace)
        assert trace_pickle_count() == 1
        reset_trace_pickle_count()
        runner.precompute(max_workers=2, start_method=method)
        # Submissions serialise in this (parent) process: zero Trace
        # pickles means workers got the trace through shared memory only.
        assert trace_pickle_count() == 0

    def test_trace_pickle_excludes_cached_plan(self, trace):
        plan = SegmentPlan.for_trace(trace)
        clone = pickle.loads(pickle.dumps(trace))
        assert getattr(clone, "_segment_plan", None) is None
        rebuilt = SegmentPlan.for_trace(clone)
        assert rebuilt is not plan
        np.testing.assert_array_equal(
            rebuilt.export_arrays()["demand"],
            plan.export_arrays()["demand"],
        )

    def test_resolve_start_method(self, monkeypatch):
        monkeypatch.delenv(grid_mod.START_METHOD_ENV, raising=False)
        assert resolve_start_method(None) is None
        assert resolve_start_method("inline") == "inline"
        monkeypatch.setenv(grid_mod.START_METHOD_ENV, PARALLEL[0])
        assert resolve_start_method(None) == PARALLEL[0]
        assert resolve_start_method("inline") == "inline"  # arg wins
        with pytest.raises(ValueError):
            resolve_start_method("mystery-method")

    def test_env_var_drives_precompute(self, trace, monkeypatch,
                                       no_new_shm_blocks):
        method = NON_FORK or PARALLEL[0]
        monkeypatch.setenv(grid_mod.START_METHOD_ENV, method)
        runner = GridRunner(
            trace, fractions=[0.02], policies=("lru",)
        )
        runner.precompute(max_workers=2)
        assert runner._blocks


# --------------------------------------------------------------------------
# Explicit worker initialisation (the fork-inheritance bug, fixed)
# --------------------------------------------------------------------------


class TestWorkerInit:
    def test_worker_init_populates_state_zero_copy(self, trace):
        plan = SegmentPlan.for_trace(trace)
        features = extract_features(trace)
        distances = reaccess_distances(trace.object_ids)
        buffer = SharedTraceBuffer.create(
            trace, plan=plan, features=features, distances=distances
        )
        saved = dict(grid_mod._WORKER)
        try:
            grid_mod._worker_init(buffer.handle, ("lru",), True)
            worker = grid_mod._WORKER
            assert worker["policies"] == ("lru",)
            assert worker["use_segments"] is True
            # Explicitly installed plan: no recompute on first use.
            installed = SegmentPlan.for_trace(worker["trace"])
            assert installed is worker["buffer"].plan
            # All heavy state is shared views, not copies.
            shared = worker["buffer"].block_names
            assert shared  # the buffer really lives in shared memory
            assert not worker["features"].X.flags.writeable
            assert not worker["distances"].flags.writeable
            np.testing.assert_array_equal(
                worker["trace"].accesses, trace.accesses
            )
            worker["buffer"].close()
        finally:
            grid_mod._WORKER.clear()
            grid_mod._WORKER.update(saved)
            buffer.close()

    def test_worker_init_derives_missing_state(self, trace):
        # A handle without features/distances/plan still initialises; the
        # worker derives them itself (explicitly, never via inheritance).
        buffer = SharedTraceBuffer.create(trace)
        saved = dict(grid_mod._WORKER)
        try:
            grid_mod._worker_init(buffer.handle, ("lru",), False)
            worker = grid_mod._WORKER
            assert worker["features"].X.shape[0] == trace.n_accesses
            assert worker["distances"].shape[0] == trace.n_accesses
            worker["buffer"].close()
        finally:
            grid_mod._WORKER.clear()
            grid_mod._WORKER.update(saved)
            buffer.close()


# --------------------------------------------------------------------------
# Leak tests
# --------------------------------------------------------------------------


def _kill_self(*_args):
    os.kill(os.getpid(), signal.SIGKILL)


class TestLeaks:
    def test_normal_completion_unlinks(self, trace, no_new_shm_blocks):
        runner = GridRunner(trace, fractions=[0.02], policies=("lru",))
        runner.precompute(
            max_workers=2, start_method=NON_FORK or PARALLEL[0]
        )

    def test_worker_exception_unlinks(self, trace, no_new_shm_blocks):
        runner = GridRunner(
            trace, fractions=[0.02], policies=("lru", "not-a-policy")
        )
        with pytest.raises(ValueError):
            runner.precompute(
                max_workers=2, start_method=NON_FORK or PARALLEL[0]
            )

    @pytest.mark.skipif("fork" not in MP_METHODS, reason="needs fork")
    def test_sigkilled_grid_worker_unlinks(self, trace, monkeypatch,
                                           no_new_shm_blocks):
        # fork inherits the monkeypatch, so the real precompute path runs
        # right up to the moment its worker dies mid-task.
        monkeypatch.setattr(grid_mod, "_compute_block_worker", _kill_self)
        runner = GridRunner(trace, fractions=[0.02], policies=("lru",))
        with pytest.raises(BrokenProcessPool):
            runner.precompute(max_workers=2, start_method="fork")

    @pytest.mark.skipif(NON_FORK is None, reason="only fork available")
    def test_sigkilled_spawn_worker_unlinks(self, trace, no_new_shm_blocks):
        buffer = SharedTraceBuffer.create(trace)
        created = set(buffer.block_names)
        try:
            ctx = multiprocessing.get_context(NON_FORK)
            with pytest.raises(BrokenProcessPool):
                with ProcessPoolExecutor(
                    max_workers=1,
                    mp_context=ctx,
                    initializer=grid_mod._worker_init,
                    initargs=(buffer.handle, ("lru",), True),
                ) as pool:
                    pool.submit(_kill_self).result()
        finally:
            buffer.unlink()
        blocks = _shm_blocks()
        if blocks is not None:
            assert not (created & blocks)
