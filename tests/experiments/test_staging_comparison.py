"""Tests for the classifier / flashiness / composed head-to-head sweep."""

import pytest

from repro.experiments.staging import (
    HIT_RATE_SLACK,
    SCHEMES,
    StagingComparison,
    StagingPoint,
    SchemeOutcome,
    check_write_ordering,
    format_staging_table,
    run_staging_comparison,
)
from repro.trace import WorkloadConfig, generate_trace


@pytest.fixture(scope="module")
def trace():
    return generate_trace(WorkloadConfig(n_objects=1500, days=1.5, seed=5))


@pytest.fixture(scope="module")
def comparison(trace):
    return run_staging_comparison(trace, fractions=(0.02, 0.05))


class TestRunStagingComparison:
    def test_shape(self, trace, comparison):
        assert [p.fraction for p in comparison.points] == [0.02, 0.05]
        assert comparison.n_requests == len(trace.object_ids)
        assert comparison.footprint_bytes == trace.footprint_bytes
        for point in comparison.points:
            assert set(point.outcomes) == set(SCHEMES)
            assert point.capacity_bytes == max(
                1, int(trace.footprint_bytes * point.fraction)
            )

    def test_schemes_behave_distinctly(self, comparison):
        for point in comparison.points:
            o = point.outcomes
            # The write-avoidance ordering the module exists to produce.
            assert o["classifier"].ssd_writes < o["no-admission"].ssd_writes
            assert o["flashiness"].ssd_writes < o["no-admission"].ssd_writes
            # Denials only happen where a classifier is attached.
            assert o["no-admission"].denied == 0
            assert o["flashiness"].denied == 0
            assert o["classifier"].denied > 0
            assert o["composed"].denied > 0
            # Promotions only happen where a staging tier is attached.
            assert o["no-admission"].promotions == 0
            assert o["flashiness"].promotions > 0
            assert o["composed"].promotions > 0

    def test_device_metrics_populated(self, comparison):
        for point in comparison.points:
            for o in point.outcomes.values():
                assert o.write_amplification >= 1.0
                assert 0.0 <= o.cmt_miss_rate <= 1.0
                assert o.cmt_lookups > 0
                assert o.lifetime_days > 0.0

    def test_write_ordering_contract_holds(self, comparison):
        # The write ordering is structural (composed admits a strict
        # subset) and must hold at any scale; the default 0.02 hit-rate
        # slack is priced for the CLI-default workload, so this 1.5k-object
        # fixture gets a wider one.
        for point in comparison.points:
            o = point.outcomes
            assert o["composed"].ssd_writes <= o["classifier"].ssd_writes
            assert o["composed"].ssd_writes <= o["flashiness"].ssd_writes
        assert check_write_ordering(comparison, hit_rate_slack=0.05) == []

    def test_to_dict_round_trips_schemes(self, comparison):
        d = comparison.to_dict()
        assert d["flashiness_threshold"] == 1
        assert d["learned_flashiness"] is False
        for point, pd in zip(comparison.points, d["points"]):
            assert pd["fraction"] == point.fraction
            for scheme in SCHEMES:
                assert (
                    pd["schemes"][scheme]["ssd_writes"]
                    == point.outcomes[scheme].ssd_writes
                )

    def test_table_lists_every_scheme_per_point(self, comparison):
        table = format_staging_table(comparison)
        for scheme in SCHEMES:
            assert table.count(scheme) == len(comparison.points)
        assert "life(d)" in table


class TestCheckWriteOrdering:
    def _comparison(self, composed, classifier, flashiness):
        def outcome(scheme, hit_rate, writes):
            return SchemeOutcome(
                scheme=scheme, hit_rate=hit_rate, byte_hit_rate=hit_rate,
                ssd_writes=writes, bytes_written=writes * 100,
                write_amplification=1.0, erases=1, cmt_miss_rate=0.5,
                cmt_lookups=10, lifetime_days=100.0, denied=0,
                promotions=0, direct_admits=0,
            )

        outcomes = {
            "no-admission": outcome("no-admission", 0.5, 10_000),
            "classifier": outcome("classifier", *classifier),
            "flashiness": outcome("flashiness", *flashiness),
            "composed": outcome("composed", *composed),
        }
        point = StagingPoint(
            fraction=0.02, capacity_bytes=1_000, outcomes=outcomes
        )
        return StagingComparison(
            points=[point], footprint_bytes=50_000, n_requests=1_000,
            flashiness_threshold=1, dram_fraction=0.05,
            learned_flashiness=False,
        )

    def test_clean_comparison_passes(self):
        comp = self._comparison(
            composed=(0.30, 400), classifier=(0.50, 4_000),
            flashiness=(0.31, 450),
        )
        assert check_write_ordering(comp) == []

    def test_write_excess_over_either_mechanism_flagged(self):
        comp = self._comparison(
            composed=(0.30, 5_000), classifier=(0.50, 4_000),
            flashiness=(0.31, 450),
        )
        problems = check_write_ordering(comp)
        assert len(problems) == 2
        assert any("classifier" in p for p in problems)
        assert any("flashiness" in p for p in problems)

    def test_hit_rate_floor_uses_slack(self):
        # floor = min(0.50, 0.31) - 0.02 = 0.29
        passing = self._comparison(
            composed=(0.295, 400), classifier=(0.50, 4_000),
            flashiness=(0.31, 450),
        )
        assert check_write_ordering(passing) == []
        failing = self._comparison(
            composed=(0.28, 400), classifier=(0.50, 4_000),
            flashiness=(0.31, 450),
        )
        problems = check_write_ordering(failing)
        assert problems and "hit rate" in problems[0]

    def test_custom_slack_overrides_default(self):
        comp = self._comparison(
            composed=(0.28, 400), classifier=(0.50, 4_000),
            flashiness=(0.31, 450),
        )
        assert check_write_ordering(comp, hit_rate_slack=0.05) == []
        assert HIT_RATE_SLACK == pytest.approx(0.02)
