"""Tests for the experiment orchestration layer (grid + shared memory)."""
