"""Tests for wear statistics and the endurance/lifetime model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ssd import EnduranceModel, SSDGeometry, WearStats
from repro.ssd.endurance import write_density_ratio


class TestWearStats:
    def test_from_counts(self):
        w = WearStats.from_erase_counts([1, 2, 3, 4])
        assert w.mean_erases == 2.5
        assert w.max_erases == 4
        assert w.min_erases == 1
        assert w.spread == 3
        assert w.n_blocks == 4

    def test_perfect_levelling(self):
        w = WearStats.from_erase_counts([5, 5, 5])
        assert w.levelling_efficiency == 1.0
        assert w.spread == 0

    def test_unworn_device(self):
        w = WearStats.from_erase_counts([0, 0])
        assert w.levelling_efficiency == 1.0

    def test_bad_levelling_low_efficiency(self):
        w = WearStats.from_erase_counts([0, 0, 0, 100])
        assert w.levelling_efficiency == pytest.approx(0.25)

    def test_invalid(self):
        with pytest.raises(ValueError):
            WearStats.from_erase_counts([])
        with pytest.raises(ValueError):
            WearStats.from_erase_counts([-1])

    @given(st.lists(st.integers(0, 10_000), min_size=1, max_size=50))
    @settings(max_examples=50)
    def test_efficiency_bounded(self, counts):
        w = WearStats.from_erase_counts(counts)
        assert 0.0 < w.levelling_efficiency <= 1.0
        assert w.min_erases <= w.mean_erases <= w.max_erases


class TestEnduranceModel:
    @pytest.fixture
    def model(self):
        return EnduranceModel(
            SSDGeometry(user_bytes=2**30, pe_cycle_limit=3000)
        )

    def test_budget_scales_with_pe_limit(self):
        g1 = SSDGeometry(user_bytes=2**30, pe_cycle_limit=1000)
        g2 = SSDGeometry(user_bytes=2**30, pe_cycle_limit=3000)
        b1 = EnduranceModel(g1).program_budget_bytes()
        b2 = EnduranceModel(g2).program_budget_bytes()
        assert b2 == pytest.approx(3 * b1)

    def test_lifetime_inverse_in_traffic(self, model):
        slow = model.lifetime(2**30)
        fast = model.lifetime(4 * 2**30)
        assert slow.lifetime_days == pytest.approx(4 * fast.lifetime_days)

    def test_write_amplification_shortens_life(self, model):
        clean = model.lifetime(2**30, write_amplification=1.0)
        dirty = model.lifetime(2**30, write_amplification=2.5)
        assert clean.ratio_vs(dirty) == pytest.approx(2.5)

    def test_wear_derates_budget(self, model):
        even = model.lifetime(2**30)
        uneven = model.lifetime(
            2**30, wear=WearStats.from_erase_counts([1, 1, 1, 10])
        )
        assert uneven.lifetime_days < even.lifetime_days

    def test_write_reduction_extends_life_proportionally(self, model):
        """The paper's headline: 79% fewer writes ⇒ ~4.8× lifetime."""
        base = model.lifetime(2**30)
        reduced = model.lifetime(int(2**30 * (1 - 0.79)))
        assert reduced.ratio_vs(base) == pytest.approx(1 / 0.21, rel=0.01)

    def test_invalid(self, model):
        with pytest.raises(ValueError):
            model.lifetime(0)
        with pytest.raises(ValueError):
            model.lifetime(1, write_amplification=0.5)
        with pytest.raises(ValueError):
            model.program_budget_bytes(levelling_efficiency=0.0)


class TestWriteDensity:
    def test_paper_example_twenty_to_one(self):
        """§1: 1 TB SSD cache vs 10×2 TB HDD backend ⇒ ~20:1."""
        ratio = write_density_ratio(
            cache_bytes=1e12, backend_bytes=20e12, cache_write_fraction=1.0
        )
        assert ratio == pytest.approx(20.0)

    def test_admission_filter_lowers_density(self):
        full = write_density_ratio(1e12, 20e12, 1.0)
        filtered = write_density_ratio(1e12, 20e12, 0.21)  # −79% writes
        assert filtered == pytest.approx(full * 0.21)

    def test_invalid(self):
        with pytest.raises(ValueError):
            write_density_ratio(0, 1, 1)
        with pytest.raises(ValueError):
            write_density_ratio(1, 1, 0.0)
