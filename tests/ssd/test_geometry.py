"""Tests for SSD geometry derivations."""

import pytest

from repro.ssd import SSDGeometry


class TestGeometry:
    def test_derived_quantities(self):
        g = SSDGeometry(user_bytes=2**20, page_bytes=4096, pages_per_block=64)
        assert g.block_bytes == 4096 * 64
        assert g.user_pages == 256
        assert g.n_blocks >= 256 // 64 + 2
        assert g.total_pages == g.n_blocks * g.pages_per_block

    def test_physical_exceeds_user(self):
        g = SSDGeometry(user_bytes=2**24, page_bytes=4096, pages_per_block=64)
        assert g.total_pages * g.page_bytes > g.user_pages * g.page_bytes

    def test_user_pages_ceil(self):
        g = SSDGeometry(user_bytes=4097, page_bytes=4096, pages_per_block=64)
        assert g.user_pages == 2

    def test_pages_for(self):
        g = SSDGeometry(user_bytes=2**20, page_bytes=4096, pages_per_block=64)
        assert g.pages_for(1) == 1
        assert g.pages_for(4096) == 1
        assert g.pages_for(4097) == 2
        with pytest.raises(ValueError):
            g.pages_for(0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(user_bytes=0),
            dict(user_bytes=100, page_bytes=0),
            dict(user_bytes=100, overprovision=1.0),
            dict(user_bytes=100, pe_cycle_limit=0),
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            SSDGeometry(**kwargs)

    def test_even_tiny_devices_get_spare_blocks(self):
        # The +2 spare rule guarantees GC always has a destination block.
        g = SSDGeometry(user_bytes=10, page_bytes=16384, pages_per_block=256)
        assert g.n_blocks >= 3
