"""Tests for the page-mapped FTL: mapping, GC, TRIM, wear."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ssd import SSDGeometry, PageMappedFTL
from repro.ssd.ftl import DeviceFullError


def tiny_geometry(user_kb=64, page=1024, ppb=8, op=0.25):
    return SSDGeometry(
        user_bytes=user_kb * 1024,
        page_bytes=page,
        pages_per_block=ppb,
        overprovision=op,
    )


class TestBasicMapping:
    def test_write_maps_page(self):
        ftl = PageMappedFTL(tiny_geometry())
        ftl.write(0)
        assert ftl.is_mapped(0)
        assert ftl.stats.host_pages_written == 1
        assert ftl.stats.nand_pages_written == 1

    def test_overwrite_invalidates_old(self):
        ftl = PageMappedFTL(tiny_geometry())
        ftl.write(5)
        ftl.write(5)
        assert ftl.valid_pages == 1
        assert ftl.stats.nand_pages_written == 2
        ftl.check_invariants()

    def test_trim_unmaps(self):
        ftl = PageMappedFTL(tiny_geometry())
        ftl.write(3)
        ftl.trim(3)
        assert not ftl.is_mapped(3)
        assert ftl.stats.trims == 1
        assert ftl.valid_pages == 0

    def test_trim_unmapped_is_noop(self):
        ftl = PageMappedFTL(tiny_geometry())
        ftl.trim(3)
        assert ftl.stats.trims == 0

    def test_write_range(self):
        ftl = PageMappedFTL(tiny_geometry())
        ftl.write_range(0, 10)
        assert ftl.valid_pages == 10
        assert all(ftl.is_mapped(i) for i in range(10))

    def test_out_of_range_rejected(self):
        ftl = PageMappedFTL(tiny_geometry())
        with pytest.raises(ValueError):
            ftl.write(10**9)
        with pytest.raises(ValueError):
            ftl.trim(-1)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            PageMappedFTL(tiny_geometry(), wear_leveling="magic")
        with pytest.raises(ValueError):
            PageMappedFTL(tiny_geometry(), static_wl_spread=0)


class TestGarbageCollection:
    def test_gc_reclaims_overwritten_space(self):
        """Repeated overwrites of a small working set must run forever."""
        ftl = PageMappedFTL(tiny_geometry())
        for i in range(2000):
            ftl.write(i % 16)
        assert ftl.stats.erases > 0
        assert ftl.valid_pages == 16
        ftl.check_invariants()

    def test_write_amplification_at_least_one(self):
        ftl = PageMappedFTL(tiny_geometry())
        for i in range(1000):
            ftl.write(i % 32)
        assert ftl.stats.write_amplification >= 1.0
        assert (
            ftl.stats.nand_pages_written
            == ftl.stats.host_pages_written + ftl.stats.gc_pages_relocated
        )

    def test_sequential_overwrite_has_low_wa(self):
        """Whole-device sequential rewrites leave victims fully invalid."""
        # Big enough that the two pinned append points (host + GC stream)
        # don't consume the over-provisioning headroom.
        g = tiny_geometry(user_kb=64, op=0.5)
        ftl = PageMappedFTL(g)
        for _ in range(6):
            for lpn in range(g.user_pages):
                ftl.write(lpn)
        assert ftl.stats.write_amplification < 1.2

    def test_trim_reduces_wa_vs_no_trim(self):
        """The cache's eviction TRIMs are what keep GC cheap."""
        g = tiny_geometry(user_kb=32, op=0.25)
        rng = np.random.default_rng(0)
        ops = rng.integers(0, g.user_pages, 4000)

        with_trim = PageMappedFTL(g)
        live = set()
        for lpn in ops:
            lpn = int(lpn)
            if lpn in live:
                with_trim.trim(lpn)
                live.discard(lpn)
            else:
                with_trim.write(lpn)
                live.add(lpn)

        without = PageMappedFTL(g)
        for lpn in ops:  # same stream, overwrites instead of trims
            without.write(int(lpn))

        assert (
            with_trim.stats.write_amplification
            <= without.stats.write_amplification
        )

    def test_device_never_fills_under_valid_addressing(self):
        """Geometry reserves physical > logical space, so any in-range
        workload (writes always invalidate their predecessor) must never
        raise DeviceFullError."""
        g = tiny_geometry(user_kb=16, op=0.05)
        ftl = PageMappedFTL(g)
        for i in range(5000):
            ftl.write(i % g.user_pages)
        ftl.check_invariants()
        assert issubclass(DeviceFullError, RuntimeError)

    def test_invariants_after_random_workload(self):
        rng = np.random.default_rng(1)
        g = tiny_geometry()
        ftl = PageMappedFTL(g)
        live = set()
        for op, lpn in zip(rng.random(5000), rng.integers(0, g.user_pages, 5000)):
            lpn = int(lpn)
            if op < 0.7:
                ftl.write(lpn)
                live.add(lpn)
            elif lpn in live:
                ftl.trim(lpn)
                live.discard(lpn)
        ftl.check_invariants()
        assert ftl.valid_pages == len(live)


class TestWearLevelling:
    def _hammer(self, wear_leveling, n=6000):
        g = tiny_geometry(user_kb=64, op=0.25)
        ftl = PageMappedFTL(g, wear_leveling=wear_leveling, static_wl_spread=4)
        # Skewed workload: hammer a few pages, keep many pages cold.
        for lpn in range(g.user_pages):
            ftl.write(lpn)  # cold data everywhere
        for i in range(n):
            ftl.write(i % 4)  # hot set
        return ftl

    def test_dynamic_no_worse_than_none(self):
        none = self._hammer("none")
        dyn = self._hammer("dynamic")
        spread_none = none.erase_counts.max() - none.erase_counts.min()
        spread_dyn = dyn.erase_counts.max() - dyn.erase_counts.min()
        assert spread_dyn <= spread_none + 2

    def test_static_moves_cold_blocks(self):
        static = self._hammer("static")
        dyn = self._hammer("dynamic")
        # Static WL must touch (erase) strictly more distinct blocks.
        assert (static.erase_counts > 0).sum() >= (dyn.erase_counts > 0).sum()

    def test_erase_counts_shape(self):
        ftl = self._hammer("dynamic", n=100)
        assert ftl.erase_counts.shape == (ftl.geometry.n_blocks,)


class TestMultiStream:
    def test_streams_use_disjoint_blocks(self):
        g = tiny_geometry(user_kb=64, op=0.5)
        ftl = PageMappedFTL(g, n_streams=2)
        for lpn in range(8):
            ftl.write(lpn, stream=0)
        for lpn in range(8, 16):
            ftl.write(lpn, stream=1)
        ppb = g.pages_per_block
        blocks0 = {int(ftl._l2p[lpn]) // ppb for lpn in range(8)}
        blocks1 = {int(ftl._l2p[lpn]) // ppb for lpn in range(8, 16)}
        assert blocks0.isdisjoint(blocks1)

    def test_stream_separation_lowers_wa_on_mixed_lifetimes(self):
        """Short-lived and long-lived data mixed in one stream forces GC to
        relocate the long-lived pages over and over; separating them lets
        blocks die whole."""
        # Classic skewed-update pattern, *temporally interleaved* so hot and
        # cold pages land in the same blocks when only one stream exists:
        # 90% of writes hammer a small hot set, 10% trickle over a large
        # cold set.
        g = tiny_geometry(user_kb=128, op=0.25)
        hot_n = 16
        live = int(g.user_pages * 0.8)

        def run(n_streams, router):
            ftl = PageMappedFTL(g, n_streams=n_streams)
            rng = np.random.default_rng(0)
            for _ in range(10_000):
                if rng.random() < 0.9:
                    lpn = int(rng.integers(0, hot_n))
                else:
                    lpn = int(rng.integers(hot_n, live))
                ftl.write(lpn, router(lpn))
            return ftl.stats.write_amplification

        mixed = run(1, lambda lpn: 0)
        separated = run(2, lambda lpn: 0 if lpn < hot_n else 1)
        assert separated < mixed - 0.05

    def test_stream_out_of_range(self):
        ftl = PageMappedFTL(tiny_geometry(), n_streams=2)
        with pytest.raises(ValueError):
            ftl.write(0, stream=2)
        with pytest.raises(ValueError):
            ftl.write(0, stream=-1)

    def test_invalid_stream_count(self):
        with pytest.raises(ValueError):
            PageMappedFTL(tiny_geometry(), n_streams=0)
        with pytest.raises(ValueError, match="too small"):
            PageMappedFTL(tiny_geometry(user_kb=8, ppb=8), n_streams=20)

    def test_invariants_hold_across_streams(self):
        g = tiny_geometry(user_kb=64, op=0.3)
        ftl = PageMappedFTL(g, n_streams=3)
        rng = np.random.default_rng(5)
        # Touch only ~70% of the logical space: 3 host streams + the GC
        # stream pin 4 partially-filled blocks, so full logical utilisation
        # would exceed the physical space (a genuine DeviceFull).
        hot = int(g.user_pages * 0.7)
        for lpn, s in zip(
            rng.integers(0, hot, 4000), rng.integers(0, 3, 4000)
        ):
            ftl.write(int(lpn), int(s))
        ftl.check_invariants()


class TestConservationProperties:
    """Flash conservation laws over random host op streams."""

    op_streams = st.lists(
        st.tuples(st.booleans(), st.integers(0, 31)),
        min_size=1,
        max_size=400,
    )

    @staticmethod
    def _replay(ops, cmt_capacity=None):
        from repro.ssd import MappingTableCache

        g = SSDGeometry(
            user_bytes=32 * 1024,
            page_bytes=1024,
            pages_per_block=8,
            overprovision=0.3,
        )
        cmt = (
            MappingTableCache(cmt_capacity)
            if cmt_capacity is not None
            else None
        )
        ftl = PageMappedFTL(g, cmt=cmt)
        for is_write, lpn in ops:
            if is_write:
                ftl.write(lpn)
            else:
                ftl.trim(lpn)
        return ftl

    @given(ops=op_streams)
    @settings(max_examples=40, deadline=None)
    def test_nand_programs_conserved(self, ops):
        """Host pages + GC relocations == NAND page programs, always."""
        ftl = self._replay(ops)
        s = ftl.stats
        assert (
            s.nand_pages_written == s.host_pages_written + s.gc_pages_relocated
        )

    @given(ops=op_streams)
    @settings(max_examples=40, deadline=None)
    def test_write_amplification_at_least_one(self, ops):
        ftl = self._replay(ops)
        if ftl.stats.host_pages_written:
            assert ftl.stats.write_amplification >= 1.0

    @given(ops=op_streams)
    @settings(max_examples=40, deadline=None)
    def test_trim_never_resurrects_a_mapping(self, ops):
        """After a trim, the lpn stays unmapped until the next write."""
        ftl = self._replay(ops)
        last_op: dict[int, bool] = {}
        for is_write, lpn in ops:
            last_op[lpn] = is_write
        for lpn, was_write in last_op.items():
            assert ftl.is_mapped(lpn) == was_write
        ftl.check_invariants()

    @given(ops=op_streams, cmt_capacity=st.integers(1, 24))
    @settings(max_examples=40, deadline=None)
    def test_cmt_accounts_every_translation(self, ops, cmt_capacity):
        """CMT hits + misses == translation lookups == host ops."""
        ftl = self._replay(ops, cmt_capacity=cmt_capacity)
        s = ftl.cmt.stats
        assert s.hits + s.misses == s.lookups
        assert s.lookups == ftl.stats.translation_lookups == len(ops)


class TestPropertyBased:
    @given(
        ops=st.lists(
            st.tuples(st.booleans(), st.integers(0, 31)),
            min_size=1,
            max_size=400,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_mapping_matches_reference_model(self, ops):
        """The FTL must agree with a trivial dict model of live pages."""
        g = SSDGeometry(
            user_bytes=32 * 1024,
            page_bytes=1024,
            pages_per_block=8,
            overprovision=0.3,
        )
        ftl = PageMappedFTL(g)
        live = set()
        for is_write, lpn in ops:
            if is_write:
                ftl.write(lpn)
                live.add(lpn)
            else:
                ftl.trim(lpn)
                live.discard(lpn)
        assert ftl.valid_pages == len(live)
        for lpn in range(32):
            assert ftl.is_mapped(lpn) == (lpn in live)
        ftl.check_invariants()
