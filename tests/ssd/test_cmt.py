"""Cached mapping table (DFTL-style CMT) tests.

The CMT is accounting-only: it observes every host-visible translation
(writes and TRIMs) and models the DRAM pressure of the mapping table,
but never changes FTL behaviour.  The conservation suite pins
``hits + misses == lookups == ftl.stats.translation_lookups``.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ssd import MappingTableCache, PageMappedFTL, SSDGeometry
from repro.ssd.cache_device import CacheSSD


def tiny_geometry(user_kb=64, page=1024, ppb=8, op=0.25):
    return SSDGeometry(
        user_bytes=user_kb * 1024,
        page_bytes=page,
        pages_per_block=ppb,
        overprovision=op,
    )


class TestMappingTableCache:
    def test_validation(self):
        with pytest.raises(ValueError):
            MappingTableCache(0)
        with pytest.raises(ValueError):
            MappingTableCache(4, miss_penalty_us=-1.0)

    def test_miss_then_hit(self):
        cmt = MappingTableCache(4)
        assert cmt.lookup(1) is False
        assert cmt.lookup(1) is True
        assert cmt.stats.lookups == 2
        assert cmt.stats.hits == 1
        assert cmt.stats.misses == 1
        assert cmt.stats.hit_rate == 0.5
        assert cmt.stats.miss_rate == 0.5

    def test_lru_eviction(self):
        cmt = MappingTableCache(2)
        cmt.lookup(1)
        cmt.lookup(2)
        cmt.lookup(3)  # evicts 1
        assert cmt.stats.evictions == 1
        assert 1 not in cmt and 2 in cmt and 3 in cmt
        assert len(cmt) == 2

    def test_hit_refreshes_recency(self):
        cmt = MappingTableCache(2)
        cmt.lookup(1)
        cmt.lookup(2)
        cmt.lookup(1)  # 2 is now the LRU entry
        cmt.lookup(3)
        assert 1 in cmt and 2 not in cmt

    def test_added_latency(self):
        cmt = MappingTableCache(4, miss_penalty_us=10.0)
        cmt.lookup(1)
        cmt.lookup(1)
        cmt.lookup(2)
        assert cmt.added_latency_us == 20.0

    def test_occupancy_and_reset(self):
        cmt = MappingTableCache(4)
        cmt.lookup(1)
        cmt.lookup(2)
        assert cmt.occupancy == 0.5
        cmt.reset()
        assert len(cmt) == 0
        assert cmt.stats.lookups == 0

    @given(
        lpns=st.lists(st.integers(0, 40), min_size=1, max_size=400),
        capacity=st.integers(1, 16),
    )
    @settings(max_examples=60, deadline=None)
    def test_conservation_and_capacity(self, lpns, capacity):
        cmt = MappingTableCache(capacity)
        for lpn in lpns:
            cmt.lookup(lpn)
        s = cmt.stats
        assert s.hits + s.misses == s.lookups == len(lpns)
        assert len(cmt) <= capacity
        assert s.evictions == s.misses - len(cmt)


class TestFTLIntegration:
    def test_writes_and_trims_count_translations(self):
        ftl = PageMappedFTL(tiny_geometry(), cmt=MappingTableCache(8))
        ftl.write(0)
        ftl.write(1)
        ftl.trim(0)
        ftl.trim(0)  # no-op trim is still one translation
        assert ftl.stats.translation_lookups == 4
        assert ftl.cmt.stats.lookups == 4

    def test_translation_counter_without_cmt(self):
        ftl = PageMappedFTL(tiny_geometry())
        ftl.write(0)
        ftl.trim(0)
        assert ftl.cmt is None
        assert ftl.stats.translation_lookups == 2

    def test_gc_relocations_bypass_cmt(self):
        """GC is serviced from the victim block's reverse map, never
        through the host translation path."""
        g = tiny_geometry()
        ftl = PageMappedFTL(g, cmt=MappingTableCache(8))
        for lpn in range(g.user_pages):
            ftl.write(lpn)  # cold data everywhere
        for i in range(2000):
            ftl.write(i % 4)  # hot set forces GC to relocate cold pages
        assert ftl.stats.gc_pages_relocated > 0
        assert ftl.cmt.stats.lookups == ftl.stats.host_pages_written

    def test_cmt_never_changes_ftl_behaviour(self):
        """Identical op stream with and without a CMT: same FTL stats."""
        import numpy as np

        rng = np.random.default_rng(3)
        g = tiny_geometry()
        ops = list(zip(rng.random(3000), rng.integers(0, g.user_pages, 3000)))

        def run(cmt):
            ftl = PageMappedFTL(g, cmt=cmt)
            live = set()
            for p, lpn in ops:
                lpn = int(lpn)
                if p < 0.7:
                    ftl.write(lpn)
                    live.add(lpn)
                elif lpn in live:
                    ftl.trim(lpn)
                    live.discard(lpn)
            return ftl

        plain = run(None)
        cached = run(MappingTableCache(16))
        assert plain.stats == cached.stats
        plain.check_invariants()
        cached.check_invariants()

    @given(
        ops=st.lists(
            st.tuples(st.booleans(), st.integers(0, 31)),
            min_size=1,
            max_size=300,
        ),
        capacity=st.integers(1, 24),
    )
    @settings(max_examples=40, deadline=None)
    def test_cmt_conservation_against_ftl(self, ops, capacity):
        """Every host op is exactly one translation, hit or miss."""
        g = SSDGeometry(
            user_bytes=32 * 1024,
            page_bytes=1024,
            pages_per_block=8,
            overprovision=0.3,
        )
        ftl = PageMappedFTL(g, cmt=MappingTableCache(capacity))
        for is_write, lpn in ops:
            if is_write:
                ftl.write(lpn)
            else:
                ftl.trim(lpn)
        s = ftl.cmt.stats
        assert s.hits + s.misses == s.lookups
        assert s.lookups == ftl.stats.translation_lookups == len(ops)


class TestCacheDeviceWiring:
    def test_for_capacity_builds_cmt(self):
        dev = CacheSSD.for_capacity(1 << 20, mean_object_bytes=4096.0, cmt_fraction=0.25)
        assert dev.cmt is not None
        expected = max(1, int(dev.ftl.geometry.user_pages * 0.25))
        assert dev.cmt.capacity_entries == expected

    def test_cmt_disabled(self):
        dev = CacheSSD.for_capacity(1 << 20, mean_object_bytes=4096.0, cmt_fraction=None)
        assert dev.cmt is None

    def test_cmt_fraction_validated(self):
        with pytest.raises(ValueError):
            CacheSSD.for_capacity(1 << 20, mean_object_bytes=4096.0, cmt_fraction=0.0)
        with pytest.raises(ValueError):
            CacheSSD.for_capacity(1 << 20, mean_object_bytes=4096.0, cmt_fraction=1.5)
