"""Tests for the cache → SSD adapter and the combined simulation."""

import pytest

from repro.cache import LRUCache, simulate
from repro.core.admission import AlwaysAdmit, OracleAdmission
from repro.core.labeling import one_time_labels
from repro.ssd import CacheSSD, SSDGeometry, simulate_on_ssd
from repro.trace import WorkloadConfig, generate_trace


@pytest.fixture(scope="module")
def trace():
    return generate_trace(WorkloadConfig(n_objects=3000, days=2.0, seed=51))


class TestCacheSSD:
    def _device(self):
        return CacheSSD(
            SSDGeometry(user_bytes=2**22, page_bytes=4096, pages_per_block=32)
        )

    def test_insert_programs_pages(self):
        dev = self._device()
        dev.on_insert(1, 10_000)  # 3 pages at 4 KiB
        assert dev.ftl.stats.host_pages_written == 3
        assert dev.resident_objects == 1

    def test_evict_trims_pages(self):
        dev = self._device()
        dev.on_insert(1, 10_000)
        dev.on_evict(1)
        assert dev.ftl.stats.trims == 3
        assert dev.resident_objects == 0
        assert dev.ftl.valid_pages == 0

    def test_pages_recycled(self):
        dev = self._device()
        for round_ in range(200):
            dev.on_insert(round_, 8000)
            dev.on_evict(round_)
        dev.ftl.check_invariants()

    def test_double_insert_rejected(self):
        dev = self._device()
        dev.on_insert(1, 100)
        with pytest.raises(RuntimeError, match="twice"):
            dev.on_insert(1, 100)

    def test_unknown_evict_rejected(self):
        dev = self._device()
        with pytest.raises(RuntimeError, match="unknown"):
            dev.on_evict(99)

    def test_pool_exhaustion_is_loud(self):
        dev = CacheSSD(
            SSDGeometry(user_bytes=2**15, page_bytes=4096, pages_per_block=4)
        )
        with pytest.raises(RuntimeError, match="pool exhausted"):
            for i in range(100):
                dev.on_insert(i, 4096)

    def test_for_capacity_sizing(self):
        dev = CacheSSD.for_capacity(2**24, mean_object_bytes=40_000)
        assert dev.geometry.user_bytes > 2**24
        with pytest.raises(ValueError):
            CacheSSD.for_capacity(0, mean_object_bytes=1)

    def test_for_capacity_shrinks_blocks_for_tiny_devices(self):
        dev = CacheSSD.for_capacity(
            2**22, mean_object_bytes=40_000, n_streams=2,
            temperature=lambda oid, size: 0,
        )
        assert dev.geometry.n_blocks >= 16

    def test_temperature_routes_streams(self):
        dev = CacheSSD(
            SSDGeometry(
                user_bytes=2**20, page_bytes=4096, pages_per_block=16
            ),
            n_streams=2,
            temperature=lambda oid, size: oid % 2,
        )
        dev.on_insert(0, 4096 * 4)  # stream 0
        dev.on_insert(1, 4096 * 4)  # stream 1
        ppb = dev.geometry.pages_per_block
        blocks0 = {int(dev.ftl._l2p[int(l)]) // ppb for l in dev._owned[0]}
        blocks1 = {int(dev.ftl._l2p[int(l)]) // ppb for l in dev._owned[1]}
        assert blocks0.isdisjoint(blocks1)

    def test_temperature_needs_streams(self):
        with pytest.raises(ValueError, match="n_streams"):
            CacheSSD(
                SSDGeometry(user_bytes=2**20, page_bytes=4096,
                            pages_per_block=16),
                temperature=lambda oid, size: 0,
            )

    def test_no_trim_defers_invalidation(self):
        geom = SSDGeometry(
            user_bytes=2**20, page_bytes=4096, pages_per_block=16
        )
        trimmed = CacheSSD(geom)
        lazy = CacheSSD(geom, trim_on_evict=False)
        for dev in (trimmed, lazy):
            dev.on_insert(1, 4096 * 4)
            dev.on_evict(1)
        assert trimmed.ftl.valid_pages == 0
        assert lazy.ftl.valid_pages == 4  # pages stay valid until reuse
        # Reuse of the lpns finally invalidates the old copies.
        lazy.on_insert(2, 4096 * 4)
        assert lazy.ftl.valid_pages == 4
        lazy.ftl.check_invariants()


class TestSimulateOnSSD:
    def test_report_consistency(self, trace):
        cap = max(1, trace.footprint_bytes // 30)
        report = simulate_on_ssd(
            trace, LRUCache(cap), admission=AlwaysAdmit(), policy_name="lru"
        )
        f = report.device.ftl.stats
        s = report.simulation.stats
        # Host page writes must account for every cached byte (rounded up).
        assert f.host_pages_written >= s.bytes_written // report.device.geometry.page_bytes
        assert f.write_amplification >= 1.0
        assert report.lifetime.lifetime_days > 0
        report.device.ftl.check_invariants()
        assert "WA=" in report.summary()

    def test_admission_filter_extends_lifetime(self, trace):
        """The paper's lifetime chain, end to end on the device model."""
        cap = max(1, trace.footprint_bytes // 30)
        labels = one_time_labels(trace.object_ids, 500)
        base = simulate_on_ssd(trace, LRUCache(cap), admission=AlwaysAdmit())
        ideal = simulate_on_ssd(
            trace, LRUCache(cap), admission=OracleAdmission(labels)
        )
        assert (
            ideal.simulation.stats.bytes_written
            < base.simulation.stats.bytes_written
        )
        assert ideal.lifetime.lifetime_days > base.lifetime.lifetime_days
        # Lifetime gain at least proportional to the byte-write reduction
        # (GC relief can only help further).
        reduction = (
            ideal.simulation.stats.bytes_written
            / base.simulation.stats.bytes_written
        )
        assert ideal.lifetime.ratio_vs(base.lifetime) >= 0.8 / reduction

    def test_observer_stream_matches_stats(self, trace):
        """Inserts seen by the observer == files_written in the stats."""

        class Counter(CacheSSD):
            def __init__(self):
                self.inserts = 0
                self.evicts = 0

            def on_insert(self, oid, size):
                self.inserts += 1

            def on_evict(self, oid):
                self.evicts += 1

        counter = Counter()
        cap = max(1, trace.footprint_bytes // 30)
        result = simulate(trace, LRUCache(cap), observer=counter)
        assert counter.inserts == result.stats.files_written
        assert counter.evicts == result.stats.evictions
