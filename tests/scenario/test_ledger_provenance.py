"""Write-provenance ledger integration with the scenario engine.

The load-bearing property is *exactness*: the per-cause ledger totals
must sum — integer equality, no sampling — to every SSD write the
cluster counted, including stats parked when a killed node retired.
"""

import json

import pytest

from repro.obs.ledger import CAUSES
from repro.obs.spans import Tracer, validate_chrome_trace
from repro.scenario import (
    EventSpec,
    ScenarioSpec,
    reference_scenario,
    run_scenario,
)
from repro.trace import WorkloadConfig, generate_trace

REQUESTS = 8_000


@pytest.fixture(scope="module")
def trace():
    return generate_trace(WorkloadConfig(n_objects=3000, days=2.0, seed=9))


@pytest.fixture(scope="module")
def reference_report(trace):
    return run_scenario(reference_scenario(REQUESTS, seed=0), trace)


class TestExactness:
    def test_ledger_sums_to_cluster_writes_including_retired(
        self, reference_report
    ):
        led = reference_report.ledger
        assert led is not None
        assert led["exact"] is True
        # The reference scenario kills oc1 mid-run, so the cluster total
        # necessarily includes a retired incarnation's writes.
        assert sum(led["writes_by_cause"].values()) == led["cluster_ssd_writes"]
        assert led["total_writes"] == led["cluster_ssd_writes"]

    def test_per_phase_deltas_partition_the_totals(self, reference_report):
        led = reference_report.ledger
        by_cause = dict.fromkeys(CAUSES, 0)
        avoided = 0
        for p in reference_report.phases:
            assert p.writes_by_cause is not None
            for cause, n in p.writes_by_cause.items():
                by_cause[cause] += n
        avoided = sum(p.avoided_writes for p in reference_report.phases)
        assert by_cause == led["writes_by_cause"]
        assert avoided == led["avoided_writes"]

    def test_replica_and_dc_writes_reconcile(self, reference_report):
        """Cross-check against the engine's own independent counters:
        replica_fill must equal the phase replica_writes sum, and the
        OC-cause totals plus DC writes must cover the cluster total."""
        led = reference_report.ledger
        assert led["writes_by_cause"]["replica_fill"] == sum(
            p.replica_writes for p in reference_report.phases
        )
        dc_writes = sum(p.dc_writes for p in reference_report.phases)
        oc_writes = sum(
            p.primary_writes + p.replica_writes
            for p in reference_report.phases
        )
        assert oc_writes + dc_writes == led["cluster_ssd_writes"]


class TestDeterminism:
    def test_same_seed_ledger_section_is_byte_identical(
        self, trace, reference_report
    ):
        again = run_scenario(reference_scenario(REQUESTS, seed=0), trace)
        assert (
            json.dumps(again.ledger, sort_keys=True)
            == json.dumps(reference_report.ledger, sort_keys=True)
        )


class TestCauseAttribution:
    def test_reference_scenario_populates_every_cause(self, reference_report):
        by_cause = reference_report.ledger["writes_by_cause"]
        # Flood + restart + replication 2 are all in the reference
        # timeline, so every cause must attribute at least one write —
        # except eviction_churn (needs a learned eviction policy) and
        # staging_promote (needs a staging tier); the reference runs LRU,
        # so both must stay exactly zero.
        for cause in CAUSES:
            if cause in ("eviction_churn", "staging_promote"):
                assert by_cause[cause] == 0
            else:
                assert by_cause[cause] > 0, cause

    def test_learned_policy_attributes_eviction_churn(self, trace):
        report = run_scenario(
            ScenarioSpec(nodes=1, requests=REQUESTS, policy="learned"),
            trace, with_baseline=False, with_oracle=False,
        )
        led = report.ledger
        assert led["exact"]
        by_cause = led["writes_by_cause"]
        # Re-admissions of the learned head's own victims are split out of
        # admission_accept; the ledger stays exact under the re-labelling.
        assert by_cause["eviction_churn"] > 0
        assert sum(by_cause.values()) == led["cluster_ssd_writes"]

    def test_quiet_scenario_is_pure_admission(self, trace):
        report = run_scenario(
            ScenarioSpec(nodes=3, requests=REQUESTS),
            trace, with_baseline=False, with_oracle=False,
        )
        by_cause = report.ledger["writes_by_cause"]
        assert report.ledger["exact"]
        assert by_cause["flood"] == 0
        assert by_cause["rewarm_after_restart"] == 0
        assert by_cause["replica_fill"] == 0  # replication defaults to 1
        assert by_cause["admission_accept"] == report.ledger["cluster_ssd_writes"]

    def test_restart_attributes_rewarm_writes(self, trace):
        n = REQUESTS
        events = (
            EventSpec(kind="node_kill", at=n // 3, node="oc1"),
            EventSpec(kind="node_restart", at=n // 2, node="oc1"),
        )
        report = run_scenario(
            ScenarioSpec(nodes=3, requests=n, events=events),
            trace, with_baseline=False, with_oracle=False,
        )
        led = report.ledger
        assert led["exact"]
        assert led["writes_by_cause"]["rewarm_after_restart"] > 0
        assert led["writes_by_cause"]["flood"] == 0
        # Rewarm writes can only appear in phases after the restart.
        for p in report.phases:
            if p.end <= n // 2:
                assert p.writes_by_cause["rewarm_after_restart"] == 0

    def test_flood_attributes_injected_writes(self, trace):
        n = REQUESTS
        events = (
            EventSpec(kind="hot_key_flood", at=n // 4, length=n // 4),
        )
        report = run_scenario(
            ScenarioSpec(nodes=3, requests=n, events=events),
            trace, with_baseline=False, with_oracle=False,
        )
        led = report.ledger
        assert led["exact"]
        assert led["writes_by_cause"]["flood"] > 0
        assert led["writes_by_cause"]["rewarm_after_restart"] == 0

    def test_denials_become_avoided_writes(self, reference_report):
        led = reference_report.ledger
        denied = sum(p.admissions_denied for p in reference_report.phases)
        assert led["avoided_writes"] == denied
        assert led["avoided_bytes"] > 0
        # The noisy classifier and the deployed oracle both deny; the DC
        # tier admits everything, so it never avoids.
        assert "dc" not in led["avoided_by_model"]

    def test_model_labels_follow_the_rolling_deploy(self, reference_report):
        by_model = reference_report.ledger["writes_by_model"]
        # Reference timeline: noisy admission everywhere, oracle deployed
        # fleet-wide in the last quarter, DC writes under their own label.
        assert set(by_model) == {"noisy", "oracle", "dc"}
        assert by_model["noisy"] > by_model["oracle"] > 0


class TestReportSurface:
    def test_to_dict_carries_the_ledger_section(self, reference_report):
        payload = reference_report.to_dict()
        assert payload["ledger"] == reference_report.ledger
        assert payload["phases"][0]["writes_by_cause"] is not None

    def test_format_report_renders_provenance_line(self, reference_report):
        from repro.scenario import format_report

        text = format_report(reference_report)
        assert "write provenance (exact" in text
        assert "avoided" in text


class TestScenarioSpans:
    def test_tracer_records_one_span_per_phase_plus_root(self, trace):
        spec = reference_scenario(REQUESTS, seed=0)
        tracer = Tracer()
        report = run_scenario(
            spec, trace, with_baseline=False, with_oracle=False,
            tracer=tracer,
        )
        events = tracer.events()
        names = [e["name"] for e in events]
        assert names.count("replay") == 1
        phase_names = [n for n in names if n.startswith("phase")]
        assert len(phase_names) == len(report.phases)
        # One track for the whole replay: phases nest inside the root.
        assert len({e["track"] for e in events}) == 1
        assert validate_chrome_trace(tracer.to_chrome()) == len(events)

    def test_tracer_does_not_perturb_the_report(self, trace, reference_report):
        traced = run_scenario(
            reference_scenario(REQUESTS, seed=0), trace, tracer=Tracer()
        )
        assert (
            json.dumps(traced.to_dict(), sort_keys=True)
            == json.dumps(reference_report.to_dict(), sort_keys=True)
        )
