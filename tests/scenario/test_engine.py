"""Tests for the scenario replay engine: determinism, baseline equality,
replication accounting and the oracle comparator."""

import json

import pytest

from repro.cache import LRUCache
from repro.cluster import CacheNode, TwoTierCluster, simulate_cluster
from repro.scenario import (
    EventSpec,
    ScenarioSpec,
    format_report,
    reference_scenario,
    run_scenario,
)
from repro.scenario.oracle import node_capacity_bytes
from repro.trace import WorkloadConfig, generate_trace

REQUESTS = 8_000


@pytest.fixture(scope="module")
def trace():
    return generate_trace(WorkloadConfig(n_objects=3000, days=2.0, seed=9))


@pytest.fixture(scope="module")
def reference_report(trace):
    return run_scenario(reference_scenario(REQUESTS, seed=0), trace)


def dump(report):
    return json.dumps(report.to_dict(), sort_keys=True)


class TestDeterminism:
    def test_same_seed_is_bit_identical(self, trace, reference_report):
        again = run_scenario(reference_scenario(REQUESTS, seed=0), trace)
        assert dump(again) == dump(reference_report)

    def test_different_seed_differs(self, trace, reference_report):
        other = run_scenario(reference_scenario(REQUESTS, seed=1), trace)
        assert dump(other) != dump(reference_report)


class TestBaselineEquality:
    def test_pristine_phases_match_failure_free_run(self, reference_report):
        assert reference_report.baseline_checked
        assert reference_report.baseline_equal

    def test_pristine_flag_tracks_first_fault(self, reference_report):
        phases = reference_report.phases
        assert phases[0].pristine
        assert not phases[-1].pristine
        # Pristine is a prefix property: once lost, never regained.
        flags = [p.pristine for p in phases]
        assert flags == sorted(flags, reverse=True)

    def test_skippable(self, trace):
        report = run_scenario(
            reference_scenario(REQUESTS, seed=0),
            trace,
            with_baseline=False,
            with_oracle=False,
        )
        assert not report.baseline_checked
        assert report.phases[0].oracle_hit_rate is None


class TestPhaseAccounting:
    def test_phases_partition_the_merged_trace(self, reference_report):
        phases = reference_report.phases
        assert phases[0].start == 0
        assert phases[-1].end == reference_report.merged_requests
        for a, b in zip(phases, phases[1:]):
            assert a.end == b.start
        assert (
            sum(p.requests for p in phases)
            == reference_report.merged_requests
            == reference_report.base_requests
            + reference_report.injected_requests
        )

    def test_request_flow_conserved_per_phase(self, reference_report):
        for p in reference_report.phases:
            assert p.oc_hits + p.dc_hits + p.backend_reads == p.requests
            assert p.bytes_hit <= p.bytes_requested

    def test_events_applied_enumeration(self, reference_report):
        applied = reference_report.events_applied
        kinds = [a.split(":")[0].split("@")[0] for a in applied]
        assert kinds.count("kill") == 1
        assert kinds.count("restart") == 1
        assert kinds.count("deploy") == 4   # staggered across 4 nodes
        assert kinds.count("hot_key_flood") == 1

    def test_fault_phases_are_tagged(self, reference_report):
        tags = [t for p in reference_report.phases for t in p.active]
        assert any("oc1 down" in t for t in tags)
        assert any(t.startswith("hot_key_flood") for t in tags)
        assert any(t.startswith("rolling_deploy") for t in tags)
        assert any(p.steady for p in reference_report.phases)

    def test_format_report_renders(self, reference_report):
        text = format_report(reference_report)
        assert "exact match" in text
        assert "oc1 down" in text
        assert "p999ms" in text


class TestUnreplicatedEquivalence:
    def test_matches_simulate_cluster_exactly(self, trace):
        """replication=1, no events: the engine is simulate_cluster with
        phase bookkeeping — every counter must agree exactly."""
        spec = ScenarioSpec(nodes=3, requests=trace.n_accesses)
        report = run_scenario(spec, trace, with_oracle=False)
        assert report.baseline_equal
        assert len(report.phases) == 1
        (p,) = report.phases

        node_cap = node_capacity_bytes(spec, trace)
        dc_cap = max(
            1, int(spec.dc_capacity_fraction * trace.footprint_bytes)
        )
        cluster = TwoTierCluster(
            {f"oc{i}": CacheNode(f"oc{i}", LRUCache(node_cap))
             for i in range(3)},
            CacheNode("dc", LRUCache(dc_cap)),
        )
        result = simulate_cluster(trace, cluster)
        assert p.requests == result.requests
        assert p.oc_hits == result.oc_hits
        assert p.dc_hits == result.dc_hits
        assert p.backend_reads == result.backend_reads
        assert p.replica_writes == 0
        assert p.primary_writes == sum(
            n.stats.files_written for n in cluster.oc_nodes.values()
        )
        assert p.dc_writes == cluster.dc.stats.files_written


class TestReplication:
    def test_replication_moves_only_write_counters_per_request(self, trace):
        """Replica copies arrive via fill(): request counters stay a
        partition of the traffic, and the write-through shows up only in
        replica_writes (replication 1 must report none)."""
        r1 = run_scenario(
            ScenarioSpec(nodes=3, requests=REQUESTS),
            trace, with_baseline=False, with_oracle=False,
        ).phases[0]
        r2 = run_scenario(
            ScenarioSpec(nodes=3, requests=REQUESTS, replication=2),
            trace, with_baseline=False, with_oracle=False,
        ).phases[0]
        assert r1.requests == r2.requests == REQUESTS
        assert r1.replica_writes == 0
        assert r2.replica_writes > 0
        assert r2.primary_writes >= 0
        # Warm standbys are paid for in shared capacity: the replicated
        # tier cannot out-hit the sharded one in steady state.
        assert r2.oc_hit_rate <= r1.oc_hit_rate

    def test_replicated_failover_softens_the_kill(self, trace):
        """Killing a node remaps its shard onto warm standbys at
        replication 2 vs cold nodes at replication 1: the hit-rate *drop*
        across the kill boundary must be strictly smaller."""
        n = REQUESTS
        events = (EventSpec(kind="node_kill", at=n // 2, node="oc1"),)

        def kill_drop(replication):
            spec = ScenarioSpec(
                nodes=3, requests=n, replication=replication, events=events
            )
            report = run_scenario(
                spec, trace, with_baseline=False, with_oracle=False
            )
            pre, post = report.phases
            return pre.oc_hit_rate - post.oc_hit_rate

        assert kill_drop(2) < kill_drop(1)


class TestOracleComparator:
    def test_gaps_present_and_bounded(self, reference_report):
        for p in reference_report.phases:
            assert p.oracle_hit_rate is not None
            assert 0.0 <= p.oracle_hit_rate <= 1.0
            assert abs(p.hit_gap) <= 1.0
            assert abs(p.write_gap) <= 1.0
        assert reference_report.max_abs_hit_gap is not None

    def test_sharding_never_beats_the_aggregate_cache_at_steady_state(
        self, reference_report
    ):
        """The idealised single cache pools all capacity, so in pristine
        phases the sharded cluster cannot have a higher hit rate beyond
        reservoir noise."""
        for p in reference_report.phases:
            if p.pristine:
                assert p.hit_gap <= 0.02


class TestLatency:
    def test_percentiles_ordered(self, reference_report):
        # The latency distribution is three-valued (OC/DC/backend), so the
        # mean can sit below p50; it must still sit under the tail.
        for p in reference_report.phases:
            assert 0.0 < p.latency_p50 <= p.latency_p99 <= p.latency_p999
            assert 0.0 < p.latency_mean <= p.latency_p999


class TestTraceTooShort:
    def test_clear_error(self, trace):
        spec = ScenarioSpec(nodes=2, requests=trace.n_accesses + 1)
        with pytest.raises(ValueError, match="scenario needs"):
            run_scenario(spec, trace)
