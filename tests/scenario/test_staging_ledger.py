"""Ledger reconciliation with the staging tier in the cluster.

With ``policy="staging"`` the cluster nodes take their SSD writes on the
*hit* path (a staged object crossing the flashiness bar), attributed as
``staging_promote`` in the :class:`~repro.obs.ledger.WriteLedger`.  The
load-bearing property is unchanged from the provenance suite: per-cause
totals must sum — integer equality, no sampling — to every SSD write the
cluster counted.
"""

import pytest

from repro.scenario import EventSpec, ScenarioSpec, run_scenario
from repro.trace import WorkloadConfig, generate_trace

REQUESTS = 8_000


@pytest.fixture(scope="module")
def trace():
    return generate_trace(WorkloadConfig(n_objects=3000, days=2.0, seed=9))


class TestStagingPromoteAttribution:
    def test_quiet_staging_scenario_reconciles_exactly(self, trace):
        report = run_scenario(
            ScenarioSpec(nodes=1, requests=REQUESTS, policy="staging"),
            trace, with_baseline=False, with_oracle=False,
        )
        led = report.ledger
        assert led["exact"] is True
        by_cause = led["writes_by_cause"]
        assert by_cause["staging_promote"] > 0
        assert sum(by_cause.values()) == led["cluster_ssd_writes"]
        assert led["total_writes"] == led["cluster_ssd_writes"]

    def test_promotes_split_out_of_admission_accept(self, trace):
        """Hit-path promotions carry their own cause.  Every node in the
        cluster (OC and DC alike) runs the staging policy, and the
        default bar stages everything — so every SSD write crossed the
        bar and admission_accept stays exactly zero."""
        report = run_scenario(
            ScenarioSpec(nodes=2, requests=REQUESTS, policy="staging"),
            trace, with_baseline=False, with_oracle=False,
        )
        by_cause = report.ledger["writes_by_cause"]
        assert report.ledger["exact"]
        assert by_cause["admission_accept"] == 0
        dc_writes = sum(p.dc_writes for p in report.phases)
        oc_writes = sum(
            p.primary_writes + p.replica_writes for p in report.phases
        )
        assert by_cause["staging_promote"] == oc_writes + dc_writes

    def test_replication_keeps_replica_fill_reconciled(self, trace):
        """Replica fills on staging nodes stay under replica_fill, and
        the phase replica_writes counters still partition exactly."""
        report = run_scenario(
            ScenarioSpec(
                nodes=3, requests=REQUESTS, replication=2, policy="staging"
            ),
            trace, with_baseline=False, with_oracle=False,
        )
        led = report.ledger
        assert led["exact"]
        assert led["writes_by_cause"]["replica_fill"] == sum(
            p.replica_writes for p in report.phases
        )
        assert led["writes_by_cause"]["staging_promote"] > 0

    def test_faulted_staging_timeline_stays_exact(self, trace):
        """Kill/restart + flood against staging nodes: rewarm and flood
        causes keep precedence over staging_promote, totals stay exact."""
        n = REQUESTS
        events = (
            EventSpec(kind="node_kill", at=n // 4, node="oc1"),
            EventSpec(kind="node_restart", at=n // 2, node="oc1"),
            EventSpec(kind="hot_key_flood", at=5 * n // 8, length=n // 8),
        )
        report = run_scenario(
            ScenarioSpec(nodes=3, requests=n, policy="staging", events=events),
            trace, with_baseline=False, with_oracle=False,
        )
        led = report.ledger
        assert led["exact"]
        by_cause = led["writes_by_cause"]
        assert by_cause["staging_promote"] > 0
        assert by_cause["flood"] > 0
        assert sum(by_cause.values()) == led["cluster_ssd_writes"]

    def test_hierarchy_policy_has_no_staging_promotes(self, trace):
        """The plain hierarchy admits at miss time: no hit-path inserts,
        so staging_promote must stay exactly zero."""
        report = run_scenario(
            ScenarioSpec(nodes=1, requests=REQUESTS, policy="hierarchy"),
            trace, with_baseline=False, with_oracle=False,
        )
        led = report.ledger
        assert led["exact"]
        assert led["writes_by_cause"]["staging_promote"] == 0
        assert led["writes_by_cause"]["admission_accept"] > 0
