"""Tests for the declarative scenario spec: validation and round-trips."""

import json

import pytest

from repro.scenario import (
    ADMISSION_KINDS,
    EVENT_KINDS,
    EventSpec,
    ScenarioSpec,
    load_spec,
    reference_scenario,
)


def spec(**kw):
    kw.setdefault("nodes", 4)
    kw.setdefault("requests", 10_000)
    return ScenarioSpec(**kw)


class TestEventSpec:
    def test_unknown_kind_lists_valid_kinds(self):
        with pytest.raises(ValueError) as exc:
            EventSpec(kind="meteor_strike", at=0)
        msg = str(exc.value)
        assert "valid kinds" in msg
        for kind in EVENT_KINDS:
            assert kind in msg

    def test_windowed_needs_length(self):
        with pytest.raises(ValueError, match="length"):
            EventSpec(kind="hot_key_flood", at=10)
        with pytest.raises(ValueError, match="length"):
            EventSpec(kind="rolling_deploy", at=10, admission="oracle")

    def test_point_event_rejects_length(self):
        with pytest.raises(ValueError, match="point event"):
            EventSpec(kind="node_kill", at=10, node="oc0", length=5)

    def test_node_scoped_needs_node(self):
        with pytest.raises(ValueError, match="node"):
            EventSpec(kind="node_kill", at=10)
        with pytest.raises(ValueError, match="node"):
            EventSpec(kind="node_restart", at=10)

    def test_flood_parameter_validation(self):
        with pytest.raises(ValueError, match="intensity"):
            EventSpec(kind="hot_key_flood", at=0, length=10, intensity=0.0)
        with pytest.raises(ValueError, match="photo"):
            EventSpec(kind="hot_key_flood", at=0, length=10, photos=0)

    def test_deploy_needs_known_admission(self):
        with pytest.raises(ValueError, match="admission"):
            EventSpec(kind="rolling_deploy", at=0, length=10)
        with pytest.raises(ValueError, match="admission"):
            EventSpec(
                kind="rolling_deploy", at=0, length=10, admission="psychic"
            )
        for kind in ADMISSION_KINDS:
            EventSpec(kind="rolling_deploy", at=0, length=10, admission=kind)

    def test_negative_trigger(self):
        with pytest.raises(ValueError, match=">= 0"):
            EventSpec(kind="node_kill", at=-1, node="oc0")

    def test_end_property(self):
        assert EventSpec(kind="node_kill", at=7, node="oc0").end == 7
        assert EventSpec(kind="hot_key_flood", at=7, length=3).end == 10


class TestTimelineValidation:
    def test_events_sorted_by_trigger(self):
        s = spec(events=(
            EventSpec(kind="node_kill", at=900, node="oc1"),
            EventSpec(kind="hot_key_flood", at=100, length=50),
        ))
        assert [e.at for e in s.events] == [100, 900]

    def test_window_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="exceeds"):
            spec(events=(
                EventSpec(kind="hot_key_flood", at=9_990, length=100),
            ))
        with pytest.raises(ValueError, match="out of range"):
            spec(events=(
                EventSpec(kind="node_kill", at=10_000, node="oc0"),
            ))

    def test_overlapping_windows_rejected(self):
        with pytest.raises(ValueError, match="overlapping"):
            spec(events=(
                EventSpec(kind="hot_key_flood", at=100, length=500),
                EventSpec(kind="rolling_deploy", at=400, length=200,
                          admission="oracle"),
            ))

    def test_adjacent_windows_allowed(self):
        spec(events=(
            EventSpec(kind="hot_key_flood", at=100, length=300),
            EventSpec(kind="rolling_deploy", at=400, length=200,
                      admission="oracle"),
        ))

    def test_unknown_node_rejected(self):
        with pytest.raises(ValueError, match="unknown node"):
            spec(events=(EventSpec(kind="node_kill", at=5, node="oc9"),))

    def test_double_kill_rejected(self):
        with pytest.raises(ValueError, match="twice"):
            spec(events=(
                EventSpec(kind="node_kill", at=5, node="oc1"),
                EventSpec(kind="node_kill", at=50, node="oc1"),
            ))

    def test_restart_needs_preceding_kill(self):
        with pytest.raises(ValueError, match="preceding kill"):
            spec(events=(EventSpec(kind="node_restart", at=5, node="oc1"),))

    def test_cannot_kill_last_node(self):
        with pytest.raises(ValueError, match="last"):
            spec(nodes=2, events=(
                EventSpec(kind="node_kill", at=5, node="oc0"),
                EventSpec(kind="node_kill", at=50, node="oc1"),
            ))

    def test_kill_restart_kill_is_legal(self):
        spec(events=(
            EventSpec(kind="node_kill", at=5, node="oc1"),
            EventSpec(kind="node_restart", at=50, node="oc1"),
            EventSpec(kind="node_kill", at=500, node="oc1"),
        ))

    def test_replication_bounds(self):
        spec(replication=4)
        with pytest.raises(ValueError, match="replication"):
            spec(replication=5)
        with pytest.raises(ValueError, match="replication"):
            spec(replication=0)

    def test_admission_kind_checked(self):
        with pytest.raises(ValueError, match="admission"):
            spec(admission="vibes")


class TestRoundTrip:
    def test_dict_round_trip_is_identity(self):
        original = reference_scenario(5_000, seed=42)
        rebuilt = ScenarioSpec.from_dict(original.to_dict())
        assert rebuilt == original

    def test_json_round_trip_is_identity(self):
        original = reference_scenario(5_000, seed=7)
        rebuilt = ScenarioSpec.from_dict(
            json.loads(json.dumps(original.to_dict()))
        )
        assert rebuilt == original

    def test_event_defaults_dropped_from_dict(self):
        s = spec(events=(EventSpec(kind="node_kill", at=5, node="oc1"),))
        (ev,) = s.to_dict()["events"]
        assert ev == {"kind": "node_kill", "at": 5, "node": "oc1"}

    def test_unknown_spec_key_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario keys"):
            ScenarioSpec.from_dict({"nodes": 2, "requests": 100, "zerg": 1})

    def test_unknown_event_key_rejected(self):
        with pytest.raises(ValueError, match="unknown event keys"):
            ScenarioSpec.from_dict({
                "nodes": 2,
                "requests": 100,
                "events": [{"kind": "node_kill", "at": 5, "node": "oc1",
                            "severity": "high"}],
            })

    def test_non_mapping_rejected(self):
        with pytest.raises(ValueError, match="mapping"):
            ScenarioSpec.from_dict([1, 2, 3])
        with pytest.raises(ValueError, match="mapping"):
            ScenarioSpec.from_dict(
                {"nodes": 2, "requests": 100, "events": ["boom"]}
            )


class TestLoadSpec:
    def test_loads_json_file(self, tmp_path):
        path = tmp_path / "scn.json"
        path.write_text(json.dumps(reference_scenario(2_000).to_dict()))
        s = load_spec(str(path))
        assert s == reference_scenario(2_000)

    def test_invalid_json_names_the_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ValueError, match="bad.json"):
            load_spec(str(path))

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_spec(str(tmp_path / "nope.json"))


class TestReferenceScenario:
    def test_shape(self):
        s = reference_scenario(200_000)
        assert s.nodes == 4
        assert s.replication == 2
        assert sorted(e.kind for e in s.events) == sorted(EVENT_KINDS)

    def test_minimum_size(self):
        with pytest.raises(ValueError, match="100"):
            reference_scenario(50)
