"""Tests for hot-key flood synthesis and the base→merged index map."""

import numpy as np
import pytest

from repro.scenario import EventSpec, apply_floods, make_flood_trace
from repro.trace import WorkloadConfig, generate_trace


@pytest.fixture(scope="module")
def trace():
    return generate_trace(WorkloadConfig(n_objects=2000, days=2.0, seed=11))


def flood(at, length, **kw):
    return EventSpec(kind="hot_key_flood", at=at, length=length, **kw)


class TestMakeFloodTrace:
    def test_volume_scales_with_intensity(self, trace):
        rng = np.random.default_rng(1)
        ev = flood(100, 1000, intensity=0.5, photos=8)
        burst = make_flood_trace(trace, ev, rng)
        assert burst.n_accesses == 500
        assert burst.n_objects == 8

    def test_single_viral_owner(self, trace):
        burst = make_flood_trace(
            trace, flood(100, 500, photos=4), np.random.default_rng(1)
        )
        assert burst.owner_avg_views.shape == (1,)
        assert burst.viral_mask.all()

    def test_timestamps_inside_window_and_sorted(self, trace):
        ev = flood(500, 2000)
        burst = make_flood_trace(trace, ev, np.random.default_rng(2))
        ts = burst.timestamps
        assert (ts[:-1] <= ts[1:]).all()
        assert ts[0] >= float(trace.timestamps[ev.at])
        assert ts[-1] <= float(trace.timestamps[ev.end - 1])

    def test_uploads_precede_burst(self, trace):
        ev = flood(500, 2000, photos=16)
        burst = make_flood_trace(trace, ev, np.random.default_rng(3))
        assert (burst.catalog["upload_time"] <=
                float(trace.timestamps[ev.at])).all()

    def test_deterministic_for_same_rng_state(self, trace):
        ev = flood(100, 800, photos=12)
        a = make_flood_trace(trace, ev, np.random.default_rng(5))
        b = make_flood_trace(trace, ev, np.random.default_rng(5))
        np.testing.assert_array_equal(a.accesses, b.accesses)
        np.testing.assert_array_equal(a.catalog, b.catalog)

    def test_rejects_non_flood_event(self, trace):
        ev = EventSpec(kind="node_kill", at=5, node="oc0")
        with pytest.raises(ValueError, match="not a flood"):
            make_flood_trace(trace, ev, np.random.default_rng(0))


class TestApplyFloods:
    def test_no_events_is_identity(self, trace):
        merged, index_map, infos = apply_floods(
            trace, [], np.random.default_rng(0)
        )
        assert merged is trace
        assert infos == []
        np.testing.assert_array_equal(
            index_map, np.arange(trace.n_accesses)
        )

    def test_merged_length_and_info(self, trace):
        ev = flood(100, 1000, photos=6)
        merged, index_map, (info,) = apply_floods(
            trace, [ev], np.random.default_rng(7)
        )
        assert merged.n_accesses == trace.n_accesses + info.n_injected
        assert info.n_injected == 1000
        assert info.n_photos == 6
        assert info.first_object_id == trace.n_objects
        assert info.event is ev

    def test_index_map_recovers_base_requests(self, trace):
        """merged[index_map[i]] must be exactly base request i — the
        property every event-trigger conversion in the engine rests on."""
        merged, index_map, _ = apply_floods(
            trace, [flood(100, 1500)], np.random.default_rng(7)
        )
        assert (np.diff(index_map) > 0).all()
        np.testing.assert_array_equal(
            merged.object_ids[index_map], trace.object_ids
        )
        np.testing.assert_array_equal(
            merged.timestamps[index_map], trace.timestamps
        )

    def test_injected_positions_are_flood_photos(self, trace):
        merged, index_map, (info,) = apply_floods(
            trace, [flood(100, 1500, photos=5)], np.random.default_rng(7)
        )
        mask = np.ones(merged.n_accesses, dtype=bool)
        mask[index_map] = False
        injected_oids = merged.object_ids[mask]
        assert injected_oids.shape[0] == info.n_injected
        assert (injected_oids >= info.first_object_id).all()
        assert (injected_oids < info.first_object_id + info.n_photos).all()

    def test_merged_timestamps_sorted(self, trace):
        merged, _, _ = apply_floods(
            trace, [flood(100, 1500)], np.random.default_rng(7)
        )
        ts = merged.timestamps
        assert (ts[:-1] <= ts[1:]).all()

    def test_two_floods_compose(self, trace):
        n = trace.n_accesses
        events = [flood(n // 10, n // 10), flood(n // 2, n // 10, photos=4)]
        merged, index_map, infos = apply_floods(
            trace, events, np.random.default_rng(13)
        )
        assert merged.n_accesses == n + sum(i.n_injected for i in infos)
        np.testing.assert_array_equal(
            merged.object_ids[index_map], trace.object_ids
        )
        # Distinct albums: the second flood's photos sit above the first's.
        assert infos[1].first_object_id >= (
            infos[0].first_object_id + infos[0].n_photos
        )
