"""Tests for encoders, scaling, and discretisation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml import LabelEncoder, StandardScaler, UniformDiscretizer


class TestLabelEncoder:
    def test_roundtrip(self):
        vals = np.array(["l5", "a0", "m5", "a0", "l5"])
        enc = LabelEncoder().fit(vals)
        codes = enc.transform(vals)
        assert codes.dtype == np.int64
        np.testing.assert_array_equal(enc.inverse_transform(codes), vals)

    def test_codes_are_contiguous(self):
        enc = LabelEncoder()
        codes = enc.fit_transform([10, 30, 20, 10])
        assert set(codes.tolist()) == {0, 1, 2}

    def test_unseen_label_raises(self):
        enc = LabelEncoder().fit(["a", "b"])
        with pytest.raises(ValueError, match="unseen"):
            enc.transform(["c"])

    def test_inverse_out_of_range(self):
        enc = LabelEncoder().fit(["a", "b"])
        with pytest.raises(ValueError):
            enc.inverse_transform([5])


class TestStandardScaler:
    def test_zero_mean_unit_var(self):
        rng = np.random.default_rng(0)
        X = rng.normal(5.0, 3.0, size=(500, 3))
        Z = StandardScaler().fit_transform(X)
        np.testing.assert_allclose(Z.mean(axis=0), 0.0, atol=1e-10)
        np.testing.assert_allclose(Z.std(axis=0), 1.0, atol=1e-10)

    def test_constant_column_not_nan(self):
        X = np.column_stack([np.ones(10), np.arange(10.0)])
        Z = StandardScaler().fit_transform(X)
        assert np.isfinite(Z).all()
        np.testing.assert_allclose(Z[:, 0], 0.0)

    def test_transform_uses_fit_statistics(self):
        scaler = StandardScaler().fit(np.array([[0.0], [2.0]]))  # mean 1, std 1
        np.testing.assert_allclose(scaler.transform([[3.0]]), [[2.0]])

    def test_feature_count_checked(self):
        scaler = StandardScaler().fit(np.zeros((5, 2)) + np.arange(5)[:, None])
        with pytest.raises(ValueError):
            scaler.transform(np.zeros((2, 3)))


class TestUniformDiscretizer:
    def test_ten_minute_buckets(self):
        """The paper buckets age/recency at 10-minute granularity."""
        disc = UniformDiscretizer(bin_width=600.0)
        np.testing.assert_array_equal(
            disc.transform([0, 599, 600, 1800]), [0, 0, 1, 3]
        )

    def test_origin_shift(self):
        disc = UniformDiscretizer(bin_width=10, origin=100)
        np.testing.assert_array_equal(disc.transform([100, 109, 110]), [0, 0, 1])

    def test_below_origin_clamps_to_zero(self):
        disc = UniformDiscretizer(bin_width=10, origin=100)
        assert disc.transform([5])[0] == 0

    def test_max_bins_caps_tail(self):
        disc = UniformDiscretizer(bin_width=1, max_bins=5)
        assert disc.transform([1000])[0] == 4

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            UniformDiscretizer(bin_width=0)
        with pytest.raises(ValueError):
            UniformDiscretizer(bin_width=1, max_bins=0)

    @given(
        st.lists(st.floats(0, 1e6, allow_nan=False), min_size=1, max_size=50),
        st.floats(0.1, 1e4),
    )
    @settings(max_examples=50)
    def test_bins_non_negative_and_ordered(self, values, width):
        disc = UniformDiscretizer(bin_width=width)
        bins = disc.transform(values)
        assert (bins >= 0).all()
        order = np.argsort(values)
        assert (np.diff(bins[order]) >= 0).all()
