"""Tests for repro.ml.metrics — confusion matrix, P/R/acc, ROC/AUC."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ml.metrics import (
    accuracy_score,
    auc,
    calibration_curve,
    classification_report,
    confusion_matrix,
    f1_score,
    precision_score,
    recall_score,
    roc_auc_score,
    roc_curve,
)


class TestConfusionMatrix:
    def test_binary_counts(self):
        y_true = [1, 1, 0, 0, 1]
        y_pred = [1, 0, 0, 1, 1]
        cm = confusion_matrix(y_true, y_pred)
        # rows = truth (0, 1), cols = prediction
        assert cm[0, 0] == 1  # TN
        assert cm[0, 1] == 1  # FP
        assert cm[1, 0] == 1  # FN
        assert cm[1, 1] == 2  # TP

    def test_sum_equals_n(self):
        rng = np.random.default_rng(0)
        y_true = rng.integers(0, 3, 100)
        y_pred = rng.integers(0, 3, 100)
        assert confusion_matrix(y_true, y_pred).sum() == 100

    def test_explicit_labels_order(self):
        cm = confusion_matrix([2, 1], [1, 2], labels=[2, 1])
        assert cm[0, 1] == 1 and cm[1, 0] == 1

    def test_perfect_prediction_is_diagonal(self):
        y = np.array([0, 1, 2, 1, 0])
        cm = confusion_matrix(y, y)
        assert (cm == np.diag(np.diag(cm))).all()

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            confusion_matrix([1, 0], [1])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            confusion_matrix([], [])


class TestPrecisionRecall:
    def test_textbook_values(self):
        y_true = [1, 1, 1, 0, 0]
        y_pred = [1, 1, 0, 1, 0]
        assert precision_score(y_true, y_pred) == pytest.approx(2 / 3)
        assert recall_score(y_true, y_pred) == pytest.approx(2 / 3)
        assert accuracy_score(y_true, y_pred) == pytest.approx(3 / 5)

    def test_no_positive_predictions_gives_zero_precision(self):
        assert precision_score([1, 0], [0, 0]) == 0.0

    def test_no_positive_truth_gives_zero_recall(self):
        assert recall_score([0, 0], [1, 0]) == 0.0

    def test_custom_pos_label(self):
        y_true = ["a", "b", "a"]
        y_pred = ["a", "a", "a"]
        assert recall_score(y_true, y_pred, pos_label="a") == 1.0
        assert precision_score(y_true, y_pred, pos_label="a") == pytest.approx(2 / 3)

    def test_f1_harmonic_mean(self):
        y_true = [1, 1, 1, 0, 0]
        y_pred = [1, 1, 0, 1, 0]
        p, r = 2 / 3, 2 / 3
        assert f1_score(y_true, y_pred) == pytest.approx(2 * p * r / (p + r))

    @given(
        st.lists(st.integers(0, 1), min_size=2, max_size=60),
        st.lists(st.integers(0, 1), min_size=2, max_size=60),
    )
    def test_metrics_bounded(self, a, b):
        n = min(len(a), len(b))
        a, b = a[:n], b[:n]
        for fn in (precision_score, recall_score, accuracy_score, f1_score):
            assert 0.0 <= fn(a, b) <= 1.0

    @given(st.lists(st.integers(0, 1), min_size=1, max_size=60))
    def test_perfect_prediction_scores_one(self, y):
        assert accuracy_score(y, y) == 1.0
        if any(v == 1 for v in y):
            assert precision_score(y, y) == 1.0
            assert recall_score(y, y) == 1.0


class TestROC:
    def test_perfect_separation_auc_one(self):
        y = [0, 0, 1, 1]
        s = [0.1, 0.2, 0.8, 0.9]
        assert roc_auc_score(y, s) == pytest.approx(1.0)

    def test_inverted_scores_auc_zero(self):
        y = [0, 0, 1, 1]
        s = [0.9, 0.8, 0.2, 0.1]
        assert roc_auc_score(y, s) == pytest.approx(0.0)

    def test_random_scores_auc_half(self):
        rng = np.random.default_rng(7)
        y = rng.integers(0, 2, 8000)
        s = rng.random(8000)
        assert roc_auc_score(y, s) == pytest.approx(0.5, abs=0.03)

    def test_curve_endpoints(self):
        y = [0, 1, 0, 1, 1]
        s = [0.2, 0.3, 0.5, 0.7, 0.9]
        fpr, tpr, thr = roc_curve(y, s)
        assert fpr[0] == 0.0 and tpr[0] == 0.0
        assert fpr[-1] == 1.0 and tpr[-1] == 1.0
        assert thr[0] == np.inf

    def test_curve_monotone(self):
        rng = np.random.default_rng(1)
        y = rng.integers(0, 2, 200)
        s = rng.random(200)
        fpr, tpr, _ = roc_curve(y, s)
        assert (np.diff(fpr) >= 0).all()
        assert (np.diff(tpr) >= 0).all()

    def test_auc_equals_rank_statistic(self):
        """AUC must equal P(score_pos > score_neg) + 0.5 P(tie)."""
        rng = np.random.default_rng(3)
        y = rng.integers(0, 2, 300)
        y[:5] = [0, 1, 0, 1, 1]  # both classes guaranteed
        s = rng.integers(0, 10, 300).astype(float)  # many ties
        pos = s[y == 1]
        neg = s[y == 0]
        gt = (pos[:, None] > neg[None, :]).mean()
        ties = (pos[:, None] == neg[None, :]).mean()
        assert roc_auc_score(y, s) == pytest.approx(gt + 0.5 * ties)

    def test_single_class_raises(self):
        with pytest.raises(ValueError):
            roc_curve([1, 1], [0.5, 0.6])

    def test_auc_trapezoid(self):
        assert auc([0, 1], [0, 1]) == pytest.approx(0.5)
        assert auc([0, 0.5, 1], [1, 1, 1]) == pytest.approx(1.0)

    def test_auc_rejects_nonmonotonic_x(self):
        with pytest.raises(ValueError):
            auc([0, 1, 0.5], [0, 1, 0])


class TestCalibrationCurve:
    def test_calibrated_scores_track_diagonal(self):
        rng = np.random.default_rng(0)
        p = rng.random(50_000)
        y = (rng.random(50_000) < p).astype(int)
        mean_pred, observed, counts = calibration_curve(y, p, n_bins=10)
        np.testing.assert_allclose(mean_pred, observed, atol=0.03)
        assert counts.sum() == 50_000

    def test_overconfident_scores_diverge(self):
        rng = np.random.default_rng(1)
        p_true = rng.random(20_000)
        y = (rng.random(20_000) < p_true).astype(int)
        # Push scores toward the extremes: overconfidence.
        p_over = np.clip(p_true * 1.8 - 0.4, 0.0, 1.0)
        mean_pred, observed, _ = calibration_curve(y, p_over, n_bins=10)
        assert np.abs(mean_pred - observed).max() > 0.05

    def test_empty_bins_dropped(self):
        y = [0, 1, 0, 1]
        p = [0.05, 0.07, 0.93, 0.95]  # only the extreme bins are populated
        mean_pred, observed, counts = calibration_curve(y, p, n_bins=10)
        assert mean_pred.shape[0] == 2
        assert counts.tolist() == [2, 2]

    def test_prob_one_lands_in_last_bin(self):
        mean_pred, _, counts = calibration_curve([1], [1.0], n_bins=5)
        assert mean_pred[0] == 1.0 and counts[0] == 1

    def test_invalid(self):
        with pytest.raises(ValueError):
            calibration_curve([], [])
        with pytest.raises(ValueError):
            calibration_curve([1], [1.5])
        with pytest.raises(ValueError):
            calibration_curve([1], [0.5], n_bins=0)


class TestClassificationReport:
    def test_contains_table1_metrics(self):
        y = [0, 1, 1, 0]
        p = [0, 1, 0, 0]
        s = [0.1, 0.9, 0.4, 0.2]
        rep = classification_report(y, p, s)
        assert set(rep) == {"precision", "recall", "accuracy", "auc"}
        assert rep["precision"] == 1.0
        assert rep["recall"] == 0.5

    def test_without_scores_no_auc(self):
        rep = classification_report([0, 1], [0, 1])
        assert "auc" not in rep
