"""Tests for the CART decision tree."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.ml.tree import DecisionTreeClassifier


class TestFitBasics:
    def test_perfectly_separable(self):
        X = np.array([[0.0], [1.0], [2.0], [3.0]])
        y = np.array([0, 0, 1, 1])
        tree = DecisionTreeClassifier().fit(X, y)
        assert (tree.predict(X) == y).all()
        assert tree.n_splits_ == 1
        assert tree.get_depth() == 1

    def test_unconstrained_tree_fits_training_set(self):
        """With no budget, CART drives training error to zero on distinct X."""
        rng = np.random.default_rng(0)
        X = rng.random((300, 4))
        y = rng.integers(0, 2, 300)
        tree = DecisionTreeClassifier(max_splits=None).fit(X, y)
        assert tree.score(X, y) == 1.0

    def test_multiclass(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(400, 3))
        y = (X[:, 0] > 0).astype(int) + (X[:, 1] > 0).astype(int)
        tree = DecisionTreeClassifier(max_splits=None).fit(X, y)
        assert tree.score(X, y) > 0.98
        assert set(tree.predict(X)) <= {0, 1, 2}

    def test_label_space_preserved(self):
        X = np.array([[0.0], [1.0], [2.0], [3.0]])
        y = np.array(["cold", "cold", "hot", "hot"])
        tree = DecisionTreeClassifier().fit(X, y)
        assert set(tree.predict(X)) == {"cold", "hot"}

    def test_single_class_rejected(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier().fit([[1.0], [2.0]], [1, 1])

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            DecisionTreeClassifier().predict([[1.0]])

    def test_feature_count_mismatch_raises(self):
        tree = DecisionTreeClassifier().fit([[0.0], [1.0]], [0, 1])
        with pytest.raises(ValueError):
            tree.predict([[0.0, 1.0]])

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier().fit([[np.nan], [1.0]], [0, 1])


class TestBudgets:
    def test_max_splits_respected(self):
        rng = np.random.default_rng(2)
        X = rng.random((500, 6))
        y = rng.integers(0, 2, 500)
        tree = DecisionTreeClassifier(max_splits=30).fit(X, y)
        assert tree.n_splits_ <= 30
        internal = np.sum(tree.feature_ >= 0)
        assert internal == tree.n_splits_
        assert tree.get_n_leaves() == tree.n_splits_ + 1

    def test_max_depth_respected(self):
        rng = np.random.default_rng(3)
        X = rng.random((400, 4))
        y = rng.integers(0, 2, 400)
        tree = DecisionTreeClassifier(max_splits=None, max_depth=3).fit(X, y)
        assert tree.get_depth() <= 3

    def test_min_samples_leaf(self):
        rng = np.random.default_rng(4)
        X = rng.random((200, 3))
        y = rng.integers(0, 2, 200)
        tree = DecisionTreeClassifier(max_splits=None, min_samples_leaf=20).fit(X, y)
        leaves = tree._leaf_ids(np.ascontiguousarray(X))
        _, counts = np.unique(leaves, return_counts=True)
        assert counts.min() >= 20

    def test_best_first_beats_random_prefix(self):
        """A 5-split best-first tree must do no worse than a 1-split tree."""
        rng = np.random.default_rng(5)
        X = rng.normal(size=(600, 5))
        y = ((X[:, 0] > 0) ^ (X[:, 1] > 0)).astype(int)
        small = DecisionTreeClassifier(max_splits=1).fit(X, y)
        large = DecisionTreeClassifier(max_splits=5).fit(X, y)
        assert large.score(X, y) >= small.score(X, y)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier(max_splits=0)
        with pytest.raises(ValueError):
            DecisionTreeClassifier(criterion="mse")
        with pytest.raises(ValueError):
            DecisionTreeClassifier(min_samples_split=1)
        with pytest.raises(ValueError):
            DecisionTreeClassifier(min_samples_leaf=0)


class TestSampleWeights:
    def test_weights_shift_decision(self):
        """Upweighting one class must pull the prediction toward it."""
        X = np.array([[0.0], [0.0], [0.0], [1.0]])
        y = np.array([0, 0, 1, 1])
        # At x=0 the unweighted majority is class 0 …
        plain = DecisionTreeClassifier().fit(X, y)
        assert plain.predict([[0.0]])[0] == 0
        # … but weighting the single class-1 sample 5× flips it.
        w = np.array([1.0, 1.0, 5.0, 1.0])
        weighted = DecisionTreeClassifier().fit(X, y, sample_weight=w)
        assert weighted.predict([[0.0]])[0] == 1

    def test_zero_weight_ignored(self):
        X = np.array([[0.0], [1.0], [2.0], [3.0]])
        y = np.array([0, 0, 1, 1])
        # Mislabel a point but give it zero weight: the fit must not change.
        y2 = y.copy()
        y2[0] = 1
        w = np.array([0.0, 1.0, 1.0, 1.0])
        tree = DecisionTreeClassifier().fit(X, y2, sample_weight=w)
        assert (tree.predict(X) == y).all()

    def test_uniform_weights_match_unweighted(self):
        rng = np.random.default_rng(6)
        X = rng.random((200, 3))
        y = rng.integers(0, 2, 200)
        t1 = DecisionTreeClassifier(rng=0).fit(X, y)
        t2 = DecisionTreeClassifier(rng=0).fit(X, y, sample_weight=np.full(200, 3.5))
        assert (t1.predict(X) == t2.predict(X)).all()

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier().fit(
                [[0.0], [1.0]], [0, 1], sample_weight=[-1.0, 1.0]
            )


class TestProbaAndInspection:
    def test_proba_rows_sum_to_one(self, binary_dataset):
        X, y = binary_dataset
        tree = DecisionTreeClassifier().fit(X, y)
        p = tree.predict_proba(X)
        assert p.shape == (X.shape[0], 2)
        np.testing.assert_allclose(p.sum(axis=1), 1.0)
        assert (p >= 0).all()

    def test_predict_is_argmax_proba(self, binary_dataset):
        X, y = binary_dataset
        tree = DecisionTreeClassifier().fit(X, y)
        p = tree.predict_proba(X)
        assert (tree.predict(X) == tree.classes_[p.argmax(axis=1)]).all()

    def test_feature_importances_normalised(self, binary_dataset):
        X, y = binary_dataset
        tree = DecisionTreeClassifier().fit(X, y)
        assert tree.feature_importances_.shape == (X.shape[1],)
        assert tree.feature_importances_.sum() == pytest.approx(1.0)
        # Features 0 and 1 drive the labels; feature 3 is pure noise.
        assert tree.feature_importances_[0] > tree.feature_importances_[3]

    def test_decision_path_lengths_bounded_by_depth(self, binary_dataset):
        X, y = binary_dataset
        tree = DecisionTreeClassifier().fit(X, y)
        lengths = tree.decision_path_lengths(X)
        assert lengths.max() <= tree.get_depth()
        assert lengths.min() >= 0

    def test_entropy_criterion_works(self, binary_dataset):
        X, y = binary_dataset
        tree = DecisionTreeClassifier(criterion="entropy").fit(X, y)
        assert tree.score(X, y) > 0.9


class TestCostComplexityPruning:
    def _noisy_tree(self):
        rng = np.random.default_rng(11)
        X = rng.random((600, 4))
        y = ((X[:, 0] > 0.5) ^ (rng.random(600) < 0.15)).astype(int)
        return DecisionTreeClassifier(max_splits=None, rng=0).fit(X, y), X, y

    def test_alpha_zero_keeps_useful_structure(self):
        tree, X, y = self._noisy_tree()
        pruned = tree.cost_complexity_prune(0.0)
        # alpha=0 removes only zero-gain subtrees; training accuracy intact.
        assert pruned.score(X, y) == pytest.approx(tree.score(X, y))
        assert pruned.n_splits_ <= tree.n_splits_

    def test_larger_alpha_smaller_tree(self):
        tree, X, y = self._noisy_tree()
        sizes = [
            tree.cost_complexity_prune(a).n_splits_
            for a in (0.0, 0.005, 0.02, 0.1)
        ]
        assert sizes == sorted(sizes, reverse=True)

    def test_huge_alpha_collapses_to_root(self):
        tree, X, y = self._noisy_tree()
        stump = tree.cost_complexity_prune(1.0)
        assert stump.n_splits_ == 0
        assert stump.get_n_leaves() == 1
        # Root leaf predicts the majority class everywhere.
        assert len(set(stump.predict(X))) == 1

    def test_pruning_can_help_generalisation(self):
        rng = np.random.default_rng(12)
        X = rng.random((1200, 4))
        y = ((X[:, 0] > 0.5) ^ (rng.random(1200) < 0.25)).astype(int)
        tree = DecisionTreeClassifier(max_splits=None, rng=0).fit(X[:600], y[:600])
        pruned = tree.cost_complexity_prune(0.01)
        assert pruned.score(X[600:], y[600:]) >= tree.score(X[600:], y[600:]) - 0.02

    def test_original_untouched(self):
        tree, X, y = self._noisy_tree()
        before = tree.n_splits_
        tree.cost_complexity_prune(0.5)
        assert tree.n_splits_ == before

    def test_pruned_tree_still_predicts(self):
        tree, X, y = self._noisy_tree()
        pruned = tree.cost_complexity_prune(0.01)
        proba = pruned.predict_proba(X)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0)

    def test_negative_alpha_rejected(self):
        tree, _, _ = self._noisy_tree()
        with pytest.raises(ValueError):
            tree.cost_complexity_prune(-0.1)

    def test_unfitted_rejected(self):
        with pytest.raises(RuntimeError):
            DecisionTreeClassifier().cost_complexity_prune(0.1)


class TestExportText:
    def test_simple_tree_rendering(self):
        X = np.array([[0.0], [1.0], [2.0], [3.0]])
        y = np.array([0, 0, 1, 1])
        tree = DecisionTreeClassifier().fit(X, y)
        text = tree.export_text(["age"])
        assert "age <=" in text and "age >" in text
        assert "class 0" in text and "class 1" in text

    def test_default_feature_names(self, binary_dataset):
        X, y = binary_dataset
        tree = DecisionTreeClassifier(max_splits=3).fit(X, y)
        assert "x[" in tree.export_text()

    def test_max_depth_truncation(self, binary_dataset):
        X, y = binary_dataset
        tree = DecisionTreeClassifier(max_splits=20).fit(X, y)
        short = tree.export_text(max_depth=1)
        full = tree.export_text()
        assert len(short) < len(full)
        assert "…" in short

    def test_short_names_rejected(self, binary_dataset):
        X, y = binary_dataset
        tree = DecisionTreeClassifier(max_splits=3).fit(X, y)
        with pytest.raises(ValueError):
            tree.export_text(["only_one"])

    def test_line_count_matches_nodes(self):
        X = np.array([[0.0], [1.0], [2.0], [3.0]])
        y = np.array([0, 0, 1, 1])
        tree = DecisionTreeClassifier().fit(X, y)
        # 1 split: 2 branch lines + 2 leaf lines.
        assert len(tree.export_text().splitlines()) == 4


class TestPropertyBased:
    @given(
        hnp.arrays(
            np.float64,
            st.tuples(st.integers(10, 60), st.integers(1, 4)),
            elements=st.floats(-100, 100, allow_nan=False),
        ),
        st.data(),
    )
    @settings(max_examples=40, deadline=None)
    def test_predictions_are_training_labels(self, X, data):
        y = np.array(
            data.draw(
                st.lists(
                    st.integers(0, 2), min_size=X.shape[0], max_size=X.shape[0]
                )
            )
        )
        if np.unique(y).shape[0] < 2:
            y[0] = 0
            y[1] = 1
        tree = DecisionTreeClassifier(max_splits=10).fit(X, y)
        pred = tree.predict(X)
        assert set(pred.tolist()) <= set(y.tolist())

    @given(st.integers(1, 40))
    @settings(max_examples=20, deadline=None)
    def test_split_budget_never_exceeded(self, budget):
        rng = np.random.default_rng(9)
        X = rng.random((150, 3))
        y = rng.integers(0, 2, 150)
        tree = DecisionTreeClassifier(max_splits=budget).fit(X, y)
        assert tree.n_splits_ <= budget

    @given(st.floats(1.0, 10.0))
    @settings(max_examples=15, deadline=None)
    def test_weight_scaling_invariance(self, scale):
        """Multiplying all weights by a constant must not change the tree."""
        rng = np.random.default_rng(10)
        X = rng.random((100, 3))
        # Structured labels: split gains differ clearly, so float-epsilon
        # noise from weight normalisation cannot flip tie-breaking.
        y = (X[:, 0] > 0.5).astype(int)
        base = DecisionTreeClassifier(rng=0).fit(
            X, y, sample_weight=np.ones(100)
        )
        scaled = DecisionTreeClassifier(rng=0).fit(
            X, y, sample_weight=np.full(100, scale)
        )
        assert (base.predict(X) == scaled.predict(X)).all()
