"""Tests for gradient boosting and the underlying regression tree."""

import numpy as np
import pytest

from repro.ml import DecisionTreeClassifier
from repro.ml.gbdt import GradientBoostingClassifier, RegressionTree
from repro.ml.metrics import roc_auc_score


class TestRegressionTree:
    def test_fits_step_function(self):
        X = np.linspace(0, 1, 200).reshape(-1, 1)
        y = (X[:, 0] > 0.5).astype(float) * 3.0
        tree = RegressionTree(max_depth=2, min_samples_leaf=5).fit(X, y)
        pred = tree.predict(X)
        assert np.abs(pred - y).max() < 0.2

    def test_depth_one_is_single_split(self):
        rng = np.random.default_rng(0)
        X = rng.random((100, 2))
        y = X[:, 0] * 2.0
        tree = RegressionTree(max_depth=1).fit(X, y)
        assert len(set(tree.predict(X).tolist())) <= 2

    def test_constant_target_gives_constant_leaf(self):
        X = np.random.default_rng(1).random((50, 2))
        tree = RegressionTree().fit(X, np.full(50, 7.0))
        np.testing.assert_allclose(tree.predict(X), 7.0)

    def test_min_samples_leaf_respected(self):
        rng = np.random.default_rng(2)
        X = rng.random((100, 1))
        y = rng.random(100)
        tree = RegressionTree(max_depth=8, min_samples_leaf=25).fit(X, y)
        # Leaves of ≥25 samples over 100 points → at most 4 leaves.
        assert len(np.unique(tree.predict(X))) <= 4

    def test_hessian_scales_leaf_values(self):
        X = np.zeros((4, 1))
        y = np.array([1.0, 1.0, 1.0, 1.0])
        small_h = RegressionTree().fit(X, y, hessian=np.full(4, 0.5))
        big_h = RegressionTree().fit(X, y, hessian=np.full(4, 2.0))
        assert small_h.predict(X)[0] == pytest.approx(2.0)
        assert big_h.predict(X)[0] == pytest.approx(0.5)

    def test_invalid(self):
        with pytest.raises(ValueError):
            RegressionTree(max_depth=0)
        with pytest.raises(ValueError):
            RegressionTree(min_samples_leaf=0)
        with pytest.raises(ValueError):
            RegressionTree().fit(np.zeros((3, 1)), np.zeros(2))


class TestGradientBoosting:
    def test_learns_xor(self):
        rng = np.random.default_rng(3)
        X = rng.uniform(-1, 1, size=(1500, 2))
        y = ((X[:, 0] > 0) ^ (X[:, 1] > 0)).astype(int)
        gbm = GradientBoostingClassifier(60, max_depth=3, rng=0).fit(X, y)
        assert gbm.score(X, y) > 0.95

    def test_beats_single_tree_on_noisy_interactions(self, binary_dataset):
        X, y = binary_dataset
        tree = DecisionTreeClassifier(max_splits=30, rng=0).fit(X[:800], y[:800])
        gbm = GradientBoostingClassifier(80, rng=0).fit(X[:800], y[:800])
        auc_tree = roc_auc_score(y[800:], tree.predict_proba(X[800:])[:, 1])
        auc_gbm = roc_auc_score(y[800:], gbm.predict_proba(X[800:])[:, 1])
        assert auc_gbm >= auc_tree - 0.01

    def test_more_rounds_reduce_training_error(self, binary_dataset):
        X, y = binary_dataset
        few = GradientBoostingClassifier(5, rng=0).fit(X, y).score(X, y)
        many = GradientBoostingClassifier(80, rng=0).fit(X, y).score(X, y)
        assert many >= few

    def test_proba_valid(self, binary_dataset):
        X, y = binary_dataset
        gbm = GradientBoostingClassifier(10, rng=0).fit(X, y)
        p = gbm.predict_proba(X[:100])
        np.testing.assert_allclose(p.sum(axis=1), 1.0)
        assert ((p >= 0) & (p <= 1)).all()

    def test_subsampling_still_learns(self, binary_dataset):
        X, y = binary_dataset
        gbm = GradientBoostingClassifier(
            60, subsample=0.5, rng=0
        ).fit(X[:800], y[:800])
        assert gbm.score(X[800:], y[800:]) > 0.8

    def test_sample_weight_shifts_decision(self):
        X = np.array([[0.0]] * 8)
        y = np.array([0, 0, 0, 0, 0, 1, 1, 1])
        w = np.array([1.0] * 5 + [10.0] * 3)
        gbm = GradientBoostingClassifier(30, rng=0).fit(X, y, sample_weight=w)
        assert gbm.predict(X)[0] == 1

    def test_deterministic_given_rng(self, binary_dataset):
        X, y = binary_dataset
        a = GradientBoostingClassifier(10, subsample=0.7, rng=5).fit(X, y)
        b = GradientBoostingClassifier(10, subsample=0.7, rng=5).fit(X, y)
        np.testing.assert_array_equal(a.predict(X), b.predict(X))

    def test_multiclass_rejected(self):
        with pytest.raises(ValueError):
            GradientBoostingClassifier(5).fit(
                np.random.random((9, 2)), [0, 1, 2] * 3
            )

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            GradientBoostingClassifier(0)
        with pytest.raises(ValueError):
            GradientBoostingClassifier(5, learning_rate=0)
        with pytest.raises(ValueError):
            GradientBoostingClassifier(5, subsample=0.0)
