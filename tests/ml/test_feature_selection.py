"""Tests for information gain and the §3.2.2 greedy forward selection."""

import numpy as np
import pytest

from repro.ml import DecisionTreeClassifier, greedy_forward_selection, information_gain
from repro.ml.feature_selection import entropy


class TestEntropy:
    def test_uniform_binary_is_one_bit(self):
        assert entropy([0, 1, 0, 1]) == pytest.approx(1.0)

    def test_pure_is_zero(self):
        assert entropy([1, 1, 1]) == pytest.approx(0.0)

    def test_four_uniform_classes_two_bits(self):
        assert entropy([0, 1, 2, 3]) == pytest.approx(2.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            entropy([])


class TestInformationGain:
    def test_perfectly_informative_feature(self):
        y = np.array([0, 0, 1, 1] * 50)
        x = y.astype(float)
        assert information_gain(x, y) == pytest.approx(1.0)

    def test_independent_feature_near_zero(self):
        rng = np.random.default_rng(0)
        y = rng.integers(0, 2, 5000)
        x = rng.random(5000)
        assert information_gain(x, y) < 0.02

    def test_gain_never_exceeds_label_entropy(self):
        rng = np.random.default_rng(1)
        y = rng.integers(0, 2, 500)
        for _ in range(5):
            x = rng.random(500)
            assert -1e-9 <= information_gain(x, y) <= entropy(y) + 1e-9

    def test_continuous_binning_path(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=3000)
        y = (x > 0).astype(int)
        # With 32 equal-width bins the split is almost fully recoverable.
        assert information_gain(x, y, n_bins=32) > 0.8

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            information_gain([1, 2], [1])


class TestGreedySelection:
    def _dataset(self):
        rng = np.random.default_rng(3)
        n = 1500
        signal = rng.integers(0, 2, n)
        x0 = signal + rng.normal(0, 0.1, n)           # strong feature
        x1 = signal + rng.normal(0, 1.0, n)           # weak feature
        x2 = rng.normal(size=n)                        # pure noise
        X = np.column_stack([x2, x0, x1])              # noise first
        return X, signal

    def test_strong_feature_selected_first(self):
        X, y = self._dataset()
        result = greedy_forward_selection(
            DecisionTreeClassifier(max_splits=5, rng=0), X, y
        )
        assert result.selected[0] == 1  # x0 (strong) has the highest gain

    def test_noise_feature_not_required(self):
        X, y = self._dataset()
        result = greedy_forward_selection(
            DecisionTreeClassifier(max_splits=5, rng=0), X, y,
            min_improvement=0.005,
        )
        # Selection stops before the pure-noise column is forced in.
        assert 0 not in result.selected or len(result.selected) < 3

    def test_max_features_budget(self):
        X, y = self._dataset()
        result = greedy_forward_selection(
            DecisionTreeClassifier(max_splits=5, rng=0), X, y, max_features=1
        )
        assert len(result.selected) == 1

    def test_scores_are_increasing(self):
        X, y = self._dataset()
        result = greedy_forward_selection(
            DecisionTreeClassifier(max_splits=5, rng=0), X, y
        )
        assert all(b > a for a, b in zip(result.scores, result.scores[1:]))

    def test_gains_cover_all_features(self):
        X, y = self._dataset()
        result = greedy_forward_selection(
            DecisionTreeClassifier(max_splits=3, rng=0), X, y
        )
        assert set(result.gains) == {0, 1, 2}

    def test_names_helper(self):
        X, y = self._dataset()
        result = greedy_forward_selection(
            DecisionTreeClassifier(max_splits=3, rng=0), X, y, max_features=2
        )
        names = result.names(["noise", "strong", "weak"])
        assert names[0] == "strong"

    def test_non_2d_rejected(self):
        with pytest.raises(ValueError):
            greedy_forward_selection(DecisionTreeClassifier(), np.zeros(5), np.zeros(5))
