"""Compiled GBDT inference parity.

The serving node's retrainer may install a gradient-boosted ensemble; the
hot path then runs entirely through the compiled walkers.  The contract
mirrors the CART fast path: compiled margins, posteriors, and class
verdicts must be **bit-identical** to the reference ensemble on every
input — the margin accumulation even reproduces the reference's float
summation order, so agreement holds at the decision boundary too.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.cost_sensitive import CostMatrix, CostSensitiveClassifier
from repro.ml.fastpath import fast_predictor
from repro.ml.gbdt import GradientBoostingClassifier


def _dataset(rng, n, d):
    X = rng.random((n, d))
    y = (X[:, 0] + 0.3 * rng.standard_normal(n) > 0.5).astype(int)
    if len(np.unique(y)) < 2:
        y[:2] = [0, 1]
    return X, y


ensemble_cases = st.tuples(
    st.integers(0, 2**32 - 1),   # dataset / query seed
    st.integers(30, 120),        # samples
    st.integers(1, 4),           # features
    st.integers(1, 12),          # n_estimators
    st.integers(1, 4),           # max_depth
    st.sampled_from([1.0, 0.7]),  # subsample
)


def _fit(case):
    seed, n, d, n_estimators, max_depth, subsample = case
    rng = np.random.default_rng(seed)
    X, y = _dataset(rng, n, d)
    gb = GradientBoostingClassifier(
        n_estimators=n_estimators,
        max_depth=max_depth,
        subsample=subsample,
        min_samples_leaf=2,
        rng=seed,
    ).fit(X, y)
    queries = np.concatenate([X, rng.random((64, d))])
    return gb, queries


class TestEnsembleParity:
    @given(case=ensemble_cases)
    @settings(max_examples=30, deadline=None)
    def test_compiled_margins_match_reference(self, case):
        gb, queries = _fit(case)
        margins = gb.compile_decision_function()
        assert margins.compiled
        expected = gb.decision_function(queries)
        np.testing.assert_array_equal(margins.predict(queries), expected)
        for row, want in zip(queries, expected):
            assert margins.predict_one(row.tolist()) == want

    @given(case=ensemble_cases)
    @settings(max_examples=20, deadline=None)
    def test_compiled_proba_and_classes_match_reference(self, case):
        gb, queries = _fit(case)
        proba = gb.compile_proba()
        predictor = gb.compile_predictor()
        np.testing.assert_array_equal(
            proba.predict(queries), gb.predict_proba(queries)[:, 1]
        )
        expected = gb.predict(queries)
        np.testing.assert_array_equal(predictor.predict(queries), expected)
        for row, want in zip(queries, expected):
            assert predictor.predict_one(row.tolist()) == want

    def test_fast_predictor_compiles_gbdt_natively(self):
        """The dispatcher must not fall back to the generic wrapper."""
        rng = np.random.default_rng(7)
        X, y = _dataset(rng, 80, 3)
        gb = GradientBoostingClassifier(n_estimators=5, rng=0).fit(X, y)
        cp = fast_predictor(gb)
        assert cp.compiled
        assert cp.n_nodes > 0
        np.testing.assert_array_equal(cp.predict(X), gb.predict(X))

    def test_n_nodes_sums_over_ensemble(self):
        rng = np.random.default_rng(3)
        X, y = _dataset(rng, 60, 2)
        small = GradientBoostingClassifier(n_estimators=2, rng=0).fit(X, y)
        large = GradientBoostingClassifier(n_estimators=8, rng=0).fit(X, y)
        assert (
            fast_predictor(large).n_nodes > fast_predictor(small).n_nodes
        )


class TestCostSensitiveOverGbdt:
    @given(case=ensemble_cases)
    @settings(max_examples=15, deadline=None)
    def test_threshold_wrapper_parity(self, case):
        """Cost-sensitive thresholding over a GBDT base, compiled vs not."""
        seed, n, d, n_estimators, max_depth, subsample = case
        rng = np.random.default_rng(seed)
        X, y = _dataset(rng, n, d)
        model = CostSensitiveClassifier(
            GradientBoostingClassifier(
                n_estimators=n_estimators,
                max_depth=max_depth,
                subsample=subsample,
                min_samples_leaf=2,
                rng=seed,
            ),
            CostMatrix(fn_cost=1.0, fp_cost=2.0),
        ).fit(X, y)
        cp = fast_predictor(model)
        queries = np.concatenate([X, rng.random((48, d))])
        expected = model.predict(queries)
        np.testing.assert_array_equal(cp.predict(queries), expected)
        for row, want in zip(queries, expected):
            assert cp.predict_one(row.tolist()) == want
