"""Property tests for the compiled-tree inference fast path.

The contract: :meth:`DecisionTreeClassifier.predict_one`, the
code-generated :class:`~repro.ml.fastpath.CompiledPredictor` (single-row
*and* vectorised batch), and the reference ``predict`` must agree on
**every** input for **every** fitted tree — including cost-sensitive
wrappers (both Elkan methods) and cost-complexity-pruned trees.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml import LogisticRegression
from repro.ml.cost_sensitive import CostMatrix, CostSensitiveClassifier
from repro.ml.fastpath import (
    _MAX_CODEGEN_DEPTH,
    compile_tree_arrays,
    fast_predictor,
)
from repro.ml.tree import DecisionTreeClassifier


def _dataset(rng, n, d, n_classes):
    X = rng.random((n, d))
    y = rng.integers(0, n_classes, n)
    if len(np.unique(y)) < 2:  # fit() rejects single-class targets
        y[: n_classes] = np.arange(n_classes)
    return X, y


fitted_tree_cases = st.tuples(
    st.integers(0, 2**32 - 1),      # dataset / query seed
    st.integers(20, 150),           # samples
    st.integers(1, 4),              # features
    st.integers(2, 3),              # classes
    st.one_of(st.none(), st.integers(1, 25)),  # max_splits budget
)


class TestTreeParity:
    @given(case=fitted_tree_cases)
    @settings(max_examples=40, deadline=None)
    def test_predict_one_and_compiled_match_reference(self, case):
        seed, n, d, n_classes, max_splits = case
        rng = np.random.default_rng(seed)
        X, y = _dataset(rng, n, d, n_classes)
        tree = DecisionTreeClassifier(max_splits=max_splits, rng=0).fit(X, y)
        compiled = tree.compile_predictor()

        queries = np.concatenate([X, rng.random((64, d))])
        expected = tree.predict(queries)
        np.testing.assert_array_equal(compiled.predict(queries), expected)
        for row, want in zip(queries, expected):
            assert tree.predict_one(row) == want
            assert compiled.predict_one(row.tolist()) == want

    @given(case=fitted_tree_cases)
    @settings(max_examples=15, deadline=None)
    def test_pruned_tree_parity(self, case):
        """Pruning rebuilds the arrays; cached walk plans must not go stale."""
        seed, n, d, n_classes, _ = case
        rng = np.random.default_rng(seed)
        X, y = _dataset(rng, n, d, n_classes)
        tree = DecisionTreeClassifier(max_splits=None, rng=0).fit(X, y)
        tree.predict_one(X[0])  # populate the walk-plan cache pre-prune
        pruned = tree.cost_complexity_prune(ccp_alpha=0.01)
        compiled = pruned.compile_predictor()

        queries = np.concatenate([X, rng.random((32, d))])
        expected = pruned.predict(queries)
        np.testing.assert_array_equal(compiled.predict(queries), expected)
        for row, want in zip(queries, expected):
            assert pruned.predict_one(row) == want
            assert compiled.predict_one(row.tolist()) == want


class TestCostSensitiveParity:
    @given(case=fitted_tree_cases, method=st.sampled_from(["reweight", "threshold"]))
    @settings(max_examples=30, deadline=None)
    def test_both_elkan_methods(self, case, method):
        seed, n, d, _, max_splits = case
        rng = np.random.default_rng(seed)
        X, y = _dataset(rng, n, d, 2)
        clf = CostSensitiveClassifier(
            DecisionTreeClassifier(max_splits=max_splits, rng=0),
            CostMatrix(fn_cost=1.0, fp_cost=3.0),
            method=method,
        ).fit(X, y)
        compiled = clf.compile_predictor()

        queries = np.concatenate([X, rng.random((64, d))])
        expected = clf.predict(queries)
        np.testing.assert_array_equal(compiled.predict(queries), expected)
        for row, want in zip(queries, expected):
            assert clf.predict_one(row) == want
            assert compiled.predict_one(row.tolist()) == want


class TestCompileInternals:
    def test_deep_tree_falls_back_to_walker(self):
        """A chain deeper than the codegen limit still predicts correctly."""
        depth = _MAX_CODEGEN_DEPTH + 10
        n_nodes = 2 * depth + 1
        feature = np.full(n_nodes, -1, dtype=np.int64)
        threshold = np.zeros(n_nodes)
        left = np.full(n_nodes, -1, dtype=np.int64)
        right = np.full(n_nodes, -1, dtype=np.int64)
        labels = np.zeros(n_nodes, dtype=np.int64)
        # Node 2k splits on x0 <= k: left -> leaf 2k+1 (label k),
        # right -> next split 2k+2; the final node is a leaf labelled depth.
        for k in range(depth):
            node = 2 * k
            feature[node] = 0
            threshold[node] = float(k)
            left[node] = node + 1
            right[node] = node + 2
            labels[node + 1] = k
        labels[2 * depth] = depth

        compiled = compile_tree_arrays(feature, threshold, left, right, labels)
        assert not compiled.compiled  # fell back, did not codegen
        for probe in (0.0, 3.5, depth - 1 + 0.5, depth + 50.0):
            want = min(int(np.ceil(probe)) if probe > 0 else 0, depth)
            assert compiled.predict_one([probe]) == want
        X = np.array([[0.0], [3.5], [depth + 50.0]])
        np.testing.assert_array_equal(
            compiled.predict(X), [0, 4, depth]
        )

    def test_shallow_tree_is_codegenned(self):
        X = np.array([[0.0], [1.0], [2.0], [3.0]])
        y = np.array([0, 0, 1, 1])
        compiled = DecisionTreeClassifier().fit(X, y).compile_predictor()
        assert compiled.compiled
        assert "def _predict_one" in compiled.source

    def test_label_dtype_preserved(self):
        X = np.array([[0.0], [1.0], [2.0], [3.0]])
        y = np.array(["cold", "cold", "hot", "hot"])
        tree = DecisionTreeClassifier().fit(X, y)
        compiled = tree.compile_predictor()
        assert compiled.predict_one([0.5]) == "cold"
        assert list(compiled.predict(X)) == ["cold", "cold", "hot", "hot"]

    def test_fast_predictor_generic_fallback(self):
        """Models without a tree structure still get a working predictor."""
        rng = np.random.default_rng(7)
        X = rng.random((80, 3))
        y = (X[:, 0] > 0.5).astype(int)
        model = LogisticRegression().fit(X, y)
        pred = fast_predictor(model)
        assert not pred.compiled
        expected = model.predict(X)
        np.testing.assert_array_equal(pred.predict(X), expected)
        for row, want in zip(X, expected):
            assert pred.predict_one(row) == want
