"""Tests for train/test splitting and cross-validation."""

import numpy as np
import pytest

from repro.ml import (
    DecisionTreeClassifier,
    GridSearchCV,
    KFold,
    StratifiedKFold,
    cross_val_score,
    cross_validate_metrics,
    train_test_split,
)


class TestTrainTestSplit:
    def test_sizes(self):
        X = np.arange(100).reshape(-1, 1)
        y = np.arange(100) % 2
        Xtr, Xte, ytr, yte = train_test_split(X, y, test_size=0.25, rng=0)
        assert Xte.shape[0] == 25
        assert Xtr.shape[0] == 75
        assert ytr.shape[0] == 75 and yte.shape[0] == 25

    def test_disjoint_and_complete(self):
        X = np.arange(50).reshape(-1, 1)
        y = np.zeros(50)
        Xtr, Xte, _, _ = train_test_split(X, y, test_size=0.3, rng=1)
        seen = np.concatenate([Xtr[:, 0], Xte[:, 0]])
        assert sorted(seen.tolist()) == list(range(50))

    def test_stratified_preserves_balance(self):
        rng = np.random.default_rng(2)
        y = (rng.random(1000) < 0.2).astype(int)
        X = np.zeros((1000, 1))
        _, _, ytr, yte = train_test_split(X, y, test_size=0.5, rng=3, stratify=True)
        assert abs(ytr.mean() - yte.mean()) < 0.02

    def test_deterministic_with_seed(self):
        X = np.arange(30).reshape(-1, 1)
        y = np.arange(30) % 2
        a = train_test_split(X, y, rng=7)[1]
        b = train_test_split(X, y, rng=7)[1]
        np.testing.assert_array_equal(a, b)

    def test_invalid_test_size(self):
        with pytest.raises(ValueError):
            train_test_split(np.zeros((4, 1)), np.zeros(4), test_size=1.5)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            train_test_split(np.zeros((4, 1)), np.zeros(5))


class TestKFold:
    @pytest.mark.parametrize("cls", [KFold, StratifiedKFold])
    def test_folds_partition_data(self, cls):
        y = np.arange(40) % 2
        X = np.zeros((40, 1))
        all_test = []
        for train_idx, test_idx in cls(4, rng=0).split(X, y):
            assert np.intersect1d(train_idx, test_idx).shape[0] == 0
            assert train_idx.shape[0] + test_idx.shape[0] == 40
            all_test.append(test_idx)
        assert sorted(np.concatenate(all_test).tolist()) == list(range(40))

    def test_stratified_balance_per_fold(self):
        rng = np.random.default_rng(4)
        y = (rng.random(300) < 0.3).astype(int)
        X = np.zeros((300, 1))
        for _, test_idx in StratifiedKFold(5, rng=0).split(X, y):
            assert abs(y[test_idx].mean() - 0.3) < 0.1

    def test_requires_min_splits(self):
        with pytest.raises(ValueError):
            KFold(1)

    def test_too_few_samples(self):
        with pytest.raises(ValueError):
            list(KFold(10).split(np.zeros((3, 1))))

    def test_stratified_requires_y(self):
        with pytest.raises(ValueError):
            list(StratifiedKFold(2).split(np.zeros((10, 1))))


class TestCrossValidation:
    def test_scores_shape_and_range(self, binary_dataset):
        X, y = binary_dataset
        scores = cross_val_score(
            DecisionTreeClassifier(rng=0), X, y, cv=StratifiedKFold(4, rng=0)
        )
        assert scores.shape == (4,)
        assert ((scores >= 0) & (scores <= 1)).all()
        assert scores.mean() > 0.8

    def test_metrics_keys(self, binary_dataset):
        X, y = binary_dataset
        m = cross_validate_metrics(DecisionTreeClassifier(rng=0), X, y)
        assert set(m) == {"precision", "recall", "accuracy", "auc"}
        assert all(0 <= v <= 1 for v in m.values())

    def test_estimator_left_unfitted(self, binary_dataset):
        X, y = binary_dataset
        est = DecisionTreeClassifier(rng=0)
        cross_val_score(est, X, y, cv=KFold(3, rng=0))
        assert not hasattr(est, "classes_")


class TestGridSearchCV:
    def _factory(self, **params):
        return DecisionTreeClassifier(rng=0, **params)

    def test_finds_reasonable_budget(self, binary_dataset):
        X, y = binary_dataset
        search = GridSearchCV(
            self._factory,
            {"max_splits": [1, 30], "min_samples_leaf": [1, 5]},
            cv=StratifiedKFold(3, rng=0),
        ).fit(X, y)
        # A single split cannot express this boundary; 30 must win.
        assert search.best_params_["max_splits"] == 30
        assert 0 <= search.best_score_ <= 1
        assert search.predict(X[:5]).shape == (5,)

    def test_results_cover_full_grid(self, binary_dataset):
        X, y = binary_dataset
        search = GridSearchCV(
            self._factory,
            {"max_splits": [1, 5, 30]},
            cv=StratifiedKFold(3, rng=0),
        ).fit(X[:400], y[:400])
        assert len(search.results_) == 3
        budgets = {r["params"]["max_splits"] for r in search.results_}
        assert budgets == {1, 5, 30}

    def test_best_estimator_refit_on_full_data(self, binary_dataset):
        X, y = binary_dataset
        search = GridSearchCV(
            self._factory, {"max_splits": [30]},
            cv=StratifiedKFold(3, rng=0),
        ).fit(X, y)
        assert hasattr(search.best_estimator_, "classes_")

    def test_invalid_grid(self):
        with pytest.raises(ValueError):
            GridSearchCV(self._factory, {})
        with pytest.raises(ValueError):
            GridSearchCV(self._factory, {"max_splits": []})
