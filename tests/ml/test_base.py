"""Tests for the estimator plumbing: validation and the base protocol."""

import numpy as np
import pytest

from repro.ml.base import (
    BaseEstimator,
    check_array,
    check_sample_weight,
    check_X_y,
)


class TestCheckArray:
    def test_coerces_to_2d_float64(self):
        out = check_array([1, 2, 3])
        assert out.shape == (3, 1)
        assert out.dtype == np.float64
        assert out.flags["C_CONTIGUOUS"]

    def test_passthrough_2d(self):
        X = np.random.default_rng(0).random((4, 2))
        out = check_array(X)
        np.testing.assert_array_equal(out, X)

    def test_rejects_3d(self):
        with pytest.raises(ValueError, match="2-D"):
            check_array(np.zeros((2, 2, 2)))

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="no samples"):
            check_array(np.zeros((0, 3)))

    def test_rejects_nan_and_inf(self):
        with pytest.raises(ValueError, match="NaN"):
            check_array([[np.nan]])
        with pytest.raises(ValueError):
            check_array([[np.inf]])

    def test_custom_name_in_message(self):
        with pytest.raises(ValueError, match="Q contains"):
            check_array([[np.nan]], name="Q")


class TestCheckXY:
    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="inconsistent"):
            check_X_y(np.zeros((3, 1)), np.zeros(4))

    def test_y_must_be_1d(self):
        with pytest.raises(ValueError, match="1-D"):
            check_X_y(np.zeros((3, 1)), np.zeros((3, 1)))

    def test_labels_not_coerced(self):
        _, y = check_X_y(np.zeros((2, 1)), np.array(["a", "b"]))
        assert y.dtype.kind == "U"


class TestCheckSampleWeight:
    def test_none_gives_uniform(self):
        w = check_sample_weight(None, 4)
        np.testing.assert_array_equal(w, np.ones(4))

    def test_normalised_to_sum_n(self):
        w = check_sample_weight([1.0, 3.0], 2)
        assert w.sum() == pytest.approx(2.0)
        assert w[1] == pytest.approx(3 * w[0])

    def test_shape_enforced(self):
        with pytest.raises(ValueError, match="shape"):
            check_sample_weight([1.0], 2)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            check_sample_weight([-1.0, 2.0], 2)

    def test_zero_sum_rejected(self):
        with pytest.raises(ValueError, match="zero"):
            check_sample_weight([0.0, 0.0], 2)


class TestBaseEstimator:
    class _Stub(BaseEstimator):
        def fit(self, X, y, sample_weight=None):
            X, y = check_X_y(X, y)
            self._y = self._encode_labels(y)
            return self

        def predict(self, X):
            X = check_array(X)
            return np.full(X.shape[0], self.classes_[0])

    def test_score_is_accuracy(self):
        model = self._Stub().fit([[0.0], [1.0]], [0, 1])
        assert model.score([[0.0], [1.0]], [0, 0]) == pytest.approx(1.0)
        assert model.score([[0.0], [1.0]], [1, 1]) == pytest.approx(0.0)

    def test_encode_labels_sorted(self):
        model = self._Stub().fit([[0.0], [1.0], [2.0]], ["c", "a", "b"])
        assert model.classes_.tolist() == ["a", "b", "c"]

    def test_single_class_rejected(self):
        with pytest.raises(ValueError, match="two classes"):
            self._Stub().fit([[0.0], [1.0]], [1, 1])

    def test_check_fitted(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            self._Stub()._check_fitted()

    def test_repr_lists_params(self):
        class P(BaseEstimator):
            def __init__(self):
                self.alpha = 3
                self.fitted_ = "hidden"

            def fit(self, X, y, sample_weight=None):
                return self

            def predict(self, X):
                return np.zeros(1)

        assert "alpha=3" in repr(P())
        assert "hidden" not in repr(P())
