"""Cross-estimator contract tests plus per-estimator behaviour checks."""

import numpy as np
import pytest

from repro.ml import (
    AdaBoostClassifier,
    CategoricalNB,
    DecisionTreeClassifier,
    GaussianNB,
    KNeighborsClassifier,
    LogisticRegression,
    MLPClassifier,
    RandomForestClassifier,
)

ALL_ESTIMATORS = [
    pytest.param(lambda: DecisionTreeClassifier(rng=0), id="tree"),
    pytest.param(lambda: RandomForestClassifier(5, rng=0), id="forest"),
    pytest.param(lambda: AdaBoostClassifier(5, rng=0), id="adaboost"),
    pytest.param(lambda: GaussianNB(), id="gnb"),
    pytest.param(lambda: KNeighborsClassifier(3), id="knn"),
    pytest.param(lambda: LogisticRegression(), id="logreg"),
    pytest.param(lambda: MLPClassifier(8, epochs=15, rng=0), id="mlp"),
]


@pytest.mark.parametrize("make", ALL_ESTIMATORS)
class TestEstimatorContract:
    def test_beats_chance_on_separable_data(self, make, binary_dataset):
        X, y = binary_dataset
        model = make().fit(X[:800], y[:800])
        assert model.score(X[800:], y[800:]) > 0.7

    def test_classes_attribute(self, make, binary_dataset):
        X, y = binary_dataset
        model = make().fit(X, y)
        assert (model.classes_ == np.array([0, 1])).all()

    def test_proba_valid_distribution(self, make, binary_dataset):
        X, y = binary_dataset
        model = make().fit(X, y)
        p = model.predict_proba(X[:50])
        assert p.shape == (50, 2)
        np.testing.assert_allclose(p.sum(axis=1), 1.0, atol=1e-9)
        assert (p >= 0).all() and (p <= 1 + 1e-12).all()

    def test_predict_shape_and_dtype(self, make, binary_dataset):
        X, y = binary_dataset
        model = make().fit(X, y)
        pred = model.predict(X[:10])
        assert pred.shape == (10,)
        assert set(pred.tolist()) <= {0, 1}

    def test_single_class_rejected(self, make):
        with pytest.raises(ValueError):
            make().fit(np.random.default_rng(0).random((20, 2)), np.zeros(20))

    def test_unfitted_predict_raises(self, make):
        with pytest.raises((RuntimeError, AttributeError)):
            make().predict(np.zeros((2, 2)))

    def test_sample_weight_accepted(self, make, binary_dataset):
        X, y = binary_dataset
        w = np.where(y == 1, 2.0, 1.0)
        model = make().fit(X[:400], y[:400], sample_weight=w[:400])
        assert model.score(X[400:800], y[400:800]) > 0.6


class TestGaussianNB:
    def test_recovers_gaussian_classes(self):
        rng = np.random.default_rng(0)
        X0 = rng.normal(-2, 1, size=(500, 2))
        X1 = rng.normal(+2, 1, size=(500, 2))
        X = np.vstack([X0, X1])
        y = np.r_[np.zeros(500), np.ones(500)]
        model = GaussianNB().fit(X, y)
        assert model.score(X, y) > 0.97
        assert model.theta_[0, 0] == pytest.approx(-2, abs=0.2)
        assert model.theta_[1, 0] == pytest.approx(+2, abs=0.2)

    def test_priors_reflect_weights(self):
        X = np.array([[0.0], [0.1], [1.0], [1.1]])
        y = np.array([0, 0, 1, 1])
        w = np.array([3.0, 3.0, 1.0, 1.0])
        model = GaussianNB().fit(X, y, sample_weight=w)
        priors = np.exp(model.class_log_prior_)
        assert priors[0] == pytest.approx(0.75)

    def test_var_smoothing_guards_constant_feature(self):
        X = np.array([[1.0, 0.0], [1.0, 1.0], [1.0, 2.0], [1.0, 3.0]])
        y = np.array([0, 0, 1, 1])
        model = GaussianNB().fit(X, y)
        assert np.isfinite(model.predict_proba(X)).all()


class TestCategoricalNB:
    def test_learns_category_association(self):
        rng = np.random.default_rng(1)
        x = rng.integers(0, 4, 2000)
        y = (x >= 2).astype(int)
        flip = rng.random(2000) < 0.1
        y = y ^ flip
        model = CategoricalNB().fit(x.reshape(-1, 1), y)
        assert model.score(x.reshape(-1, 1), y) > 0.85

    def test_unseen_category_is_tolerated(self):
        model = CategoricalNB().fit(np.array([[0.0], [1.0]]), [0, 1])
        # Category 7 was never seen: prediction must not crash.
        assert model.predict(np.array([[7.0]])).shape == (1,)

    def test_non_integer_rejected(self):
        with pytest.raises(ValueError):
            CategoricalNB().fit(np.array([[0.5], [1.0]]), [0, 1])

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            CategoricalNB().fit(np.array([[-1.0], [1.0]]), [0, 1])


class TestKNN:
    def test_one_neighbor_memorises(self):
        rng = np.random.default_rng(2)
        X = rng.random((100, 3))
        y = rng.integers(0, 2, 100)
        model = KNeighborsClassifier(1).fit(X, y)
        assert model.score(X, y) == 1.0

    def test_k_larger_than_n_rejected(self):
        with pytest.raises(ValueError):
            KNeighborsClassifier(10).fit(np.zeros((5, 2)), [0, 1, 0, 1, 0])

    def test_distance_weighting(self):
        # Two far class-0 points, one near class-1 point; k=3 uniform votes 0,
        # distance weighting flips to 1.
        X = np.array([[0.0], [10.0], [-10.0]])
        y = np.array([1, 0, 0])
        q = np.array([[0.5]])
        uniform = KNeighborsClassifier(3, standardize=False).fit(X, y)
        weighted = KNeighborsClassifier(3, weights="distance", standardize=False).fit(X, y)
        assert uniform.predict(q)[0] == 0
        assert weighted.predict(q)[0] == 1

    def test_blocked_equals_unblocked(self, binary_dataset):
        X, y = binary_dataset
        big = KNeighborsClassifier(5, block_size=10_000).fit(X[:500], y[:500])
        small = KNeighborsClassifier(5, block_size=17).fit(X[:500], y[:500])
        np.testing.assert_array_equal(
            big.predict(X[500:700]), small.predict(X[500:700])
        )


class TestLogisticRegression:
    def test_recovers_linear_boundary(self):
        rng = np.random.default_rng(3)
        X = rng.normal(size=(2000, 2))
        y = (X @ np.array([2.0, -1.0]) > 0.5).astype(int)
        model = LogisticRegression(max_iter=2000).fit(X, y)
        assert model.score(X, y) > 0.95
        # Coefficient signs must match the generating vector.
        assert model.coef_[0] > 0 > model.coef_[1]

    def test_stronger_regularisation_shrinks_coefs(self):
        rng = np.random.default_rng(4)
        X = rng.normal(size=(500, 3))
        y = (X[:, 0] > 0).astype(int)
        loose = LogisticRegression(C=100.0, max_iter=2000).fit(X, y)
        tight = LogisticRegression(C=0.001, max_iter=2000).fit(X, y)
        assert np.abs(tight.coef_).sum() < np.abs(loose.coef_).sum()

    def test_multiclass_rejected(self):
        with pytest.raises(ValueError):
            LogisticRegression().fit(np.random.random((9, 2)), [0, 1, 2] * 3)

    def test_decision_function_sign_matches_predict(self, binary_dataset):
        X, y = binary_dataset
        model = LogisticRegression().fit(X, y)
        df = model.decision_function(X)
        assert ((df >= 0) == (model.predict(X) == 1)).all()


class TestMLP:
    def test_learns_xor(self):
        """A hidden layer must solve what logistic regression cannot."""
        rng = np.random.default_rng(5)
        X = rng.uniform(-1, 1, size=(1500, 2))
        y = ((X[:, 0] > 0) ^ (X[:, 1] > 0)).astype(int)
        mlp = MLPClassifier(16, epochs=120, learning_rate=0.5, rng=0).fit(X, y)
        assert mlp.score(X, y) > 0.9
        lin = LogisticRegression().fit(X, y)
        assert lin.score(X, y) < 0.65

    def test_deterministic_given_seed(self, binary_dataset):
        X, y = binary_dataset
        a = MLPClassifier(8, epochs=5, rng=7).fit(X, y).predict(X)
        b = MLPClassifier(8, epochs=5, rng=7).fit(X, y).predict(X)
        np.testing.assert_array_equal(a, b)


class TestEnsembles:
    def test_forest_no_worse_than_single_tree(self, binary_dataset):
        X, y = binary_dataset
        tree = DecisionTreeClassifier(max_splits=5, rng=0).fit(X[:800], y[:800])
        forest = RandomForestClassifier(
            15, max_splits=5, rng=0
        ).fit(X[:800], y[:800])
        assert forest.score(X[800:], y[800:]) >= tree.score(X[800:], y[800:]) - 0.02

    def test_adaboost_improves_weak_stumps(self):
        rng = np.random.default_rng(6)
        X = rng.normal(size=(800, 2))
        y = ((X[:, 0] > 0) ^ (X[:, 1] > 0)).astype(int)  # stumps can't do XOR
        stump = DecisionTreeClassifier(max_splits=1).fit(X, y)
        boosted = AdaBoostClassifier(
            40, base_max_splits=3, base_max_depth=2, rng=0
        ).fit(X, y)
        assert boosted.score(X, y) > stump.score(X, y) + 0.2

    def test_ensemble_size_respected(self, binary_dataset):
        X, y = binary_dataset
        forest = RandomForestClassifier(7, rng=0).fit(X, y)
        assert len(forest.estimators_) == 7
        ada = AdaBoostClassifier(6, rng=0).fit(X, y)
        assert len(ada.estimators_) <= 6

    def test_invalid_n_estimators(self):
        with pytest.raises(ValueError):
            RandomForestClassifier(0)
        with pytest.raises(ValueError):
            AdaBoostClassifier(0)
