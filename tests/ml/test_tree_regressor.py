"""DecisionTreeRegressor: exact vs histogram split search.

The ``bins`` option changes which thresholds are *considered*, never how
a fitted tree routes or predicts — these tests pin that contract, since
the online eviction head depends on histogram fits being cheap while
the compiled fast path stays bit-faithful to the tree arrays.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.fastpath import fast_predictor
from repro.ml.tree import DecisionTreeRegressor


def _dataset(n=4_000, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, 5))
    y = 2.0 * X[:, 0] + np.sin(X[:, 1]) + 0.1 * rng.normal(size=n)
    return X, y


class TestExactMode:
    def test_fit_reduces_error_over_mean(self):
        X, y = _dataset()
        model = DecisionTreeRegressor(max_splits=32).fit(X, y)
        sse = float(np.sum((model.predict(X) - y) ** 2))
        sse_mean = float(np.sum((y - y.mean()) ** 2))
        assert sse < 0.25 * sse_mean

    def test_default_stays_exact(self):
        assert DecisionTreeRegressor().bins is None


class TestBinnedMode:
    def test_binned_quality_matches_exact_closely(self):
        X, y = _dataset()
        exact = DecisionTreeRegressor(max_splits=64).fit(X, y)
        binned = DecisionTreeRegressor(max_splits=64, bins=64).fit(X, y)
        mae_exact = float(np.mean(np.abs(exact.predict(X) - y)))
        mae_binned = float(np.mean(np.abs(binned.predict(X) - y)))
        # Quantile thresholds coarsen the search, not the model class:
        # a few percent of extra error is the whole price.
        assert mae_binned <= 1.25 * mae_exact + 1e-9

    def test_thresholds_stay_inside_feature_range(self):
        # Binned thresholds come from the quantile edge grid, so every
        # split must sit strictly inside its feature's observed range —
        # a threshold at or past the max would send all rows left.
        X, y = _dataset(n=1_000)
        model = DecisionTreeRegressor(max_splits=16, bins=16).fit(X, y)
        split_nodes = [n for n in range(model.node_count_)
                       if model.feature_[n] >= 0]
        assert split_nodes
        for node in split_nodes:
            col = X[:, int(model.feature_[node])]
            assert col.min() <= model.threshold_[node] < col.max()

    def test_min_samples_leaf_respected_by_histogram_splits(self):
        X, y = _dataset(n=2_000, seed=3)
        model = DecisionTreeRegressor(
            max_splits=32, min_samples_leaf=25, bins=32
        ).fit(X, y)
        # Route every training row and count leaf occupancy.
        leaf = np.zeros(len(X), dtype=np.int64)
        for i in range(len(X)):
            node = 0
            while model.feature_[node] != -1:
                f = int(model.feature_[node])
                node = int(
                    model.children_left_[node]
                    if X[i, f] <= model.threshold_[node]
                    else model.children_right_[node]
                )
            leaf[i] = node
        counts = np.bincount(leaf, minlength=model.node_count_)
        is_leaf = model.feature_ == -1
        assert (counts[is_leaf] >= 25).all()

    def test_weighted_binned_fit(self):
        X, y = _dataset(n=1_000)
        w = np.random.default_rng(1).uniform(0.5, 2.0, size=len(X))
        model = DecisionTreeRegressor(max_splits=16, bins=32).fit(
            X, y, sample_weight=w
        )
        assert np.isfinite(model.predict(X)).all()

    def test_constant_feature_never_split(self):
        X, y = _dataset(n=500)
        X[:, 3] = 7.0
        model = DecisionTreeRegressor(max_splits=16, bins=16).fit(X, y)
        assert 3 not in set(model.feature_[model.feature_ >= 0].tolist())

    def test_invalid_bins_rejected(self):
        with pytest.raises(ValueError, match="bins"):
            DecisionTreeRegressor(bins=1)

    @given(bins=st.integers(2, 64), seed=st.integers(0, 50))
    @settings(max_examples=25, deadline=None)
    def test_compiled_fastpath_matches_binned_tree(self, bins, seed):
        """fastpath parity is bin-agnostic: the compiled walker must
        reproduce predict() exactly whatever threshold grid fit used."""
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(300, 3))
        y = X[:, 0] + rng.normal(0, 0.2, size=300)
        model = DecisionTreeRegressor(max_splits=12, bins=bins).fit(X, y)
        cp = fast_predictor(model)
        expected = model.predict(X)
        assert np.array_equal(np.asarray([cp.predict_one(tuple(r)) for r in X]),
                              expected)
        assert np.array_equal(cp.predict(X), expected)
