"""Tests for cost-sensitive learning (paper §4.4.1, Table 4)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ml import CostMatrix, CostSensitiveClassifier, DecisionTreeClassifier
from repro.ml.cost_sensitive import select_cost_v, tune_threshold
from repro.ml.logistic import LogisticRegression
from repro.ml.metrics import precision_score, recall_score


def _imbalanced_noisy_dataset(seed=0, n=4000):
    """Binary data with an ambiguous region where costs matter."""
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, 3))
    p = 1.0 / (1.0 + np.exp(-(1.5 * X[:, 0] + X[:, 1])))
    y = (rng.random(n) < p).astype(int)
    return X, y


class TestCostMatrix:
    def test_threshold_formula(self):
        cm = CostMatrix(fn_cost=1.0, fp_cost=2.0)
        assert cm.optimal_threshold == pytest.approx(2 / 3)
        cm = CostMatrix(fn_cost=1.0, fp_cost=3.0)
        assert cm.optimal_threshold == pytest.approx(3 / 4)

    def test_symmetric_costs_threshold_half(self):
        assert CostMatrix(1.0, 1.0).optimal_threshold == pytest.approx(0.5)

    def test_sample_weights_direction(self):
        cm = CostMatrix(fn_cost=1.0, fp_cost=2.0)
        w = cm.sample_weights(np.array([1, 0, 1, 0]))
        # Negatives (re-accessed photos) carry the higher fp cost.
        np.testing.assert_array_equal(w, [1.0, 2.0, 1.0, 2.0])

    def test_invalid_costs_rejected(self):
        with pytest.raises(ValueError):
            CostMatrix(fn_cost=0.0)
        with pytest.raises(ValueError):
            CostMatrix(fp_cost=-1.0)

    @given(st.floats(0.1, 10), st.floats(0.1, 10))
    def test_threshold_in_unit_interval(self, fn, fp):
        assert 0.0 < CostMatrix(fn, fp).optimal_threshold < 1.0


class TestSelectCostV:
    def test_paper_boundaries(self):
        GiB = 2**30
        assert select_cost_v(2 * GiB) == 2.0
        assert select_cost_v(11 * GiB) == 2.0
        assert select_cost_v(12 * GiB) == 3.0
        assert select_cost_v(20 * GiB) == 3.0

    def test_custom_boundary(self):
        assert select_cost_v(100, boundary_bytes=50) == 3.0
        assert select_cost_v(10, boundary_bytes=50) == 2.0

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            select_cost_v(0)


class TestTuneThreshold:
    def test_perfect_separation(self):
        y = np.array([0, 0, 1, 1])
        s = np.array([0.1, 0.2, 0.8, 0.9])
        thr, cost = tune_threshold(y, s, CostMatrix(1.0, 1.0))
        assert 0.2 < thr <= 0.8
        assert cost == 0.0

    def test_matches_elkan_on_calibrated_scores(self):
        """On calibrated posteriors the tuned cut ≈ the theoretical p*."""
        rng = np.random.default_rng(0)
        p = rng.random(60_000)
        y = (rng.random(60_000) < p).astype(int)
        cm = CostMatrix(fn_cost=1.0, fp_cost=3.0)
        thr, _ = tune_threshold(y, p, cm)
        assert thr == pytest.approx(cm.optimal_threshold, abs=0.05)

    def test_high_fp_cost_raises_threshold(self):
        rng = np.random.default_rng(1)
        p = rng.random(20_000)
        y = (rng.random(20_000) < p).astype(int)
        thr_lo, _ = tune_threshold(y, p, CostMatrix(1.0, 1.0))
        thr_hi, _ = tune_threshold(y, p, CostMatrix(1.0, 5.0))
        assert thr_hi > thr_lo

    def test_all_negative_predicts_nothing(self):
        y = np.zeros(10, dtype=int)
        s = np.linspace(0, 1, 10)
        thr, cost = tune_threshold(y, s, CostMatrix(1.0, 2.0))
        assert thr == np.inf
        assert cost == 0.0

    def test_cost_is_per_sample(self):
        y = np.array([1, 0])
        s = np.array([0.0, 1.0])  # anti-correlated: one error either way
        _, cost = tune_threshold(y, s, CostMatrix(1.0, 1.0))
        assert cost == pytest.approx(0.5)

    def test_invalid(self):
        with pytest.raises(ValueError):
            tune_threshold([], [], CostMatrix())
        with pytest.raises(ValueError):
            tune_threshold([1, 0], [0.5], CostMatrix())


class TestCostSensitiveClassifier:
    def test_higher_fp_cost_raises_precision(self):
        """Penalising false positives must trade recall for precision."""
        X, y = _imbalanced_noisy_dataset()
        plain = DecisionTreeClassifier(max_splits=10, rng=0).fit(X, y)
        costly = CostSensitiveClassifier(
            DecisionTreeClassifier(max_splits=10, rng=0),
            CostMatrix(fn_cost=1.0, fp_cost=6.0),
        ).fit(X, y)
        p0, r0 = precision_score(y, plain.predict(X)), recall_score(y, plain.predict(X))
        p1, r1 = (
            precision_score(y, costly.predict(X)),
            recall_score(y, costly.predict(X)),
        )
        assert p1 >= p0
        assert r1 <= r0

    def test_threshold_method_equivalent_direction(self):
        X, y = _imbalanced_noisy_dataset(seed=1)
        cs = CostSensitiveClassifier(
            LogisticRegression(max_iter=500),
            CostMatrix(fn_cost=1.0, fp_cost=4.0),
            method="threshold",
        ).fit(X, y)
        base = LogisticRegression(max_iter=500).fit(X, y)
        # Raising the positive threshold can only shrink the positive set.
        assert cs.predict(X).sum() <= base.predict(X).sum()

    def test_threshold_method_needs_proba(self):
        class NoProba:
            def fit(self, X, y, sample_weight=None):
                return self

        with pytest.raises(TypeError):
            CostSensitiveClassifier(
                NoProba(), CostMatrix(), method="threshold"
            ).fit(np.zeros((4, 1)), [0, 1, 0, 1])

    def test_multiclass_rejected(self):
        with pytest.raises(ValueError):
            CostSensitiveClassifier(DecisionTreeClassifier(), CostMatrix()).fit(
                np.random.random((9, 2)), [0, 1, 2] * 3
            )

    def test_missing_pos_label_rejected(self):
        with pytest.raises(ValueError):
            CostSensitiveClassifier(
                DecisionTreeClassifier(), CostMatrix(), pos_label=5
            ).fit(np.random.random((4, 2)), [0, 1, 0, 1])

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            CostSensitiveClassifier(
                DecisionTreeClassifier(), CostMatrix(), method="magic"
            )

    def test_original_estimator_not_mutated(self):
        X, y = _imbalanced_noisy_dataset(seed=2, n=500)
        base = DecisionTreeClassifier(rng=0)
        CostSensitiveClassifier(base, CostMatrix()).fit(X, y)
        assert not hasattr(base, "classes_")

    def test_string_labels_supported(self):
        X = np.array([[0.0], [1.0], [2.0], [3.0]] * 10)
        y = np.array(["keep", "keep", "once", "once"] * 10)
        cs = CostSensitiveClassifier(
            DecisionTreeClassifier(), CostMatrix(), pos_label="once"
        ).fit(X, y)
        assert set(cs.predict(X)) <= {"keep", "once"}
