"""Tests for the deterministic consistent-hash ring."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import ConsistentHashRing, stable_hash


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash("photo42") == stable_hash("photo42")
        assert stable_hash(42) == stable_hash(42)

    def test_64bit_range(self):
        for key in ("a", "b", 123, 456789):
            assert 0 <= stable_hash(key) < 2**64

    def test_disperses(self):
        hashes = [stable_hash(i) for i in range(1000)]
        assert len(set(hashes)) == 1000
        # Spread across the space, not clustered in one quadrant.
        quadrants = set(h >> 62 for h in hashes)
        assert len(quadrants) == 4


class TestRing:
    def test_lookup_stable(self):
        ring = ConsistentHashRing(["a", "b", "c"])
        assert ring.lookup(7) == ring.lookup(7)

    def test_all_nodes_receive_keys(self):
        ring = ConsistentHashRing([f"n{i}" for i in range(5)], replicas=128)
        counts = ring.assignments(range(10_000))
        assert all(c > 0 for c in counts.values())

    def test_balance_with_replicas(self):
        ring = ConsistentHashRing([f"n{i}" for i in range(8)], replicas=256)
        counts = np.array(list(ring.assignments(range(50_000)).values()))
        assert counts.max() / counts.mean() < 1.5

    def test_node_removal_is_minimal_disruption(self):
        """Consistency: removing one node must only remap its own keys."""
        nodes = [f"n{i}" for i in range(6)]
        full = ConsistentHashRing(nodes, replicas=64)
        reduced = ConsistentHashRing(nodes[:-1], replicas=64)
        moved = 0
        kept_wrong = 0
        for key in range(20_000):
            before = full.lookup(key)
            after = reduced.lookup(key)
            if before == nodes[-1]:
                moved += 1  # had to move
            elif before != after:
                kept_wrong += 1  # unnecessary remap
        assert kept_wrong == 0
        assert moved > 0

    def test_order_independent(self):
        a = ConsistentHashRing(["x", "y", "z"])
        b = ConsistentHashRing(["z", "x", "y"])
        for key in range(500):
            assert a.lookup(key) == b.lookup(key)

    def test_invalid(self):
        with pytest.raises(ValueError):
            ConsistentHashRing([])
        with pytest.raises(ValueError):
            ConsistentHashRing(["a", "a"])
        with pytest.raises(ValueError):
            ConsistentHashRing(["a"], replicas=0)

    @given(st.lists(st.integers(0, 10**9), min_size=1, max_size=200))
    @settings(max_examples=30)
    def test_every_key_maps_to_a_member(self, keys):
        ring = ConsistentHashRing(["a", "b", "c"], replicas=16)
        for key in keys:
            assert ring.lookup(key) in ("a", "b", "c")


class TestLookupN:
    def test_first_owner_matches_lookup(self):
        ring = ConsistentHashRing([f"n{i}" for i in range(5)], replicas=64)
        for key in range(500):
            assert ring.lookup_n(key, 1) == (ring.lookup(key),)
            assert ring.lookup_n(key, 3)[0] == ring.lookup(key)

    def test_full_width_is_a_permutation(self):
        nodes = [f"n{i}" for i in range(6)]
        ring = ConsistentHashRing(nodes, replicas=64)
        for key in range(200):
            assert sorted(ring.lookup_n(key, 6)) == sorted(nodes)

    def test_invalid_n(self):
        ring = ConsistentHashRing(["a", "b"])
        with pytest.raises(ValueError):
            ring.lookup_n(1, 0)
        with pytest.raises(ValueError):
            ring.lookup_n(1, 3)

    def test_replica_spread(self):
        """Secondary owners must also spread, not pile on one node."""
        ring = ConsistentHashRing([f"n{i}" for i in range(6)], replicas=128)
        secondary = [ring.lookup_n(key, 2)[1] for key in range(20_000)]
        counts = np.array(
            [secondary.count(f"n{i}") for i in range(6)], dtype=float
        )
        assert counts.min() > 0
        assert counts.max() / counts.mean() < 1.6

    @given(
        keys=st.lists(st.integers(0, 10**9), min_size=1, max_size=50),
        n=st.integers(1, 5),
    )
    @settings(max_examples=40)
    def test_owners_distinct(self, keys, n):
        ring = ConsistentHashRing([f"n{i}" for i in range(5)], replicas=32)
        for key in keys:
            owners = ring.lookup_n(key, n)
            assert len(owners) == n
            assert len(set(owners)) == n

    @given(
        keys=st.lists(st.integers(0, 10**9), min_size=1, max_size=50),
        removed=st.integers(0, 5),
    )
    @settings(max_examples=40)
    def test_ownership_stable_under_removal(self, keys, removed):
        """Removing one node strikes it from every key's owner sequence
        without reordering the survivors — the property that makes
        replicated failover hit the warm standby."""
        nodes = [f"n{i}" for i in range(6)]
        gone = nodes[removed]
        full = ConsistentHashRing(nodes, replicas=32)
        reduced = ConsistentHashRing(
            [m for m in nodes if m != gone], replicas=32
        )
        for key in keys:
            before = full.lookup_n(key, 6)
            after = reduced.lookup_n(key, 5)
            assert after == tuple(o for o in before if o != gone)
