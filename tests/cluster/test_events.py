"""Tests for mid-stream topology events (node failure / scale-out)."""

import numpy as np
import pytest

from repro.cache import LRUCache
from repro.cluster import (
    CacheNode,
    TwoTierCluster,
    simulate_cluster,
    simulate_cluster_with_events,
)
from repro.trace import WorkloadConfig, generate_trace


@pytest.fixture(scope="module")
def trace():
    return generate_trace(WorkloadConfig(n_objects=5000, days=2.0, seed=71))


def build(trace, n_oc=4):
    fp = trace.footprint_bytes
    nodes = {
        f"oc{i}": CacheNode(f"oc{i}", LRUCache(max(1, fp // 150)))
        for i in range(n_oc)
    }
    return TwoTierCluster(nodes, CacheNode("dc", LRUCache(max(1, fp // 20))))


class TestTopologyMethods:
    def test_remove_rebuilds_ring(self, trace):
        cluster = build(trace)
        removed = cluster.remove_node("oc2")
        assert removed.name == "oc2"
        assert "oc2" not in cluster.oc_nodes
        for key in range(200):
            assert cluster.ring.lookup(key) != "oc2"

    def test_cannot_remove_last(self, trace):
        cluster = build(trace, n_oc=1)
        with pytest.raises(ValueError):
            cluster.remove_node("oc0")

    def test_remove_unknown(self, trace):
        with pytest.raises(KeyError):
            build(trace).remove_node("nope")

    def test_add_node(self, trace):
        cluster = build(trace, n_oc=2)
        cluster.add_node(CacheNode("oc9", LRUCache(1000)))
        assert "oc9" in cluster.oc_nodes
        assert any(cluster.ring.lookup(k) == "oc9" for k in range(5000))

    def test_add_duplicate(self, trace):
        cluster = build(trace)
        with pytest.raises(ValueError):
            cluster.add_node(CacheNode("oc0", LRUCache(100)))


class TestStatsRetirement:
    """Kill/restart must never make cumulative cluster totals go backwards."""

    def test_remove_node_retires_stats(self, trace):
        cluster = build(trace)
        # Warm the tier so oc1 has non-zero counters, then kill it.
        for i, oid in enumerate(trace.object_ids[:2000].tolist()):
            name = cluster.ring.lookup(oid)
            cluster.oc_nodes[name].request(i, oid, 100)
        before = cluster.oc_tier_totals()
        victim_writes = cluster.oc_nodes["oc1"].stats.files_written
        assert victim_writes > 0
        cluster.remove_node("oc1")
        after = cluster.oc_tier_totals()
        assert after.files_written == before.files_written
        assert after.requests == before.requests
        assert cluster.retired_files_written == victim_writes

    def test_totals_monotone_across_kill_restart(self, trace):
        """Cumulative write totals sampled across a kill + cold restart
        must be non-decreasing at every step (the production invariant
        for fleet-wide telemetry)."""
        n = trace.n_accesses
        cluster = build(trace)
        samples = []

        def sample(c):
            samples.append(
                c.oc_tier_totals().files_written + c.dc.stats.files_written
            )

        fp = trace.footprint_bytes
        events = [
            (n // 4, sample),
            (n // 3, lambda c: c.remove_node("oc1")),
            (n // 3, sample),
            (n // 2, sample),
            (2 * n // 3, lambda c: c.add_node(
                CacheNode("oc1", LRUCache(max(1, fp // 150)))
            )),
            (2 * n // 3, sample),
            (5 * n // 6, sample),
        ]
        result, _ = simulate_cluster_with_events(trace, cluster, events)
        sample(cluster)
        assert samples == sorted(samples)
        # The final result also counts the retired node's history.
        assert result.retired_files_written > 0
        assert result.total_ssd_writes == samples[-1]

    def test_reset_clears_retired(self, trace):
        cluster = build(trace)
        for i, oid in enumerate(trace.object_ids[:500].tolist()):
            name = cluster.ring.lookup(oid)
            cluster.oc_nodes[name].request(i, oid, 100)
        cluster.remove_node("oc0")
        assert cluster.retired_files_written > 0
        cluster.reset()
        assert cluster.retired_files_written == 0
        assert cluster.oc_tier_totals().requests == 0


class TestEventSimulation:
    def test_no_events_matches_plain_simulation(self, trace):
        plain = simulate_cluster(trace, build(trace))
        evented, series = simulate_cluster_with_events(trace, build(trace), [])
        assert evented.oc_hits == plain.oc_hits
        assert evented.dc_hits == plain.dc_hits
        assert np.nansum(series * 1) >= 0

    def test_node_failure_dips_then_recovers(self, trace):
        """Compare against a no-failure run of the *same* trace: diurnal
        hit-rate swings are common-mode and cancel out."""
        n = trace.n_accesses
        fail_at = n // 2
        window = max(200, n // 20)
        _, healthy = simulate_cluster_with_events(
            trace, build(trace), [], window_size=window
        )
        result, failed = simulate_cluster_with_events(
            trace,
            build(trace),
            [(fail_at, lambda c: c.remove_node("oc1"))],
            window_size=window,
        )
        fail_w = fail_at // window
        # Identical before the event …
        np.testing.assert_allclose(failed[:fail_w], healthy[:fail_w])
        # … a real dip right after (remapped objects all re-miss) …
        dip = healthy[fail_w] - failed[fail_w]
        assert dip > 0.01
        # … then the system settles at the permanent capacity penalty of
        # running one node short: strictly worse than healthy, but bounded
        # (no collapse — survivors absorbed the remapped shard).
        post = healthy[fail_w:] - failed[fail_w:]
        assert np.nanmean(post) > 0.0
        assert np.nanmax(post) < 0.15

    def test_failure_survivors_absorb_traffic(self, trace):
        n = trace.n_accesses
        result, _ = simulate_cluster_with_events(
            trace,
            build(trace),
            [(n // 3, lambda c: c.remove_node("oc0"))],
        )
        # All requests still served, accounting intact.
        assert (
            result.oc_hits + result.dc_hits + result.backend_reads
            == result.requests
        )
        assert sum(result.per_node_requests.values()) == result.requests
        # The failed node stops receiving traffic after the event.
        assert result.per_node_requests["oc0"] <= n // 3 + 1

    def test_scale_out_mid_stream(self, trace):
        n = trace.n_accesses
        result, _ = simulate_cluster_with_events(
            trace,
            build(trace, n_oc=2),
            [(n // 2, lambda c: c.add_node(
                CacheNode("oc9", LRUCache(max(1, trace.footprint_bytes // 150)))
            ))],
        )
        assert result.per_node_requests.get("oc9", 0) > 0

    def test_invalid_inputs(self, trace):
        with pytest.raises(ValueError):
            simulate_cluster_with_events(trace, build(trace), [(-1, lambda c: None)])
        with pytest.raises(ValueError):
            simulate_cluster_with_events(trace, build(trace), [], window_size=0)
