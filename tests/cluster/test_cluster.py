"""Tests for cache nodes and the two-tier cluster simulation."""

import pytest

from repro.cache import LRUCache
from repro.cluster import (
    CacheNode,
    ClusterLatency,
    TwoTierCluster,
    simulate_cluster,
)
from repro.core.admission import NeverAdmit, OracleAdmission
from repro.core.labeling import one_time_labels
from repro.trace import WorkloadConfig, generate_trace


@pytest.fixture(scope="module")
def trace():
    return generate_trace(WorkloadConfig(n_objects=4000, days=2.0, seed=61))


def build_cluster(trace, n_oc=3, oc_frac=150, dc_frac=20, oc_admission=None):
    fp = trace.footprint_bytes
    nodes = {
        f"oc{i}": CacheNode(
            f"oc{i}",
            LRUCache(max(1, fp // oc_frac)),
            admission=oc_admission() if oc_admission else None,
        )
        for i in range(n_oc)
    }
    dc = CacheNode("dc", LRUCache(max(1, fp // dc_frac)))
    return TwoTierCluster(nodes, dc)


class TestCacheNode:
    def test_hit_miss_counting(self):
        node = CacheNode("n", LRUCache(10_000))
        assert node.request(0, 1, 100) is False  # cold miss
        assert node.request(1, 1, 100) is True   # hit
        assert node.stats.requests == 2
        assert node.stats.hits == 1
        assert node.stats.files_written == 1

    def test_admission_denial_counted(self):
        node = CacheNode("n", LRUCache(10_000), admission=NeverAdmit())
        node.request(0, 1, 100)
        node.request(1, 1, 100)
        assert node.stats.hits == 0
        assert node.stats.admissions_denied == 2
        assert node.stats.files_written == 0

    def test_reset(self):
        node = CacheNode("n", LRUCache(10_000))
        node.request(0, 1, 100)
        node.reset()
        assert node.stats.requests == 0

    def test_fill_writes_without_request_counters(self):
        node = CacheNode("n", LRUCache(10_000))
        assert node.fill(0, 1, 100) is True     # admitted replica write
        assert node.fill(1, 1, 100) is False    # already resident: touch only
        assert node.stats.files_written == 1
        assert node.stats.requests == 0
        assert node.stats.hits == 0
        # The filled copy serves a later request as a normal hit.
        assert node.request(2, 1, 100) is True

    def test_fill_respects_admission(self):
        node = CacheNode("n", LRUCache(10_000), admission=NeverAdmit())
        assert node.fill(0, 1, 100) is False
        assert node.stats.files_written == 0
        assert node.stats.admissions_denied == 1

    def test_fill_refreshes_recency(self):
        node = CacheNode("n", LRUCache(250))
        node.fill(0, 1, 100)
        node.fill(1, 2, 100)
        node.fill(2, 1, 100)   # touch 1 → LRU victim becomes 2
        node.fill(3, 3, 100)   # evicts 2, not 1
        assert node.request(4, 1, 100) is True
        assert node.request(5, 2, 100) is False


class TestClusterLatency:
    def test_ordering(self):
        lat = ClusterLatency()
        assert lat.oc_hit() < lat.dc_hit(classified_oc=False)
        assert lat.dc_hit(classified_oc=False) < lat.backend_read(
            classified_oc=False, classified_dc=False
        )

    def test_classification_adds_overhead(self):
        lat = ClusterLatency()
        assert lat.dc_hit(classified_oc=True) > lat.dc_hit(classified_oc=False)

    def test_invalid(self):
        with pytest.raises(ValueError):
            ClusterLatency(t_oc_dc=-1.0)


class TestTwoTierSimulation:
    def test_flow_accounting(self, trace):
        result = simulate_cluster(trace, build_cluster(trace))
        assert result.requests == trace.n_accesses
        assert (
            result.oc_hits + result.dc_hits + result.backend_reads
            == result.requests
        )
        assert result.bytes_to_backend <= result.bytes_to_dc <= result.bytes_total
        assert 0 <= result.oc_hit_rate <= 1
        assert 0 <= result.dc_hit_rate <= 1
        assert result.overall_hit_rate >= result.oc_hit_rate

    def test_per_node_requests_partition(self, trace):
        result = simulate_cluster(trace, build_cluster(trace))
        assert sum(result.per_node_requests.values()) == result.requests
        assert result.load_imbalance >= 1.0

    def test_objects_are_sharded_not_replicated(self, trace):
        """Each object must live on exactly one OC node."""
        cluster = build_cluster(trace)
        simulate_cluster(trace, cluster)
        seen = {}
        for name, node in cluster.oc_nodes.items():
            for oid in range(trace.n_objects):
                if oid in node.policy:
                    assert oid not in seen, f"object {oid} on two nodes"
                    seen[oid] = name

    def test_dc_absorbs_backend_traffic(self, trace):
        """A bigger DC must cut backend reads (its stated purpose)."""
        small = simulate_cluster(trace, build_cluster(trace, dc_frac=200))
        large = simulate_cluster(trace, build_cluster(trace, dc_frac=5))
        assert large.backend_reads < small.backend_reads
        assert large.backend_traffic_fraction < small.backend_traffic_fraction

    def test_oc_admission_reduces_fleet_writes(self, trace):
        labels = one_time_labels(trace.object_ids, 300)
        plain = simulate_cluster(trace, build_cluster(trace))
        filtered = simulate_cluster(
            trace,
            build_cluster(trace, oc_admission=lambda: OracleAdmission(labels)),
        )
        oc_writes_plain = sum(
            n.stats.files_written for n in plain.oc_nodes.values()
        )
        oc_writes_filtered = sum(
            n.stats.files_written for n in filtered.oc_nodes.values()
        )
        assert oc_writes_filtered < oc_writes_plain
        assert filtered.oc_hit_rate >= plain.oc_hit_rate - 0.01

    def test_latency_consistency(self, trace):
        result = simulate_cluster(trace, build_cluster(trace))
        lat = ClusterLatency()
        lo = lat.oc_hit()
        hi = lat.backend_read(classified_oc=False, classified_dc=False)
        assert lo <= result.mean_latency <= hi

    def test_summary_renders(self, trace):
        result = simulate_cluster(trace, build_cluster(trace))
        s = result.summary()
        assert "OC hit" in s and "DC→backend" in s

    def test_needs_oc_nodes(self, trace):
        with pytest.raises(ValueError):
            TwoTierCluster({}, CacheNode("dc", LRUCache(100)))

    def test_fresh_clusters_give_identical_runs(self, trace):
        a = simulate_cluster(trace, build_cluster(trace))
        b = simulate_cluster(trace, build_cluster(trace))
        assert a.oc_hits == b.oc_hits
        assert a.dc_hits == b.dc_hits

    def test_reset_keeps_caches_warm(self, trace):
        """reset() clears counters but not contents (documented)."""
        cluster = build_cluster(trace)
        cold = simulate_cluster(trace, cluster)
        warm = simulate_cluster(trace, cluster)  # second pass, warm caches
        assert warm.requests == cold.requests
        assert warm.oc_hits >= cold.oc_hits  # warm start can only help
