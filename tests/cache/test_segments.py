"""SegmentPlan unit tests + segments-on/off bit-parity suite.

The parity contract is the whole point of the vectorised-segments path:
``simulate(use_segments=True)`` must produce the *same observable run* as
the per-request loop — identical :class:`CacheStats`, identical
insert/evict event order, identical admission-callback sequences — for
every policy, admission config, warmup split, and adversarial stream.
These tests pass an explicit ``segment_plan`` built with ``min_run=1`` so
batching engages even on tiny traces (bypassing the coverage gate), which
maximises the number of batch/loop boundary crossings per trace byte.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import POLICY_REGISTRY, make_policy, simulate
from repro.cache.base import AdmissionPolicy, CacheObserver
from repro.cache.segments import DEFAULT_MIN_RUN, SegmentPlan
from repro.core.admission import AlwaysAdmit, OracleAdmission
from repro.core.labeling import one_time_labels
from repro.trace.analysis import COLD_MISS
from repro.trace.records import ACCESS_DTYPE, CATALOG_DTYPE, Trace

# ----------------------------------------------------------- trace builder


def make_trace(oids, sizes_by_oid=None) -> Trace:
    """A minimal valid Trace from an explicit request stream."""
    oids = np.asarray(oids, dtype=np.int64)
    n_objects = int(oids.max()) + 1
    catalog = np.zeros(n_objects, dtype=CATALOG_DTYPE)
    if sizes_by_oid is None:
        catalog["size"] = 100 + 7 * np.arange(n_objects)
    else:
        for oid, size in sizes_by_oid.items():
            catalog["size"][oid] = size
        missing = catalog["size"] == 0
        catalog["size"][missing] = 100
    accesses = np.zeros(oids.shape[0], dtype=ACCESS_DTYPE)
    accesses["timestamp"] = np.arange(oids.shape[0], dtype=np.float64)
    accesses["object_id"] = oids
    return Trace(
        accesses=accesses,
        catalog=catalog,
        owner_active_friends=np.zeros(1),
        owner_avg_views=np.zeros(1),
        duration=float(oids.shape[0]) + 1.0,
    )


class Recorder(CacheObserver):
    def __init__(self):
        self.events = []

    def on_insert(self, oid, size):
        self.events.append(("insert", oid, size))

    def on_evict(self, oid):
        self.events.append(("evict", oid))


class DenySome(AdmissionPolicy):
    """Deterministic denials + a full callback log (misses and hits)."""

    def __init__(self, modulus=3):
        self.modulus = modulus
        self.calls = []

    def should_admit(self, index, oid, size):
        ok = oid % self.modulus != 0
        self.calls.append(("miss", index, oid, ok))
        return ok

    def on_hit(self, index, oid, size):
        self.calls.append(("hit", index, oid))

    def reset(self):
        self.calls.clear()


# -------------------------------------------------------- SegmentPlan unit


class TestSegmentPlan:
    def test_min_run_validation(self):
        trace = make_trace([0, 1, 0, 1])
        with pytest.raises(ValueError, match="min_run"):
            SegmentPlan(trace, min_run=0)

    def test_runs_are_sorted_disjoint_and_long_enough(self, tiny_trace):
        plan = SegmentPlan(tiny_trace)
        cap = max(1, tiny_trace.footprint_bytes // 5)
        runs = plan.hit_runs(cap)
        assert runs.dtype == np.int64
        lengths = runs[:, 1] - runs[:, 0]
        assert (lengths >= DEFAULT_MIN_RUN).all()
        assert (runs[1:, 0] >= runs[:-1, 1]).all()
        assert runs.size == 0 or (
            runs[0, 0] >= 0 and runs[-1, 1] <= tiny_trace.n_accesses
        )

    def test_every_nominated_access_hits_under_admit_all_lru(self, tiny_trace):
        """The Mattson proof: demand <= C ⇒ that access is an LRU hit."""
        cap = max(1, tiny_trace.footprint_bytes // 5)
        plan = SegmentPlan(tiny_trace, min_run=1)
        runs = plan.hit_runs(cap)
        assert runs.shape[0] > 0  # the check must actually check something

        policy = make_policy("lru", cap)
        oid_list = tiny_trace.object_ids.tolist()
        size_list = tiny_trace.sizes.tolist()
        in_run = np.zeros(tiny_trace.n_accesses, dtype=bool)
        for s, e in runs:
            in_run[s:e] = True
        for i, oid in enumerate(oid_list):
            result = policy.access(oid, size_list[i])
            if in_run[i]:
                assert result.hit, f"nominated access {i} missed"

    def test_batches_distinct_is_dedup_by_last_occurrence(self, tiny_trace):
        cap = max(1, tiny_trace.footprint_bytes // 5)
        plan = SegmentPlan(tiny_trace, min_run=4)
        oids = tiny_trace.object_ids
        batches = plan.batches(cap)
        assert len(batches) == plan.hit_runs(cap).shape[0]
        for s, e, distinct in batches:
            run = oids[s:e].tolist()
            expected = list(dict.fromkeys(reversed(run)))[::-1]
            assert distinct == expected

    def test_batches_memoised_per_capacity(self, tiny_trace):
        plan = SegmentPlan(tiny_trace)
        cap = max(1, tiny_trace.footprint_bytes // 5)
        assert plan.batches(cap) is plan.batches(cap)

    def test_coverage_matches_run_mass(self, tiny_trace):
        plan = SegmentPlan(tiny_trace)
        cap = max(1, tiny_trace.footprint_bytes // 5)
        runs = plan.hit_runs(cap)
        expected = (runs[:, 1] - runs[:, 0]).sum() / tiny_trace.n_accesses
        assert plan.coverage(cap) == pytest.approx(expected)
        assert plan.coverage(0) == 0.0

    def test_cold_first_accesses_never_nominated(self):
        trace = make_trace([0, 1, 2, 3, 0, 1, 2, 3])
        plan = SegmentPlan(trace, min_run=1)
        runs = plan.hit_runs(trace.footprint_bytes * 10)
        covered = set()
        for s, e in runs:
            covered.update(range(s, e))
        assert covered == {4, 5, 6, 7}

    def test_nonpositive_sizes_saturate(self):
        trace = make_trace([0, 1, 0, 1, 0, 1], sizes_by_oid={0: 100, 1: 100})
        trace.catalog["size"][1] = 0  # adversarial zero-size object
        plan = SegmentPlan(trace, min_run=1)
        runs = plan.hit_runs(10**9)
        covered = set()
        for s, e in runs:
            covered.update(range(s, e))
        assert 3 not in covered and 5 not in covered  # re-accesses of oid 1
        assert plan._demand[1] == COLD_MISS

    def test_prefix_bytes_is_exclusive_prefix_sum(self, tiny_trace):
        plan = SegmentPlan(tiny_trace)
        sizes = tiny_trace.sizes
        assert plan.prefix_bytes[0] == 0
        assert plan.prefix_bytes[-1] == sizes.sum()
        assert plan.prefix_bytes[10] == sizes[:10].sum()

    def test_for_trace_caches_on_the_trace(self, tiny_trace):
        a = SegmentPlan.for_trace(tiny_trace)
        b = SegmentPlan.for_trace(tiny_trace)
        assert a is b


# ------------------------------------------------------------ parity suite


ALL_POLICIES = sorted(POLICY_REGISTRY) + ["belady"]


def run_both(trace, policy_name, cap, *, admission_factory=None,
             warmup_fraction=0.0):
    """Simulate segments off and on; return (stats, events, calls) pairs."""
    out = []
    plan = SegmentPlan(trace, min_run=1)
    for use in (False, True):
        rec = Recorder()
        adm = admission_factory() if admission_factory is not None else None
        result = simulate(
            trace,
            make_policy(policy_name, cap, trace),
            admission=adm,
            observer=rec,
            warmup_fraction=warmup_fraction,
            use_segments=use,
            segment_plan=plan if use else None,
        )
        out.append((
            vars(result.stats).copy(),
            rec.events,
            list(adm.calls) if isinstance(adm, DenySome) else None,
        ))
    return out


def assert_parity(trace, policy_name, cap, **kwargs):
    off, on = run_both(trace, policy_name, cap, **kwargs)
    assert on[0] == off[0], f"stats diverged for {policy_name}"
    assert on[1] == off[1], f"event order diverged for {policy_name}"
    assert on[2] == off[2], f"admission calls diverged for {policy_name}"


@pytest.mark.parametrize("policy_name", ALL_POLICIES)
class TestParityAllPolicies:
    def test_synthetic_trace_admit_all(self, tiny_trace, policy_name):
        cap = max(1, tiny_trace.footprint_bytes // 5)
        assert_parity(tiny_trace, policy_name, cap,
                      admission_factory=AlwaysAdmit)

    def test_synthetic_trace_no_admission(self, tiny_trace, policy_name):
        cap = max(1, tiny_trace.footprint_bytes // 5)
        assert_parity(tiny_trace, policy_name, cap)

    def test_synthetic_trace_oracle(self, tiny_trace, policy_name):
        cap = max(1, tiny_trace.footprint_bytes // 5)
        labels = one_time_labels(tiny_trace.object_ids, 3.0)
        assert_parity(tiny_trace, policy_name, cap,
                      admission_factory=lambda: OracleAdmission(labels))

    def test_synthetic_trace_denying_with_hit_callbacks(
        self, tiny_trace, policy_name
    ):
        # DenySome overrides on_hit, forcing the batch path to replay the
        # per-hit callback sequence, and its denials leave objects
        # non-resident so candidate runs contain real misses (stall path).
        cap = max(1, tiny_trace.footprint_bytes // 5)
        assert_parity(tiny_trace, policy_name, cap,
                      admission_factory=DenySome)

    def test_warmup_splits_runs(self, tiny_trace, policy_name):
        cap = max(1, tiny_trace.footprint_bytes // 5)
        assert_parity(tiny_trace, policy_name, cap, warmup_fraction=0.37)

    def test_adversarial_alternating_stream(self, policy_name):
        # Hit runs of a small working set alternating with one-timer
        # bursts: maximises batch entries/exits and mid-run first accesses.
        rng = np.random.default_rng(7)
        stream = []
        fresh = 100
        for block in range(20):
            stream.extend(rng.integers(0, 8, size=15).tolist())  # hot set
            for _ in range(4):                                   # cold burst
                stream.append(fresh)
                fresh += 1
        trace = make_trace(stream)
        cap = trace.catalog["size"][:12].sum()  # holds the hot set, barely
        assert_parity(trace, policy_name, int(cap),
                      admission_factory=DenySome)


class TestParityHypothesis:
    @given(
        data=st.lists(st.integers(0, 12), min_size=2, max_size=200),
        cap_objects=st.integers(1, 14),
        deny=st.booleans(),
    )
    @settings(max_examples=60, deadline=None)
    def test_lru_fifo_sieve_random_streams(self, data, cap_objects, deny):
        trace = make_trace(data)
        cap = int(trace.catalog["size"][: cap_objects + 1].sum())
        factory = DenySome if deny else AlwaysAdmit
        for policy_name in ("lru", "fifo", "sieve", "s3lru"):
            assert_parity(trace, policy_name, max(1, cap),
                          admission_factory=factory)

    @given(data=st.lists(st.integers(0, 5), min_size=2, max_size=80))
    @settings(max_examples=30, deadline=None)
    def test_tiny_capacity_thrashing(self, data):
        trace = make_trace(data)
        cap = int(trace.catalog["size"].max())  # one object fits at a time
        for policy_name in ("lru", "fifo", "sieve"):
            assert_parity(trace, policy_name, cap)


class TestSimulatorIntegration:
    def test_gate_disengages_below_coverage(self, tiny_trace, monkeypatch):
        # Force can_batch_hits policies through simulate() with default
        # args on the paper-like tiny trace: whether or not the gate
        # engages, results must match the loop (here we just confirm the
        # default call works and equals use_segments=False).
        cap = max(1, tiny_trace.footprint_bytes // 20)
        on = simulate(tiny_trace, make_policy("lru", cap))
        off = simulate(tiny_trace, make_policy("lru", cap),
                       use_segments=False)
        assert vars(on.stats) == vars(off.stats)

    def test_explicit_plan_bypasses_gate(self):
        # 6 requests — far below any sane coverage on its own, but an
        # explicit plan must still engage (this is what the parity suite
        # relies on).
        trace = make_trace([0, 1, 0, 1, 0, 1])
        plan = SegmentPlan(trace, min_run=1)
        cap = int(trace.catalog["size"][:2].sum())
        calls = []
        policy = make_policy("lru", cap)
        orig = policy.access_batch
        policy.access_batch = lambda *a, **k: calls.append(1) or orig(*a, **k)
        simulate(trace, policy, segment_plan=plan)
        assert calls, "access_batch was never reached despite explicit plan"
