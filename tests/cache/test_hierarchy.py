"""Tests for the DRAM + SSD hierarchical cache."""

import pytest

from repro.cache import LRUCache, simulate
from repro.cache.hierarchy import HierarchicalCache
from repro.core.admission import OracleAdmission
from repro.core.labeling import one_time_labels
from repro.trace import WorkloadConfig, generate_trace


def make(dram_cap=500, ssd_cap=5000):
    return HierarchicalCache(LRUCache(dram_cap), LRUCache(ssd_cap))


class TestBasicSemantics:
    def test_miss_fills_both_tiers(self):
        c = make()
        r = c.access(1, 100)
        assert not r.hit and r.inserted
        assert 1 in c.dram and 1 in c.ssd

    def test_l1_hit_counted(self):
        c = make()
        c.access(1, 100)
        r = c.access(1, 100)
        assert r.hit
        assert c.l1_hits == 1

    def test_l2_hit_promotes_to_dram(self):
        c = make(dram_cap=250)
        c.access(1, 100)
        c.access(2, 100)
        c.access(3, 100)  # 1 falls out of the 250-byte DRAM
        assert 1 not in c.dram and 1 in c.ssd
        r = c.access(1, 100)
        assert r.hit
        assert c.l2_hits == 1
        assert 1 in c.dram  # promoted back

    def test_denied_object_served_from_dram_next_time(self):
        """The key interaction: one-time photos still enjoy DRAM locality."""
        c = make()
        r = c.access(7, 100, admit=False)
        assert not r.inserted
        assert 7 not in c.ssd and 7 in c.dram
        # Immediate re-access: DRAM hit, still no SSD write.
        r2 = c.access(7, 100)
        assert r2.hit
        assert 7 not in c.ssd

    def test_inserted_reports_ssd_writes_only(self):
        c = make()
        r = c.access(1, 100, admit=False)
        assert not r.inserted  # DRAM fill is not an SSD write

    def test_capacity_is_ssd_capacity(self):
        c = make(ssd_cap=5000)
        assert c.capacity == 5000
        assert c.used_bytes <= 5000

    def test_dram_eviction_is_silent(self):
        c = make(dram_cap=200)
        c.access(1, 100, admit=False)
        c.access(2, 100, admit=False)
        r = c.access(3, 100, admit=False)  # evicts 1 from DRAM
        assert r.evicted == ()  # no SSD eviction reported

    def test_with_lru_dram_helper(self):
        c = HierarchicalCache.with_lru_dram(LRUCache(10_000), dram_fraction=0.1)
        assert c.dram.capacity == 1000
        # 0.0 is the zero-size-DRAM degenerate form, not an error.
        bare = HierarchicalCache.with_lru_dram(LRUCache(100), dram_fraction=0.0)
        assert bare.dram is None
        with pytest.raises(ValueError):
            HierarchicalCache.with_lru_dram(LRUCache(100), dram_fraction=1.0)
        with pytest.raises(ValueError):
            HierarchicalCache.with_lru_dram(LRUCache(100), dram_fraction=-0.1)

    def test_contains_spans_tiers(self):
        c = make(dram_cap=250)
        c.access(1, 100, admit=False)  # DRAM only
        c.access(2, 100)               # both
        assert 1 in c and 2 in c


class TestSimulatedBehaviour:
    @pytest.fixture(scope="class")
    def trace(self):
        return generate_trace(WorkloadConfig(n_objects=4000, days=2.0, seed=91))

    def test_dram_absorbs_hits_and_cuts_nothing(self, trace):
        """Adding DRAM must not lower the total hit rate."""
        cap = max(1, trace.footprint_bytes // 40)
        flat = simulate(trace, LRUCache(cap))
        hier = simulate(
            trace, HierarchicalCache.with_lru_dram(LRUCache(cap), dram_fraction=0.1)
        )
        assert hier.hit_rate >= flat.hit_rate - 0.005

    def test_admission_still_cuts_ssd_writes(self, trace):
        cap = max(1, trace.footprint_bytes // 40)
        labels = one_time_labels(trace.object_ids, 300)
        plain = simulate(
            trace, HierarchicalCache.with_lru_dram(LRUCache(cap))
        )
        filtered = simulate(
            trace,
            HierarchicalCache.with_lru_dram(LRUCache(cap)),
            admission=OracleAdmission(labels),
        )
        assert filtered.stats.files_written < plain.stats.files_written
        assert filtered.hit_rate >= plain.hit_rate - 0.02

    def test_l1_l2_hit_split(self, trace):
        cap = max(1, trace.footprint_bytes // 40)
        policy = HierarchicalCache.with_lru_dram(LRUCache(cap), dram_fraction=0.2)
        result = simulate(trace, policy)
        assert policy.l1_hits + policy.l2_hits == result.stats.hits
        assert policy.l1_hits > 0 and policy.l2_hits > 0
