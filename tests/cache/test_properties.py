"""Hypothesis property tests over all cache policies.

Invariants checked on arbitrary request streams:

* ``used_bytes`` never exceeds capacity;
* a hit is reported iff the object was resident immediately before;
* evicted objects are no longer resident; inserted objects are;
* ``len`` equals the number of distinct resident objects;
* bypassed requests leave residency byte-count unchanged.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import (
    ARCCache,
    BeladyCache,
    FIFOCache,
    GDSFCache,
    LearnedCache,
    LFUCache,
    LIRSCache,
    LRUCache,
    S3LRUCache,
    SieveCache,
    TwoQCache,
    compute_next_use,
)

POLICY_FACTORIES = {
    "lru": LRUCache,
    "fifo": FIFOCache,
    "lfu": LFUCache,
    "s3lru": S3LRUCache,
    "arc": ARCCache,
    "lirs": LIRSCache,
    "2q": TwoQCache,
    "gdsf": GDSFCache,
    "sieve": SieveCache,
    # Untrained on these short streams (LRU-fallback path), but the
    # residency/byte-accounting invariants must hold regardless of mode.
    "learned": LearnedCache,
}

request_streams = st.lists(
    st.tuples(
        st.integers(0, 30),        # object id
        st.integers(1, 500),       # size
        st.booleans(),             # admit
    ),
    min_size=1,
    max_size=300,
)


@pytest.mark.parametrize("name", sorted(POLICY_FACTORIES))
class TestUniversalInvariants:
    @given(stream=request_streams, capacity=st.integers(100, 3000))
    @settings(max_examples=60, deadline=None)
    def test_invariants_hold(self, name, stream, capacity):
        policy = POLICY_FACTORIES[name](capacity)
        sizes: dict[int, int] = {}
        resident: set[int] = set()
        for oid, size, admit in stream:
            # Object sizes must be stable per id within a run.
            size = sizes.setdefault(oid, size)
            was_resident = oid in policy
            assert was_resident == (oid in resident)
            r = policy.access(oid, size, admit=admit)
            assert r.hit == was_resident
            if r.inserted:
                resident.add(oid)
            for victim in r.evicted:
                assert victim not in policy
                resident.discard(victim)
            if r.hit or r.inserted:
                assert oid in policy
            assert policy.used_bytes <= capacity
            assert policy.used_bytes == sum(sizes[o] for o in resident)
            assert len(policy) == len(resident)

    @given(stream=request_streams)
    @settings(max_examples=30, deadline=None)
    def test_bypass_changes_nothing(self, name, stream):
        policy = POLICY_FACTORIES[name](1000)
        for oid, size, _ in stream:
            before = policy.used_bytes
            was_resident = oid in policy
            r = policy.access(oid, size, admit=False)
            if not was_resident:
                assert not r.inserted
                assert policy.used_bytes == before


class TestBeladyProperties:
    @given(
        ids=st.lists(st.integers(0, 20), min_size=1, max_size=400),
        capacity=st.integers(1, 15),
    )
    @settings(max_examples=60, deadline=None)
    def test_belady_dominates_lru_unit_sizes(self, ids, capacity):
        """For unit sizes Belady (MIN) is optimal: ≥ LRU hit count."""
        arr = np.asarray(ids, dtype=np.int64)
        belady = BeladyCache(capacity, compute_next_use(arr), bypass_dead=False)
        lru = LRUCache(capacity)
        b_hits = l_hits = 0
        for oid in ids:
            b_hits += belady.access(oid, 1).hit
            l_hits += lru.access(oid, 1).hit
        assert b_hits >= l_hits

    @given(ids=st.lists(st.integers(0, 10), min_size=1, max_size=200))
    @settings(max_examples=40, deadline=None)
    def test_next_use_is_strictly_forward(self, ids):
        nxt = compute_next_use(np.asarray(ids, dtype=np.int64))
        big = np.iinfo(np.int64).max
        for i, v in enumerate(nxt):
            if v != big:
                assert v > i
                assert ids[v] == ids[i]
                # No intermediate occurrence of the same id.
                assert all(ids[j] != ids[i] for j in range(i + 1, v))
