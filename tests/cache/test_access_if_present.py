"""Parity tests for the single-lookup ``access_if_present`` peek.

The simulator's admission branch used to pay two hash lookups per
request (``oid in policy`` then ``access``).  ``access_if_present``
collapses them; these tests pin the contract for every policy: the peek
must report a hit **iff** the object was resident, mutate recency state
exactly like a hit-side ``access``, and leave the cache untouched on a
miss.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import (
    ARCCache,
    FIFOCache,
    GDSFCache,
    LFUCache,
    LIRSCache,
    LRUCache,
    S3LRUCache,
    SieveCache,
    TwoQCache,
)

POLICY_FACTORIES = {
    "lru": LRUCache,
    "fifo": FIFOCache,
    "lfu": LFUCache,
    "s3lru": S3LRUCache,
    "arc": ARCCache,
    "lirs": LIRSCache,
    "2q": TwoQCache,
    "gdsf": GDSFCache,
    "sieve": SieveCache,
}

request_streams = st.lists(
    st.tuples(
        st.integers(0, 25),     # object id
        st.integers(1, 400),    # size
        st.booleans(),          # admit on miss
    ),
    min_size=1,
    max_size=250,
)


@pytest.mark.parametrize("name", sorted(POLICY_FACTORIES))
class TestAccessIfPresentParity:
    @given(stream=request_streams, capacity=st.integers(100, 2500))
    @settings(max_examples=40, deadline=None)
    def test_matches_contains_then_access(self, name, stream, capacity):
        """Peek-based and contains-based replays stay lock-step identical."""
        peeked = POLICY_FACTORIES[name](capacity)
        legacy = POLICY_FACTORIES[name](capacity)
        for oid, size, admit in stream:
            result = peeked.access_if_present(oid, size)
            was_hit_legacy = oid in legacy
            legacy_result = legacy.access(oid, size, admit=admit)
            assert (result is not None) == was_hit_legacy
            if result is not None:
                assert result.hit
            else:
                miss_result = peeked.access(oid, size, admit=admit)
                assert not miss_result.hit
            resident = [o for o in range(26) if o in peeked]
            assert resident == [o for o in range(26) if o in legacy], (
                f"residency diverged after ({oid}, {size}, {admit})"
            )
            assert len(peeked) == len(legacy)
            assert peeked.used_bytes == legacy.used_bytes
            assert legacy_result.hit == was_hit_legacy

    @given(stream=request_streams)
    @settings(max_examples=25, deadline=None)
    def test_miss_peek_is_pure(self, name, stream):
        """A miss-side peek must not change residency or byte accounting."""
        policy = POLICY_FACTORIES[name](2000)
        for oid, size, admit in stream:
            policy.access(oid, size, admit=admit)
        before = ([o for o in range(26) if o in policy], policy.used_bytes)
        for absent in range(100, 110):
            assert policy.access_if_present(absent, 1) is None
        assert ([o for o in range(26) if o in policy], policy.used_bytes) == before
