"""Staging-tier tests: Flashield semantics, differential identities,
conservation properties and segmented-replay parity.

The hypothesis suites pin the contracts the head-to-head comparison
rests on:

* every L2 (SSD) insert is exactly one promotion or one direct admit —
  no write can bypass the flashiness accounting;
* a hit lands in at most one level (``l1_hits + l2_hits == hits``);
* ``dram=None`` degenerates bit-identically to the bare L2 policy;
* flashiness threshold 0 is bit-identical to ``HierarchicalCache``
  (always-admit through the bar).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import LRUCache, simulate
from repro.cache.base import AccessResult
from repro.cache.hierarchy import HierarchicalCache
from repro.cache.simulator import POLICY_REGISTRY, make_policy
from repro.cache.staging import CounterFlashiness, StagingCache
from repro.trace import WorkloadConfig, generate_trace

request_streams = st.lists(
    st.tuples(
        st.integers(0, 30),        # object id
        st.integers(1, 500),       # size
        st.booleans(),             # admit
    ),
    min_size=1,
    max_size=300,
)


def _stable_sizes(stream):
    """Object sizes must be stable per id within a run."""
    sizes: dict[int, int] = {}
    for oid, size, admit in stream:
        yield oid, sizes.setdefault(oid, size), admit


def make(dram_cap=500, ssd_cap=5000, threshold=1, **kwargs):
    return StagingCache(
        LRUCache(dram_cap),
        LRUCache(ssd_cap),
        CounterFlashiness(threshold),
        **kwargs,
    )


class TestStagingSemantics:
    def test_miss_stages_without_ssd_write(self):
        c = make()
        r = c.access(1, 100)
        assert r == AccessResult(hit=False)
        assert 1 in c.dram and 1 not in c.ssd
        assert c.staged_count == 1

    def test_second_access_promotes(self):
        c = make()
        c.access(1, 100)
        r = c.access(1, 100)
        assert r.hit and r.inserted  # the only hit+insert in the codebase
        assert 1 in c.ssd
        assert c.promotions == 1 and c.staged_count == 0

    def test_threshold_two_needs_two_reaccesses(self):
        c = make(threshold=2)
        c.access(1, 100)
        assert not c.access(1, 100).inserted
        assert c.access(1, 100).inserted

    def test_denied_object_never_promoted(self):
        c = make()
        c.access(1, 100, admit=False)
        for _ in range(5):
            r = c.access(1, 100)
            assert r.hit and not r.inserted
        assert 1 not in c.ssd
        assert c.promotions == 0

    def test_redemption_overrides_denial(self):
        c = make(redemption_threshold=3)
        c.access(1, 100, admit=False)
        assert not c.access(1, 100).inserted
        assert not c.access(1, 100).inserted
        r = c.access(1, 100)  # third re-access crosses the redemption bar
        assert r.hit and r.inserted
        assert c.redemptions == 1 and c.promotions == 1

    def test_redemption_threshold_validated(self):
        with pytest.raises(ValueError):
            make(redemption_threshold=0)

    def test_dram_eviction_discards_evidence(self):
        c = make(dram_cap=200)
        c.access(1, 100)
        c.access(2, 100)
        c.access(3, 100)  # evicts 1 from the 200-byte DRAM
        assert c.staged_evicted == 1
        # 1 must re-earn its write from scratch: a miss, then a re-access.
        assert not c.access(1, 100).hit
        assert c.access(1, 100).inserted

    def test_oversized_for_ssd_never_admitted(self):
        c = make(dram_cap=5000, ssd_cap=300)
        c.access(1, 400)
        for _ in range(4):
            assert not c.access(1, 400).inserted
        assert 1 not in c.ssd

    def test_oversized_for_dram_not_staged(self):
        c = make(dram_cap=200, ssd_cap=5000)
        c.access(1, 400)  # cannot enter the staging area
        assert c.staged_count == 0
        assert not c.access(1, 400).hit

    def test_bar_zero_writes_at_miss(self):
        c = make(threshold=0)
        r = c.access(1, 100)
        assert not r.hit and r.inserted
        assert c.direct_admits == 1

    def test_ssd_hit_counted_once(self):
        c = make(dram_cap=200)
        c.access(1, 100)
        c.access(1, 100)  # promoted
        c.access(2, 100)
        c.access(3, 100)  # 1 out of DRAM, still on SSD
        r = c.access(1, 100)
        assert r.hit and not r.inserted
        assert c.l2_hits == 1
        assert 1 in c.dram  # promoted back into DRAM

    def test_can_batch_hits_declined(self):
        assert make().can_batch_hits() is False

    def test_contains_and_len_span_tiers(self):
        c = make()
        c.access(1, 100)          # DRAM only (staged)
        c.access(2, 100)
        c.access(2, 100)          # promoted: DRAM + SSD
        assert 1 in c and 2 in c
        assert len(c) == 3        # 1 in DRAM, 2 in both tiers

    def test_staging_stats_shape(self):
        c = make()
        c.access(1, 100)
        c.access(1, 100)
        s = c.staging_stats()
        assert s["promotions"] == 1
        assert s["l1_hits"] == 1
        assert s["staged_resident"] == 0

    def test_for_capacity_validates_fraction(self):
        with pytest.raises(ValueError):
            StagingCache.for_capacity(1000, dram_fraction=1.0)
        with pytest.raises(ValueError):
            StagingCache.for_capacity(1000, dram_fraction=-0.1)
        assert StagingCache.for_capacity(1000, dram_fraction=0.0).dram is None

    def test_registry_entry(self):
        assert "staging" in POLICY_REGISTRY
        policy = make_policy("staging", 10_000)
        assert isinstance(policy, StagingCache)


class TestConservationProperties:
    @given(stream=request_streams, threshold=st.integers(0, 3))
    @settings(max_examples=60, deadline=None)
    def test_every_l2_insert_is_a_promotion_or_direct_admit(
        self, stream, threshold
    ):
        """No SSD write can bypass the flashiness accounting."""
        c = make(threshold=threshold)
        inserts = 0
        for oid, size, admit in _stable_sizes(stream):
            inserts += c.access(oid, size, admit=admit).inserted
        assert inserts == c.promotions + c.direct_admits

    @given(stream=request_streams, threshold=st.integers(0, 3))
    @settings(max_examples=60, deadline=None)
    def test_hit_lands_in_at_most_one_level(self, stream, threshold):
        c = make(threshold=threshold)
        hits = 0
        for oid, size, admit in _stable_sizes(stream):
            hits += c.access(oid, size, admit=admit).hit
        assert c.l1_hits + c.l2_hits == hits

    @given(stream=request_streams)
    @settings(max_examples=60, deadline=None)
    def test_staged_objects_are_dram_resident_non_ssd(self, stream):
        c = make()
        for oid, size, admit in _stable_sizes(stream):
            c.access(oid, size, admit=admit)
            for staged in c._staged:
                assert staged in c.dram and staged not in c.ssd


class TestDifferentialIdentities:
    @given(stream=request_streams)
    @settings(max_examples=60, deadline=None)
    def test_zero_dram_degenerates_to_bare_l2(self, stream):
        """``dram=None`` must be a transparent shell over the L2 policy."""
        staged = StagingCache(None, LRUCache(2000))
        bare = LRUCache(2000)
        for oid, size, admit in _stable_sizes(stream):
            assert staged.access(oid, size, admit=admit) == bare.access(
                oid, size, admit=admit
            )
        assert staged.used_bytes == bare.used_bytes
        assert len(staged) == len(bare)

    @given(stream=request_streams, dram_cap=st.integers(100, 1500))
    @settings(max_examples=60, deadline=None)
    def test_bar_zero_is_bit_identical_to_hierarchy(self, stream, dram_cap):
        """Threshold 0 == always-admit == plain ``HierarchicalCache``."""
        staged = StagingCache(
            LRUCache(dram_cap), LRUCache(3000), CounterFlashiness(0)
        )
        hier = HierarchicalCache(LRUCache(dram_cap), LRUCache(3000))
        for oid, size, admit in _stable_sizes(stream):
            assert staged.access(oid, size, admit=admit) == hier.access(
                oid, size, admit=admit
            )
        assert staged.used_bytes == hier.used_bytes
        assert staged.dram_used_bytes == hier.dram_used_bytes

    @given(stream=request_streams)
    @settings(max_examples=40, deadline=None)
    def test_redemption_none_equals_omitted(self, stream):
        """The default (no redemption) and an unreachable bar disagree
        only when the bar is actually reached — with no denials they are
        identical to the plain staging cache."""
        plain = make()
        redeem = make(redemption_threshold=10**9)
        for oid, size, _ in _stable_sizes(stream):
            assert plain.access(oid, size) == redeem.access(oid, size)


class TestSegmentedReplayParity:
    """Satellite: ``use_segments=True`` must not change results for the
    two-tier policies (both decline ``can_batch_hits`` at the policy or
    hierarchy level unless the L2 allows it)."""

    @pytest.fixture(scope="class")
    def trace(self):
        return generate_trace(WorkloadConfig(n_objects=2000, days=2.0, seed=11))

    @pytest.mark.parametrize("name", ["hierarchy", "staging"])
    def test_segment_parity(self, trace, name):
        cap = max(1, trace.footprint_bytes // 20)
        seg = simulate(
            trace, make_policy(name, cap, trace), use_segments=True
        )
        loop = simulate(
            trace, make_policy(name, cap, trace), use_segments=False
        )
        assert seg.stats == loop.stats

    def test_hierarchy_delegates_batch_capability(self):
        hier = HierarchicalCache.for_capacity(10_000)
        assert hier.can_batch_hits() == hier.ssd.can_batch_hits()
