"""Tests for the trace-driven simulator and stats accounting."""

import pytest

from repro.cache import (
    CacheStats,
    LRUCache,
    POLICY_REGISTRY,
    make_policy,
    simulate,
)
from repro.cache.base import AdmissionPolicy


class DenyAll(AdmissionPolicy):
    def should_admit(self, index, oid, size):
        return False


class AdmitAll(AdmissionPolicy):
    def should_admit(self, index, oid, size):
        return True


class RecordingAdmission(AdmissionPolicy):
    def __init__(self):
        self.miss_calls = []
        self.hit_calls = []
        self.resets = 0

    def should_admit(self, index, oid, size):
        self.miss_calls.append((index, oid, size))
        return True

    def on_hit(self, index, oid, size):
        self.hit_calls.append((index, oid, size))

    def reset(self):
        self.resets += 1


class TestMakePolicy:
    def test_all_registry_names(self, tiny_trace):
        for name in POLICY_REGISTRY:
            p = make_policy(name, 10_000)
            assert p.capacity == 10_000

    def test_belady_needs_trace(self):
        with pytest.raises(ValueError):
            make_policy("belady", 1000)

    def test_belady_with_trace(self, tiny_trace):
        p = make_policy("belady", 10_000, tiny_trace)
        assert p.capacity == 10_000

    def test_unknown_policy(self):
        with pytest.raises(ValueError, match="unknown policy"):
            make_policy("clock", 1000)

    def test_case_insensitive(self):
        assert make_policy("LRU", 100).capacity == 100


class TestSimulate:
    def test_stats_are_consistent(self, tiny_trace):
        cap = max(1, tiny_trace.footprint_bytes // 20)
        r = simulate(tiny_trace, LRUCache(cap), policy_name="lru")
        s = r.stats
        assert s.requests == tiny_trace.n_accesses
        assert s.hits + s.misses == s.requests
        assert 0 <= s.hit_rate <= 1
        assert s.bytes_hit <= s.bytes_requested
        assert s.files_written <= s.misses
        assert s.bytes_written <= s.bytes_requested

    def test_always_admit_writes_every_insertable_miss(self, tiny_trace):
        cap = tiny_trace.footprint_bytes  # everything fits
        r = simulate(tiny_trace, LRUCache(cap))
        # With infinite-enough capacity every miss is a compulsory write.
        assert r.stats.files_written == r.stats.misses
        # And the hit rate reaches the trace cap (1 − N/A).
        from repro.trace import compute_stats

        assert r.hit_rate == pytest.approx(compute_stats(tiny_trace).hit_rate_cap)

    def test_deny_all_never_writes(self, tiny_trace):
        cap = max(1, tiny_trace.footprint_bytes // 20)
        r = simulate(tiny_trace, LRUCache(cap), admission=DenyAll())
        assert r.stats.files_written == 0
        assert r.stats.hits == 0
        assert r.stats.admissions_denied == r.stats.requests

    def test_admit_all_matches_no_admission(self, tiny_trace):
        cap = max(1, tiny_trace.footprint_bytes // 20)
        a = simulate(tiny_trace, LRUCache(cap))
        b = simulate(tiny_trace, LRUCache(cap), admission=AdmitAll())
        assert a.stats.hits == b.stats.hits
        assert a.stats.files_written == b.stats.files_written

    def test_admission_callbacks(self, tiny_trace):
        cap = tiny_trace.footprint_bytes
        adm = RecordingAdmission()
        r = simulate(tiny_trace, LRUCache(cap), admission=adm)
        assert adm.resets == 1
        assert len(adm.miss_calls) == r.stats.misses
        assert len(adm.hit_calls) == r.stats.hits
        # Indices are trace positions.
        indices = sorted(i for i, _, _ in adm.miss_calls + adm.hit_calls)
        assert indices == list(range(tiny_trace.n_accesses))

    def test_result_metadata(self, tiny_trace):
        r = simulate(tiny_trace, LRUCache(1000), policy_name="lru")
        assert r.policy == "lru"
        assert r.capacity_bytes == 1000
        assert r.admission == "always"

    def test_warmup_excludes_cold_start(self, tiny_trace):
        cap = max(1, tiny_trace.footprint_bytes // 20)
        cold = simulate(tiny_trace, LRUCache(cap))
        warm = simulate(tiny_trace, LRUCache(cap), warmup_fraction=0.3)
        assert warm.stats.requests < cold.stats.requests
        # Dropping compulsory misses can only raise the measured hit rate.
        assert warm.hit_rate >= cold.hit_rate - 0.01

    def test_warmup_zero_equals_default(self, tiny_trace):
        cap = max(1, tiny_trace.footprint_bytes // 20)
        a = simulate(tiny_trace, LRUCache(cap))
        b = simulate(tiny_trace, LRUCache(cap), warmup_fraction=0.0)
        assert a.stats.hits == b.stats.hits

    def test_warmup_validation(self, tiny_trace):
        with pytest.raises(ValueError):
            simulate(tiny_trace, LRUCache(100), warmup_fraction=1.0)

    def test_byte_rates_weighted_by_size(self, tiny_trace):
        cap = max(1, tiny_trace.footprint_bytes // 10)
        r = simulate(tiny_trace, LRUCache(cap))
        # Byte and file rates differ unless all sizes are equal.
        assert r.byte_hit_rate != pytest.approx(r.hit_rate, abs=1e-6)


class TestCacheStats:
    def test_empty_stats(self):
        s = CacheStats()
        assert s.hit_rate == 0.0
        assert s.byte_hit_rate == 0.0
        assert s.file_write_rate == 0.0
        assert s.byte_write_rate == 0.0

    def test_record_accumulates(self):
        from repro.cache.base import AccessResult

        s = CacheStats()
        s.record(100, AccessResult(hit=True), denied=False)
        s.record(200, AccessResult(hit=False, inserted=True, evicted=(1, 2)), False)
        s.record(300, AccessResult(hit=False), denied=True)
        assert s.requests == 3
        assert s.hits == 1
        assert s.bytes_hit == 100
        assert s.files_written == 1
        assert s.bytes_written == 200
        assert s.evictions == 2
        assert s.admissions_denied == 1
        assert s.hit_rate == pytest.approx(1 / 3)
        assert s.byte_write_rate == pytest.approx(200 / 600)
