"""Semantic tests for every replacement policy."""

import numpy as np
import pytest

from repro.cache import (
    ARCCache,
    BeladyCache,
    FIFOCache,
    GDSFCache,
    LFUCache,
    LIRSCache,
    LRUCache,
    S3LRUCache,
    SieveCache,
    TwoQCache,
    compute_next_use,
)
from repro.cache.hierarchy import HierarchicalCache
from repro.cache.staging import CounterFlashiness, StagingCache


def _staging_bar0(capacity):
    # Bar 0 writes at miss time — the only staging configuration whose
    # inserts match the common miss-time contract (a non-zero bar defers
    # the SSD write to the hit path by design; tests/cache/test_staging.py
    # owns those semantics).
    return StagingCache.for_capacity(capacity, flashiness=CounterFlashiness(0))


ONLINE_POLICIES = [
    pytest.param(LRUCache, id="lru"),
    pytest.param(FIFOCache, id="fifo"),
    pytest.param(LFUCache, id="lfu"),
    pytest.param(S3LRUCache, id="s3lru"),
    pytest.param(ARCCache, id="arc"),
    pytest.param(LIRSCache, id="lirs"),
    pytest.param(TwoQCache, id="2q"),
    pytest.param(GDSFCache, id="gdsf"),
    pytest.param(SieveCache, id="sieve"),
    # Two-tier wrappers enter via their registry factories.  ``inserted``
    # and ``used_bytes`` are L2/SSD facts for them; residency (``in``,
    # ``len``) spans tiers, which is what ``_l2`` normalises below.
    pytest.param(HierarchicalCache.for_capacity, id="hierarchy"),
    pytest.param(_staging_bar0, id="staging-bar0"),
]


def _mk(cls, capacity):
    return cls(capacity)


def _l2(c):
    """The tier whose inserts are SSD writes (the policy itself when flat)."""
    return getattr(c, "ssd", c)


@pytest.mark.parametrize("cls", ONLINE_POLICIES)
class TestCommonSemantics:
    def test_miss_then_hit(self, cls):
        c = _mk(cls, 1000)
        r = c.access(1, 100)
        assert not r.hit and r.inserted
        assert c.access(1, 100).hit

    def test_capacity_never_exceeded(self, cls):
        rng = np.random.default_rng(0)
        c = _mk(cls, 5000)
        for oid in rng.integers(0, 200, 3000):
            c.access(int(oid), int(rng.integers(50, 400)))
            assert c.used_bytes <= 5000

    def test_admit_false_does_not_insert(self, cls):
        c = _mk(cls, 1000)
        r = c.access(1, 100, admit=False)
        assert not r.hit and not r.inserted
        assert 1 not in _l2(c)
        assert c.used_bytes == 0

    def test_oversized_object_bypassed(self, cls):
        c = _mk(cls, 1000)
        r = c.access(1, 10_000)
        assert not r.inserted
        assert c.used_bytes == 0

    def test_evictions_reported(self, cls):
        c = _mk(cls, 300)
        c.access(1, 290)
        r = c.access(2, 290)
        if r.inserted:
            assert 1 in r.evicted
            assert 1 not in c

    def test_len_counts_residents(self, cls):
        c = _mk(cls, 10_000)
        for oid in range(5):
            c.access(oid, 100)
        assert len(_l2(c)) == 5

    def test_invalid_capacity(self, cls):
        with pytest.raises(ValueError):
            _mk(cls, 0)

    def test_invalid_size(self, cls):
        c = _mk(cls, 100)
        with pytest.raises(ValueError):
            c.access(1, 0)

    def test_contains_consistent_with_hit(self, cls):
        rng = np.random.default_rng(1)
        c = _mk(cls, 3000)
        for oid in rng.integers(0, 60, 1500):
            oid = int(oid)
            resident = oid in c
            r = c.access(oid, 100)
            assert r.hit == resident


class TestLRU:
    def test_eviction_order_is_recency(self):
        c = LRUCache(300)
        c.access(1, 100)
        c.access(2, 100)
        c.access(3, 100)
        c.access(1, 100)  # refresh 1 → victim should be 2
        r = c.access(4, 100)
        assert r.evicted == (2,)
        assert 1 in c and 3 in c and 4 in c

    def test_used_bytes_tracks_sizes(self):
        c = LRUCache(1000)
        c.access(1, 300)
        c.access(2, 200)
        assert c.used_bytes == 500


class TestFIFO:
    def test_hit_does_not_refresh(self):
        c = FIFOCache(300)
        c.access(1, 100)
        c.access(2, 100)
        c.access(3, 100)
        c.access(1, 100)  # hit, but 1 remains the oldest
        r = c.access(4, 100)
        assert r.evicted == (1,)


class TestLFU:
    def test_evicts_least_frequent(self):
        c = LFUCache(300)
        c.access(1, 100)
        c.access(2, 100)
        c.access(3, 100)
        c.access(1, 100)
        c.access(1, 100)
        c.access(3, 100)
        r = c.access(4, 100)  # 2 has freq 1 → victim
        assert r.evicted == (2,)

    def test_frequency_tie_breaks_by_age(self):
        c = LFUCache(300)
        c.access(1, 100)
        c.access(2, 100)
        c.access(3, 100)
        r = c.access(4, 100)  # all freq 1 → evict the oldest (1)
        assert r.evicted == (1,)


class TestS3LRU:
    def test_promotion_protects_from_scan(self):
        """Objects hit twice must survive a one-time scan; plain LRU loses them."""
        cap = 3000
        s3 = S3LRUCache(cap)
        lru = LRUCache(cap)
        hot = list(range(8))
        for c in (s3, lru):
            for oid in hot:
                c.access(oid, 100)
            for oid in hot:  # promote in S3LRU
                c.access(oid, 100)
            for oid in range(100, 130):  # scan of one-time objects
                c.access(oid, 100)
        s3_hits = sum(1 for oid in hot if oid in s3)
        lru_hits = sum(1 for oid in hot if oid in lru)
        assert s3_hits > lru_hits

    def test_object_larger_than_segment_bypassed(self):
        c = S3LRUCache(3000, n_segments=3)  # 1000 per segment
        r = c.access(1, 1500)
        assert not r.inserted

    def test_invalid_segments(self):
        with pytest.raises(ValueError):
            S3LRUCache(100, n_segments=0)

    def test_three_segments_by_default(self):
        assert S3LRUCache(300).n_segments == 3


class TestARC:
    def test_ghost_hit_adapts_target(self):
        # Mixed T1/T2 state is required: when T1 alone fills the cache the
        # L1 = T1∪B1 ≤ c invariant keeps B1 empty (faithful ARC).
        c = ARCCache(400)
        c.access(1, 100)
        c.access(1, 100)  # 1 → T2
        c.access(2, 100)
        c.access(2, 100)  # 2 → T2
        c.access(3, 100)
        c.access(4, 100)  # T1 = {3, 4}
        p0 = c.p_target
        c.access(5, 100)  # evicts 3 (T1 LRU) → B1 ghost
        assert 3 not in c
        c.access(3, 100)  # B1 ghost hit: p must grow
        assert c.p_target > p0
        assert 3 in c and 3 in c._t2  # re-admitted into T2

    def test_two_touches_reach_t2(self):
        c = ARCCache(1000)
        c.access(1, 100)
        c.access(1, 100)
        assert 1 in c._t2

    def test_scan_resistance(self):
        """A long one-time scan must not flush the frequently hit set."""
        cap = 2000
        arc = ARCCache(cap)
        hot = list(range(5))
        for _ in range(3):
            for oid in hot:
                arc.access(oid, 100)
        for oid in range(1000, 1030):
            arc.access(oid, 100)
        assert sum(1 for oid in hot if oid in arc) >= 3

    def test_directory_bounded(self):
        rng = np.random.default_rng(2)
        c = ARCCache(2000)
        for oid in rng.integers(0, 5000, 8000):
            c.access(int(oid), 100)
        ghost_bytes = c._b1_bytes + c._b2_bytes
        assert c.used_bytes + ghost_bytes <= 2 * c.capacity + 400

    def test_replace_falls_back_when_t2_empty(self):
        # Variable object sizes can leave t1_bytes <= p while T2 is empty,
        # a state the unit-page ARC proof excludes; _replace must then
        # evict from T1 instead of raising (hypothesis-found regression).
        c = ARCCache(205)
        stream = [
            (2, 1, True),    # T1 = {2}
            (3, 204, True),  # T1 = {2, 3}, cache full
            (3, 204, True),  # 3 -> T2
            (1, 1, True),    # evicts 2 -> B1
            (2, 1, True),    # B1 ghost hit: p grows to 1; 3 evicted -> B2
            (0, 205, True),  # needs two evictions; after T2 drains,
        ]                    # t1_bytes == p must still evict from T1
        for oid, size, admit in stream:
            c.access(oid, size, admit=admit)
        assert c.used_bytes <= c.capacity
        assert 0 in c


class TestLIRS:
    def test_rs_property(self):
        c = LIRSCache(1000, lir_fraction=0.95)
        assert c.rs == pytest.approx(0.95)

    def test_promotion_on_reuse(self):
        c = LIRSCache(1000, lir_fraction=0.6)
        # Fill the LIR pool.
        c.access(1, 300)
        c.access(2, 300)
        # 3 arrives as resident HIR; re-touching it promotes to LIR.
        c.access(3, 300)
        assert c._stack[3] == 1  # HIR
        c.access(3, 300)
        assert c._stack[3] == 0  # LIR

    def test_loop_pattern_beats_lru(self):
        """LIRS's signature: cyclic access slightly beyond capacity.

        LRU gets zero hits on a loop one object larger than capacity;
        LIRS retains most of the working set as LIR.
        """
        n_obj, size = 12, 100
        cap = (n_obj - 2) * size
        lirs = LIRSCache(cap)
        lru = LRUCache(cap)
        lirs_hits = lru_hits = 0
        for _ in range(30):
            for oid in range(n_obj):
                lirs_hits += lirs.access(oid, size).hit
                lru_hits += lru.access(oid, size).hit
        assert lru_hits == 0
        assert lirs_hits > 100

    def test_history_bounded(self):
        rng = np.random.default_rng(3)
        c = LIRSCache(2000, history_factor=2)
        for oid in rng.integers(0, 50_000, 20_000):
            c.access(int(oid), 100)
        assert c._n_nonres <= max(1024, 2 * max(len(c), 1)) + 1

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            LIRSCache(100, lir_fraction=1.0)
        with pytest.raises(ValueError):
            LIRSCache(100, history_factor=0)


class TestTwoQ:
    def test_second_touch_via_ghost_promotes_to_am(self):
        c = TwoQCache(1000, kin=0.25, kout=1.0)
        # A1in may fill the whole cache while space lasts (faithful 2Q);
        # the sixth insert forces a demotion of the A1in head into A1out.
        for oid in (1, 2, 3, 4, 5, 6):
            c.access(oid, 200)
        assert 1 in c._a1out
        # Ghost hit: readmitted straight into Am.
        c.access(1, 200)
        assert 1 in c._am

    def test_first_touch_goes_to_a1in(self):
        c = TwoQCache(1000)
        c.access(7, 100)
        assert 7 in c._a1in and 7 not in c._am

    def test_scan_does_not_flush_am(self):
        c = TwoQCache(2000, kin=0.25, kout=1.0)
        # Install a hot object in Am via the ghost path.
        for oid in (1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11):
            c.access(oid, 200)
        assert 1 in c._a1out
        c.access(1, 200)
        assert 1 in c._am
        # A long one-time scan churns A1in only.
        for oid in range(100, 140):
            c.access(oid, 200)
        assert 1 in c

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            TwoQCache(100, kin=0.0)
        with pytest.raises(ValueError):
            TwoQCache(100, kout=0.0)


class TestGDSF:
    def test_small_objects_preferred_at_equal_frequency(self):
        c = GDSFCache(1000)
        c.access(1, 800)   # big
        c.access(2, 100)   # small
        r = c.access(3, 500)
        # Big object has the lowest freq/size priority → evicted first.
        assert 1 in r.evicted
        assert 2 in c

    def test_frequency_protects_objects(self):
        c = GDSFCache(1000)
        c.access(1, 400)
        for _ in range(10):
            c.access(1, 400)  # freq 11
        c.access(2, 400)
        r = c.access(3, 400)
        assert 2 in r.evicted and 1 in c

    def test_clock_inflation_allows_takeover(self):
        """Aging: a once-hot object must eventually be evictable."""
        c = GDSFCache(1000)
        c.access(1, 500)
        for _ in range(5):
            c.access(1, 500)
        # A stream of fresh small objects inflates the clock past 1's prio.
        evicted_1 = False
        for oid in range(10, 200):
            r = c.access(oid, 400)
            if 1 in r.evicted:
                evicted_1 = True
                break
        assert evicted_1


class TestSieve:
    def test_lazy_promotion_sets_visited(self):
        c = SieveCache(300)
        c.access(1, 100)
        c.access(2, 100)
        c.access(1, 100)  # hit: visited bit only
        assert c._nodes[1].visited
        assert not c._nodes[2].visited

    def test_unvisited_evicted_first(self):
        c = SieveCache(300)
        c.access(1, 100)
        c.access(2, 100)
        c.access(3, 100)
        c.access(1, 100)  # protect 1
        r = c.access(4, 100)
        # Hand starts at the tail (1), sees visited → clears and moves to 2.
        assert r.evicted == (2,)
        assert 1 in c

    def test_visited_bit_cleared_on_pass(self):
        c = SieveCache(300)
        c.access(1, 100)
        c.access(2, 100)
        c.access(3, 100)
        c.access(1, 100)
        c.access(4, 100)  # hand passes 1, clears its bit, evicts 2
        assert not c._nodes[1].visited

    def test_scan_resistance(self):
        """A one-time scan must not flush the re-accessed working set."""
        c = SieveCache(2000)
        hot = list(range(5))
        for oid in hot:
            c.access(oid, 100)
        for oid in hot:
            c.access(oid, 100)  # mark visited
        for oid in range(100, 140):
            c.access(oid, 100)
        assert sum(1 for oid in hot if oid in c) >= 3

    def test_all_visited_wraps_and_still_evicts(self):
        c = SieveCache(300)
        for oid in (1, 2, 3):
            c.access(oid, 100)
            c.access(oid, 100)  # everything visited
        r = c.access(4, 100)
        assert len(r.evicted) == 1  # wrap-around clears bits and evicts


class TestBelady:
    def test_next_use_computation(self):
        ids = np.array([5, 7, 5, 5, 7])
        nxt = compute_next_use(ids)
        big = np.iinfo(np.int64).max
        np.testing.assert_array_equal(nxt, [2, 4, 3, big, big])

    def test_evicts_farthest(self):
        #        0  1  2  3  4  5
        ids = np.array([1, 2, 3, 1, 2, 3])
        nxt = compute_next_use(ids)
        c = BeladyCache(200, nxt)
        c.access(1, 100)
        c.access(2, 100)
        r = c.access(3, 100)  # must evict 3's farthest competitor… all have
        # next uses 3 (obj1) and 4 (obj2); farthest is obj2? no: evict the
        # max next_use among residents = obj2(next=4) vs obj1(next=3) → obj2.
        assert r.evicted == (2,)

    def test_dead_object_bypassed(self):
        ids = np.array([1, 2, 1])
        c = BeladyCache(1000, compute_next_use(ids))
        c.access(1, 100)
        r = c.access(2, 100)  # 2 never used again → bypass
        assert not r.inserted
        assert c.access(1, 100).hit

    def test_bypass_dead_disabled(self):
        ids = np.array([1, 2, 1])
        c = BeladyCache(1000, compute_next_use(ids), bypass_dead=False)
        c.access(1, 100)
        assert c.access(2, 100).inserted

    def test_oracle_horizon_enforced(self):
        c = BeladyCache(100, compute_next_use(np.array([1])))
        c.access(1, 50)
        with pytest.raises(RuntimeError):
            c.access(1, 50)

    def test_optimal_on_unit_trace(self):
        """Belady must beat or match every online policy (unit sizes)."""
        rng = np.random.default_rng(4)
        ids = rng.zipf(1.3, 5000) % 300
        nxt = compute_next_use(ids)
        cap = 50  # unit-size objects
        policies = {
            "belady": BeladyCache(cap, nxt),
            "lru": LRUCache(cap),
            "fifo": FIFOCache(cap),
            "arc": ARCCache(cap),
            "lirs": LIRSCache(cap),
            "s3lru": S3LRUCache(cap),
        }
        hits = {}
        for name, pol in policies.items():
            h = 0
            for oid in ids:
                h += pol.access(int(oid), 1).hit
            hits[name] = h
        for name in ("lru", "fifo", "arc", "lirs", "s3lru"):
            assert hits["belady"] >= hits[name], (name, hits)
