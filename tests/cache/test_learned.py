"""Learned-eviction policy: fallback identity, protection, parity.

The three load-bearing contracts, property-tested on arbitrary request
streams:

* an **untrained** head leaves the policy bit-identical to plain LRU —
  every ``AccessResult``, byte count and eviction sequence matches;
* the sampled ranking **never** evicts an object inside the
  ``protect_recent`` admission window, no matter how dead the head
  judges it;
* the policy declines ``can_batch_hits`` and segmented replay stays
  bit-identical to the per-request loop.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import (
    LearnedCache,
    LRUCache,
    OnlineReuseTrainer,
    eviction_metadata,
)
from repro.cache.simulator import POLICY_REGISTRY, make_policy, simulate
from repro.trace import WorkloadConfig, generate_trace

request_streams = st.lists(
    st.tuples(
        st.integers(0, 25),    # object id
        st.integers(1, 400),   # size
        st.booleans(),         # admit
    ),
    min_size=1,
    max_size=250,
)


class _DeadOracle:
    """Trainer stub: always ready, judges every candidate maximally dead.

    Forces the learned path on every eviction so the tests below
    exercise the sampled ranking rather than the LRU fallback.
    """

    ready = True
    fits = 0
    train_mae = 0.0

    def __init__(self):
        self.matured = 0

    @staticmethod
    def predict_one(row):
        return 26.0

    def add(self, row, label):
        self.matured += 1
        return False


class _ProtectionAsserting(LearnedCache):
    """Fails the test the instant a learned pick lands on a protected oid."""

    def _pick_victim(self, t):
        victim, learned = super()._pick_victim(t)
        if learned:
            assert not self.is_protected(victim), (
                f"learned ranking chose protected object {victim}"
            )
        return victim, learned


class TestLRUFallbackIdentity:
    @given(stream=request_streams, capacity=st.integers(100, 2500))
    @settings(max_examples=60, deadline=None)
    def test_untrained_head_is_bit_identical_to_lru(self, stream, capacity):
        # The default trainer needs min_train matured rows before its
        # first fit; these streams stay far below that, so the head never
        # trains and every eviction must take the fallback path.
        learned = LearnedCache(capacity)
        lru = LRUCache(capacity)
        sizes: dict[int, int] = {}
        for oid, size, admit in stream:
            size = sizes.setdefault(oid, size)
            a = learned.access(oid, size, admit=admit)
            b = lru.access(oid, size, admit=admit)
            assert (a.hit, a.inserted, a.evicted) == (b.hit, b.inserted, b.evicted)
            assert learned.used_bytes == lru.used_bytes
            assert len(learned) == len(lru)
        assert learned.learned_evictions == 0
        assert learned.fallback_evictions == learned.decisions

    def test_degraded_head_falls_back_to_lru(self):
        # A fitted head whose training error blew past max_error loses
        # its override: ``ready`` is the confidence gate, not "fitted".
        trainer = OnlineReuseTrainer(
            train_interval=1, min_train=2, buffer_size=64, max_error=6.0
        )
        for i in range(8):
            trainer.add((float(i), 1.0, 2.0, 3.0, 4.0), float(i % 3))
        assert trainer.predict_one is not None
        trainer.train_mae = 100.0
        assert not trainer.ready
        policy = LearnedCache(200, trainer=trainer)
        for oid in range(10):
            policy.access(oid, 50)
        assert policy.learned_evictions == 0


class TestProtectedWindow:
    @given(stream=request_streams, capacity=st.integers(100, 2000))
    @settings(max_examples=60, deadline=None)
    def test_learned_ranking_never_evicts_protected(self, stream, capacity):
        policy = _ProtectionAsserting(
            capacity, trainer=_DeadOracle(), protect_recent=4
        )
        sizes: dict[int, int] = {}
        for oid, size, admit in stream:
            policy.access(oid, sizes.setdefault(oid, size), admit=admit)

    def test_learned_evictions_do_happen_outside_the_window(self):
        # Deterministic companion to the property: with every candidate
        # judged dead and a 2-insertion window, a long scan stream must
        # take the learned path (the property above would pass vacuously
        # if the ranking never fired at all).
        policy = _ProtectionAsserting(
            400, trainer=_DeadOracle(), protect_recent=2
        )
        policy.debug_log = []
        for oid in range(40):
            policy.access(oid, 100)
        assert policy.learned_evictions > 0
        assert any(mode == "learned" for _, mode in policy.debug_log)

    def test_all_candidates_protected_falls_back(self):
        # Window wider than the resident set: the ranking must stand
        # aside and the LRU head pays, counted as a fallback.
        policy = LearnedCache(300, trainer=_DeadOracle(), protect_recent=64)
        for oid in range(12):
            policy.access(oid, 100)
        assert policy.learned_evictions == 0
        assert policy.fallback_evictions == policy.decisions > 0


class TestSegmentParity:
    def test_declines_batched_hits(self):
        # The hit-side transition feeds the training stream, so hits must
        # replay one by one; segmented replay relies on this signal.
        assert LearnedCache(100).can_batch_hits() is False

    def test_segmented_replay_is_bit_identical(self):
        trace = generate_trace(WorkloadConfig(n_objects=1500, seed=3))
        cap = int(0.03 * trace.catalog["size"].sum())
        seg = simulate(trace, make_policy("learned", cap, trace),
                       use_segments=True)
        loop = simulate(trace, make_policy("learned", cap, trace),
                        use_segments=False)
        assert seg.stats == loop.stats


class TestRegistryWiring:
    def test_learned_is_registered(self):
        assert "learned" in POLICY_REGISTRY

    def test_make_policy_threads_catalog_metadata(self):
        trace = generate_trace(WorkloadConfig(n_objects=500, seed=1))
        with_trace = make_policy("learned", 10_000, trace)
        assert with_trace.metadata is not None
        assert len(with_trace.metadata) == 500
        capacity_only = make_policy("learned", 10_000)
        assert capacity_only.metadata is None

    def test_eviction_metadata_shape(self):
        trace = generate_trace(WorkloadConfig(n_objects=300, seed=2))
        md = eviction_metadata(trace)
        assert len(md) == 300
        assert all(len(row) == 4 for row in md)


class TestChurnAttribution:
    def test_learned_victim_readmission_sets_churn_flag(self):
        policy = LearnedCache(200, trainer=_DeadOracle(), protect_recent=0)
        policy.debug_log = []
        policy.access(1, 100)
        policy.access(2, 100)
        policy.access(3, 100)  # forces a learned eviction
        victim, mode = policy.debug_log[0]
        assert mode == "learned"
        policy.access(victim, 100)  # re-admit the head's own victim
        assert policy.last_insert_was_churn
        assert policy.churn_inserts == 1

    def test_fallback_victim_readmission_is_not_churn(self):
        policy = LearnedCache(200)  # untrained: pure LRU evictions
        policy.access(1, 100)
        policy.access(2, 100)
        policy.access(3, 100)  # LRU-evicts 1
        policy.access(1, 100)
        assert not policy.last_insert_was_churn
        assert policy.churn_inserts == 0


class TestTrainerLifecycle:
    def test_interval_refits_and_reset(self):
        trainer = OnlineReuseTrainer(
            train_interval=64, min_train=32, buffer_size=256
        )
        refits = sum(
            trainer.add((float(i % 7), 1.0, 2.0, 3.0, 4.0), float(i % 5))
            for i in range(200)
        )
        assert trainer.fits == refits > 0
        assert trainer.ready
        trainer.reset()
        assert trainer.model is None
        assert not trainer.ready

    def test_timing_probe_reports_decision_cost(self):
        policy = LearnedCache(300, timing=True)
        for oid in range(20):
            policy.access(oid, 100)
        stats = policy.decision_stats()
        assert stats["decisions"] > 0
        assert stats["mean_decision_ns"] is not None
        assert stats["mean_decision_ns"] > 0
