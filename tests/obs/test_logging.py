"""Structured logging: naming, JSON formatting, idempotent configuration."""

import io
import json
import logging

from repro.obs.structlog import (
    ROOT_LOGGER,
    JsonLogFormatter,
    configure_logging,
    get_logger,
)


def teardown_function(_fn):
    # Leave the global logging tree as the suite found it.
    root = logging.getLogger(ROOT_LOGGER)
    for handler in list(root.handlers):
        root.removeHandler(handler)
    root.setLevel(logging.NOTSET)
    root.propagate = True


class TestGetLogger:
    def test_prefixes_hierarchy(self):
        assert get_logger("server.node").name == "repro.server.node"
        assert get_logger("repro.obs").name == "repro.obs"
        assert get_logger("repro").name == "repro"


class TestConfigure:
    def test_level_and_stream(self):
        buf = io.StringIO()
        configure_logging("warning", stream=buf)
        log = get_logger("t1")
        log.info("hidden")
        log.warning("shown")
        out = buf.getvalue()
        assert "hidden" not in out
        assert "shown" in out

    def test_reconfigure_does_not_stack_handlers(self):
        for _ in range(3):
            configure_logging("info", stream=io.StringIO())
        assert len(logging.getLogger(ROOT_LOGGER).handlers) == 1

    def test_unknown_level_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            configure_logging("loud")


class TestJsonFormat:
    def test_json_lines_with_extra_fields(self):
        buf = io.StringIO()
        configure_logging("info", json_format=True, stream=buf)
        get_logger("t2").info("served %d", 5, extra={"port": 8642})
        record = json.loads(buf.getvalue().strip())
        assert record["msg"] == "served 5"
        assert record["level"] == "info"
        assert record["logger"] == "repro.t2"
        assert record["port"] == 8642
        assert isinstance(record["ts"], float)

    def test_exception_included(self):
        buf = io.StringIO()
        handler = logging.StreamHandler(buf)
        handler.setFormatter(JsonLogFormatter())
        log = logging.getLogger("repro.t3")
        log.addHandler(handler)
        log.propagate = False
        try:
            raise ValueError("boom")
        except ValueError:
            log.exception("failed")
        log.removeHandler(handler)
        record = json.loads(buf.getvalue().strip())
        assert record["msg"] == "failed"
        assert "ValueError: boom" in record["exc"]

    def test_non_serialisable_extra_is_stringified(self):
        buf = io.StringIO()
        configure_logging("info", json_format=True, stream=buf)
        get_logger("t4").info("x", extra={"obj": object()})
        record = json.loads(buf.getvalue().strip())
        assert isinstance(record["obj"], str)
