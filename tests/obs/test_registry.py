"""Registry semantics: metric kinds, labels, buckets, reservoir bounds."""

import math
import random

import numpy as np
import pytest

from repro.obs.registry import (
    MetricsRegistry,
    Reservoir,
    latency_buckets,
)


class TestCounter:
    def test_inc(self):
        reg = MetricsRegistry()
        c = reg.counter("x_total", "help")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_negative_increment_rejected(self):
        c = MetricsRegistry().counter("x_total")
        with pytest.raises(ValueError):
            c.inc(-1)


class TestGauge:
    def test_set_inc_dec(self):
        g = MetricsRegistry().gauge("g")
        g.set(10)
        g.inc(5)
        g.dec(2)
        assert g.value == 13.0


class TestHistogram:
    def test_observe_and_cumulative(self):
        h = MetricsRegistry().histogram("h", buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 1.0, 1.5, 3.0, 100.0):
            h.observe(v)
        child = h.labels()
        # le=1 captures 0.5 and the boundary value 1.0 (le is inclusive).
        assert child.cumulative() == [
            (1.0, 2),
            (2.0, 3),
            (4.0, 4),
            (math.inf, 5),
        ]
        assert child.count == 5
        assert child.sum == pytest.approx(106.0)

    def test_observe_many_matches_loop(self):
        reg = MetricsRegistry()
        a = reg.histogram("a", buckets=(1.0, 2.0)).labels()
        b = reg.histogram("b", buckets=(1.0, 2.0)).labels()
        a.observe_many(1.5, 1000)
        for _ in range(1000):
            b.observe(1.5)
        assert a.counts == b.counts
        assert a.sum == pytest.approx(b.sum)
        assert a.count == b.count

    def test_non_increasing_buckets_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.histogram("h", buckets=(2.0, 1.0))
        with pytest.raises(ValueError):
            reg.histogram("h2", buckets=(1.0, 1.0))

    def test_latency_buckets_log_scale(self):
        b = latency_buckets()
        assert b[0] == pytest.approx(1e-6)
        ratios = {b[i + 1] / b[i] for i in range(len(b) - 1)}
        assert all(r == pytest.approx(2.0) for r in ratios)
        with pytest.raises(ValueError):
            latency_buckets(start=0.0)


class TestLabels:
    def test_children_are_independent(self):
        fam = MetricsRegistry().counter("req_total", "", ("op", "code"))
        fam.labels("GET", "200").inc()
        fam.labels(op="GET", code="500").inc(3)
        assert fam.labels("GET", "200").value == 1
        assert fam.labels("GET", "500").value == 3

    def test_label_cardinality_enforced(self):
        fam = MetricsRegistry().counter("req_total", "", ("op",))
        with pytest.raises(ValueError):
            fam.labels("GET", "extra")
        with pytest.raises(ValueError):
            fam.labels(nope="x")
        with pytest.raises(ValueError):
            fam.labels("GET", op="GET")

    def test_unlabelled_use_of_labelled_family_rejected(self):
        fam = MetricsRegistry().counter("req_total", "", ("op",))
        with pytest.raises(ValueError):
            fam.inc()

    def test_reserved_and_invalid_names_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.histogram("h", labelnames=("le",))
        with pytest.raises(ValueError):
            reg.counter("1bad")
        with pytest.raises(ValueError):
            reg.counter("ok_total", labelnames=("bad-label",))


class TestRegistry:
    def test_registration_idempotent(self):
        reg = MetricsRegistry()
        a = reg.counter("x_total", "", ("k",))
        b = reg.counter("x_total", "", ("k",))
        assert a is b

    def test_kind_or_labels_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x_total")
        with pytest.raises(ValueError):
            reg.gauge("x_total")
        with pytest.raises(ValueError):
            reg.counter("x_total", labelnames=("k",))

    def test_reset_zeroes_but_keeps_families(self):
        reg = MetricsRegistry()
        c = reg.counter("c_total")
        h = reg.histogram("h", buckets=(1.0,))
        c.inc(5)
        h.observe(0.5)
        reg.reset()
        assert c.value == 0
        assert h.labels().count == 0
        assert reg.get("c_total") is c

    def test_snapshot_is_jsonable(self):
        import json

        reg = MetricsRegistry()
        reg.counter("c_total", "help", ("k",)).labels(k="v").inc(2)
        reg.histogram("h", buckets=(1.0, 2.0)).observe(1.5)
        snap = json.loads(json.dumps(reg.snapshot()))
        assert snap["c_total"]["values"][0] == {"labels": {"k": "v"}, "value": 2}
        assert snap["h"]["values"][0]["buckets"] == {"1": 0, "2": 1, "+Inf": 1}


class TestReservoir:
    def test_bounded_with_exact_aggregates(self):
        r = Reservoir(capacity=100, seed=1)
        for i in range(100_000):
            r.add(float(i))
        assert r.retained == 100
        assert len(r) == 100_000
        assert r.count == 100_000
        assert r.max_value == 99_999.0
        assert r.min_value == 0.0
        assert r.mean == pytest.approx(49_999.5)

    def test_exact_below_capacity(self):
        r = Reservoir(capacity=1000)
        values = [random.Random(7).random() for _ in range(500)]
        for v in values:
            r.add(v)
        assert sorted(r) == sorted(values)
        s = r.summary()
        assert s["count"] == 500
        assert s["p50"] == pytest.approx(np.percentile(values, 50))
        assert s["max"] == pytest.approx(max(values))

    def test_uniformity(self):
        """Retained sample mean tracks the stream mean (Algorithm R)."""
        r = Reservoir(capacity=500, seed=3)
        for i in range(50_000):
            r.add(float(i))
        assert r.values().mean() == pytest.approx(25_000, rel=0.15)

    def test_add_repeated(self):
        r = Reservoir(capacity=10)
        r.add_repeated(2.0, 5000)
        assert r.count == 5000
        assert r.total == pytest.approx(10_000.0)
        assert r.retained == 10

    def test_add_repeated_is_state_identical_to_sequential_adds(self):
        """Same totals AND the same RNG draw sequence as n ``add`` calls.

        The serving hot path amortises per-batch latency observations
        through ``add_repeated``; bit-identical state means switching a
        code path to it can never change a percentile by construction.
        """
        a = Reservoir(capacity=32, seed=17)
        b = Reservoir(capacity=32, seed=17)
        script = [(1.5, 7), (2.0, 40), (0.25, 1), (9.0, 100), (3.5, 13)]
        for value, n in script:
            a.add_repeated(value, n)
            for _ in range(n):
                b.add(value)
        assert a.count == b.count
        assert a.total == b.total
        assert a.min_value == b.min_value and a.max_value == b.max_value
        assert list(a) == list(b)
        # ...and the RNG streams stayed aligned: the next draws agree too.
        a.add(123.0)
        b.add(123.0)
        assert list(a) == list(b)

    def test_add_repeated_nonpositive_count_is_noop(self):
        r = Reservoir(capacity=4, seed=1)
        r.add_repeated(5.0, 0)
        r.add_repeated(5.0, -3)
        assert r.count == 0 and r.retained == 0

    def test_clear_is_deterministic(self):
        a = Reservoir(capacity=10, seed=9)
        for i in range(1000):
            a.add(float(i))
        kept = list(a)
        a.clear()
        assert a.count == 0 and a.retained == 0
        for i in range(1000):
            a.add(float(i))
        assert list(a) == kept

    def test_empty_summary(self):
        assert Reservoir().summary() == {
            "count": 0, "mean": 0.0, "p50": 0.0, "p95": 0.0,
            "p99": 0.0, "max": 0.0,
        }

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            Reservoir(capacity=0)
