"""Observability threaded through the live serving stack.

Acceptance properties from the observability work:

* the TCP ``TRACE`` verb drains sampled decision events;
* ``/statsz`` and the TCP ``STATS`` verb render identical numbers;
* live ``repro_admission_accuracy`` gauges match the offline
  ``evaluate_admission_decisions`` scorer on the same trace;
* a deliberately degraded model fires the drift alarm;
* a ≥200k-request replay keeps every timing structure at its configured
  capacity.
"""

import asyncio
import json

import numpy as np
import pytest

from repro.core.labeling import ONE_TIME
from repro.core.monitoring import evaluate_admission_decisions
from repro.obs.drift import DriftMonitor
from repro.obs.tracing import DecisionTrace
from repro.server.loadgen import LoadgenConfig, fetch_stats, run_loadgen
from repro.server.node import CacheNode, CacheNodeServer, NodeConfig
from repro.server.protocol import read_message, write_message

CFG = NodeConfig(capacity_fraction=0.02)


def replay_node(node, chunk=256):
    n = node.trace.n_accesses
    i = 0
    while i < n:
        j = min(i + chunk, n)
        node.process_batch(list(range(i, j)))
        i = j


async def tcp_request(port, message):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        await write_message(writer, message)
        return await read_message(reader)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def http_get_json(port, path):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        writer.write(f"GET {path} HTTP/1.1\r\nHost: x\r\n\r\n".encode())
        await writer.drain()
        raw = await reader.read()
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
    head, _, body = raw.partition(b"\r\n\r\n")
    status = int(head.split(b" ", 2)[1])
    return status, body


class TestTraceVerb:
    def test_trace_drains_sampled_events(self, tiny_trace):
        async def run():
            tracer = DecisionTrace(capacity=10_000, sample_rate=1.0)
            node = CacheNode(tiny_trace, CFG, tracer=tracer)
            server = CacheNodeServer(node, port=0)
            await server.start()
            result = await run_loadgen(
                tiny_trace,
                LoadgenConfig(
                    port=server.port, rate=50_000, connections=4,
                    limit=500, fetch_stats=False,
                ),
            )
            assert result.errors == 0
            full = await tcp_request(server.port, {"op": "TRACE"})
            limited = await tcp_request(
                server.port, {"op": "TRACE", "limit": 10}
            )
            drained = await tcp_request(
                server.port, {"op": "TRACE", "clear": True}
            )
            after_clear = await tcp_request(server.port, {"op": "TRACE"})
            await server.shutdown()
            return full, limited, drained, after_clear

        full, limited, drained, after_clear = asyncio.run(run())
        assert full["ok"] and full["op"] == "TRACE"
        assert full["seen"] == 500 and full["sampled"] == 500
        assert len(full["events"]) == 500
        # Events arrive oldest-first in trace order with the full schema.
        indices = [e["index"] for e in full["events"]]
        assert indices == sorted(indices)
        first = full["events"][0]
        assert first["index"] == 0 and not first["hit"]
        assert isinstance(first["features"], list)
        assert first["t_classify"] > 0
        assert set(first) >= {"object_id", "verdict", "denied", "rectified"}
        assert [e["index"] for e in limited["events"]] == indices[-10:]
        assert len(drained["events"]) == 500
        assert after_clear["events"] == []
        assert after_clear["seen"] == 500  # counters survive the drain

    def test_trace_without_tracer_errors(self, tiny_trace):
        async def run():
            node = CacheNode(tiny_trace, CFG)
            server = CacheNodeServer(node, port=0)
            await server.start()
            msg = await tcp_request(server.port, {"op": "TRACE"})
            await server.shutdown()
            return msg

        msg = asyncio.run(run())
        assert not msg["ok"]
        assert "disabled" in msg["error"]

    def test_trace_bad_limit_rejected(self, tiny_trace):
        async def run():
            tracer = DecisionTrace(capacity=16)
            node = CacheNode(tiny_trace, CFG, tracer=tracer)
            server = CacheNodeServer(node, port=0)
            await server.start()
            neg = await tcp_request(server.port, {"op": "TRACE", "limit": -1})
            non_int = await tcp_request(
                server.port, {"op": "TRACE", "limit": "all"}
            )
            await server.shutdown()
            return neg, non_int

        neg, non_int = asyncio.run(run())
        assert not neg["ok"] and not non_int["ok"]

    def test_sampled_rate_traces_subset(self, tiny_trace):
        async def run():
            tracer = DecisionTrace(capacity=10_000, sample_rate=0.25)
            node = CacheNode(tiny_trace, CFG, tracer=tracer)
            server = CacheNodeServer(node, port=0)
            await server.start()
            await run_loadgen(
                tiny_trace,
                LoadgenConfig(
                    port=server.port, rate=50_000, connections=2,
                    limit=2000, fetch_stats=False,
                ),
            )
            msg = await tcp_request(server.port, {"op": "TRACE"})
            await server.shutdown()
            return msg

        msg = asyncio.run(run())
        assert msg["seen"] == 2000
        assert 0.15 < msg["sampled"] / 2000 < 0.35
        assert msg["sample_rate"] == 0.25


class TestStatszParity:
    def test_statsz_equals_tcp_stats(self, tiny_trace):
        async def run():
            node = CacheNode(tiny_trace, CFG, tracer=DecisionTrace())
            node.drift = DriftMonitor(
                node.criteria.m_threshold, window_size=500,
                registry=node.registry,
            )
            server = CacheNodeServer(node, port=0, metrics_port=0)
            await server.start()
            await run_loadgen(
                tiny_trace,
                LoadgenConfig(
                    port=server.port, rate=50_000, connections=4,
                    limit=1500, fetch_stats=False,
                ),
            )
            status, body = await http_get_json(server.exporter.port, "/statsz")
            via_http = json.loads(body)
            via_tcp = await fetch_stats("127.0.0.1", server.port)
            await server.shutdown()
            return status, via_http, via_tcp

        status, via_http, via_tcp = asyncio.run(run())
        assert status == 200
        # Identical snapshots modulo genuinely observer-dependent fields:
        # the uptime clock, the exporter's own request counter, and the
        # connection gauge (the TCP STATS read arrives over a connection
        # of its own; the HTTP one doesn't).
        for snap in (via_http, via_tcp):
            snap.pop("uptime_seconds")
            snap["metrics"].pop("repro_http_requests_total", None)
            snap["metrics"].pop("repro_connections", None)
        assert via_http == via_tcp
        assert via_tcp["processed"] == 1500
        assert via_tcp["drift"]["observed"] == 1500
        assert via_tcp["trace"]["seen"] == 1500

    def test_metrics_and_healthz_from_live_node(self, tiny_trace):
        async def run():
            node = CacheNode(tiny_trace, CFG)
            server = CacheNodeServer(node, port=0, metrics_port=0)
            await server.start()
            await run_loadgen(
                tiny_trace,
                LoadgenConfig(
                    port=server.port, rate=50_000, connections=2,
                    limit=800, fetch_stats=False,
                ),
            )
            _, metrics_body = await http_get_json(
                server.exporter.port, "/metrics"
            )
            health_status, health_body = await http_get_json(
                server.exporter.port, "/healthz"
            )
            await server.shutdown()
            return node, metrics_body.decode(), health_status, health_body

        node, text, health_status, health_body = asyncio.run(run())
        assert health_status == 200
        assert json.loads(health_body)["status"] == "ok"
        assert json.loads(health_body)["processed"] == 800

        samples = {}
        for line in text.splitlines():
            if line and not line.startswith("#"):
                name, _, value = line.rpartition(" ")
                samples[name] = float(value)
        assert samples['repro_requests_total{result="hit"}'] == node.stats.hits
        assert samples["repro_ssd_writes_total"] == node.stats.files_written
        assert samples["repro_trace_position"] == 800
        assert samples["repro_model_version"] == node.model_version
        assert samples["repro_service_latency_seconds_count"] == 800
        assert samples["repro_classify_seconds_count"] == 800
        # Exposition is structurally valid: HELP/TYPE pairs precede samples.
        assert "# TYPE repro_requests_total counter" in text
        assert "# TYPE repro_service_latency_seconds histogram" in text


class TestLiveDriftParity:
    def test_gauges_match_offline_scorer(self, tiny_trace):
        window = 500
        node = CacheNode(tiny_trace, CFG)
        assert node.model is not None
        monitor = DriftMonitor(
            node.criteria.m_threshold, window_size=window,
            registry=node.registry,
        )
        node.drift = monitor
        replay_node(node)
        monitor.finish()

        n = tiny_trace.n_accesses
        ref = evaluate_admission_decisions(
            tiny_trace.object_ids, node.denied_mask, node.criteria.m_threshold,
            window_size=window,
        )
        got = monitor.quality(n_total=n)
        np.testing.assert_array_equal(got.n_scored, ref.n_scored)
        np.testing.assert_allclose(got.accuracy, ref.accuracy, equal_nan=True)
        np.testing.assert_allclose(got.precision, ref.precision, equal_nan=True)
        np.testing.assert_allclose(got.recall, ref.recall, equal_nan=True)

        fam = node.registry.get("repro_admission_accuracy")
        finite = [w for w in range(len(ref.accuracy)) if np.isfinite(ref.accuracy[w])]
        assert finite, "trace too short to complete any window"
        for w in finite:
            assert fam.labels(window=str(w)).value == pytest.approx(
                ref.accuracy[w]
            )
        worst = min(ref.accuracy[w] for w in finite)
        assert node.registry.get(
            "repro_admission_accuracy_worst"
        ).value == pytest.approx(worst)

    def test_degraded_model_fires_alarm(self, tiny_trace):
        """A deny-everything classifier collapses matured accuracy (most
        objects in the trace are re-accessed) and must trip the alarm."""

        class DenyEverything:
            def predict(self, X):
                return np.full(len(X), ONE_TIME)

        node = CacheNode(tiny_trace, CFG)
        assert node.model is not None
        node.install_model(DenyEverything())
        fired = []
        node.drift = DriftMonitor(
            node.criteria.m_threshold, window_size=500,
            alarm_threshold=0.9, registry=node.registry,
            on_alarm=[lambda m, w, acc: fired.append((w, acc))],
        )
        replay_node(node)
        node.drift.finish()

        assert node.drift.alarms >= 1
        assert fired and all(acc < 0.9 for _, acc in fired)
        assert node.registry.get("repro_drift_alarms_total").value == len(fired)
        # The history table rectifies some denials, but matured accuracy
        # still reflects the broken verdicts.
        assert node.drift.worst_accuracy < 0.9


class TestBoundedTiming:
    def test_200k_replay_keeps_timing_structures_bounded(self):
        from repro.trace.generator import WorkloadConfig, generate_trace

        trace = generate_trace(
            WorkloadConfig(n_objects=50_000, mean_accesses=4.0, seed=5)
        )
        n = trace.n_accesses
        assert n >= 200_000 * 0.99  # ~200k requests

        cap = 512
        node = CacheNode(
            trace,
            NodeConfig(capacity_fraction=0.02, timing_capacity=cap),
        )
        assert node.model is not None
        replay_node(node, chunk=512)

        assert node.processed == n
        assert node.classify_timing.count == n
        assert node.classify_timing.retained <= cap
        assert node.classify_times().shape[0] <= cap
        # Exact aggregates survive the bound.
        assert node.classify_timing.max_value > 0
        snap_count = node.classify_timing.summary()["count"]
        assert snap_count == n

    def test_service_latency_reservoir_bounded_over_tcp(self, tiny_trace):
        cap = 100

        async def run():
            node = CacheNode(
                tiny_trace,
                NodeConfig(capacity_fraction=0.02, timing_capacity=cap),
            )
            server = CacheNodeServer(node, port=0)
            await server.start()
            result = await run_loadgen(
                tiny_trace,
                LoadgenConfig(port=server.port, rate=50_000, connections=4),
            )
            await server.shutdown()
            return server, result

        server, result = asyncio.run(run())
        assert result.errors == 0
        n = result.completed
        assert server.service_latencies.count == n
        assert server.service_latencies.retained <= cap

    def test_online_admission_decision_times_bounded(self, tiny_trace):
        from repro.core.history_table import HistoryTable
        from repro.core.online import (
            OnlineClassifierAdmission,
            OnlineFeatureTracker,
        )

        node = CacheNode(tiny_trace, CFG)  # borrow its trained model
        assert node.model is not None
        adm = OnlineClassifierAdmission(
            node.model,
            OnlineFeatureTracker(tiny_trace),
            node.criteria.m_threshold,
            HistoryTable(1024),
            timing_capacity=64,
        )
        oids = tiny_trace.object_ids
        sizes = tiny_trace.catalog["size"][oids]
        for i in range(2000):
            adm.should_admit(i, int(oids[i]), int(sizes[i]))
        assert adm.decisions == 2000
        assert len(adm.decision_times) == 2000  # exact total, bounded memory
        assert adm.decision_times.retained <= 64
        assert sum(adm.decision_times) <= adm.decision_seconds * 1.001
