"""Decision-trace sampling, ring bound, and JSON-lines encoding."""

import json

import pytest

from repro.obs.tracing import EVENT_FIELDS, DecisionTrace


def event(i):
    return {"index": i, "object_id": i * 7, "verdict": 1}


class TestSampling:
    def test_rate_one_samples_everything(self):
        t = DecisionTrace(capacity=10, sample_rate=1.0)
        assert all(t.should_sample(i) for i in range(100))
        assert t.seen == 100

    def test_rate_zero_samples_nothing(self):
        t = DecisionTrace(capacity=10, sample_rate=0.0)
        assert not any(t.should_sample(i) for i in range(100))
        assert t.seen == 100

    def test_sampling_is_deterministic_in_position(self):
        a = DecisionTrace(sample_rate=0.3)
        b = DecisionTrace(sample_rate=0.3)
        picks_a = [a.should_sample(i) for i in range(5000)]
        picks_b = [b.should_sample(i) for i in range(5000)]
        assert picks_a == picks_b

    def test_sample_rate_is_roughly_honoured(self):
        t = DecisionTrace(sample_rate=0.25)
        n = sum(t.should_sample(i) for i in range(20_000))
        assert 0.22 < n / 20_000 < 0.28

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            DecisionTrace(capacity=0)
        with pytest.raises(ValueError):
            DecisionTrace(sample_rate=1.5)


class TestRingBuffer:
    def test_capacity_bound_keeps_most_recent(self):
        t = DecisionTrace(capacity=5, sample_rate=1.0)
        for i in range(20):
            t.record(event(i))
        assert len(t) == 5
        assert [e["index"] for e in t.events()] == [15, 16, 17, 18, 19]
        assert t.sampled == 20
        assert t.dropped == 15

    def test_events_limit_returns_most_recent_oldest_first(self):
        t = DecisionTrace(capacity=10)
        for i in range(8):
            t.record(event(i))
        assert [e["index"] for e in t.events(limit=3)] == [5, 6, 7]
        assert [e["index"] for e in t.events(limit=0)] == []
        with pytest.raises(ValueError):
            t.events(limit=-1)

    def test_events_clear_drains_buffer_but_keeps_counters(self):
        t = DecisionTrace(capacity=10)
        for i in range(4):
            t.should_sample(i)
            t.record(event(i))
        out = t.events(clear=True)
        assert len(out) == 4
        assert len(t) == 0
        assert t.seen == 4 and t.sampled == 4

    def test_clear_resets_counters(self):
        t = DecisionTrace(capacity=10)
        t.should_sample(0)
        t.record(event(0))
        t.clear()
        assert t.seen == 0 and t.sampled == 0 and len(t) == 0


class TestEncoding:
    def test_to_jsonl_round_trips(self):
        t = DecisionTrace(capacity=4)
        for i in range(3):
            t.record(event(i))
        lines = DecisionTrace.to_jsonl(t.events()).splitlines()
        assert [json.loads(line)["index"] for line in lines] == [0, 1, 2]

    def test_event_fields_documented(self):
        # The schema tuple is what docs and consumers key off.
        assert "index" in EVENT_FIELDS
        assert "verdict" in EVENT_FIELDS
        assert "t_classify" in EVENT_FIELDS
