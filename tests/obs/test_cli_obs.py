"""CLI observability surfaces: ``stats --watch`` and ``trace-dump``.

Both talk to a real node server running on a background thread's event
loop, through the same code paths an operator would use.
"""

import asyncio
import json
import threading

import pytest

from repro.cli import main
from repro.server.node import CacheNode, CacheNodeServer, NodeConfig

CFG = NodeConfig(capacity_fraction=0.02)


@pytest.fixture
def live_server(tiny_trace):
    """A served node (with tracing + metrics HTTP) on a background loop."""
    from repro.obs.tracing import DecisionTrace

    node = CacheNode(tiny_trace, CFG, tracer=DecisionTrace(capacity=100))
    node.process_batch(list(range(50)))  # some traffic before serving
    box = {}
    started = threading.Event()

    def runner():
        async def go():
            server = CacheNodeServer(node, port=0, metrics_port=0)
            await server.start()
            box["server"] = server
            box["loop"] = asyncio.get_running_loop()
            started.set()
            await server.wait_closed()

        asyncio.run(go())

    thread = threading.Thread(target=runner, daemon=True)
    thread.start()
    assert started.wait(10), "server failed to start"
    yield node, box["server"]
    asyncio.run_coroutine_threadsafe(
        box["server"].shutdown(), box["loop"]
    ).result(10)
    thread.join(10)


class TestStatsWatch:
    def test_watch_renders_live_table(self, live_server, capsys):
        node, server = live_server
        rc = main(
            [
                "stats",
                "--watch",
                "--stats-port",
                str(server.exporter.port),
                "--iterations",
                "2",
                "--interval",
                "0.05",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert out.count("replay 50/") == 2
        assert "file hit rate" in out
        assert "requests served" in out
        assert "trace events (buffered/sampled)" in out

    def test_watch_survives_unreachable_endpoint(self, capsys):
        rc = main(
            [
                "stats",
                "--watch",
                "--stats-port",
                "1",  # nothing listens there
                "--iterations",
                "2",
                "--interval",
                "0.01",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0  # polling errors are reported, not fatal
        assert "http://127.0.0.1:1/statsz" in out


class TestTraceDump:
    def test_dump_to_stdout(self, live_server, capsys):
        node, server = live_server
        rc = main(["trace-dump", "--port", str(server.port)])
        captured = capsys.readouterr()
        assert rc == 0
        events = [json.loads(line) for line in captured.out.splitlines()]
        assert len(events) == 50
        assert [e["index"] for e in events] == list(range(50))
        assert "50 event(s) dumped" in captured.err

    def test_dump_limit_and_clear(self, live_server, capsys, tmp_path):
        node, server = live_server
        out_file = tmp_path / "events.jsonl"
        rc = main(
            [
                "trace-dump",
                "--port",
                str(server.port),
                "--limit",
                "5",
                "--clear",
                "--output",
                str(out_file),
            ]
        )
        assert rc == 0
        lines = out_file.read_text().splitlines()
        assert [json.loads(line)["index"] for line in lines] == list(
            range(45, 50)
        )
        assert len(node.tracer) == 0  # drained
        # A second dump finds an empty buffer.
        rc = main(["trace-dump", "--port", str(server.port)])
        captured = capsys.readouterr()
        assert rc == 0
        assert captured.out == ""
        assert "0 event(s) dumped" in captured.err

    def test_dump_errors_when_tracing_disabled(self, tiny_trace, capsys):
        node = CacheNode(tiny_trace, CFG)  # no tracer
        box = {}
        started = threading.Event()

        def runner():
            async def go():
                server = CacheNodeServer(node, port=0)
                await server.start()
                box["server"] = server
                box["loop"] = asyncio.get_running_loop()
                started.set()
                await server.wait_closed()

            asyncio.run(go())

        thread = threading.Thread(target=runner, daemon=True)
        thread.start()
        assert started.wait(10)
        try:
            rc = main(["trace-dump", "--port", str(box["server"].port)])
        finally:
            asyncio.run_coroutine_threadsafe(
                box["server"].shutdown(), box["loop"]
            ).result(10)
            thread.join(10)
        captured = capsys.readouterr()
        assert rc == 1
        assert "decision tracing disabled" in captured.err

    def test_dump_unreachable_server_fails_cleanly(self, capsys):
        rc = main(["trace-dump", "--port", "1"])
        captured = capsys.readouterr()
        assert rc == 1
        assert "trace-dump failed" in captured.err
