"""Drift monitor: exact parity with the offline scorer, alarms, gauges."""

import numpy as np
import pytest

from repro.core.monitoring import evaluate_admission_decisions
from repro.obs.drift import DriftMonitor
from repro.obs.registry import MetricsRegistry


def feed(monitor, oids, denied):
    for i, (oid, d) in enumerate(zip(oids, denied)):
        monitor.observe(i, int(oid), bool(d))


class TestOfflineParity:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_streaming_equals_batch_scorer(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(200, 2000))
        oids = rng.integers(0, int(rng.integers(5, 200)), size=n)
        denied = rng.random(n) < rng.random()
        m = float(rng.uniform(0.5, 20.0))
        window = int(rng.integers(1, 60))

        ref = evaluate_admission_decisions(oids, denied, m, window_size=window)

        mon = DriftMonitor(m, window_size=window)
        feed(mon, oids, denied)
        mon.finish()
        got = mon.quality(n_total=n)

        np.testing.assert_array_equal(got.n_scored, ref.n_scored)
        np.testing.assert_allclose(got.accuracy, ref.accuracy, equal_nan=True)
        np.testing.assert_allclose(got.precision, ref.precision, equal_nan=True)
        np.testing.assert_allclose(got.recall, ref.recall, equal_nan=True)

    def test_integral_threshold_boundary(self):
        # Re-access at distance exactly M counts as reused; M+1 is one-time.
        m = 3.0
        oids = [1, 9, 9, 1, 2, 9, 9, 9, 2]
        denied = [True] * len(oids)
        ref = evaluate_admission_decisions(
            np.array(oids), np.array(denied), m, window_size=4
        )
        mon = DriftMonitor(m, window_size=4)
        feed(mon, oids, denied)
        mon.finish()
        got = mon.quality(n_total=len(oids))
        np.testing.assert_allclose(got.accuracy, ref.accuracy, equal_nan=True)


class TestMemoryBound:
    def test_open_entries_bounded_by_object_count(self):
        mon = DriftMonitor(10.0, window_size=1000)
        n_objects = 50
        rng = np.random.default_rng(0)
        for i in range(100_000):
            mon.observe(i, int(rng.integers(0, n_objects)), True)
            assert len(mon._open) <= n_objects
            assert len(mon._pending) <= mon.horizon + 1


class TestAlarm:
    @staticmethod
    def collapse_monitor(**kwargs):
        """600 one-time requests: first 300 denied (right), last 300
        admitted (wrong) — accuracy collapses from 1.0 to 0.0."""
        mon = DriftMonitor(5.0, window_size=100, **kwargs)
        for i in range(600):
            mon.observe(i, i, denied=i < 300)
        mon.finish()
        return mon

    def test_alarm_fires_on_accuracy_collapse(self):
        fired = []
        mon = self.collapse_monitor(
            alarm_threshold=0.5,
            on_alarm=[lambda m, w, acc: fired.append((w, acc))],
        )
        assert mon.alarms == 3
        assert fired == [(3, 0.0), (4, 0.0), (5, 0.0)]
        assert mon.last_alarm == (5, 0.0)
        assert mon.worst_accuracy == 0.0
        assert mon.last_accuracy == 0.0

    def test_no_alarm_without_threshold(self):
        mon = self.collapse_monitor()
        assert mon.alarms == 0
        assert mon.worst_accuracy == 0.0  # scoring still ran

    def test_gauges_and_counters_exported(self):
        reg = MetricsRegistry()
        mon = self.collapse_monitor(alarm_threshold=0.5, registry=reg)
        fam = reg.get("repro_admission_accuracy")
        assert fam.labels(window="0").value == 1.0
        assert fam.labels(window="5").value == 0.0
        assert reg.get("repro_admission_accuracy_last").value == 0.0
        assert reg.get("repro_admission_accuracy_worst").value == 0.0
        assert reg.get("repro_drift_alarms_total").value == 3
        assert reg.get("repro_matured_verdicts_total").value == mon.matured

    def test_alarm_threshold_validated(self):
        with pytest.raises(ValueError):
            DriftMonitor(5.0, alarm_threshold=1.5)
        with pytest.raises(ValueError):
            DriftMonitor(0.0)
        with pytest.raises(ValueError):
            DriftMonitor(5.0, window_size=0)


class TestSnapshotReset:
    def test_snapshot_jsonable(self):
        import json

        mon = TestAlarm.collapse_monitor(alarm_threshold=0.5)
        snap = json.loads(json.dumps(mon.snapshot()))
        assert snap["observed"] == 600
        assert snap["alarms"] == 3
        assert snap["last_alarm"] == {"window": 5, "accuracy": 0.0}
        assert snap["m_threshold"] == 5.0

    def test_reset_clears_state(self):
        mon = TestAlarm.collapse_monitor(alarm_threshold=0.5)
        mon.reset()
        assert mon.matured == 0 and mon.alarms == 0
        assert mon.snapshot()["observed"] == 0
        # Usable again after reset, from position 0.
        mon.observe(0, 1, True)
        assert mon.snapshot()["observed"] == 1
