"""Span tracer unit tests: recording, tracks, ring bounds, the disabled
no-op path, asyncio contextvar propagation, and Chrome-trace export."""

import asyncio
import json

import pytest

from repro.obs.spans import (
    NULL_SPAN,
    NULL_TRACER,
    Tracer,
    chrome_trace,
    validate_chrome_trace,
)


def fake_clock(start=1_000):
    """Deterministic ns clock: +1000 ns per read."""
    state = {"t": start}

    def clock():
        state["t"] += 1_000
        return state["t"]

    return clock


class TestRecording:
    def test_span_records_name_cat_args_and_interval(self):
        tr = Tracer(clock=fake_clock())
        with tr.span("work", "test", n=3):
            pass
        (ev,) = tr.events()
        assert ev["name"] == "work"
        assert ev["cat"] == "test"
        assert ev["args"] == {"n": 3}
        assert ev["end_ns"] > ev["start_ns"]

    def test_annotate_updates_args_mid_span(self):
        tr = Tracer()
        with tr.span("work", "test", a=1) as sp:
            sp.annotate(b=2, a=9)
        (ev,) = tr.events()
        assert ev["args"] == {"a": 9, "b": 2}

    def test_start_ns_backdates_the_span(self):
        tr = Tracer(clock=fake_clock(start=50_000))
        with tr.span("late", "test", start_ns=7):
            pass
        (ev,) = tr.events()
        assert ev["start_ns"] == 7
        assert ev["end_ns"] >= 50_000

    def test_add_records_pre_measured_interval(self):
        tr = Tracer()
        tr.add("queue_wait", "server", 100, 400, args={"k": 1})
        (ev,) = tr.events()
        assert (ev["start_ns"], ev["end_ns"]) == (100, 400)
        assert ev["args"] == {"k": 1}

    def test_exception_still_records_and_propagates(self):
        tr = Tracer()
        with pytest.raises(RuntimeError):
            with tr.span("boom", "test"):
                raise RuntimeError("x")
        assert len(tr) == 1
        assert tr.current_track() is None  # token was reset


class TestTracks:
    def test_children_share_the_root_track(self):
        tr = Tracer()
        with tr.span("root", "test"):
            with tr.span("child", "test"):
                pass
        child, root = tr.events()
        assert child["name"] == "child"
        assert child["track"] == root["track"]

    def test_independent_roots_get_distinct_tracks(self):
        tr = Tracer()
        with tr.span("a", "test"):
            pass
        with tr.span("b", "test"):
            pass
        a, b = tr.events()
        assert a["track"] != b["track"]

    def test_use_track_pins_adds_and_spans(self):
        tr = Tracer()
        with tr.use_track() as track:
            tr.add("manual", "test", 1, 2)
            with tr.span("nested", "test"):
                pass
        manual, nested = tr.events()
        assert manual["track"] == nested["track"] == track

    def test_add_outside_any_span_roots_a_new_track(self):
        tr = Tracer()
        tr.add("a", "test", 1, 2)
        tr.add("b", "test", 3, 4)
        a, b = tr.events()
        assert a["track"] != b["track"]

    def test_asyncio_tasks_inherit_then_isolate(self):
        """A task created inside a span inherits its track; the span
        exiting in the parent context cannot disturb the task's copy."""
        tr = Tracer()

        async def child():
            await asyncio.sleep(0)
            with tr.span("in_task", "test"):
                await asyncio.sleep(0)

        async def main():
            with tr.span("root", "test"):
                task = asyncio.ensure_future(child())
            # Root exited; the task still carries the inherited track.
            await task
            with tr.span("sibling", "test"):
                pass

        asyncio.run(main())
        by_name = {e["name"]: e for e in tr.events()}
        assert by_name["in_task"]["track"] == by_name["root"]["track"]
        assert by_name["sibling"]["track"] != by_name["root"]["track"]


class TestRingBounds:
    def test_ring_keeps_newest_and_counts_drops(self):
        tr = Tracer(capacity=3)
        for i in range(5):
            tr.add(f"s{i}", "test", i, i + 1)
        assert len(tr) == 3
        assert tr.recorded == 5
        assert tr.dropped == 2
        assert [e["name"] for e in tr.events()] == ["s2", "s3", "s4"]

    def test_events_limit_returns_newest_oldest_first(self):
        tr = Tracer()
        for i in range(4):
            tr.add(f"s{i}", "test", i, i + 1)
        assert [e["name"] for e in tr.events(limit=2)] == ["s2", "s3"]

    def test_events_clear_drains_buffer_keeps_recorded(self):
        tr = Tracer()
        tr.add("s", "test", 0, 1)
        assert tr.events(clear=True)
        assert len(tr) == 0
        assert tr.recorded == 1

    def test_clear_resets_everything(self):
        tr = Tracer(capacity=1)
        tr.add("a", "test", 0, 1)
        tr.add("b", "test", 1, 2)
        tr.clear()
        assert len(tr) == 0 and tr.recorded == 0 and tr.dropped == 0

    def test_capacity_validation(self):
        with pytest.raises(ValueError, match="capacity"):
            Tracer(capacity=0)


class TestDisabledNoOp:
    def test_span_returns_the_shared_null_singleton(self):
        tr = Tracer(enabled=False)
        assert tr.span("x", "test", a=1) is NULL_SPAN
        assert NULL_TRACER.span("y") is NULL_SPAN

    def test_nothing_is_recorded_when_disabled(self):
        tr = Tracer(enabled=False)
        with tr.span("x", "test"):
            pass
        tr.add("y", "test", 0, 1)
        assert len(tr) == 0 and tr.recorded == 0

    def test_null_span_api_is_inert(self):
        with NULL_TRACER.span("x") as sp:
            assert sp.annotate(a=1) is sp
            assert sp.track is None
        with NULL_TRACER.use_track():
            pass

    def test_empty_tracer_is_truthy(self):
        # ``tracer or NULL_TRACER`` must never drop a real-but-empty
        # tracer; truthiness is identity, not buffer occupancy.
        tr = Tracer()
        assert bool(tr) is True
        assert (tr or NULL_TRACER) is tr

    def test_disabled_clock_never_read(self):
        def forbidden():
            raise AssertionError("clock read on the disabled path")

        tr = Tracer(enabled=False, clock=forbidden)
        with tr.span("x", "test"):
            pass


class TestChromeExport:
    def test_to_chrome_rebases_and_scales_to_us(self):
        tr = Tracer()
        tr.add("a", "test", 5_000, 8_000, track=1)
        tr.add("b", "test", 9_000, 9_500, track=1)
        doc = tr.to_chrome()
        meta, a, b = doc["traceEvents"]
        assert meta["ph"] == "M" and meta["name"] == "process_name"
        assert a["ts"] == 0.0 and a["dur"] == 3.0      # µs, rebased
        assert b["ts"] == 4.0 and b["dur"] == 0.5
        assert doc["displayTimeUnit"] == "ms"

    def test_export_is_json_serialisable_and_validates(self):
        tr = Tracer()
        with tr.span("root", "test", n=1):
            with tr.span("child", "test"):
                pass
        doc = json.loads(json.dumps(tr.to_chrome(process_name="unit")))
        assert validate_chrome_trace(doc) == 2

    def test_empty_tracer_exports_metadata_only(self):
        doc = chrome_trace([])
        assert validate_chrome_trace(doc) == 0
        assert len(doc["traceEvents"]) == 1

    @pytest.mark.parametrize(
        "doc, message",
        [
            ([], "JSON object"),
            ({"traceEvents": {}}, "must be a list"),
            ({"traceEvents": ["x"]}, "not an object"),
            ({"traceEvents": [{"ph": "X"}]}, "string 'name'"),
            ({"traceEvents": [{"name": "a"}]}, "string 'ph'"),
            (
                {"traceEvents": [{"name": "a", "ph": "X", "ts": -1.0}]},
                "'ts' must be a number >= 0",
            ),
            (
                {
                    "traceEvents": [
                        {"name": "a", "ph": "X", "ts": 0, "dur": 1,
                         "pid": 1, "tid": "t"}
                    ]
                },
                "'tid' must be an integer",
            ),
            (
                {
                    "traceEvents": [
                        {"name": "a", "ph": "X", "ts": 0, "dur": 1,
                         "pid": 1, "tid": 1, "args": []}
                    ]
                },
                "'args' must be an object",
            ),
        ],
    )
    def test_validate_rejects_malformed_documents(self, doc, message):
        with pytest.raises(ValueError, match=message):
            validate_chrome_trace(doc)

    def test_validate_ignores_non_x_phases(self):
        doc = {
            "traceEvents": [
                {"name": "process_name", "ph": "M", "args": {"name": "p"}},
                {"name": "counter", "ph": "C"},
            ]
        }
        assert validate_chrome_trace(doc) == 0
