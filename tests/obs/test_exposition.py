"""Prometheus text-exposition golden test plus edge-rendering checks.

The rendered output is compared byte-for-byte against a committed golden
file — any formatting drift (bucket ordering, label escaping, integer
formatting) shows up as a readable diff rather than a scraper failure.
The edge tests pin the rendering corners a golden file can miss: the
final ``+Inf`` cumulative bucket, ``observe_many`` count/sum identity
with looped ``observe``, and label-value escaping round-tripping.
"""

import math
import re
from pathlib import Path

from repro.obs.registry import Histogram, MetricsRegistry, latency_buckets

GOLDEN = Path(__file__).with_name("golden_metrics.prom")


def build_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    requests = reg.counter(
        "repro_requests_total", "Requests served by result.", ("result",)
    )
    requests.labels(result="hit").inc(1200)
    requests.labels(result="miss").inc(345)
    reg.gauge("repro_trace_position", "Replay cursor.").set(1545)
    reg.gauge("repro_temperature", "A float gauge.").set(36.75)
    h = reg.histogram(
        "repro_service_latency_seconds",
        "Service latency.",
        buckets=(0.001, 0.01, 0.1),
    )
    h.observe(0.0005)
    h.observe(0.005)
    h.observe(0.05)
    h.observe(5.0)
    labelled = reg.histogram(
        "repro_classify_seconds", "t_classify.", ("model",), buckets=(1e-6, 1e-5)
    )
    labelled.labels(model="v1").observe(2e-6)
    escape = reg.counter(
        "repro_weird_labels_total", 'Help with \\ and\nnewline.', ("path",)
    )
    escape.labels(path='/a"b\\c\nd').inc()
    return reg


def test_exposition_matches_golden_file():
    rendered = build_registry().render_prometheus()
    assert rendered == GOLDEN.read_text(encoding="utf-8")


def test_exposition_ends_with_newline():
    assert build_registry().render_prometheus().endswith("\n")


class TestLatencyBucketEdges:
    """Rendering corners of ``latency_buckets``-backed histograms."""

    def test_final_inf_bucket_is_cumulative_total(self):
        reg = MetricsRegistry()
        h = reg.histogram(
            "repro_lat_seconds", "Latency.", buckets=latency_buckets()
        )
        # One observation per decade plus two far beyond the last bound
        # (~8.4 s), which only the implicit +Inf bucket can hold.
        for v in (5e-7, 1e-4, 0.02, 1.5, 100.0, 1e6):
            h.observe(v)
        rendered = reg.render_prometheus()
        inf_lines = [
            line for line in rendered.splitlines() if 'le="+Inf"' in line
        ]
        assert inf_lines == ['repro_lat_seconds_bucket{le="+Inf"} 6']
        assert "repro_lat_seconds_count 6" in rendered
        # The +Inf bucket line must come last of the bucket lines, right
        # before the sum/count samples.
        lines = rendered.splitlines()
        bucket_lines = [
            i for i, line in enumerate(lines)
            if line.startswith("repro_lat_seconds_bucket")
        ]
        assert lines[bucket_lines[-1]] == inf_lines[0]
        assert len(bucket_lines) == len(latency_buckets()) + 1

    def test_cumulative_counts_never_decrease(self):
        h = Histogram(latency_buckets())
        for v in (1e-6, 2e-6, 1e-3, 0.5, 50.0):
            h.observe(v)
        pairs = h.cumulative()
        counts = [c for _, c in pairs]
        assert counts == sorted(counts)
        assert pairs[-1][0] == math.inf
        assert pairs[-1][1] == h.count == 5

    def test_observe_many_matches_looped_observe(self):
        loop = Histogram(latency_buckets())
        bulk = Histogram(latency_buckets())
        samples = [(3e-6, 7), (0.004, 1000), (9.0, 3)]
        for value, n in samples:
            bulk.observe_many(value, n)
            for _ in range(n):
                loop.observe(value)
        assert bulk.count == loop.count == sum(n for _, n in samples)
        assert bulk.counts == loop.counts
        assert math.isclose(bulk.sum, loop.sum, rel_tol=1e-12)

    def test_observe_many_zero_is_a_noop(self):
        h = Histogram(latency_buckets())
        h.observe_many(0.5, 0)
        assert h.count == 0 and h.sum == 0.0


class TestLabelEscapingRoundTrip:
    def _unescape(self, value: str) -> str:
        out = []
        it = iter(value)
        for ch in it:
            if ch == "\\":
                nxt = next(it)
                out.append({"\\": "\\", '"': '"', "n": "\n"}[nxt])
            else:
                out.append(ch)
        return "".join(out)

    def test_rendered_label_value_round_trips(self):
        nasty = 'a\\b"c\nd\\\\e\\"f'
        reg = MetricsRegistry()
        reg.counter("repro_rt_total", "Round trip.", ("path",)).labels(
            path=nasty
        ).inc()
        rendered = reg.render_prometheus()
        (line,) = [
            l for l in rendered.splitlines()
            if l.startswith("repro_rt_total{")
        ]
        # The sample must stay on one physical line (the newline in the
        # value is escaped) and parse back to the original string.
        match = re.fullmatch(r'repro_rt_total\{path="(.*)"\} 1', line)
        assert match is not None
        assert self._unescape(match.group(1)) == nasty
