"""Prometheus text-exposition golden test.

The rendered output is compared byte-for-byte against a committed golden
file — any formatting drift (bucket ordering, label escaping, integer
formatting) shows up as a readable diff rather than a scraper failure.
"""

from pathlib import Path

from repro.obs.registry import MetricsRegistry

GOLDEN = Path(__file__).with_name("golden_metrics.prom")


def build_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    requests = reg.counter(
        "repro_requests_total", "Requests served by result.", ("result",)
    )
    requests.labels(result="hit").inc(1200)
    requests.labels(result="miss").inc(345)
    reg.gauge("repro_trace_position", "Replay cursor.").set(1545)
    reg.gauge("repro_temperature", "A float gauge.").set(36.75)
    h = reg.histogram(
        "repro_service_latency_seconds",
        "Service latency.",
        buckets=(0.001, 0.01, 0.1),
    )
    h.observe(0.0005)
    h.observe(0.005)
    h.observe(0.05)
    h.observe(5.0)
    labelled = reg.histogram(
        "repro_classify_seconds", "t_classify.", ("model",), buckets=(1e-6, 1e-5)
    )
    labelled.labels(model="v1").observe(2e-6)
    escape = reg.counter(
        "repro_weird_labels_total", 'Help with \\ and\nnewline.', ("path",)
    )
    escape.labels(path='/a"b\\c\nd').inc()
    return reg


def test_exposition_matches_golden_file():
    rendered = build_registry().render_prometheus()
    assert rendered == GOLDEN.read_text(encoding="utf-8")


def test_exposition_ends_with_newline():
    assert build_registry().render_prometheus().endswith("\n")
