"""WriteLedger unit tests: cause accounting, model labels, avoided
writes, checkpoint/delta phase math, and Prometheus mirroring."""

import pytest

from repro.obs.ledger import CAUSES, WriteLedger
from repro.obs.registry import MetricsRegistry


class TestRecording:
    def test_writes_accumulate_by_cause_and_model(self):
        led = WriteLedger()
        led.record_write("admission_accept", 100, model="v1")
        led.record_write("admission_accept", 50, model="v2")
        led.record_write("replica_fill", 10, model="v1", n=3)
        assert led.total_writes == 5
        assert led.total_bytes == 160
        assert led.writes_by_cause() == {
            "admission_accept": 2,
            "replica_fill": 3,
            "rewarm_after_restart": 0,
            "flood": 0,
            "eviction_churn": 0,
            "staging_promote": 0,
        }
        assert led.writes_by_model() == {"v1": 4, "v2": 1}

    def test_unknown_cause_rejected(self):
        with pytest.raises(ValueError, match="unknown write cause"):
            WriteLedger().record_write("cosmic_ray", 1)

    def test_default_model_label(self):
        led = WriteLedger(default_model="oracle")
        led.record_write("flood", 7)
        led.record_avoided(3)
        assert led.writes_by_model() == {"oracle": 1}
        assert led.avoided_by_model() == {"oracle": 1}

    def test_avoided_writes_carry_bytes(self):
        led = WriteLedger()
        led.record_avoided(1_000, model="v1")
        led.record_avoided(500, model="v1", n=2)
        assert led.avoided_writes == 3
        assert led.avoided_bytes == 1_500

    def test_cause_order_is_stable(self):
        # Report byte-identity depends on this exact order.
        assert CAUSES == (
            "admission_accept", "replica_fill", "rewarm_after_restart",
            "flood", "eviction_churn", "staging_promote",
        )
        assert list(WriteLedger().writes_by_cause()) == list(CAUSES)


class TestSnapshotAndDelta:
    def test_snapshot_is_json_ready_and_complete(self):
        led = WriteLedger()
        led.record_write("flood", 10, model="b")
        led.record_write("admission_accept", 5, model="a")
        led.record_avoided(2, model="b")
        snap = led.snapshot()
        assert snap["total_writes"] == 2
        assert snap["total_bytes"] == 15
        assert snap["writes_by_cause"]["flood"] == 1
        assert snap["bytes_by_cause"]["admission_accept"] == 5
        assert list(snap["writes_by_model"]) == ["a", "b"]  # sorted
        assert snap["avoided_writes"] == 1
        assert snap["avoided_bytes"] == 2

    def test_checkpoint_delta_isolates_a_phase(self):
        led = WriteLedger()
        led.record_write("admission_accept", 10)
        mark = led.checkpoint()
        led.record_write("admission_accept", 10)
        led.record_write("rewarm_after_restart", 4, n=2)
        led.record_avoided(6, n=3)
        d = led.delta(mark)
        assert d["writes_by_cause"] == {
            "admission_accept": 1,
            "replica_fill": 0,
            "rewarm_after_restart": 2,
            "flood": 0,
            "eviction_churn": 0,
            "staging_promote": 0,
        }
        assert d["avoided_writes"] == 3
        assert d["avoided_bytes"] == 6

    def test_clear(self):
        led = WriteLedger()
        led.record_write("flood", 1)
        led.record_avoided(1)
        led.clear()
        assert led.total_writes == 0
        assert led.avoided_writes == 0
        assert led.snapshot()["total_bytes"] == 0


class TestRegistryMirror:
    def test_counters_mirror_every_recording(self):
        reg = MetricsRegistry()
        led = WriteLedger(registry=reg)
        led.record_write("replica_fill", 128, model="v3", n=2)
        led.record_avoided(64, model="v3")
        writes = reg.get("repro_ledger_writes_total")
        assert writes.labels(cause="replica_fill", model="v3").value == 2
        wbytes = reg.get("repro_ledger_write_bytes_total")
        assert wbytes.labels(cause="replica_fill", model="v3").value == 128
        avoided = reg.get("repro_ledger_avoided_writes_total")
        assert avoided.labels(model="v3").value == 1
        abytes = reg.get("repro_ledger_avoided_bytes_total")
        assert abytes.labels(model="v3").value == 64

    def test_registry_free_ledger_never_touches_metrics(self):
        led = WriteLedger()
        led.record_write("flood", 1)  # must not raise
        assert led._m_writes is None
