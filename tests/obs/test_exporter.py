"""HTTP exporter endpoints exercised with a raw asyncio client.

No HTTP library on either side: the client below writes request bytes and
parses the status line / headers by hand, which doubles as a check that
the exporter emits well-formed HTTP/1.1.
"""

import asyncio
import json


from repro.obs.exporter import MetricsExporter
from repro.obs.registry import MetricsRegistry


async def http_get(port, target, method="GET", raw_request=None):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        request = (
            raw_request
            if raw_request is not None
            else f"{method} {target} HTTP/1.1\r\nHost: x\r\n\r\n".encode()
        )
        writer.write(request)
        await writer.drain()
        raw = await reader.read()
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
    head, _, body = raw.partition(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    status = int(lines[0].split()[1])
    headers = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    return status, headers, body


def make_exporter(statsz=None, healthz=None):
    reg = MetricsRegistry()
    reg.counter("demo_total", "A demo counter.").inc(7)
    return MetricsExporter(reg, port=0, statsz=statsz, healthz=healthz)


def run(coro):
    return asyncio.run(coro)


class TestEndpoints:
    def test_metrics(self):
        async def go():
            exp = make_exporter()
            await exp.start()
            try:
                return await http_get(exp.port, "/metrics")
            finally:
                await exp.stop()

        status, headers, body = run(go())
        assert status == 200
        assert headers["content-type"].startswith("text/plain; version=0.0.4")
        assert int(headers["content-length"]) == len(body)
        assert b"demo_total 7\n" in body
        assert b"# TYPE demo_total counter" in body

    def test_healthz_default_and_custom(self):
        async def go():
            exp = make_exporter(healthz=lambda: ({"status": "draining"}, 503))
            await exp.start()
            try:
                return await http_get(exp.port, "/healthz")
            finally:
                await exp.stop()

        status, _, body = run(go())
        assert status == 503
        assert json.loads(body) == {"status": "draining"}

        async def go_default():
            exp = make_exporter()
            await exp.start()
            try:
                return await http_get(exp.port, "/healthz")
            finally:
                await exp.stop()

        status, _, body = run(go_default())
        assert status == 200
        assert json.loads(body) == {"status": "ok"}

    def test_statsz(self):
        async def go():
            exp = make_exporter(statsz=lambda: {"processed": 42, "nested": {"a": 1}})
            await exp.start()
            try:
                return await http_get(exp.port, "/statsz")
            finally:
                await exp.stop()

        status, headers, body = run(go())
        assert status == 200
        assert headers["content-type"].startswith("application/json")
        assert json.loads(body) == {"processed": 42, "nested": {"a": 1}}

    def test_statsz_missing_is_404(self):
        async def go():
            exp = make_exporter()
            await exp.start()
            try:
                return await http_get(exp.port, "/statsz")
            finally:
                await exp.stop()

        status, _, _ = run(go())
        assert status == 404

    def test_unknown_path_404(self):
        async def go():
            exp = make_exporter()
            await exp.start()
            try:
                return await http_get(exp.port, "/nope")
            finally:
                await exp.stop()

        status, _, body = run(go())
        assert status == 404
        assert json.loads(body) == {"error": "not found"}

    def test_post_rejected_405(self):
        async def go():
            exp = make_exporter()
            await exp.start()
            try:
                return await http_get(exp.port, "/metrics", method="POST")
            finally:
                await exp.stop()

        status, _, _ = run(go())
        assert status == 405

    def test_head_sends_headers_only(self):
        async def go():
            exp = make_exporter()
            await exp.start()
            try:
                return await http_get(exp.port, "/metrics", method="HEAD")
            finally:
                await exp.stop()

        status, headers, body = run(go())
        assert status == 200
        assert body == b""
        assert int(headers["content-length"]) > 0

    def test_malformed_request_line_400(self):
        async def go():
            exp = make_exporter()
            await exp.start()
            try:
                return await http_get(
                    exp.port, "", raw_request=b"garbage\r\n\r\n"
                )
            finally:
                await exp.stop()

        status, _, _ = run(go())
        assert status == 400

    def test_query_string_ignored(self):
        async def go():
            exp = make_exporter()
            await exp.start()
            try:
                return await http_get(exp.port, "/metrics?format=text")
            finally:
                await exp.stop()

        status, _, body = run(go())
        assert status == 200
        assert b"demo_total" in body

    def test_failing_handler_is_500_not_crash(self):
        def boom():
            raise RuntimeError("kaput")

        async def go():
            exp = make_exporter(statsz=boom)
            await exp.start()
            try:
                first = await http_get(exp.port, "/statsz")
                second = await http_get(exp.port, "/metrics")
                return first, second
            finally:
                await exp.stop()

        (status, _, body), (status2, _, _) = run(go())
        assert status == 500
        assert json.loads(body) == {"error": "internal error"}
        assert status2 == 200  # server survived

    def test_self_metric_counts_requests(self):
        async def go():
            exp = make_exporter()
            await exp.start()
            try:
                await http_get(exp.port, "/metrics")
                await http_get(exp.port, "/nope")
                return exp.registry.get("repro_http_requests_total")
            finally:
                await exp.stop()

        fam = run(go())
        assert fam.labels(path="/metrics", code="200").value == 1
        assert fam.labels(path="/nope", code="404").value == 1

    def test_unknown_route_404_exact_body_and_type(self):
        async def go():
            exp = make_exporter()
            await exp.start()
            try:
                return await http_get(exp.port, "/spans")
            finally:
                await exp.stop()

        status, headers, body = run(go())
        assert status == 404
        assert headers["content-type"] == "application/json; charset=utf-8"
        assert body == b'{"error":"not found"}'
        assert int(headers["content-length"]) == len(body)

    def test_malformed_request_line_400_body(self):
        async def go():
            exp = make_exporter()
            await exp.start()
            try:
                # Three tokens required; one word is not a request line.
                return await http_get(
                    exp.port, "", raw_request=b"garbage\r\n\r\n"
                )
            finally:
                await exp.stop()

        status, _, body = run(go())
        assert status == 400
        assert json.loads(body) == {"error": "bad request"}

    def test_statsz_exact_content_type(self):
        async def go():
            exp = make_exporter(statsz=lambda: {"ok": True})
            await exp.start()
            try:
                return await http_get(exp.port, "/statsz")
            finally:
                await exp.stop()

        status, headers, body = run(go())
        assert status == 200
        assert headers["content-type"] == "application/json; charset=utf-8"
        assert json.loads(body) == {"ok": True}

    def test_port_zero_picks_free_port(self):
        async def go():
            exp = make_exporter()
            assert exp.port == 0
            await exp.start()
            port = exp.port
            await exp.stop()
            return port

        assert run(go()) > 0
