"""Shared fixtures: small, deterministic datasets and traces."""

import numpy as np
import pytest


@pytest.fixture(scope="session")
def binary_dataset():
    """A separable-with-noise binary problem (features, labels)."""
    rng = np.random.default_rng(42)
    n = 1200
    X = rng.normal(size=(n, 4))
    y = ((X[:, 0] + 0.5 * X[:, 1] > 0) | (X[:, 2] > 1.5)).astype(int)
    flip = rng.random(n) < 0.05
    y = y ^ flip
    return X, y


@pytest.fixture(scope="session")
def tiny_trace():
    """A small synthetic trace shared across core/cache tests."""
    from repro.trace.generator import WorkloadConfig, generate_trace

    return generate_trace(WorkloadConfig(n_objects=800, mean_accesses=4.0, seed=3))
