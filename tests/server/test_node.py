"""CacheNode state-machine tests: batch parity with the offline simulator."""

import numpy as np
import pytest

from repro.cache.base import CacheStats
from repro.server.node import CacheNode, NodeConfig, replay_offline


def drive(node: CacheNode, batch_sizes=(1,)) -> CacheStats:
    """Replay the node's whole trace in cycling batch sizes."""
    n = node.trace.n_accesses
    i = k = 0
    while i < n:
        step = min(batch_sizes[k % len(batch_sizes)], n - i)
        node.process_batch(list(range(i, i + step)))
        i += step
        k += 1
    return node.stats


def assert_stats_equal(a: CacheStats, b: CacheStats):
    for f in (
        "requests",
        "hits",
        "bytes_requested",
        "bytes_hit",
        "files_written",
        "bytes_written",
        "evictions",
        "admissions_denied",
    ):
        assert getattr(a, f) == getattr(b, f), f


CFG = NodeConfig(capacity_fraction=0.02)


class TestBatchParity:
    def test_classified_node_matches_offline_simulate(self, tiny_trace):
        node = CacheNode(tiny_trace, CFG)
        assert node.model is not None  # the interesting path
        drive(node, batch_sizes=(1, 7, 64, 256, 13))
        ref = replay_offline(tiny_trace, CFG)
        assert_stats_equal(node.stats, ref.stats)

    def test_unclassified_node_matches_offline_simulate(self, tiny_trace):
        cfg = NodeConfig(capacity_fraction=0.02, classifier=False)
        node = CacheNode(tiny_trace, cfg)
        drive(node, batch_sizes=(32,))
        ref = replay_offline(tiny_trace, cfg)
        assert_stats_equal(node.stats, ref.stats)

    def test_batch_size_invariance(self, tiny_trace):
        one = CacheNode(tiny_trace, CFG)
        drive(one, batch_sizes=(1,))
        big = CacheNode(tiny_trace, CFG)
        drive(big, batch_sizes=(256,))
        assert_stats_equal(one.stats, big.stats)
        assert one.rectified_admits == big.rectified_admits

    def test_plain_ssd_tier_without_dram(self, tiny_trace):
        cfg = NodeConfig(capacity_fraction=0.02, dram_fraction=0.0)
        node = CacheNode(tiny_trace, cfg)
        drive(node, batch_sizes=(50,))
        ref = replay_offline(tiny_trace, cfg)
        assert_stats_equal(node.stats, ref.stats)


class TestSequencing:
    def test_rejects_non_contiguous_batch(self, tiny_trace):
        node = CacheNode(tiny_trace, CFG)
        with pytest.raises(ValueError):
            node.process_batch([1, 2])  # must start at 0
        node.process_batch([0, 1])
        with pytest.raises(ValueError):
            node.process_batch([3])  # gap

    def test_responses_report_hit_and_admission(self, tiny_trace):
        node = CacheNode(tiny_trace, NodeConfig(capacity_fraction=0.02, classifier=False))
        out = node.process_batch(list(range(200)))
        assert [r["index"] for r in out] == list(range(200))
        assert all(r["ok"] for r in out)
        hits = sum(r["hit"] for r in out)
        assert hits == node.stats.hits
        assert sum(r["admitted"] for r in out) == node.stats.files_written


class TestTelemetry:
    def test_classify_times_cover_every_request(self, tiny_trace):
        node = CacheNode(tiny_trace, CFG)
        drive(node, batch_sizes=(64,))
        times = node.classify_times()
        assert times.shape[0] == tiny_trace.n_accesses
        assert (times > 0).all()

    def test_trace_clock_advances(self, tiny_trace):
        node = CacheNode(tiny_trace, CFG)
        assert node.trace_clock == 0.0
        node.process_batch(list(range(100)))
        assert node.trace_clock == pytest.approx(
            float(tiny_trace.timestamps[99])
        )

    def test_reset_clears_state_but_keeps_model(self, tiny_trace):
        node = CacheNode(tiny_trace, CFG)
        drive(node, batch_sizes=(128,))
        model, version = node.model, node.model_version
        node.reset()
        assert node.processed == 0
        assert node.stats.requests == 0
        assert not node.denied_mask.any()
        assert node.model is model and node.model_version == version
        # A reset node replays to the identical result.
        drive(node, batch_sizes=(128,))
        assert_stats_equal(node.stats, replay_offline(tiny_trace, CFG).stats)


class TestModelSwap:
    def test_install_model_bumps_version_and_applies_next_batch(self, tiny_trace):
        node = CacheNode(tiny_trace, CFG)
        node.process_batch(list(range(500)))
        v0 = node.model_version

        class DenyAll:
            def predict(self, X):
                return np.ones(X.shape[0], dtype=np.int64)

        assert node.install_model(DenyAll()) == v0 + 1
        before = node.stats.admissions_denied
        out = node.process_batch(list(range(500, 1000)))
        # Every miss is now predicted one-time: admissions happen only via
        # history-table rectification.
        denied = sum(r["denied"] for r in out)
        assert node.stats.admissions_denied == before + denied
        assert denied > 0


class TestConfigValidation:
    def test_capacity_requires_exactly_one_spec(self, tiny_trace):
        with pytest.raises(ValueError):
            NodeConfig(capacity_fraction=None, capacity_bytes=None).resolve_capacity(
                tiny_trace
            )
        with pytest.raises(ValueError):
            NodeConfig(
                capacity_fraction=0.1, capacity_bytes=100
            ).resolve_capacity(tiny_trace)

    def test_capacity_bytes_passthrough(self, tiny_trace):
        cfg = NodeConfig(capacity_fraction=None, capacity_bytes=12345)
        assert cfg.resolve_capacity(tiny_trace) == 12345
