"""Binary (v2) wire protocol: frame packing, the incremental decoder, and
end-to-end parity against the JSON path on a live server.

The load-bearing properties:

* every packed frame round-trips through :class:`FrameDecoder` regardless
  of how the byte stream is chunked (the decoder is incremental);
* the vectorised run parser (homogeneous bursts of BIN_GET / BIN_GET_OK)
  decodes bit-identically to the frame-at-a-time path;
* JSON and binary frames interleave freely on one connection, and a
  binary replay leaves the server in exactly the state a JSON replay
  does — same stats, same ledger.
"""

import asyncio
import struct

import pytest

from repro.server.loadgen import LoadgenConfig, run_loadgen
from repro.server.node import CacheNode, CacheNodeServer, NodeConfig
from repro.server.protocol import (
    BIN_GET,
    BIN_GET_ERR,
    BIN_GET_OK,
    BIN_MAGIC,
    BIN_NO_OID,
    FLAG_ADMITTED,
    FLAG_DENIED,
    FLAG_HIT,
    FrameDecoder,
    ProtocolError,
    encode_message,
    pack_get_error,
    pack_get_request,
    pack_get_response,
)

CFG = NodeConfig(capacity_fraction=0.02)


def decode_all(data: bytes) -> list:
    return FrameDecoder().feed(data)


class TestPacking:
    def test_get_request_round_trip(self):
        frames = decode_all(pack_get_request(7, 123, 4096))
        assert frames == [(BIN_GET, 7, 123, 4096)]

    def test_no_oid_sentinel_decodes_to_none(self):
        frames = decode_all(pack_get_request(7, None, 4096))
        assert frames == [(BIN_GET, 7, None, 4096)]

    def test_get_response_flags(self):
        data = pack_get_response(3, True, False, True)
        ((op, index, flags),) = decode_all(data)
        assert (op, index) == (BIN_GET_OK, 3)
        assert flags & FLAG_HIT
        assert flags & FLAG_DENIED
        assert not flags & FLAG_ADMITTED

    def test_get_error_carries_text(self):
        frames = decode_all(pack_get_error(9, "index already served"))
        assert frames == [(BIN_GET_ERR, 9, "index already served")]

    def test_frame_layout_is_documented_wire_format(self):
        data = pack_get_request(1, 2, 3)
        assert data[0] == BIN_MAGIC
        assert data[1] == BIN_GET
        assert struct.unpack(">H", data[2:4])[0] == 12
        assert struct.unpack(">III", data[4:16]) == (1, 2, 3)


class TestIncrementalDecoding:
    def test_byte_at_a_time_chunking(self):
        wire = (
            pack_get_request(0, 5, 100)
            + encode_message({"op": "PING"})
            + pack_get_response(0, True, False, False)
            + pack_get_error(1, "nope")
        )
        decoder = FrameDecoder()
        frames = []
        for i in range(len(wire)):
            frames += decoder.feed(wire[i : i + 1])
        assert frames == [
            (BIN_GET, 0, 5, 100),
            {"op": "PING"},
            (BIN_GET_OK, 0, FLAG_HIT),
            (BIN_GET_ERR, 1, "nope"),
        ]
        assert decoder.pending == 0

    def test_json_and_binary_interleave(self):
        wire = b"".join(
            pack_get_request(i, i, 10) + encode_message({"op": "GET", "index": i})
            for i in range(5)
        )
        frames = decode_all(wire)
        assert len(frames) == 10
        assert frames[0] == (BIN_GET, 0, 0, 10)
        assert frames[1] == {"op": "GET", "index": 0}

    def test_pending_counts_partial_frame(self):
        decoder = FrameDecoder()
        assert decoder.feed(pack_get_request(0, 1, 2)[:7]) == []
        assert decoder.pending == 7

    @pytest.mark.parametrize("n", [1, 15, 16, 17, 100, 1000])
    def test_homogeneous_get_runs_match_frame_at_a_time(self, n):
        """The vectorised run parser is an invisible optimisation."""
        wire = b"".join(
            pack_get_request(i, BIN_NO_OID - 1 if i % 3 else None, i * 7)
            for i in range(n)
        )
        bulk = decode_all(wire)
        one_at_a_time = []
        decoder = FrameDecoder()
        for i in range(0, len(wire), 16):
            one_at_a_time += decoder.feed(wire[i : i + 16])
        assert bulk == one_at_a_time
        assert len(bulk) == n

    @pytest.mark.parametrize("n", [1, 16, 500])
    def test_homogeneous_ok_runs_match_frame_at_a_time(self, n):
        wire = b"".join(
            pack_get_response(i, bool(i % 2), bool(i % 3), False)
            for i in range(n)
        )
        bulk = decode_all(wire)
        assert len(bulk) == n
        assert bulk == [
            (
                BIN_GET_OK,
                i,
                (FLAG_HIT if i % 2 else 0) | (FLAG_ADMITTED if i % 3 else 0),
            )
            for i in range(n)
        ]

    def test_run_interrupted_by_other_frame_kind(self):
        wire = (
            b"".join(pack_get_request(i, i, 1) for i in range(40))
            + encode_message({"op": "STATS"})
            + b"".join(pack_get_request(i, i, 1) for i in range(40, 80))
        )
        frames = decode_all(wire)
        assert len(frames) == 81
        assert frames[40] == {"op": "STATS"}
        assert frames[79] == (BIN_GET, 78, 78, 1)

    def test_run_with_trailing_partial_frame(self):
        wire = b"".join(pack_get_request(i, i, 1) for i in range(50))
        decoder = FrameDecoder()
        frames = decoder.feed(wire[:-5])
        assert len(frames) == 49
        assert decoder.pending == 11
        assert decoder.feed(wire[-5:]) == [(BIN_GET, 49, 49, 1)]


class TestMalformedStreams:
    def test_unknown_binary_op_raises(self):
        bad = bytes([BIN_MAGIC, 0x7F]) + struct.pack(">H", 0)
        with pytest.raises(ProtocolError, match="unknown binary op"):
            decode_all(bad)

    def test_bad_discriminator_byte_raises(self):
        with pytest.raises(ProtocolError, match="discriminator"):
            decode_all(b"\x01garbage")

    def test_missized_get_payload_raises_only_when_complete(self):
        bad = bytes([BIN_MAGIC, BIN_GET]) + struct.pack(">H", 5)
        decoder = FrameDecoder()
        # Header alone: the decoder waits — the frame may still be in
        # flight, and a short read must never kill the connection.
        assert decoder.feed(bad) == []
        with pytest.raises(ProtocolError, match="BIN_GET payload"):
            decoder.feed(b"\x00" * 5)

    def test_error_carries_frames_parsed_ahead_of_violation(self):
        wire = (
            pack_get_request(0, 1, 2)
            + pack_get_request(1, 2, 3)
            + b"\xff"
        )
        with pytest.raises(ProtocolError) as exc_info:
            decode_all(wire)
        assert exc_info.value.frames == [
            (BIN_GET, 0, 1, 2),
            (BIN_GET, 1, 2, 3),
        ]

    def test_oversized_json_frame_rejected(self):
        header = struct.pack(">I", 2**24 - 1)
        with pytest.raises(ProtocolError, match="exceeds limit"):
            decode_all(header)


async def start_server(trace):
    node = CacheNode(trace, CFG)
    server = CacheNodeServer(node, port=0)
    await server.start()
    return node, server


class TestBinaryServing:
    def test_binary_replay_matches_json_replay(self, tiny_trace):
        """Same trace, both protocols: bit-identical server outcome."""

        def replay(protocol):
            async def run():
                node, server = await start_server(tiny_trace)
                result = await run_loadgen(
                    tiny_trace,
                    LoadgenConfig(
                        port=server.port,
                        rate=50_000,
                        connections=6,
                        protocol=protocol,
                    ),
                )
                await server.shutdown()
                return node, result

            return asyncio.run(run())

        node_j, res_j = replay("json")
        node_b, res_b = replay("binary")
        assert res_b.errors == 0
        assert res_b.completed == tiny_trace.n_accesses
        assert res_b.hits == res_j.hits
        for key in ("hits", "files_written", "bytes_written", "evictions"):
            assert res_b.server_stats[key] == res_j.server_stats[key], key
        assert res_b.server_stats["ledger"] == res_j.server_stats["ledger"]
        assert (node_b.denied_mask == node_j.denied_mask).all()

    def test_pipelined_out_of_order_binary_gets(self, tiny_trace):
        """The sequencer reassembles binary GETs sent in reverse order."""

        async def run():
            node, server = await start_server(tiny_trace)
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            n = 64
            oids = tiny_trace.object_ids
            for i in reversed(range(n)):
                writer.write(pack_get_request(i, int(oids[i]), 1))
            await writer.drain()
            decoder = FrameDecoder()
            got = []
            while len(got) < n:
                data = await reader.read(65536)
                assert data, "server closed early"
                got += decoder.feed(data)
            writer.close()
            await writer.wait_closed()
            await server.shutdown()
            return got

        frames = asyncio.run(run())
        assert sorted(f[1] for f in frames) == list(range(64))
        assert all(f[0] == BIN_GET_OK for f in frames)

    def test_duplicate_binary_get_answered_with_error_frame(self, tiny_trace):
        async def run():
            node, server = await start_server(tiny_trace)
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            writer.write(pack_get_request(0, None, 1))
            await writer.drain()
            decoder = FrameDecoder()
            frames = []
            while not frames:
                frames += decoder.feed(await reader.read(65536))
            # Replay the already-served index: binary error frame back.
            writer.write(pack_get_request(0, None, 1))
            await writer.drain()
            errors = []
            while not errors:
                errors += decoder.feed(await reader.read(65536))
            writer.close()
            await writer.wait_closed()
            await server.shutdown()
            return frames[0], errors[0]

        ok, err = asyncio.run(run())
        assert ok[0] == BIN_GET_OK and ok[1] == 0
        assert err[0] == BIN_GET_ERR and err[1] == 0
        assert "already served" in err[2]

    def test_wrong_oid_rejected_over_binary(self, tiny_trace):
        async def run():
            node, server = await start_server(tiny_trace)
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            wrong = int(tiny_trace.object_ids[0]) + 10_000
            writer.write(pack_get_request(0, wrong, 1))
            await writer.drain()
            decoder = FrameDecoder()
            frames = []
            while not frames:
                frames += decoder.feed(await reader.read(65536))
            writer.close()
            await writer.wait_closed()
            await server.shutdown()
            return frames[0]

        frame = asyncio.run(run())
        assert frame[0] == BIN_GET_ERR
        assert "oid" in frame[2]

    def test_json_control_ops_interleave_with_binary_gets(self, tiny_trace):
        """STATS (JSON) between binary GETs on one connection works."""

        async def run():
            node, server = await start_server(tiny_trace)
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            writer.write(
                pack_get_request(0, None, 1)
                + encode_message({"op": "PING"})
                + pack_get_request(1, None, 1)
            )
            await writer.drain()
            decoder = FrameDecoder()
            frames = []
            while len(frames) < 3:
                frames += decoder.feed(await reader.read(65536))
            writer.close()
            await writer.wait_closed()
            await server.shutdown()
            return frames

        frames = asyncio.run(run())
        kinds = [f if isinstance(f, dict) else f[0] for f in frames]
        assert {"op": "PING", "ok": True} in frames
        assert kinds.count(BIN_GET_OK) == 2
