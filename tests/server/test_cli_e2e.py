"""End-to-end acceptance: ``repro serve`` + ``repro loadgen`` over TCP.

A ~10k-request synthetic trace is saved, served by a real ``python -m
repro serve`` subprocess, replayed by the loadgen CLI, and the server's
reported file hit rate / SSD write count are compared **exactly** against
the offline ``simulate()`` result on the identical trace and admission
stack (``replay_offline``).
"""

import asyncio
import os
import re
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cli import main
from repro.server.loadgen import fetch_stats
from repro.server.node import NodeConfig, replay_offline
from repro.trace.io import load_trace

SRC = str(Path(__file__).resolve().parents[2] / "src")


@pytest.fixture(scope="module")
def trace_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("e2e") / "trace.npz"
    # ~10k requests: 2500 objects × ≈4 accesses/object.
    assert main(["generate", str(path), "--objects", "2500", "--seed", "7"]) == 0
    return path


def spawn_server(trace_file, *extra) -> tuple[subprocess.Popen, int, str]:
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = SRC + (os.pathsep + existing if existing else "")
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--trace",
            str(trace_file),
            "--port",
            "0",
            *extra,
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    # The ready line is a log record now, so other startup logs may precede
    # it; scan until it appears (EOF means the server died at startup).
    seen = []
    while True:
        line = proc.stdout.readline()
        if not line:
            raise AssertionError(f"no ready line from server; output: {seen!r}")
        seen.append(line)
        match = re.search(r"listening on [\w.]+:(\d+)", line)
        if match and "metrics exporter" not in line:
            return proc, int(match.group(1)), line


def test_serve_loadgen_matches_offline_simulate(trace_file, capsys):
    trace = load_trace(trace_file)
    assert trace.n_accesses >= 9_000

    proc, port, _ = spawn_server(trace_file)
    try:
        rc = main(
            [
                "loadgen",
                "--trace",
                str(trace_file),
                "--port",
                str(port),
                "--rate",
                "30000",
                "--connections",
                "4",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "throughput" in out and "p99" in out

        snap = asyncio.run(fetch_stats("127.0.0.1", port))
    finally:
        proc.send_signal(signal.SIGTERM)
        stdout, _ = proc.communicate(timeout=30)

    # Graceful SIGTERM drain: exit 0 and a final metrics table.
    assert proc.returncode == 0
    assert "file hit rate" in stdout

    # The served replay must agree exactly with the offline simulation of
    # the identical trace + admission stack (CLI serve defaults, seed 0).
    ref = replay_offline(trace, NodeConfig(capacity_fraction=0.01, seed=0))
    assert snap["requests"] == trace.n_accesses
    assert snap["hits"] == ref.stats.hits
    assert snap["hit_rate"] == pytest.approx(ref.stats.hit_rate)
    assert snap["files_written"] == ref.stats.files_written
    assert snap["bytes_written"] == ref.stats.bytes_written
    assert snap["admissions_denied"] == ref.stats.admissions_denied


def test_serve_metrics_port_exposes_prometheus_and_health(trace_file):
    import json
    import urllib.request

    proc, port, ready_line = spawn_server(trace_file, "--metrics-port", "0")
    try:
        match = re.search(r"metrics on [\w.]+:(\d+)", ready_line)
        assert match, f"no metrics address in ready line: {ready_line!r}"
        mport = int(match.group(1))

        with urllib.request.urlopen(
            f"http://127.0.0.1:{mport}/metrics", timeout=10
        ) as resp:
            assert resp.status == 200
            assert resp.headers["Content-Type"].startswith(
                "text/plain; version=0.0.4"
            )
            text = resp.read().decode("utf-8")
        assert "# TYPE repro_requests_total counter" in text
        assert "# TYPE repro_service_latency_seconds histogram" in text
        assert "repro_trace_position 0" in text

        with urllib.request.urlopen(
            f"http://127.0.0.1:{mport}/healthz", timeout=10
        ) as resp:
            assert resp.status == 200
            health = json.loads(resp.read())
        assert health["status"] == "ok"

        with urllib.request.urlopen(
            f"http://127.0.0.1:{mport}/statsz", timeout=10
        ) as resp:
            statsz = json.loads(resp.read())
        assert statsz["processed"] == 0
        assert "metrics" in statsz
    finally:
        proc.send_signal(signal.SIGTERM)
        proc.communicate(timeout=30)
    assert proc.returncode == 0


def test_spans_dump_exports_chrome_trace(trace_file, tmp_path, capsys):
    import json

    from repro.obs import validate_chrome_trace

    lg_trace = tmp_path / "loadgen_trace.json"
    dump = tmp_path / "server_trace.json"
    proc, port, _ = spawn_server(trace_file, "--spans")
    try:
        rc = main(
            [
                "loadgen",
                "--trace", str(trace_file),
                "--port", str(port),
                "--rate", "30000",
                "--limit", "2000",
                "--chrome-trace", str(lg_trace),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "ui.perfetto.dev" in out

        # Client-side spans: per-connection send/recv plus the replay root.
        client_doc = json.loads(lg_trace.read_text())
        n_client = validate_chrome_trace(client_doc)
        assert n_client > 0
        client_names = {
            ev["name"] for ev in client_doc["traceEvents"]
            if ev.get("ph") == "X"
        }
        assert "send" in client_names and "recv" in client_names

        # Server-side spans drained over TCP by the spans-dump CLI.
        rc = main(["spans-dump", "--port", str(port), "--output", str(dump)])
        assert rc == 0
        doc = json.loads(dump.read_text())
        n_spans = validate_chrome_trace(doc)
        assert n_spans > 0
        names = {
            ev["name"] for ev in doc["traceEvents"] if ev.get("ph") == "X"
        }
        assert {"request_batch", "process_batch", "cache_ops"} <= names
    finally:
        proc.send_signal(signal.SIGTERM)
        proc.communicate(timeout=30)
    assert proc.returncode == 0


def test_spans_dump_reports_disabled_tracing(trace_file, capsys):
    proc, port, _ = spawn_server(trace_file)
    try:
        rc = main(["spans-dump", "--port", str(port)])
    finally:
        proc.send_signal(signal.SIGTERM)
        proc.communicate(timeout=30)
    assert rc == 1
    assert "span tracing disabled" in capsys.readouterr().err
