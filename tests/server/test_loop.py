"""uvloop opt-in plumbing: both sides of the optional-dependency fallback.

The wheel may or may not exist in any given environment, so these tests
fake both worlds through ``sys.modules`` and assert the contract the
serving stack relies on: a missing wheel (or an explicit opt-out) leaves
the stdlib policy untouched, an available wheel installs its policy, and
``reset_loop_policy`` always restores the default.
"""

import asyncio
import sys
import types

import pytest

from repro.server.loop import (
    install_uvloop,
    loop_label,
    reset_loop_policy,
    uvloop_available,
)


class FakePolicy(asyncio.DefaultEventLoopPolicy):
    """Stands in for uvloop.EventLoopPolicy (a real, usable policy)."""


@pytest.fixture
def fake_uvloop(monkeypatch):
    mod = types.ModuleType("uvloop")
    mod.EventLoopPolicy = FakePolicy
    monkeypatch.setitem(sys.modules, "uvloop", mod)
    yield mod
    asyncio.set_event_loop_policy(None)


@pytest.fixture
def no_uvloop(monkeypatch):
    monkeypatch.setitem(sys.modules, "uvloop", None)  # import -> ImportError
    yield
    asyncio.set_event_loop_policy(None)


class TestInstall:
    def test_installs_policy_when_wheel_present(self, fake_uvloop):
        assert uvloop_available()
        assert install_uvloop() is True
        assert isinstance(asyncio.get_event_loop_policy(), FakePolicy)

    def test_missing_wheel_falls_back_silently(self, no_uvloop):
        assert not uvloop_available()
        before = asyncio.get_event_loop_policy()
        assert install_uvloop() is False
        assert asyncio.get_event_loop_policy() is before

    def test_explicit_opt_out_never_imports(self, fake_uvloop):
        before = asyncio.get_event_loop_policy()
        assert install_uvloop(False) is False
        assert asyncio.get_event_loop_policy() is before

    def test_reset_restores_default_policy(self, fake_uvloop):
        install_uvloop()
        reset_loop_policy()
        policy = asyncio.get_event_loop_policy()
        assert not isinstance(policy, FakePolicy)

    def test_asyncio_run_still_works_after_fallback(self, no_uvloop):
        install_uvloop()

        async def ping():
            return "pong"

        assert asyncio.run(ping()) == "pong"


class TestLabel:
    def test_labels(self):
        assert loop_label(True) == "uvloop"
        assert loop_label(False) == "asyncio"
