"""Retrainer schedule/maturity tests and metrics-snapshot tests."""

import asyncio

import numpy as np
import pytest

from repro.cache.lru import LRUCache
from repro.cache.simulator import simulate
from repro.core.history_table import HistoryTable
from repro.core.online import OnlineClassifierAdmission, OnlineFeatureTracker
from repro.ml.tree import DecisionTreeClassifier
from repro.server.metrics import (
    admission_timing,
    format_metrics,
    metrics_snapshot,
    timing_stats,
)
from repro.server.node import CacheNode, NodeConfig
from repro.server.retrainer import Retrainer, RetrainerConfig

CFG = NodeConfig(capacity_fraction=0.02)


def make_node(trace, processed: int) -> CacheNode:
    node = CacheNode(trace, CFG)
    step = 256
    for lo in range(0, processed, step):
        node.process_batch(list(range(lo, min(lo + step, processed))))
    return node


class TestRetrainer:
    def test_requires_classifier_stack(self, tiny_trace):
        node = CacheNode(tiny_trace, NodeConfig(capacity_fraction=0.02, classifier=False))
        with pytest.raises(ValueError):
            Retrainer(node)

    def test_retrain_now_swaps_model_off_hot_path(self, tiny_trace):
        node = make_node(tiny_trace, 2000)
        retrainer = Retrainer(node, RetrainerConfig())
        old_model = node.model
        record = asyncio.run(retrainer.retrain_now())
        assert record["trained"]
        assert node.model is not old_model
        assert node.model_version == record["model_version"] == 2
        assert retrainer.retrains == 1

    def test_unmatured_prefix_skips_training(self, tiny_trace):
        # Fewer observed requests than the maturity horizon M: no sample
        # can be labelled yet, so the seed model must stay installed.
        node = make_node(tiny_trace, int(node_horizon(tiny_trace) // 2))
        retrainer = Retrainer(node)
        record = asyncio.run(retrainer.retrain_now())
        assert not record["trained"]
        assert node.model_version == 1

    def test_matured_labels_match_full_trace_oracle(self, tiny_trace):
        """The training rows selected at a cut use labels identical to the
        full-trace oracle labels at those positions."""
        from repro.core.labeling import one_time_labels

        node = make_node(tiny_trace, 2500)
        retrainer = Retrainer(node)
        rows = retrainer._select_training_rows(node.trace_clock)
        assert rows.shape[0] > 0
        m = node.criteria.m_threshold
        full = one_time_labels(tiny_trace.object_ids, m)
        prefix = one_time_labels(tiny_trace.object_ids[: node.processed], m)
        assert (prefix[rows] == full[rows]).all()

    def test_deploy_model_swaps_without_counting_as_retrain(self, tiny_trace):
        """The rolling-deploy hook: an externally trained model installs
        through the same atomic-swap path as a local retrain, is recorded
        in history with deployed=True, and stays out of ``retrains``."""
        from repro.core.features import PAPER_FEATURE_NAMES, extract_features
        from repro.core.labeling import one_time_labels

        node = make_node(tiny_trace, 2000)
        retrainer = Retrainer(node)
        seed_model = node.model
        fm = extract_features(tiny_trace).select(PAPER_FEATURE_NAMES)
        labels = one_time_labels(tiny_trace.object_ids, 100.0)
        fresh = DecisionTreeClassifier(max_splits=8, rng=1).fit(fm.X, labels)

        record = retrainer.deploy_model(fresh)
        assert node.model is fresh and node.model is not seed_model
        assert record["deployed"] and record["trained"]
        assert record["n_train"] == 0
        assert node.model_version == record["model_version"] == 2
        assert retrainer.history[-1] is record
        assert retrainer.retrains == 0  # external deploys excluded

        # A local retrain afterwards still counts — and bumps the version.
        trained = asyncio.run(retrainer.retrain_now())
        assert trained["trained"] and not trained.get("deployed")
        assert retrainer.retrains == 1
        assert node.model_version == 3

    def test_periodic_run_fires_at_boundaries(self, tiny_trace):
        async def run():
            node = make_node(tiny_trace, tiny_trace.n_accesses)
            retrainer = Retrainer(
                node, RetrainerConfig(period=86400.0, poll_seconds=0.01)
            )
            task = asyncio.ensure_future(retrainer.run())
            # trace_clock is already at end-of-trace: the poller should
            # sweep every elapsed boundary in one pass.
            for _ in range(200):
                await asyncio.sleep(0.01)
                days = node.trace_clock / 86400.0
                if len(retrainer.history) >= int(days):
                    break
            task.cancel()
            try:
                await task
            except asyncio.CancelledError:
                pass
            return node, retrainer

        node, retrainer = asyncio.run(run())
        assert len(retrainer.history) >= 8  # 9-day trace, 05:00 boundaries
        cuts = [rec["t_cut"] for rec in retrainer.history]
        assert cuts == sorted(cuts)
        assert all(abs((c - 5 * 3600.0) % 86400.0) < 1e-6 for c in cuts)
        assert node.model_version == 1 + retrainer.retrains


def node_horizon(trace) -> float:
    from repro.server.node import solve_node_criteria

    return solve_node_criteria(trace, CFG).m_threshold


class TestTimingStats:
    def test_empty(self):
        stats = timing_stats([])
        assert stats["count"] == 0 and stats["p99"] == 0.0

    def test_percentiles(self):
        arr = np.arange(1, 101) / 1e6
        stats = timing_stats(arr)
        assert stats["count"] == 100
        assert stats["mean"] == pytest.approx(arr.mean())
        assert stats["p50"] == pytest.approx(np.percentile(arr, 50))
        assert stats["max"] == pytest.approx(arr.max())

    def test_admission_decision_times_array(self, tiny_trace):
        """Satellite: OnlineClassifierAdmission records every decision's
        perf_counter duration, and the snapshot helper summarises it."""
        from repro.core.features import PAPER_FEATURE_NAMES, extract_features
        from repro.core.labeling import one_time_labels

        fm = extract_features(tiny_trace).select(PAPER_FEATURE_NAMES)
        labels = one_time_labels(tiny_trace.object_ids, 100.0)
        model = DecisionTreeClassifier(max_splits=10, rng=0).fit(fm.X, labels)
        adm = OnlineClassifierAdmission(
            model, OnlineFeatureTracker(tiny_trace), 100.0, HistoryTable(64)
        )
        simulate(
            tiny_trace,
            LRUCache(max(1, tiny_trace.footprint_bytes // 50)),
            admission=adm,
        )
        assert len(adm.decision_times) == adm.decisions > 0
        assert sum(adm.decision_times) == pytest.approx(adm.decision_seconds)
        stats = admission_timing(adm)
        assert stats["count"] == adm.decisions
        assert stats["mean"] == pytest.approx(adm.mean_decision_seconds)


class TestSnapshot:
    def test_snapshot_and_table(self, tiny_trace):
        node = make_node(tiny_trace, 1000)
        snap = metrics_snapshot(node)
        assert snap["processed"] == snap["requests"] == 1000
        assert snap["classifier"] is True
        assert snap["t_classify"]["count"] == 1000
        assert 0.0 <= snap["hit_rate"] <= 1.0
        assert "l1_hits" in snap  # hierarchical default
        table = format_metrics(snap)
        assert "file hit rate" in table
        assert "t_classify" in table

    def test_snapshot_is_json_serialisable(self, tiny_trace):
        import json

        node = make_node(tiny_trace, 500)
        json.dumps(metrics_snapshot(node))
