"""Wire-format tests: framing, round-trips, and malformed-frame handling."""

import asyncio
import struct

import pytest

from repro.server.protocol import (
    MAX_MESSAGE_BYTES,
    ProtocolError,
    decode_message,
    encode_message,
    error_response,
    read_message,
)


def feed_reader(data: bytes, eof: bool = True) -> asyncio.StreamReader:
    reader = asyncio.StreamReader()
    reader.feed_data(data)
    if eof:
        reader.feed_eof()
    return reader


class TestFraming:
    def test_round_trip(self):
        msg = {"op": "GET", "index": 7, "oid": 123, "size": 4096}
        assert decode_message(encode_message(msg)[4:]) == msg

    def test_header_is_big_endian_length(self):
        frame = encode_message({"op": "PING"})
        (length,) = struct.unpack(">I", frame[:4])
        assert length == len(frame) - 4

    def test_unicode_survives(self):
        msg = {"op": "PING", "note": "café ✓"}
        assert decode_message(encode_message(msg)[4:]) == msg

    def test_non_dict_rejected(self):
        with pytest.raises(ProtocolError):
            encode_message([1, 2, 3])
        with pytest.raises(ProtocolError):
            decode_message(b"[1,2]")

    def test_bad_json_rejected(self):
        with pytest.raises(ProtocolError):
            decode_message(b"{nope")

    def test_error_response_shape(self):
        resp = error_response("GET", "boom", index=4)
        assert resp == {"ok": False, "op": "GET", "error": "boom", "index": 4}


class TestStreamReading:
    def test_reads_pipelined_messages(self):
        frames = b"".join(
            encode_message({"op": "GET", "index": i}) for i in range(5)
        )

        async def run():
            reader = feed_reader(frames)
            out = []
            while (msg := await read_message(reader)) is not None:
                out.append(msg["index"])
            return out

        assert asyncio.run(run()) == [0, 1, 2, 3, 4]

    def test_clean_eof_returns_none(self):
        async def run():
            return await read_message(feed_reader(b""))

        assert asyncio.run(run()) is None

    def test_eof_inside_header_raises(self):
        async def run():
            return await read_message(feed_reader(b"\x00\x00"))

        with pytest.raises(ProtocolError):
            asyncio.run(run())

    def test_eof_inside_body_raises(self):
        frame = encode_message({"op": "PING"})

        async def run():
            return await read_message(feed_reader(frame[:-2]))

        with pytest.raises(ProtocolError):
            asyncio.run(run())

    def test_oversized_frame_rejected_without_reading_body(self):
        header = struct.pack(">I", MAX_MESSAGE_BYTES + 1)

        async def run():
            return await read_message(feed_reader(header))

        with pytest.raises(ProtocolError):
            asyncio.run(run())
