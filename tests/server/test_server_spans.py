"""Serving-layer span tree, SPANS verb, node ledger, and the sampler
gauges surfaced on /metrics.

Spans are wall-clock observability: the tests pin *structure* (names,
nesting, track sharing, drain semantics) and *neutrality* (identical
cache statistics with tracing on, off, or absent), never durations.
"""

import asyncio

from repro.obs.spans import Tracer, validate_chrome_trace
from repro.server.loadgen import LoadgenConfig, run_loadgen
from repro.server.metrics import format_metrics, metrics_snapshot
from repro.server.node import CacheNode, CacheNodeServer, NodeConfig, replay_offline
from repro.server.protocol import read_message, write_message

CFG = NodeConfig(capacity_fraction=0.02)


def served_replay(trace, spans=None):
    """Serve ``trace`` over real TCP, replay it, return the node."""

    async def run():
        node = CacheNode(trace, CFG, spans=spans)
        server = CacheNodeServer(node, port=0)
        await server.start()
        result = await run_loadgen(
            trace,
            LoadgenConfig(port=server.port, rate=50_000, connections=4),
        )
        await server.shutdown()
        return node, result

    return asyncio.run(run())


class TestBatchSpanTree:
    def test_served_batches_emit_the_full_stage_tree(self, tiny_trace):
        spans = Tracer()
        node, result = served_replay(tiny_trace, spans=spans)
        assert result.errors == 0

        events = spans.events()
        by_name = {}
        for ev in events:
            by_name.setdefault(ev["name"], []).append(ev)
        expected = {
            "request_batch", "queue_wait", "process_batch",
            "feature_build", "batch_inference", "cache_ops", "reply",
        }
        assert expected <= set(by_name)

        # Every request_batch root owns exactly one batch's children on
        # its own track, and the children nest inside it in time.
        roots = by_name["request_batch"]
        for child_name in expected - {"request_batch"}:
            assert len(by_name[child_name]) == len(roots)
        root_tracks = {ev["track"] for ev in roots}
        assert len(root_tracks) == len(roots)  # one track per batch
        for ev in events:
            assert ev["track"] in root_tracks
        for root in roots:
            children = [
                e for e in events
                if e["track"] == root["track"] and e is not root
            ]
            for child in children:
                assert root["start_ns"] <= child["start_ns"]
                assert child["end_ns"] <= root["end_ns"]

        # The whole drained buffer exports as a valid Chrome trace.
        assert validate_chrome_trace(spans.to_chrome()) == len(events)

    def test_tracing_does_not_perturb_cache_state(self, tiny_trace):
        traced, _ = served_replay(tiny_trace, spans=Tracer())
        disabled, _ = served_replay(
            tiny_trace, spans=Tracer(enabled=False)
        )
        bare, _ = served_replay(tiny_trace, spans=None)
        ref = replay_offline(tiny_trace, CFG)
        for node in (traced, disabled, bare):
            assert node.stats.hits == ref.stats.hits
            assert node.stats.files_written == ref.stats.files_written
            assert node.stats.admissions_denied == ref.stats.admissions_denied

    def test_disabled_tracer_records_nothing(self, tiny_trace):
        spans = Tracer(enabled=False)
        served_replay(tiny_trace, spans=spans)
        assert len(spans) == 0 and spans.recorded == 0


class TestNodeLedger:
    def test_every_write_and_denial_is_attributed(self, tiny_trace):
        node, _ = served_replay(tiny_trace)
        ref = replay_offline(tiny_trace, CFG)
        led = node.ledger
        assert led.total_writes == ref.stats.files_written
        assert led.total_bytes == ref.stats.bytes_written
        assert led.writes_by_cause()["admission_accept"] == led.total_writes
        assert led.avoided_writes == ref.stats.admissions_denied
        # Single node, no retrain: everything under the initial model
        # (an offline-trained classifier installs as v1).
        assert led.writes_by_model() == {"v1": led.total_writes}

    def test_reset_clears_ledger_and_spans(self, tiny_trace):
        async def run():
            spans = Tracer()
            node = CacheNode(tiny_trace, CFG, spans=spans)
            server = CacheNodeServer(node, port=0)
            await server.start()
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            for i in range(40):
                await write_message(writer, {"op": "GET", "index": i})
                await read_message(reader)
            assert node.ledger.total_writes > 0 and len(spans) > 0
            await write_message(writer, {"op": "RESET"})
            msg = await read_message(reader)
            assert msg["ok"]
            writer.close()
            await server.shutdown()
            return node, spans

        node, spans = asyncio.run(run())
        assert node.ledger.total_writes == 0
        assert len(spans) == 0 and spans.recorded == 0


class TestSpansVerb:
    async def _ask(self, server, message):
        reader, writer = await asyncio.open_connection(
            "127.0.0.1", server.port
        )
        await write_message(writer, message)
        msg = await read_message(reader)
        writer.close()
        return msg

    def test_spans_drains_and_reports_ring_accounting(self, tiny_trace):
        async def run():
            spans = Tracer()
            node = CacheNode(tiny_trace, CFG, spans=spans)
            server = CacheNodeServer(node, port=0)
            await server.start()
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            for i in range(20):
                await write_message(writer, {"op": "GET", "index": i})
                await read_message(reader)
            first = await self._ask(server, {"op": "SPANS", "clear": True})
            second = await self._ask(server, {"op": "SPANS"})
            writer.close()
            await server.shutdown()
            return spans, first, second

        spans, first, second = asyncio.run(run())
        assert first["ok"] and first["op"] == "SPANS"
        names = {ev["name"] for ev in first["spans"]}
        assert "request_batch" in names and "cache_ops" in names
        assert first["recorded"] == len(first["spans"])
        assert first["dropped"] == 0
        assert first["capacity"] == spans.capacity
        # clear=True drained the ring: the follow-up sees an empty buffer
        # but the cumulative recorded count survives.
        assert second["spans"] == []
        assert second["recorded"] == first["recorded"]

    def test_spans_limit_and_validation(self, tiny_trace):
        async def run():
            node = CacheNode(tiny_trace, CFG, spans=Tracer())
            server = CacheNodeServer(node, port=0)
            await server.start()
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            for i in range(20):
                await write_message(writer, {"op": "GET", "index": i})
                await read_message(reader)
            limited = await self._ask(server, {"op": "SPANS", "limit": 2})
            bad = await self._ask(server, {"op": "SPANS", "limit": -1})
            writer.close()
            await server.shutdown()
            return limited, bad

        limited, bad = asyncio.run(run())
        assert limited["ok"] and len(limited["spans"]) == 2
        assert not bad["ok"]
        assert "limit" in bad["error"]

    def test_spans_without_tracer_is_an_error(self, tiny_trace):
        async def run():
            node = CacheNode(tiny_trace, CFG)
            server = CacheNodeServer(node, port=0)
            await server.start()
            msg = await self._ask(server, {"op": "SPANS"})
            await server.shutdown()
            return msg

        msg = asyncio.run(run())
        assert not msg["ok"]
        assert "span tracing disabled" in msg["error"]


class TestMetricsSurface:
    def test_sampler_gauges_and_ledger_counters_rendered(self, tiny_trace):
        node, _ = served_replay(tiny_trace, spans=Tracer())
        text = node.registry.render_prometheus()
        assert 'repro_decision_trace_events{state="seen"}' in text
        assert 'repro_decision_trace_events{state="dropped"}' in text
        assert 'repro_reservoir_seen{reservoir="t_classify"}' in text
        assert 'repro_reservoir_retained{reservoir="t_classify"}' in text
        assert 'repro_spans{state="recorded"}' in text
        assert 'repro_spans{state="buffered"}' in text
        assert (
            'repro_ledger_writes_total{cause="admission_accept",model="v1"}'
            in text
        )
        assert 'repro_ledger_avoided_writes_total{model="v1"}' in text

    def test_metrics_snapshot_carries_spans_and_ledger(self, tiny_trace):
        spans = Tracer()
        node, _ = served_replay(tiny_trace, spans=spans)
        snap = metrics_snapshot(node)
        assert snap["spans"]["enabled"] is True
        assert snap["spans"]["recorded"] == spans.recorded
        assert snap["spans"]["buffered"] == len(spans)
        assert snap["spans"]["capacity"] == spans.capacity
        assert snap["ledger"]["total_writes"] == node.stats.files_written
        text = format_metrics(snap)
        assert "spans (buffered/recorded)" in text
        assert "writes avoided (ledger)" in text

    def test_snapshot_omits_spans_section_without_tracer(self, tiny_trace):
        node, _ = served_replay(tiny_trace)
        snap = metrics_snapshot(node)
        assert "spans" not in snap
        assert snap["ledger"]["total_writes"] == node.stats.files_written
