"""Serving-layer integration tests over real localhost TCP.

The load-bearing property: a replay served through concurrent connections
produces *identical* cache statistics to the offline simulator on the same
trace — the single-writer sequencer makes concurrency invisible to cache
state.
"""

import asyncio

import pytest

from repro.server.loadgen import LoadgenConfig, fetch_stats, run_loadgen
from repro.server.node import CacheNode, CacheNodeServer, NodeConfig, replay_offline
from repro.server.protocol import read_message, write_message
from repro.server.retrainer import Retrainer, RetrainerConfig

CFG = NodeConfig(capacity_fraction=0.02)


async def start_server(trace, cfg=CFG, **kwargs) -> tuple[CacheNode, CacheNodeServer]:
    node = CacheNode(trace, cfg)
    server = CacheNodeServer(node, port=0, **kwargs)
    await server.start()
    return node, server


class TestReplayParity:
    def test_concurrent_replay_matches_offline_simulate(self, tiny_trace):
        async def run():
            node, server = await start_server(tiny_trace)
            result = await run_loadgen(
                tiny_trace,
                LoadgenConfig(port=server.port, rate=50_000, connections=6),
            )
            await server.shutdown()
            return node, result

        node, result = asyncio.run(run())
        assert result.errors == 0
        assert result.completed == tiny_trace.n_accesses

        ref = replay_offline(tiny_trace, CFG)
        assert node.stats.hits == ref.stats.hits
        assert node.stats.files_written == ref.stats.files_written
        assert node.stats.bytes_written == ref.stats.bytes_written
        assert node.stats.admissions_denied == ref.stats.admissions_denied
        # The STATS snapshot carried back by the loadgen agrees too.
        snap = result.server_stats
        assert snap["requests"] == tiny_trace.n_accesses
        assert snap["hit_rate"] == pytest.approx(ref.stats.hit_rate)
        assert snap["files_written"] == ref.stats.files_written
        assert snap["t_classify"]["count"] == tiny_trace.n_accesses
        assert snap["service_latency"]["count"] == tiny_trace.n_accesses

    def test_client_observed_hits_match_server(self, tiny_trace):
        async def run():
            node, server = await start_server(
                tiny_trace, NodeConfig(capacity_fraction=0.02, classifier=False)
            )
            result = await run_loadgen(
                tiny_trace,
                LoadgenConfig(port=server.port, rate=50_000, connections=3),
            )
            await server.shutdown()
            return node, result

        node, result = asyncio.run(run())
        assert result.hits == node.stats.hits


class TestSequencing:
    def test_out_of_order_arrival_is_reassembled(self, tiny_trace):
        """Index 1 sent (on another connection) before index 0 still
        completes, in trace order, once index 0 arrives."""

        async def run():
            node, server = await start_server(tiny_trace)
            r1, w1 = await asyncio.open_connection("127.0.0.1", server.port)
            r2, w2 = await asyncio.open_connection("127.0.0.1", server.port)
            await write_message(w1, {"op": "GET", "index": 1})
            await asyncio.sleep(0.05)
            assert node.processed == 0  # parked, waiting for index 0
            await write_message(w2, {"op": "GET", "index": 0})
            first = await read_message(r2)
            second = await read_message(r1)
            for w in (w1, w2):
                w.close()
                await w.wait_closed()
            await server.shutdown()
            return node, first, second

        node, first, second = asyncio.run(run())
        assert first["ok"] and first["index"] == 0
        assert second["ok"] and second["index"] == 1
        assert node.processed == 2

    def test_duplicate_and_out_of_range_indices_are_rejected(self, tiny_trace):
        async def run():
            node, server = await start_server(tiny_trace)
            reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
            await write_message(writer, {"op": "GET", "index": 0})
            ok = await read_message(reader)
            await write_message(writer, {"op": "GET", "index": 0})  # duplicate
            dup = await read_message(reader)
            await write_message(
                writer, {"op": "GET", "index": tiny_trace.n_accesses}
            )
            oob = await read_message(reader)
            await write_message(writer, {"op": "GET", "index": 1, "oid": -1})
            mismatch = await read_message(reader)
            await write_message(writer, {"op": "NOPE"})
            unknown = await read_message(reader)
            writer.close()
            await writer.wait_closed()
            await server.shutdown()
            return ok, dup, oob, mismatch, unknown

        ok, dup, oob, mismatch, unknown = asyncio.run(run())
        assert ok["ok"]
        for resp in (dup, oob, mismatch, unknown):
            assert not resp["ok"] and "error" in resp


class TestGracefulShutdown:
    def test_drain_answers_every_accepted_request(self, tiny_trace):
        """SIGTERM-style shutdown processes everything already accepted."""
        k = 500

        async def run():
            node, server = await start_server(tiny_trace)
            reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
            for i in range(k):
                await write_message(writer, {"op": "GET", "index": i})
            await asyncio.sleep(0.05)  # let the handler accept them all
            shutdown = asyncio.ensure_future(server.shutdown())
            responses = []
            while len(responses) < k:
                msg = await read_message(reader)
                if msg is None:
                    break
                responses.append(msg)
            await shutdown
            writer.close()
            return node, responses

        node, responses = asyncio.run(run())
        assert len(responses) == k
        assert all(r["ok"] for r in responses)
        assert node.processed == k
        # And the drained prefix still matches the offline replay.
        ref = replay_offline(tiny_trace, CFG)
        assert node.stats.hits <= ref.stats.hits

    def test_new_requests_rejected_while_draining(self, tiny_trace):
        async def run():
            node, server = await start_server(tiny_trace)
            reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
            await server.shutdown()
            # The connection stays open through the drain; late GETs get an
            # in-band error (written before the server closes it).
            await write_message(writer, {"op": "GET", "index": 0})
            msg = await read_message(reader)
            writer.close()
            return msg

        msg = asyncio.run(run())
        assert msg is None or (not msg["ok"] and "drain" in msg["error"])


class TestOps:
    def test_ping_stats_reset(self, tiny_trace):
        async def run():
            node, server = await start_server(tiny_trace)
            reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
            await write_message(writer, {"op": "PING"})
            ping = await read_message(reader)
            for i in range(100):
                await write_message(writer, {"op": "GET", "index": i})
            for _ in range(100):
                await read_message(reader)
            stats = await fetch_stats("127.0.0.1", server.port)
            await write_message(writer, {"op": "RESET"})
            reset = await read_message(reader)
            stats_after = await fetch_stats("127.0.0.1", server.port)
            writer.close()
            await writer.wait_closed()
            await server.shutdown()
            return ping, stats, reset, stats_after

        ping, stats, reset, stats_after = asyncio.run(run())
        assert ping["ok"] and ping["op"] == "PING"
        assert stats["requests"] == 100
        assert reset["ok"]
        assert stats_after["requests"] == 0
        assert stats_after["processed"] == 0

    def test_reload_without_retrainer_errors(self, tiny_trace):
        async def run():
            node, server = await start_server(tiny_trace)
            reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
            await write_message(writer, {"op": "RELOAD"})
            msg = await read_message(reader)
            writer.close()
            await writer.wait_closed()
            await server.shutdown()
            return msg

        msg = asyncio.run(run())
        assert not msg["ok"]


class TestAtomicModelSwap:
    def test_reload_during_replay_drops_no_request(self, tiny_trace):
        """A mid-replay retrain + atomic swap: every request still gets a
        successful response and the model version advances."""

        async def run():
            node = CacheNode(tiny_trace, CFG)
            retrainer = Retrainer(
                node,
                # Huge period: only the explicit RELOAD retrains.
                RetrainerConfig(period=1e9, retrain_hour=5.0),
            )
            server = CacheNodeServer(node, port=0, retrainer=retrainer)
            await server.start()

            async def reload_midway():
                await asyncio.sleep(0.1)
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                await write_message(writer, {"op": "RELOAD"})
                msg = await read_message(reader)
                writer.close()
                await writer.wait_closed()
                return msg

            result, reload_resp = await asyncio.gather(
                run_loadgen(
                    tiny_trace,
                    LoadgenConfig(port=server.port, rate=10_000, connections=4),
                ),
                reload_midway(),
            )
            await server.shutdown()
            return node, result, reload_resp

        node, result, reload_resp = asyncio.run(run())
        assert result.errors == 0
        assert result.completed == tiny_trace.n_accesses
        assert node.processed == tiny_trace.n_accesses
        assert reload_resp["ok"]
        if reload_resp["trained"]:
            assert node.model_version >= 2
