"""Columnar feature extraction (``features_into_batch``) parity.

The serving hot path fills a whole micro-batch's feature matrix with one
vectorised call instead of a per-row loop.  The contract is *bit-identical
rows and end state*: any divergence would silently change admission
verdicts between the columnar and row serving modes, which the throughput
bench asserts never happens.  These are the unit-level twins of that
assertion, property-tested over random batch partitions.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.features import PAPER_FEATURE_NAMES
from repro.core.online import OnlineFeatureTracker
from repro.trace.generator import WorkloadConfig, generate_trace


@pytest.fixture(scope="module")
def trace():
    return generate_trace(WorkloadConfig(n_objects=150, mean_accesses=5.0, seed=11))


def row_reference(trace, indices):
    """The per-row loop the batch path must reproduce exactly."""
    tracker = OnlineFeatureTracker(trace)
    rows = np.empty((len(indices), len(PAPER_FEATURE_NAMES)))
    for r, i in enumerate(indices):
        tracker.features_into(i, rows[r])
        tracker.observe(i)
    return rows, tracker


def batch_partition(trace, indices, sizes):
    """Replay the same positions through batches of the given sizes."""
    tracker = OnlineFeatureTracker(trace)
    rows = np.empty((len(indices), len(PAPER_FEATURE_NAMES)))
    pos = 0
    for size in sizes:
        chunk = indices[pos : pos + size]
        if not chunk:
            continue
        tracker.features_into_batch(chunk, rows[pos : pos + len(chunk)])
        pos += len(chunk)
    return rows, tracker


@settings(max_examples=40, deadline=None)
@given(data=st.data())
def test_any_batch_partition_matches_row_loop(trace, data):
    """Bit-identical rows however the prefix is cut into micro-batches."""
    n = data.draw(st.integers(min_value=1, max_value=300), label="prefix")
    n = min(n, trace.n_accesses)
    indices = list(range(n))
    sizes = []
    remaining = n
    while remaining > 0:
        size = data.draw(
            st.integers(min_value=1, max_value=remaining), label="batch"
        )
        sizes.append(size)
        remaining -= size
    ref_rows, _ = row_reference(trace, indices)
    got_rows, _ = batch_partition(trace, indices, sizes)
    assert np.array_equal(ref_rows, got_rows)


def test_end_state_matches_row_loop(trace):
    """After a batched replay, subsequent per-row features are unchanged."""
    n = min(400, trace.n_accesses - 5)
    _, ref_tracker = row_reference(trace, list(range(n)))
    _, got_tracker = batch_partition(trace, list(range(n)), [64] * (n // 64 + 1))
    for i in range(n, n + 5):
        assert np.array_equal(
            ref_tracker.features(i), got_tracker.features(i)
        )


def test_duplicate_oids_within_one_batch(trace):
    """Intra-batch re-accesses see the previous occurrence's timestamp.

    The generator's traces repeat objects heavily; force a batch that is
    one object's whole access run to pin the in-batch recency wiring.
    """
    oid = int(trace.object_ids[0])
    positions = np.nonzero(trace.object_ids == oid)[0][:8].tolist()
    assert len(positions) >= 2, "fixture object must repeat"
    ref_rows, _ = row_reference(trace, positions)
    got_rows, _ = batch_partition(trace, positions, [len(positions)])
    assert np.array_equal(ref_rows, got_rows)


def test_features_returns_fresh_copy_not_scratch_view(trace):
    """``features`` must copy out of the reused scratch row."""
    tracker = OnlineFeatureTracker(trace)
    a = tracker.features(0)
    a_snapshot = a.copy()
    tracker.observe(0)
    b = tracker.features(1)
    assert b is not a
    assert np.array_equal(a, a_snapshot), "first row mutated by second call"


def test_empty_batch_is_a_no_op(trace):
    tracker = OnlineFeatureTracker(trace)
    out = np.full((4, len(PAPER_FEATURE_NAMES)), -1.0)
    rows = tracker.features_into_batch([], out)
    assert rows.shape == (0, len(PAPER_FEATURE_NAMES))
    assert (out == -1.0).all()
    assert np.array_equal(tracker.features(0), row_reference(trace, [])[1].features(0))
