"""Tests for the history table (§4.4.2) and admission policies (Fig. 4)."""

import numpy as np
import pytest

from repro.core.admission import (
    AlwaysAdmit,
    ClassifierAdmission,
    NeverAdmit,
    NoisyOracleAdmission,
    OracleAdmission,
)
from repro.core.history_table import HistoryTable
from repro.core.labeling import ONE_TIME, REUSED


class TestHistoryTable:
    def test_record_and_rectify_within_window(self):
        t = HistoryTable(capacity=10)
        t.record(42, index=100)
        assert 42 in t
        assert t.rectify(42, index=150, m_threshold=100) is True
        assert 42 not in t  # forgotten after rectification
        assert t.rectifications == 1

    def test_rectify_outside_window_fails(self):
        t = HistoryTable(capacity=10)
        t.record(42, index=100)
        assert t.rectify(42, index=300, m_threshold=100) is False
        assert 42 in t  # entry stays

    def test_unknown_object_not_rectified(self):
        t = HistoryTable(capacity=10)
        assert t.rectify(1, 5, 100) is False

    def test_fifo_eviction(self):
        t = HistoryTable(capacity=3)
        for oid in (1, 2, 3):
            t.record(oid, oid)
        t.record(4, 4)  # evicts 1 (oldest insertion)
        assert 1 not in t
        assert 2 in t and 3 in t and 4 in t

    def test_refresh_keeps_fifo_age(self):
        t = HistoryTable(capacity=3)
        for oid in (1, 2, 3):
            t.record(oid, oid)
        t.record(1, 10)  # refresh verdict, but 1 keeps its FIFO slot
        t.record(4, 11)  # still evicts 1
        assert 1 not in t

    def test_refresh_updates_index(self):
        t = HistoryTable(capacity=5)
        t.record(7, index=0)
        t.record(7, index=500)
        # Against the refreshed index, a gap of 400 < M=450 rectifies.
        assert t.rectify(7, index=900, m_threshold=450)

    def test_paper_capacity_rule(self):
        cap = HistoryTable.paper_capacity(
            m_threshold=10_000, hit_rate=0.5, one_time_share=0.4
        )
        assert cap == int(10_000 * 0.5 * 0.4 * 0.05)

    def test_paper_capacity_never_zero(self):
        assert HistoryTable.paper_capacity(1, 0.99, 0.01) == 1

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            HistoryTable(0)

    def test_clear(self):
        t = HistoryTable(5)
        t.record(1, 0)
        t.rectify(1, 1, 10)
        t.clear()
        assert len(t) == 0 and t.rectifications == 0


class TestSimpleAdmissions:
    def test_always(self):
        a = AlwaysAdmit()
        assert a.should_admit(0, 1, 100)

    def test_never(self):
        a = NeverAdmit()
        assert not a.should_admit(0, 1, 100)

    def test_oracle_follows_labels(self):
        labels = np.array([ONE_TIME, REUSED, ONE_TIME])
        a = OracleAdmission(labels)
        assert not a.should_admit(0, 9, 1)
        assert a.should_admit(1, 9, 1)
        assert not a.should_admit(2, 9, 1)

    def test_oracle_rejects_2d(self):
        with pytest.raises(ValueError):
            OracleAdmission(np.zeros((2, 2)))


class TestNoisyOracle:
    def test_zero_noise_equals_oracle(self):
        labels = np.array([ONE_TIME, REUSED, ONE_TIME, REUSED] * 20)
        clean = OracleAdmission(labels)
        noisy = NoisyOracleAdmission(labels, fn_rate=0.0, fp_rate=0.0)
        for i in range(labels.shape[0]):
            assert clean.should_admit(i, 0, 1) == noisy.should_admit(i, 0, 1)
        assert noisy.effective_accuracy == 1.0

    def test_error_rates_realised(self):
        rng = np.random.default_rng(0)
        labels = rng.integers(0, 2, 20_000)
        adm = NoisyOracleAdmission(labels, fn_rate=0.2, fp_rate=0.1, rng=1)
        one_time = labels == ONE_TIME
        denied = np.array(
            [not adm.should_admit(i, 0, 1) for i in range(labels.shape[0])]
        )
        fn = np.mean(~denied[one_time])   # one-time wrongly admitted
        fp = np.mean(denied[~one_time])   # reused wrongly denied
        assert fn == pytest.approx(0.2, abs=0.02)
        assert fp == pytest.approx(0.1, abs=0.02)

    def test_effective_accuracy(self):
        labels = np.zeros(10_000, dtype=int)
        adm = NoisyOracleAdmission(labels, fp_rate=0.25, rng=2)
        assert adm.effective_accuracy == pytest.approx(0.75, abs=0.02)

    def test_deterministic_given_rng(self):
        labels = np.random.default_rng(3).integers(0, 2, 100)
        a = NoisyOracleAdmission(labels, fn_rate=0.3, fp_rate=0.3, rng=7)
        b = NoisyOracleAdmission(labels, fn_rate=0.3, fp_rate=0.3, rng=7)
        np.testing.assert_array_equal(a._deny, b._deny)

    def test_invalid(self):
        with pytest.raises(ValueError):
            NoisyOracleAdmission(np.zeros(3), fn_rate=1.5)
        with pytest.raises(ValueError):
            NoisyOracleAdmission(np.zeros((2, 2)))


class TestClassifierAdmission:
    def test_predicted_reuse_admitted(self):
        adm = ClassifierAdmission(np.array([0, 1]), m_threshold=100)
        assert adm.should_admit(0, 5, 1)
        assert adm.denied == 0

    def test_predicted_one_time_denied_and_tabled(self):
        adm = ClassifierAdmission(np.array([1, 1]), m_threshold=100)
        assert not adm.should_admit(0, 5, 1)
        assert adm.denied == 1
        assert 5 in adm.history

    def test_history_rectifies_second_miss(self):
        """A fast come-back overrules the one-time verdict (§4.4.2)."""
        adm = ClassifierAdmission(np.ones(200, dtype=int), m_threshold=100)
        assert not adm.should_admit(0, 5, 1)   # first miss: denied, tabled
        assert adm.should_admit(50, 5, 1)      # within M: rectified → admit
        assert adm.rectified_admits == 1
        assert 5 not in adm.history

    def test_slow_comeback_not_rectified(self):
        adm = ClassifierAdmission(np.ones(600, dtype=int), m_threshold=100)
        adm.should_admit(0, 5, 1)
        assert not adm.should_admit(500, 5, 1)  # beyond M: denied again

    def test_from_criteria_sizes_table(self):
        from repro.core.criteria import Criteria

        crit = Criteria(
            m_threshold=20_000,
            one_time_share=0.3,
            hit_rate=0.5,
            cache_bytes=1,
            mean_object_size=1.0,
            iterations=3,
        )
        adm = ClassifierAdmission.from_criteria(np.zeros(3, dtype=int), crit)
        assert adm.history.capacity == HistoryTable.paper_capacity(20_000, 0.5, 0.3)

    def test_reset_clears_state(self):
        adm = ClassifierAdmission(np.ones(5, dtype=int), m_threshold=10)
        adm.should_admit(0, 1, 1)
        adm.reset()
        assert adm.denied == 0
        assert len(adm.history) == 0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            ClassifierAdmission(np.ones((2, 2)), 10)
        with pytest.raises(ValueError):
            ClassifierAdmission(np.ones(2), 0)

    def test_boolean_and_int_predictions_equivalent(self):
        ints = ClassifierAdmission(np.array([1, 0, 1]), 10)
        bools = ClassifierAdmission(np.array([True, False, True]), 10)
        for i in range(3):
            assert ints.should_admit(i, 100 + i, 1) == bools.should_admit(
                i, 200 + i, 1
            )
