"""Tests for the one-time-access criterion (§4.3)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.criteria import estimate_hit_rate, solve_criteria
from repro.core.labeling import reaccess_distances


def _distances(seed=0, n=20_000, n_objects=2_000):
    rng = np.random.default_rng(seed)
    ids = rng.zipf(1.4, n) % n_objects
    return reaccess_distances(ids)


class TestSolveCriteria:
    def test_matches_equation_two(self):
        """At the fixed point, M = C / (S (1−h)(1−p)) must hold exactly."""
        d = _distances()
        c = solve_criteria(d, cache_bytes=10_000_000, mean_object_size=1000, hit_rate=0.5)
        slots = 10_000_000 / 1000
        expected = slots / ((1 - c.hit_rate) * (1 - c.one_time_share))
        assert c.m_threshold == pytest.approx(expected)

    def test_p_is_measured_share(self):
        d = _distances()
        c = solve_criteria(d, 10_000_000, 1000, hit_rate=0.5)
        # p reported is the share under the pre-update M (one iteration lag
        # of the paper's loop); re-measuring under a re-derived M must agree
        # closely once converged.
        m_for_p = c.cache_bytes / c.mean_object_size / (
            (1 - c.hit_rate) * (1 - c.one_time_share)
        )
        assert float(np.mean(d > m_for_p)) == pytest.approx(
            c.one_time_share, abs=0.05
        )

    def test_m_grows_with_capacity(self):
        d = _distances()
        caps = [1_000_000, 5_000_000, 20_000_000]
        ms = [solve_criteria(d, c, 1000, hit_rate=0.4).m_threshold for c in caps]
        assert ms[0] < ms[1] < ms[2]

    def test_m_grows_with_hit_rate(self):
        d = _distances()
        m_low = solve_criteria(d, 5_000_000, 1000, hit_rate=0.2).m_threshold
        m_high = solve_criteria(d, 5_000_000, 1000, hit_rate=0.8).m_threshold
        assert m_high > m_low

    def test_p_in_unit_interval(self):
        d = _distances()
        c = solve_criteria(d, 5_000_000, 1000, hit_rate=0.5)
        assert 0.0 <= c.one_time_share < 1.0

    def test_estimated_h_used_when_not_given(self):
        d = _distances()
        c = solve_criteria(d, 5_000_000, 1000)
        assert 0.0 <= c.hit_rate < 1.0

    def test_paper_iteration_count_default(self):
        d = _distances()
        assert solve_criteria(d, 5_000_000, 1000, hit_rate=0.5).iterations == 3

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(cache_bytes=0, mean_object_size=1.0),
            dict(cache_bytes=100, mean_object_size=0.0),
            dict(cache_bytes=100, mean_object_size=1.0, hit_rate=1.5),
            dict(cache_bytes=100, mean_object_size=1.0, iterations=0),
        ],
    )
    def test_invalid_inputs(self, kwargs):
        with pytest.raises(ValueError):
            solve_criteria(_distances(), **kwargs)

    def test_empty_distances_rejected(self):
        with pytest.raises(ValueError):
            solve_criteria(np.array([]), 100, 1.0)

    def test_all_one_time_trace(self):
        """Every distance infinite (no reuse at all) must not blow up."""
        d = np.full(100, np.inf)
        c = solve_criteria(d, 1000, 10, hit_rate=0.0)
        assert np.isfinite(c.m_threshold)

    @given(st.floats(0.0, 0.95), st.integers(10_000, 10_000_000))
    @settings(max_examples=25, deadline=None)
    def test_m_always_positive_finite(self, h, cap):
        c = solve_criteria(_distances(), cap, 1000, hit_rate=h)
        assert c.m_threshold > 0
        assert np.isfinite(c.m_threshold)


class TestLIRSVariant:
    def test_m_lirs_scaled_by_rs(self):
        d = _distances()
        base = solve_criteria(d, 5_000_000, 1000, hit_rate=0.5)
        lirs = base.for_lirs(0.95)
        assert lirs.m_threshold == pytest.approx(0.95 * base.m_threshold)
        assert lirs.rs == 0.95
        # M_LIRS < M_LRU: LIRS needs to see less far into the future (§5.2).
        assert lirs.m_threshold < base.m_threshold

    def test_invalid_rs(self):
        base = solve_criteria(_distances(), 5_000_000, 1000, hit_rate=0.5)
        with pytest.raises(ValueError):
            base.for_lirs(0.0)
        with pytest.raises(ValueError):
            base.for_lirs(1.5)


class TestEstimateHitRate:
    def test_bounds(self):
        h = estimate_hit_rate(_distances(), 5_000_000, 1000)
        assert 0.0 <= h < 1.0

    def test_monotone_in_capacity(self):
        d = _distances()
        hs = [estimate_hit_rate(d, c, 1000) for c in (10_000, 1_000_000, 100_000_000)]
        assert hs[0] <= hs[1] <= hs[2]

    def test_roughly_tracks_simulation(self, tiny_trace):
        """The stack estimate should land within ~0.15 of simulated LRU."""
        from repro.cache import LRUCache, simulate

        d = reaccess_distances(tiny_trace.object_ids)
        cap = max(1, tiny_trace.footprint_bytes // 50)
        est = estimate_hit_rate(d, cap, tiny_trace.mean_object_size())
        sim = simulate(tiny_trace, LRUCache(cap)).hit_rate
        assert abs(est - sim) < 0.15

    def test_invalid(self):
        with pytest.raises(ValueError):
            estimate_hit_rate(_distances(), 0, 1.0)
