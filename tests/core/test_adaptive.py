"""Tests for the self-tuning admission threshold."""

import numpy as np
import pytest

from repro.cache import LRUCache, simulate
from repro.core.adaptive import AdaptiveThresholdAdmission
from repro.core.labeling import reaccess_distances
from repro.trace import WorkloadConfig, generate_trace


def _synthetic_stream(n=40_000, quality=2.0, seed=0):
    """Scores correlated with ground-truth one-time-ness."""
    rng = np.random.default_rng(seed)
    is_one_time = rng.random(n) < 0.4
    scores = np.clip(
        0.5 + quality * 0.2 * (is_one_time * 2 - 1) + rng.normal(0, 0.2, n),
        0.0,
        1.0,
    )
    # Fabricate distances consistent with the labels under M=100.
    dist = np.where(is_one_time, 1e9, 10.0)
    return scores, dist


def _drain(adm, scores):
    """Feed the whole stream as misses; return the denial mask."""
    return np.array(
        [not adm.should_admit(i, i, 1) for i in range(scores.shape[0])]
    )


class TestController:
    def test_converges_to_target_precision(self):
        scores, dist = _synthetic_stream()
        adm = AdaptiveThresholdAdmission(
            scores, dist, 100.0, target_precision=0.8,
            initial_threshold=0.1,  # far too permissive at start
        )
        denied = _drain(adm, scores)
        # Precision over the last half of the stream ≈ the target.
        half = scores.shape[0] // 2
        truth = dist > 100.0
        tail_precision = truth[half:][denied[half:]].mean()
        assert tail_precision == pytest.approx(0.8, abs=0.08)
        assert len(adm.threshold_trace) > 5

    def test_threshold_rises_when_precision_low(self):
        scores, dist = _synthetic_stream(quality=0.5)  # noisy scores
        adm = AdaptiveThresholdAdmission(
            scores, dist, 100.0, target_precision=0.95,
            initial_threshold=0.3,
        )
        _drain(adm, scores)
        assert adm.final_threshold > 0.3

    def test_threshold_falls_when_precision_high(self):
        scores, dist = _synthetic_stream(quality=4.0)  # near-perfect scores
        adm = AdaptiveThresholdAdmission(
            scores, dist, 100.0, target_precision=0.55,
            initial_threshold=0.9,
        )
        _drain(adm, scores)
        assert adm.final_threshold < 0.9

    def test_feedback_is_delayed_by_m(self):
        """No adjustment can happen before the first verdicts mature."""
        scores, dist = _synthetic_stream(n=500)
        adm = AdaptiveThresholdAdmission(
            scores, dist, 400.0, feedback_window=10, initial_threshold=0.5
        )
        for i in range(300):  # all verdicts still immature
            adm.should_admit(i, i, 1)
        assert adm.threshold_trace == [0.5]

    def test_history_table_rectifies(self):
        scores = np.ones(10)          # everything looks one-time
        dist = np.full(10, 2.0)       # but everything comes right back
        adm = AdaptiveThresholdAdmission(scores, dist, 100.0)
        assert not adm.should_admit(0, 7, 1)   # denied, tabled
        assert adm.should_admit(3, 7, 1)       # rectified on the comeback
        assert adm.rectified_admits == 1

    def test_reset(self):
        scores, dist = _synthetic_stream(n=1000)
        adm = AdaptiveThresholdAdmission(scores, dist, 50.0)
        _drain(adm, scores[:1000])
        adm.reset()
        assert adm.denied == 0
        assert adm.threshold_trace == [adm.tau]

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(m_threshold=0),
            dict(target_precision=1.0),
            dict(initial_threshold=1.5),
            dict(step=0.0),
            dict(feedback_window=0),
        ],
    )
    def test_invalid(self, kwargs):
        scores, dist = _synthetic_stream(n=100)
        defaults = dict(m_threshold=10.0)
        defaults.update(kwargs)
        with pytest.raises(ValueError):
            AdaptiveThresholdAdmission(scores, dist, **defaults)


class TestOnRealWorkload:
    def test_reduces_writes_without_hit_collapse(self):
        trace = generate_trace(WorkloadConfig(n_objects=4000, days=3.0, seed=77))
        cap = max(1, trace.footprint_bytes // 60)
        dist = reaccess_distances(trace.object_ids)
        # Cheap score: long predicted distance via noisy oracle proxy.
        rng = np.random.default_rng(0)
        truth = (dist > 500).astype(float)
        scores = np.clip(truth * 0.6 + rng.random(trace.n_accesses) * 0.4, 0, 1)

        plain = simulate(trace, LRUCache(cap))
        adm = AdaptiveThresholdAdmission(
            scores, dist, 500.0, target_precision=0.7
        )
        filtered = simulate(trace, LRUCache(cap), admission=adm)
        assert filtered.stats.files_written < plain.stats.files_written
        assert filtered.hit_rate >= plain.hit_rate - 0.02
