"""Tests for the daily cost-sensitive training loop (§4.4)."""

import numpy as np
import pytest

from repro.core.features import extract_features
from repro.core.labeling import one_time_labels
from repro.core.training import DAY, sample_per_minute, train_daily_classifier
from repro.trace import WorkloadConfig, generate_trace


@pytest.fixture(scope="module")
def setup():
    trace = generate_trace(WorkloadConfig(n_objects=6000, days=4.0, seed=13))
    features = extract_features(trace)
    labels = one_time_labels(trace.object_ids, m_threshold=500)
    return trace, features, labels


class TestSamplePerMinute:
    def test_limit_enforced(self):
        rng = np.random.default_rng(0)
        ts = np.sort(rng.uniform(0, 600, 5000))  # 10 minutes
        idx = sample_per_minute(ts, 100, rng)
        minutes = (ts[idx] // 60).astype(int)
        counts = np.bincount(minutes)
        assert counts.max() <= 100

    def test_sparse_minutes_kept_whole(self):
        rng = np.random.default_rng(1)
        ts = np.arange(0.0, 300.0, 10.0)  # 6 per minute
        idx = sample_per_minute(ts, 100, rng)
        assert idx.shape[0] == ts.shape[0]

    def test_indices_sorted_and_unique(self):
        rng = np.random.default_rng(2)
        ts = np.sort(rng.uniform(0, 1200, 3000))
        idx = sample_per_minute(ts, 50, rng)
        assert (np.diff(idx) > 0).all()

    def test_invalid_limit(self):
        with pytest.raises(ValueError):
            sample_per_minute(np.array([1.0]), 0, np.random.default_rng(0))


class TestDailyTraining:
    def test_predictions_cover_trace(self, setup):
        trace, features, labels = setup
        r = train_daily_classifier(trace, features, labels, rng=0)
        assert r.predictions.shape == (trace.n_accesses,)
        assert set(np.unique(r.predictions)) <= {0, 1}

    def test_first_segment_admits_everything(self, setup):
        """Before the first 05:00 retrain there is no model: predict 0."""
        trace, features, labels = setup
        r = train_daily_classifier(trace, features, labels, rng=0)
        ts = trace.timestamps
        first_boundary = 5.0 * 3600.0
        assert (r.predictions[ts < first_boundary] == 0).all()
        assert r.daily_metrics[0]["trained"] is False

    def test_segments_match_day_count(self, setup):
        trace, features, labels = setup
        r = train_daily_classifier(trace, features, labels, rng=0)
        # 4-day trace, boundaries at 05:00 each day → 5 segments.
        assert len(r.daily_metrics) == 5
        assert len(r.models) == 5

    def test_later_segments_trained_and_predictive(self, setup):
        trace, features, labels = setup
        r = train_daily_classifier(trace, features, labels, rng=0)
        trained = [m for m in r.daily_metrics if m["trained"]]
        assert len(trained) >= 3
        # Precision must clearly beat the base rate on at least one day.
        assert max(m["precision"] for m in trained) > labels.mean()

    def test_overall_metrics_aggregate(self, setup):
        trace, features, labels = setup
        r = train_daily_classifier(trace, features, labels, rng=0)
        o = r.overall
        assert set(o) == {"precision", "recall", "accuracy"}
        assert 0 <= o["accuracy"] <= 1

    def test_static_model_reuses_first_model(self, setup):
        trace, features, labels = setup
        r = train_daily_classifier(trace, features, labels, static_model=True, rng=0)
        trained_models = [m for m in r.models if m is not None]
        assert len(trained_models) >= 2
        assert all(m is trained_models[0] for m in trained_models)

    def test_feature_subset_none_uses_all(self, setup):
        trace, features, labels = setup
        r = train_daily_classifier(
            trace, features, labels, feature_subset=None, rng=0
        )
        assert r.feature_names == features.names

    def test_higher_cost_v_raises_precision(self, setup):
        trace, features, labels = setup
        lo = train_daily_classifier(trace, features, labels, cost_v=1.0, rng=0)
        hi = train_daily_classifier(trace, features, labels, cost_v=6.0, rng=0)
        assert hi.overall["precision"] >= lo.overall["precision"] - 0.02
        assert hi.overall["recall"] <= lo.overall["recall"] + 0.02

    def test_deterministic_given_rng(self, setup):
        trace, features, labels = setup
        a = train_daily_classifier(trace, features, labels, rng=7)
        b = train_daily_classifier(trace, features, labels, rng=7)
        np.testing.assert_array_equal(a.predictions, b.predictions)

    def test_shorter_retrain_period_more_segments(self, setup):
        trace, features, labels = setup
        daily = train_daily_classifier(trace, features, labels, rng=0)
        fast = train_daily_classifier(
            trace, features, labels, retrain_period=DAY / 4,
            train_window=DAY, rng=0,
        )
        assert len(fast.daily_metrics) > len(daily.daily_metrics)
        # More frequent refresh tracks drift at least as well.
        assert fast.overall["accuracy"] >= daily.overall["accuracy"] - 0.02

    def test_custom_train_window(self, setup):
        trace, features, labels = setup
        wide = train_daily_classifier(
            trace, features, labels, train_window=2 * DAY, rng=0
        )
        assert wide.predictions.shape[0] == trace.n_accesses

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(retrain_hour=24.0),
            dict(cost_v=0.0),
            dict(retrain_period=0.0),
            dict(train_window=0.0),
        ],
    )
    def test_invalid_params(self, setup, kwargs):
        trace, features, labels = setup
        with pytest.raises(ValueError):
            train_daily_classifier(trace, features, labels, **kwargs)

    def test_feature_importances_aggregate(self, setup):
        trace, features, labels = setup
        r = train_daily_classifier(trace, features, labels, rng=0)
        imp = r.feature_importances()
        assert set(imp) == set(r.feature_names)
        assert sum(imp.values()) == pytest.approx(1.0, abs=0.01)
        # Sorted descending.
        vals = list(imp.values())
        assert vals == sorted(vals, reverse=True)

    def test_feature_importances_empty_when_untrainable(self, setup):
        trace, features, labels = setup

        class Opaque:
            def fit(self, X, y, sample_weight=None):
                import numpy as _np

                self.classes_ = _np.unique(y)
                return self

            def predict(self, X):
                import numpy as _np

                return _np.zeros(X.shape[0], dtype=int)

        r = train_daily_classifier(
            trace, features, labels, model_factory=lambda seed: Opaque(), rng=0
        )
        assert r.feature_importances() == {}

    def test_mismatched_labels_rejected(self, setup):
        trace, features, labels = setup
        with pytest.raises(ValueError):
            train_daily_classifier(trace, features, labels[:-1])
