"""Tests for the §3.2 feature extraction pipeline."""

import numpy as np
import pytest

from repro.core.features import (
    FEATURE_NAMES,
    PAPER_FEATURE_NAMES,
    extract_features,
)
from repro.trace import WorkloadConfig, generate_trace


@pytest.fixture(scope="module")
def trace():
    return generate_trace(WorkloadConfig(n_objects=3000, seed=5))


@pytest.fixture(scope="module")
def fm(trace):
    return extract_features(trace)


class TestShapeAndNames:
    def test_matrix_shape(self, trace, fm):
        assert fm.X.shape == (trace.n_accesses, len(FEATURE_NAMES))
        assert fm.names == FEATURE_NAMES

    def test_paper_subset_is_subset(self):
        assert set(PAPER_FEATURE_NAMES) <= set(FEATURE_NAMES)
        assert len(PAPER_FEATURE_NAMES) == 5  # §3.2.2's final choice

    def test_all_finite(self, fm):
        assert np.isfinite(fm.X).all()

    def test_column_accessor(self, fm):
        col = fm.column("access_hour")
        assert col.shape[0] == fm.X.shape[0]
        with pytest.raises(KeyError):
            fm.column("nope")

    def test_select_projects_columns(self, fm):
        sub = fm.select(PAPER_FEATURE_NAMES)
        assert sub.X.shape[1] == 5
        np.testing.assert_array_equal(
            sub.column("photo_type"), fm.column("photo_type")
        )


class TestSemantics:
    def test_access_hour_range(self, fm):
        hours = fm.column("access_hour")
        assert hours.min() >= 0 and hours.max() <= 23
        assert np.allclose(hours, hours.astype(int))

    def test_photo_type_range(self, fm):
        t = fm.column("photo_type")
        assert t.min() >= 0 and t.max() <= 11

    def test_terminal_binary(self, fm):
        assert set(np.unique(fm.column("terminal"))) <= {0.0, 1.0}

    def test_age_and_recency_in_ten_minute_buckets(self, fm):
        for name in ("photo_age", "recency"):
            col = fm.column(name)
            assert (col >= 0).all()
            assert np.allclose(col, col.astype(int))

    def test_first_access_recency_equals_age(self, trace, fm):
        """For an object's first access, recency falls back to photo age."""
        oid = trace.object_ids
        first_mask = np.zeros(trace.n_accesses, dtype=bool)
        seen = set()
        for i, o in enumerate(oid.tolist()):
            if o not in seen:
                first_mask[i] = True
                seen.add(o)
        np.testing.assert_array_equal(
            fm.column("recency")[first_mask], fm.column("photo_age")[first_mask]
        )

    def test_recency_uses_previous_access(self, trace, fm):
        """For re-accesses, recency bucket ≙ gap to the previous access."""
        oid = trace.object_ids
        ts = trace.timestamps
        last_seen: dict[int, float] = {}
        recency = fm.column("recency")
        checked = 0
        for i, o in enumerate(oid.tolist()):
            if o in last_seen:
                expected = int((ts[i] - last_seen[o]) // 600)
                assert recency[i] == min(expected, 90 * 144 - 1)
                checked += 1
                if checked > 500:
                    break
            last_seen[o] = ts[i]
        assert checked > 100

    def test_recent_requests_counts_trailing_minute(self, trace, fm):
        ts = trace.timestamps
        rr = fm.column("recent_requests")
        # Check a few random positions against a direct count.
        rng = np.random.default_rng(0)
        for i in rng.integers(0, trace.n_accesses, 50):
            expected = int(np.sum((ts >= ts[i] - 60.0) & (ts < ts[i]))) + int(
                np.sum(ts[:i] == ts[i])
            )
            # Allow for ties at exactly t-60 / equal timestamps ordering.
            assert abs(rr[i] - expected) <= np.sum(ts == ts[i])

    def test_owner_features_match_catalog(self, trace, fm):
        owner = trace.catalog["owner_id"][trace.object_ids]
        np.testing.assert_allclose(
            fm.column("owner_avg_views"), trace.owner_avg_views[owner]
        )
        np.testing.assert_allclose(
            fm.column("owner_active_friends"),
            trace.owner_active_friends[owner],
        )

    def test_photo_size_matches_catalog(self, trace, fm):
        np.testing.assert_allclose(
            fm.column("photo_size"),
            trace.catalog["size"][trace.object_ids],
        )

    def test_no_future_leakage_columns(self):
        """No feature may encode future information by construction."""
        future_words = ("next", "future", "label", "one_time")
        for name in FEATURE_NAMES:
            assert not any(w in name for w in future_words)
