"""Tests for reaccess distances and one-time labels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.labeling import (
    ONE_TIME,
    REUSED,
    one_time_labels,
    reaccess_distances,
    rudimentary_one_time_labels,
)


class TestReaccessDistances:
    def test_simple_sequence(self):
        ids = np.array([1, 2, 1, 1, 2])
        d = reaccess_distances(ids)
        np.testing.assert_array_equal(d, [2, 3, 1, np.inf, np.inf])

    def test_all_distinct(self):
        d = reaccess_distances(np.arange(5))
        assert np.isinf(d).all()

    def test_all_same(self):
        d = reaccess_distances(np.zeros(4, dtype=int))
        np.testing.assert_array_equal(d, [1, 1, 1, np.inf])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            reaccess_distances(np.array([]))

    def test_2d_rejected(self):
        with pytest.raises(ValueError):
            reaccess_distances(np.zeros((2, 2), dtype=int))

    @given(st.lists(st.integers(0, 15), min_size=1, max_size=150))
    @settings(max_examples=50)
    def test_matches_naive_computation(self, ids):
        d = reaccess_distances(np.asarray(ids))
        for i, oid in enumerate(ids):
            expected = np.inf
            for j in range(i + 1, len(ids)):
                if ids[j] == oid:
                    expected = j - i
                    break
            assert d[i] == expected


class TestOneTimeLabels:
    def test_threshold_semantics(self):
        ids = np.array([1, 2, 1, 2])  # distances: 2, 2, inf, inf
        labels = one_time_labels(ids, m_threshold=2)
        np.testing.assert_array_equal(labels, [REUSED, REUSED, ONE_TIME, ONE_TIME])
        labels = one_time_labels(ids, m_threshold=1.5)
        np.testing.assert_array_equal(labels, [ONE_TIME] * 4)

    def test_last_access_always_one_time(self):
        rng = np.random.default_rng(0)
        ids = rng.integers(0, 30, 300)
        labels = one_time_labels(ids, m_threshold=1e12)
        # The final access of every object is one-time under any M.
        last_pos = {oid: i for i, oid in enumerate(ids)}
        for i in last_pos.values():
            assert labels[i] == ONE_TIME

    def test_larger_m_means_fewer_positives(self):
        rng = np.random.default_rng(1)
        ids = rng.zipf(1.3, 5000) % 500
        p_small = one_time_labels(ids, 10).mean()
        p_large = one_time_labels(ids, 1000).mean()
        assert p_large <= p_small

    def test_invalid_m(self):
        with pytest.raises(ValueError):
            one_time_labels(np.array([1, 2]), 0)

    def test_positive_class_is_one(self):
        assert ONE_TIME == 1 and REUSED == 0


class TestRudimentaryCriterion:
    def test_exactly_once_objects_labelled(self):
        ids = np.array([0, 1, 0, 2])
        labels = rudimentary_one_time_labels(ids)
        np.testing.assert_array_equal(labels, [0, 1, 0, 1])

    def test_subset_of_m_criterion(self):
        """Every rudimentary one-time access is one-time under any M —
        the M criterion strictly generalises it (§4.3)."""
        rng = np.random.default_rng(2)
        ids = rng.zipf(1.4, 3000) % 400
        rud = rudimentary_one_time_labels(ids)
        m_based = one_time_labels(ids, m_threshold=50)
        assert (m_based[rud == ONE_TIME] == ONE_TIME).all()
        # And M-based catches strictly more (evicted-before-reuse cases).
        assert m_based.sum() > rud.sum()

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            rudimentary_one_time_labels(np.array([]))
