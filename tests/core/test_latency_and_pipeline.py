"""Tests for the latency model (Eqs. 3–6) and the end-to-end pipeline."""

import pytest

from repro.config import LatencyConstants
from repro.core.latency import LatencyModel
from repro.core.pipeline import run_experiment
from repro.trace import WorkloadConfig, generate_trace


class TestLatencyModel:
    def test_hit_cost_equation_four(self):
        c = LatencyConstants(t_query=1e-6, t_ssdr=1e-4, t_hddr=3e-3, t_classify=4e-7)
        lm = LatencyModel(c)
        assert lm.hit_cost == pytest.approx(1e-6 + 1e-4)

    def test_miss_penalties_equations_five_six(self):
        c = LatencyConstants(t_query=1e-6, t_ssdr=1e-4, t_hddr=3e-3, t_classify=4e-7)
        lm = LatencyModel(c)
        assert lm.miss_penalty(classified=False) == pytest.approx(1e-6 + 3e-3)
        assert lm.miss_penalty(classified=True) == pytest.approx(1e-6 + 4e-7 + 3e-3)

    def test_average_latency_equation_three(self):
        lm = LatencyModel()
        h = 0.6
        expected = h * lm.hit_cost + (1 - h) * lm.miss_penalty(classified=False)
        assert lm.average_latency(h, classified=False) == pytest.approx(expected)

    def test_latency_decreases_with_hit_rate(self):
        lm = LatencyModel()
        ls = [lm.average_latency(h, classified=True) for h in (0.1, 0.5, 0.9)]
        assert ls[0] > ls[1] > ls[2]

    def test_improvement_sign(self):
        lm = LatencyModel()
        # Higher proposal hit rate → positive improvement despite t_classify.
        assert lm.improvement(0.4, 0.5) > 0
        # Equal hit rates → tiny negative (classification overhead only).
        assert lm.improvement(0.4, 0.4) < 0
        assert abs(lm.improvement(0.4, 0.4)) < 1e-3

    def test_invalid_hit_rate(self):
        with pytest.raises(ValueError):
            LatencyModel().average_latency(1.2, classified=False)

    def test_invalid_constants(self):
        with pytest.raises(ValueError):
            LatencyConstants(t_query=-1.0)


class TestRunExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        trace = generate_trace(WorkloadConfig(n_objects=5000, days=4.0, seed=21))
        return run_experiment(trace, policy="lru", capacity_fraction=0.01, rng=0)

    def test_all_configurations_present(self, result):
        assert result.original is not None
        assert result.proposal is not None
        assert result.ideal is not None
        assert result.belady is not None

    def test_headline_orderings(self, result):
        """The paper's qualitative claims on every run."""
        # Proposal reduces SSD writes versus Original (the headline claim).
        assert (
            result.proposal.stats.files_written
            < result.original.stats.files_written
        )
        # Ideal (perfect classifier) beats the traditional cache.
        assert result.ideal.hit_rate >= result.original.hit_rate
        # Belady bounds everything from above.
        assert result.belady.hit_rate >= result.ideal.hit_rate - 0.01
        assert result.belady.hit_rate >= result.original.hit_rate

    def test_proposal_beats_original_hit_rate(self, result):
        assert result.proposal.hit_rate >= result.original.hit_rate - 0.005
        assert result.hit_rate_gain == pytest.approx(
            result.proposal.hit_rate - result.original.hit_rate
        )

    def test_write_reduction_positive(self, result):
        assert 0.0 < result.write_reduction <= 1.0
        assert 0.0 < result.byte_write_reduction <= 1.0

    def test_latency_improvement(self, result):
        assert result.latency_proposal < result.latency_original
        assert result.latency_improvement > 0

    def test_criteria_consistent(self, result):
        assert result.criteria.m_threshold > 0
        assert result.criteria.hit_rate == pytest.approx(
            result.original.hit_rate
        )

    def test_cost_v_default_small_cache(self, result):
        # 1% of footprint is far below the scaled 12 GB boundary → v = 2.
        assert result.cost_v == 2.0

    def test_summary_renders(self, result):
        s = result.summary()
        assert "original" in s and "proposal" in s and "belady" in s

    def test_lirs_criteria_scaled(self):
        trace = generate_trace(WorkloadConfig(n_objects=4000, days=3.0, seed=22))
        lru = run_experiment(
            trace, policy="lru", capacity_fraction=0.02,
            include_belady=False, include_ideal=False, rng=0,
        )
        lirs = run_experiment(
            trace, policy="lirs", capacity_fraction=0.02,
            include_belady=False, include_ideal=False, rng=0,
        )
        assert lirs.criteria.rs < 1.0
        # M_LIRS uses its own h, so compare through the rs mechanism only.
        assert lirs.criteria.m_threshold == pytest.approx(
            lirs.criteria.cache_bytes
            / lirs.criteria.mean_object_size
            / ((1 - lirs.criteria.hit_rate) * (1 - lirs.criteria.one_time_share))
            * lirs.criteria.rs,
            rel=1e-6,
        )
        assert lru.criteria.rs == 1.0

    def test_capacity_argument_validation(self):
        trace = generate_trace(WorkloadConfig(n_objects=1000, days=2.0, seed=23))
        with pytest.raises(ValueError):
            run_experiment(trace)  # neither capacity given
        with pytest.raises(ValueError):
            run_experiment(trace, capacity_fraction=0.1, capacity_bytes=100)

    def test_capacity_bytes_direct(self):
        trace = generate_trace(WorkloadConfig(n_objects=1000, days=2.0, seed=24))
        r = run_experiment(
            trace, capacity_bytes=2**20,
            include_belady=False, include_ideal=False, rng=0,
        )
        assert r.capacity_bytes == 2**20
        assert 0 < r.capacity_fraction < 1

    def test_system_iterations(self):
        trace = generate_trace(WorkloadConfig(n_objects=2500, days=2.0, seed=26))
        one = run_experiment(
            trace, capacity_fraction=0.01, system_iterations=1,
            include_belady=False, include_ideal=False, rng=0,
        )
        two = run_experiment(
            trace, capacity_fraction=0.01, system_iterations=2,
            include_belady=False, include_ideal=False, rng=0,
        )
        # Iteration 2 re-solves M against the proposal's (higher) hit rate,
        # so the criterion must loosen (larger M).
        assert two.criteria.m_threshold > one.criteria.m_threshold
        # And the iterated system must not collapse.
        assert two.proposal.hit_rate >= one.original.hit_rate - 0.02
        with pytest.raises(ValueError):
            run_experiment(trace, capacity_fraction=0.01, system_iterations=0)

    def test_workload_config_accepted(self):
        r = run_experiment(
            WorkloadConfig(n_objects=1000, days=2.0, seed=25),
            capacity_fraction=0.05,
            include_belady=False, include_ideal=False, rng=0,
        )
        assert r.original.stats.requests > 0
