"""Tests for online (per-request) feature tracking and admission.

The crucial property: the online tracker must reproduce the offline
vectorised feature matrix *exactly* — if it can be computed left-to-right
with only past state, the offline pipeline is provably causal.
"""

import numpy as np
import pytest

from repro.cache import LRUCache, simulate
from repro.core.admission import ClassifierAdmission
from repro.core.features import FEATURE_NAMES, PAPER_FEATURE_NAMES, extract_features
from repro.core.history_table import HistoryTable
from repro.core.labeling import one_time_labels
from repro.core.online import OnlineClassifierAdmission, OnlineFeatureTracker
from repro.ml import DecisionTreeClassifier
from repro.trace import WorkloadConfig, generate_trace


@pytest.fixture(scope="module")
def trace():
    return generate_trace(WorkloadConfig(n_objects=1200, days=2.0, seed=41))


@pytest.fixture(scope="module")
def fitted_model(trace):
    labels = one_time_labels(trace.object_ids, 300)
    fm = extract_features(trace).select(PAPER_FEATURE_NAMES)
    return DecisionTreeClassifier(max_splits=30, rng=0).fit(fm.X, labels), labels


class TestTrackerEquivalence:
    def test_online_matches_offline_exactly(self, trace):
        """Every feature, every access: online == offline."""
        offline = extract_features(trace)
        tracker = OnlineFeatureTracker(trace, feature_names=FEATURE_NAMES)
        for i in range(trace.n_accesses):
            x = tracker.features(i)
            np.testing.assert_allclose(
                x, offline.X[i], err_msg=f"mismatch at access {i}"
            )
            tracker.observe(i)

    def test_subset_ordering(self, trace):
        tracker = OnlineFeatureTracker(trace)  # paper's five
        x = tracker.features(0)
        assert x.shape == (len(PAPER_FEATURE_NAMES),)

    def test_unknown_feature_rejected(self, trace):
        with pytest.raises(ValueError):
            OnlineFeatureTracker(trace, feature_names=("nope",))

    def test_reset_clears_state(self, trace):
        tracker = OnlineFeatureTracker(trace)
        tracker.observe(0)
        tracker.reset()
        assert tracker._last_access == {}
        assert len(tracker._recent) == 0


class TestOnlineAdmission:
    def test_matches_batch_admission(self, trace, fitted_model):
        """Online and batch classifier admission must produce identical runs."""
        model, _ = fitted_model
        fm = extract_features(trace).select(PAPER_FEATURE_NAMES)
        predictions = model.predict(fm.X)
        m = 300.0
        cap = max(1, trace.footprint_bytes // 50)

        batch = simulate(
            trace,
            LRUCache(cap),
            admission=ClassifierAdmission(predictions, m, HistoryTable(64)),
        )
        online_adm = OnlineClassifierAdmission(
            model, OnlineFeatureTracker(trace), m, HistoryTable(64)
        )
        online = simulate(trace, LRUCache(cap), admission=online_adm)

        assert online.stats.hits == batch.stats.hits
        assert online.stats.files_written == batch.stats.files_written
        assert online.stats.admissions_denied == batch.stats.admissions_denied

    def test_decision_latency_measured(self, trace, fitted_model):
        model, _ = fitted_model
        adm = OnlineClassifierAdmission(
            model, OnlineFeatureTracker(trace), 300.0
        )
        cap = max(1, trace.footprint_bytes // 50)
        simulate(trace, LRUCache(cap), admission=adm)
        assert adm.decisions > 0
        assert adm.mean_decision_seconds > 0
        # Python per-decision cost should still be well under a millisecond.
        assert adm.mean_decision_seconds < 5e-3

    def test_reset(self, trace, fitted_model):
        model, _ = fitted_model
        adm = OnlineClassifierAdmission(
            model, OnlineFeatureTracker(trace), 300.0
        )
        adm.should_admit(0, int(trace.object_ids[0]), 100)
        adm.reset()
        assert adm.decisions == 0
        assert len(adm.history) == 0

    def test_invalid_threshold(self, trace, fitted_model):
        model, _ = fitted_model
        with pytest.raises(ValueError):
            OnlineClassifierAdmission(model, OnlineFeatureTracker(trace), 0.0)


class _RecordingAdmission(OnlineClassifierAdmission):
    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.verdict_log = []

    def should_admit(self, index, oid, size):
        ok = super().should_admit(index, oid, size)
        self.verdict_log.append(ok)
        return ok


class TestFastPath:
    def test_features_into_matches_features(self, trace):
        """The reused-buffer fast path fills exactly what features() returns."""
        tracker = OnlineFeatureTracker(trace, feature_names=FEATURE_NAMES)
        buf = [0.0] * len(FEATURE_NAMES)
        for i in range(min(trace.n_accesses, 2000)):
            expected = tracker.features(i)
            tracker.features_into(i, buf)
            np.testing.assert_array_equal(
                np.asarray(buf), expected, err_msg=f"mismatch at access {i}"
            )
            tracker.observe(i)

    def test_simulate_bit_identical_fast_vs_reference(self, trace, fitted_model):
        """Fast path on vs off: same admit/deny sequence, same CacheStats."""
        model, _ = fitted_model
        cap = max(1, trace.footprint_bytes // 50)
        runs = {}
        for fast in (True, False):
            adm = _RecordingAdmission(
                model,
                OnlineFeatureTracker(trace),
                300.0,
                HistoryTable(64),
                use_fast_path=fast,
            )
            runs[fast] = (adm, simulate(trace, LRUCache(cap), admission=adm))
        fast_adm, fast_result = runs[True]
        ref_adm, ref_result = runs[False]
        assert fast_adm.verdict_log == ref_adm.verdict_log
        assert fast_result.stats == ref_result.stats

    def test_timing_disabled_records_nothing(self, trace, fitted_model):
        """timing_capacity=0 must skip timing entirely, on both paths."""
        model, _ = fitted_model
        for fast in (True, False):
            adm = OnlineClassifierAdmission(
                model,
                OnlineFeatureTracker(trace),
                300.0,
                timing_capacity=0,
                use_fast_path=fast,
            )
            assert not adm.timing_enabled
            for i in range(50):
                adm.should_admit(i, int(trace.object_ids[i]), 100)
            assert adm.decisions == 50
            assert adm.decision_seconds == 0.0
            assert len(adm.decision_times) == 0

    def test_timed_fast_path_still_identical(self, trace, fitted_model):
        """Timing on/off must not change verdicts."""
        model, _ = fitted_model
        logs = []
        for capacity in (10_000, 0):
            adm = _RecordingAdmission(
                model, OnlineFeatureTracker(trace), 300.0,
                timing_capacity=capacity,
            )
            for i in range(200):
                adm.should_admit(i, int(trace.object_ids[i]), 100)
            logs.append(adm.verdict_log)
        assert logs[0] == logs[1]
