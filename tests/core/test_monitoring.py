"""Tests for delayed-label admission monitoring."""

import numpy as np
import pytest

from repro.core.labeling import ONE_TIME, one_time_labels
from repro.core.monitoring import evaluate_admission_decisions


class TestEvaluateDecisions:
    def _stream(self, seed=0, n=30_000, n_objects=3_000):
        rng = np.random.default_rng(seed)
        return rng.zipf(1.4, n) % n_objects

    def test_perfect_decisions_score_one(self):
        ids = self._stream()
        m = 500.0
        labels = one_time_labels(ids, m) == ONE_TIME
        q = evaluate_admission_decisions(ids, labels, m, window_size=5000)
        scored = q.n_scored > 0
        np.testing.assert_allclose(q.accuracy[scored], 1.0)
        np.testing.assert_allclose(q.precision[scored], 1.0)
        np.testing.assert_allclose(q.recall[scored], 1.0)

    def test_inverted_decisions_score_zero_accuracy(self):
        ids = self._stream(seed=1)
        m = 500.0
        labels = one_time_labels(ids, m) == ONE_TIME
        q = evaluate_admission_decisions(ids, ~labels, m, window_size=5000)
        scored = q.n_scored > 0
        assert (q.accuracy[scored] == 0.0).all()

    def test_immature_tail_excluded(self):
        ids = self._stream(seed=2, n=1000)
        m = 600.0
        q = evaluate_admission_decisions(
            ids, np.zeros(1000, dtype=bool), m, window_size=250
        )
        # Only the first 400 positions mature (1000 − 600).
        assert q.n_scored.sum() == 400
        assert q.n_scored[-1] == 0  # final windows entirely immature

    def test_windowing(self):
        ids = self._stream(seed=3, n=20_000)
        q = evaluate_admission_decisions(
            ids, np.zeros(20_000, dtype=bool), 100.0, window_size=4_000
        )
        assert q.n_windows == 5
        assert q.window_size == 4_000

    def test_worst_window_finds_degradation(self):
        """A decision stream that goes bad mid-way must be localised."""
        ids = self._stream(seed=4, n=40_000)
        m = 300.0
        labels = one_time_labels(ids, m) == ONE_TIME
        decisions = labels.copy()
        # Corrupt verdicts in the third window only.
        decisions[20_000:30_000] = ~decisions[20_000:30_000]
        q = evaluate_admission_decisions(ids, decisions, m, window_size=10_000)
        assert q.worst_window() == 2

    def test_all_admit_recall_zero(self):
        ids = self._stream(seed=5)
        q = evaluate_admission_decisions(
            ids, np.zeros(ids.shape[0], dtype=bool), 200.0
        )
        scored = q.n_scored > 0
        assert (q.recall[scored] == 0.0).all()
        assert np.isnan(q.precision[scored]).all()  # no positive verdicts

    def test_invalid(self):
        with pytest.raises(ValueError):
            evaluate_admission_decisions(np.zeros(3), np.zeros(4, bool), 10)
        with pytest.raises(ValueError):
            evaluate_admission_decisions(np.zeros(3), np.zeros(3, bool), 0)
        with pytest.raises(ValueError):
            evaluate_admission_decisions(
                np.zeros(3), np.zeros(3, bool), 10, window_size=0
            )
