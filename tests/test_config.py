"""Tests for repro.config: latency constants and capacity scaling."""

import pytest

from repro.config import (
    DEFAULT_LATENCY,
    GiB,
    PAPER_CAPACITIES_GB,
    PAPER_TRACE_FOOTPRINT_GB,
    LatencyConstants,
    paper_capacity_fractions,
    paper_equivalent_bytes,
)


class TestLatencyConstants:
    def test_paper_defaults(self):
        assert DEFAULT_LATENCY.t_query == pytest.approx(1e-6)
        assert DEFAULT_LATENCY.t_classify == pytest.approx(0.4e-6)
        assert DEFAULT_LATENCY.t_hddr == pytest.approx(3e-3)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            LatencyConstants(t_ssdr=-1e-6)

    def test_frozen(self):
        with pytest.raises(Exception):
            DEFAULT_LATENCY.t_query = 0.5


class TestCapacityScaling:
    def test_paper_axis(self):
        assert PAPER_CAPACITIES_GB == (2, 4, 6, 8, 10, 12, 14, 16, 18, 20)

    def test_fractions_match_axis(self):
        fracs = paper_capacity_fractions()
        assert len(fracs) == 10
        for gb, f in zip(PAPER_CAPACITIES_GB, fracs):
            assert f == pytest.approx(gb / PAPER_TRACE_FOOTPRINT_GB)
        assert all(0 < f < 1 for f in fracs)

    def test_equivalent_bytes_roundtrip(self):
        footprint = 10 * GiB
        sc = paper_equivalent_bytes(0.01, footprint)
        assert sc.bytes == int(0.01 * footprint)
        assert sc.fraction_of_footprint == 0.01
        assert sc.paper_gb == pytest.approx(0.01 * PAPER_TRACE_FOOTPRINT_GB)

    def test_tiny_fraction_never_zero_bytes(self):
        assert paper_equivalent_bytes(1e-12, 100).bytes >= 1

    def test_str_mentions_both_scales(self):
        s = str(paper_equivalent_bytes(0.01, 10 * GiB))
        assert "GiB" in s and "paper scale" in s

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            paper_equivalent_bytes(0.0, 100)
        with pytest.raises(ValueError):
            paper_equivalent_bytes(0.1, 0)

    def test_footprint_constant_plausible(self):
        # ~14M objects × ~32 KB ≈ 427 GB.
        assert 300 < PAPER_TRACE_FOOTPRINT_GB < 600


class TestLazyPackageExports:
    def test_top_level_reexports(self):
        import repro

        assert repro.DEFAULT_LATENCY is DEFAULT_LATENCY
        assert callable(repro.run_experiment)
        assert callable(repro.generate_trace)
        assert callable(repro.simulate)
        assert callable(repro.make_policy)
        assert repro.GridRunner.__name__ == "GridRunner"

    def test_unknown_attribute(self):
        import repro

        with pytest.raises(AttributeError):
            repro.does_not_exist
