"""Naive Bayes classifiers (Gaussian and categorical likelihoods).

Table 1 shows Naive Bayes with very high recall but poor precision on the
one-time-access task — the conditional-independence assumption is badly
violated because the photo features are strongly correlated (e.g. photo age
and recency).  Both variants are provided so the workload's discretised
features can also be modelled natively.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import BaseEstimator, check_X_y, check_array, check_sample_weight

__all__ = ["GaussianNB", "CategoricalNB"]


class GaussianNB(BaseEstimator):
    """Gaussian likelihood per (class, feature) with weighted estimates."""

    def __init__(self, var_smoothing: float = 1e-9):
        if var_smoothing < 0:
            raise ValueError("var_smoothing must be non-negative")
        self.var_smoothing = var_smoothing

    def fit(self, X, y, sample_weight=None) -> "GaussianNB":
        X, y_raw = check_X_y(X, y)
        y = self._encode_labels(y_raw)
        w = check_sample_weight(sample_weight, X.shape[0])
        k = self.classes_.shape[0]
        d = X.shape[1]
        self.n_features_in_ = d

        self.theta_ = np.zeros((k, d))
        self.var_ = np.zeros((k, d))
        self.class_log_prior_ = np.zeros(k)
        w_total = w.sum()
        max_var = X.var(axis=0).max()
        eps = self.var_smoothing * max(max_var, 1e-12)
        for c in range(k):
            mask = y == c
            wc = w[mask]
            wsum = wc.sum()
            self.class_log_prior_[c] = np.log(wsum / w_total)
            mu = np.average(X[mask], axis=0, weights=wc)
            var = np.average((X[mask] - mu) ** 2, axis=0, weights=wc)
            self.theta_[c] = mu
            self.var_[c] = var + eps
        return self

    def _joint_log_likelihood(self, X: np.ndarray) -> np.ndarray:
        # log N(x | mu, var) summed over features, plus log prior.
        n = X.shape[0]
        k = self.classes_.shape[0]
        jll = np.empty((n, k))
        for c in range(k):
            diff = X - self.theta_[c]
            jll[:, c] = self.class_log_prior_[c] - 0.5 * np.sum(
                np.log(2.0 * np.pi * self.var_[c]) + diff * diff / self.var_[c],
                axis=1,
            )
        return jll

    def predict_proba(self, X) -> np.ndarray:
        self._check_fitted()
        X = check_array(X)
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"expected {self.n_features_in_} features, got {X.shape[1]}"
            )
        jll = self._joint_log_likelihood(X)
        jll -= jll.max(axis=1, keepdims=True)
        p = np.exp(jll)
        return p / p.sum(axis=1, keepdims=True)

    def predict(self, X) -> np.ndarray:
        return self.classes_[np.argmax(self.predict_proba(X), axis=1)]


class CategoricalNB(BaseEstimator):
    """Multinomial likelihood over non-negative integer-coded features.

    Suited to the paper's fully discretised feature vectors.  Uses Laplace
    smoothing ``alpha`` and tolerates unseen categories at predict time
    (they fall into the smoothed mass).
    """

    def __init__(self, alpha: float = 1.0):
        if alpha <= 0:
            raise ValueError("alpha must be positive")
        self.alpha = alpha

    def fit(self, X, y, sample_weight=None) -> "CategoricalNB":
        X, y_raw = check_X_y(X, y)
        Xi = X.astype(np.int64)
        if (Xi < 0).any() or not np.allclose(X, Xi):
            raise ValueError("CategoricalNB requires non-negative integer features")
        y = self._encode_labels(y_raw)
        w = check_sample_weight(sample_weight, X.shape[0])
        k = self.classes_.shape[0]
        d = Xi.shape[1]
        self.n_features_in_ = d
        self.n_categories_ = Xi.max(axis=0) + 1

        self.class_log_prior_ = np.zeros(k)
        self.feature_log_prob_: list[np.ndarray] = []
        w_total = w.sum()
        for c in range(k):
            self.class_log_prior_[c] = np.log(w[y == c].sum() / w_total)
        for j in range(d):
            n_cat = int(self.n_categories_[j])
            counts = np.zeros((k, n_cat))
            for c in range(k):
                mask = y == c
                counts[c] = np.bincount(
                    Xi[mask, j], weights=w[mask], minlength=n_cat
                )
            smoothed = counts + self.alpha
            self.feature_log_prob_.append(
                np.log(smoothed / smoothed.sum(axis=1, keepdims=True))
            )
        return self

    def _joint_log_likelihood(self, Xi: np.ndarray) -> np.ndarray:
        n = Xi.shape[0]
        jll = np.tile(self.class_log_prior_, (n, 1))
        for j, table in enumerate(self.feature_log_prob_):
            col = np.minimum(Xi[:, j], table.shape[1] - 1)
            jll += table[:, col].T
        return jll

    def predict_proba(self, X) -> np.ndarray:
        self._check_fitted()
        X = check_array(X)
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"expected {self.n_features_in_} features, got {X.shape[1]}"
            )
        Xi = np.maximum(X.astype(np.int64), 0)
        jll = self._joint_log_likelihood(Xi)
        jll -= jll.max(axis=1, keepdims=True)
        p = np.exp(jll)
        return p / p.sum(axis=1, keepdims=True)

    def predict(self, X) -> np.ndarray:
        return self.classes_[np.argmax(self.predict_proba(X), axis=1)]
