"""Shared estimator plumbing: input validation and the estimator protocol.

Keeping validation in one place means every classifier in :mod:`repro.ml`
behaves identically on malformed input, and the hot paths can assume clean,
contiguous ``float64`` arrays (per the HPC guideline of validating once at
the boundary and vectorising inside).
"""

from __future__ import annotations

import numpy as np

__all__ = ["BaseEstimator", "check_array", "check_X_y", "check_sample_weight"]


def check_array(X, *, name: str = "X") -> np.ndarray:
    """Coerce ``X`` to a contiguous 2-D float64 array.

    Raises ``ValueError`` for empty input, wrong dimensionality, or
    non-finite values, so estimator internals never have to re-check.
    """
    X = np.ascontiguousarray(X, dtype=np.float64)
    if X.ndim == 1:
        X = X.reshape(-1, 1)
    if X.ndim != 2:
        raise ValueError(f"{name} must be 2-D, got ndim={X.ndim}")
    if X.shape[0] == 0:
        raise ValueError(f"{name} has no samples")
    if not np.isfinite(X).all():
        raise ValueError(f"{name} contains NaN or Inf")
    return X


def check_X_y(X, y) -> tuple[np.ndarray, np.ndarray]:
    """Validate a feature matrix / label vector pair."""
    X = check_array(X)
    y = np.asarray(y)
    if y.ndim != 1:
        raise ValueError(f"y must be 1-D, got ndim={y.ndim}")
    if y.shape[0] != X.shape[0]:
        raise ValueError(
            f"X and y have inconsistent lengths: {X.shape[0]} vs {y.shape[0]}"
        )
    return X, y


def check_sample_weight(sample_weight, n: int) -> np.ndarray:
    """Return a validated positive weight vector of length ``n``.

    ``None`` means uniform weights.  Weights are normalised to sum to ``n``
    so that weighted impurity values stay on the same scale as unweighted
    ones (this keeps ``min_samples_leaf``-style thresholds meaningful).
    """
    if sample_weight is None:
        return np.ones(n, dtype=np.float64)
    w = np.ascontiguousarray(sample_weight, dtype=np.float64)
    if w.shape != (n,):
        raise ValueError(f"sample_weight must have shape ({n},), got {w.shape}")
    if (w < 0).any() or not np.isfinite(w).all():
        raise ValueError("sample_weight must be finite and non-negative")
    total = w.sum()
    if total <= 0:
        raise ValueError("sample_weight sums to zero")
    return w * (n / total)


class BaseEstimator:
    """Minimal estimator protocol shared by all classifiers.

    Subclasses implement ``fit`` and ``predict``; ``predict_proba`` is
    optional.  ``classes_`` is always the sorted array of training labels and
    predictions are reported in the original label space.
    """

    classes_: np.ndarray

    def fit(self, X, y, sample_weight=None):  # pragma: no cover - interface
        raise NotImplementedError

    def predict(self, X) -> np.ndarray:  # pragma: no cover - interface
        raise NotImplementedError

    def predict_one(self, x):
        """Scalar verdict for a single feature vector.

        The generic implementation pays the full batch machinery for one
        row; hot-path estimators (the CART tree, the cost-sensitive
        wrapper) override it with allocation-free walks, and
        :func:`repro.ml.fastpath.fast_predictor` picks the best available.
        """
        return self.predict(np.asarray(x, dtype=np.float64).reshape(1, -1))[0]

    def score(self, X, y) -> float:
        """Mean accuracy on the given test data."""
        y = np.asarray(y)
        return float(np.mean(self.predict(X) == y))

    def _check_fitted(self) -> None:
        if not hasattr(self, "classes_"):
            raise RuntimeError(
                f"{type(self).__name__} is not fitted; call fit() first"
            )

    def _encode_labels(self, y: np.ndarray) -> np.ndarray:
        """Store ``classes_`` and return labels as indices into it."""
        self.classes_, encoded = np.unique(y, return_inverse=True)
        if self.classes_.shape[0] < 2:
            raise ValueError("need at least two classes to fit a classifier")
        return encoded.astype(np.int64)

    def __repr__(self) -> str:
        params = {
            k: v
            for k, v in vars(self).items()
            if not k.endswith("_") and not k.startswith("_")
        }
        inner = ", ".join(f"{k}={v!r}" for k, v in params.items())
        return f"{type(self).__name__}({inner})"
