"""Feature preprocessing: encoders, scaling, and discretisation.

Section 3.2.3 of the paper discretises photo types and terminal types to
small integers and buckets time values at 10-minute granularity; KNN and the
neural network additionally need standardised inputs.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import check_array

__all__ = ["LabelEncoder", "StandardScaler", "UniformDiscretizer"]


class LabelEncoder:
    """Map arbitrary hashable labels to contiguous integers ``0..k-1``."""

    def fit(self, values) -> "LabelEncoder":
        self.classes_ = np.unique(np.asarray(values))
        self._lut = {v: i for i, v in enumerate(self.classes_.tolist())}
        return self

    def transform(self, values) -> np.ndarray:
        values = np.asarray(values)
        try:
            return np.fromiter(
                (self._lut[v] for v in values.tolist()),
                dtype=np.int64,
                count=values.shape[0],
            )
        except KeyError as exc:  # surface *which* label was unseen
            raise ValueError(f"unseen label: {exc.args[0]!r}") from exc

    def fit_transform(self, values) -> np.ndarray:
        return self.fit(values).transform(values)

    def inverse_transform(self, indices) -> np.ndarray:
        indices = np.asarray(indices, dtype=np.int64)
        if indices.min(initial=0) < 0 or indices.max(initial=0) >= len(self.classes_):
            raise ValueError("index out of range for inverse_transform")
        return self.classes_[indices]


class StandardScaler:
    """Zero-mean / unit-variance scaling; constant columns are left at zero."""

    def fit(self, X) -> "StandardScaler":
        X = check_array(X)
        self.mean_ = X.mean(axis=0)
        std = X.std(axis=0)
        # A constant feature carries no information: scale by 1 to avoid 0/0.
        std[std == 0] = 1.0
        self.scale_ = std
        return self

    def transform(self, X) -> np.ndarray:
        X = check_array(X)
        if X.shape[1] != self.mean_.shape[0]:
            raise ValueError(
                f"expected {self.mean_.shape[0]} features, got {X.shape[1]}"
            )
        return (X - self.mean_) / self.scale_

    def fit_transform(self, X) -> np.ndarray:
        return self.fit(X).transform(X)


class UniformDiscretizer:
    """Fixed-width binning, e.g. the paper's 10-minute time buckets.

    Values are floored into bins of width ``bin_width`` starting at
    ``origin``; output is an int64 bin index, clipped to ``max_bins`` when
    given (the tail bucket absorbs outliers, mirroring how a bounded feature
    table would behave in production).
    """

    def __init__(self, bin_width: float, origin: float = 0.0, max_bins: int | None = None):
        if bin_width <= 0:
            raise ValueError("bin_width must be positive")
        if max_bins is not None and max_bins < 1:
            raise ValueError("max_bins must be >= 1")
        self.bin_width = float(bin_width)
        self.origin = float(origin)
        self.max_bins = max_bins

    def transform(self, values) -> np.ndarray:
        values = np.asarray(values, dtype=np.float64)
        bins = np.floor((values - self.origin) / self.bin_width).astype(np.int64)
        bins = np.maximum(bins, 0)
        if self.max_bins is not None:
            bins = np.minimum(bins, self.max_bins - 1)
        return bins

    __call__ = transform
