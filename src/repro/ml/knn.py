"""Brute-force k-nearest-neighbours with internal standardisation.

Distances are computed blockwise with the expanded form
``|a-b|² = |a|² + |b|² − 2a·b`` so memory stays bounded for large test sets
while the inner product runs through BLAS (the vectorisation guideline for
this kind of all-pairs kernel).
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import BaseEstimator, check_X_y, check_array, check_sample_weight
from repro.ml.preprocessing import StandardScaler

__all__ = ["KNeighborsClassifier"]


class KNeighborsClassifier(BaseEstimator):
    """KNN with majority (optionally distance-weighted) voting.

    Parameters
    ----------
    n_neighbors:
        Number of neighbours ``k``.
    weights:
        ``"uniform"`` or ``"distance"`` (inverse-distance voting).
    standardize:
        Standardise features before distance computation (recommended for
        the paper's mixed-scale features; on by default).
    block_size:
        Rows of the query matrix processed per distance block.
    """

    def __init__(
        self,
        n_neighbors: int = 5,
        *,
        weights: str = "uniform",
        standardize: bool = True,
        block_size: int = 2048,
    ):
        if n_neighbors < 1:
            raise ValueError("n_neighbors must be >= 1")
        if weights not in ("uniform", "distance"):
            raise ValueError(f"unknown weights: {weights!r}")
        if block_size < 1:
            raise ValueError("block_size must be >= 1")
        self.n_neighbors = n_neighbors
        self.weights = weights
        self.standardize = standardize
        self.block_size = block_size

    def fit(self, X, y, sample_weight=None) -> "KNeighborsClassifier":
        X, y_raw = check_X_y(X, y)
        y = self._encode_labels(y_raw)
        self._w = check_sample_weight(sample_weight, X.shape[0])
        if self.n_neighbors > X.shape[0]:
            raise ValueError(
                f"n_neighbors={self.n_neighbors} > n_samples={X.shape[0]}"
            )
        self._scaler = StandardScaler().fit(X) if self.standardize else None
        self._X = self._scaler.transform(X) if self._scaler else X
        self._sq_norms = np.einsum("ij,ij->i", self._X, self._X)
        self._y = y
        self.n_features_in_ = X.shape[1]
        return self

    def predict_proba(self, X) -> np.ndarray:
        self._check_fitted()
        X = check_array(X)
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"expected {self.n_features_in_} features, got {X.shape[1]}"
            )
        if self._scaler:
            X = self._scaler.transform(X)
        k_classes = self.classes_.shape[0]
        knn = self.n_neighbors
        out = np.empty((X.shape[0], k_classes), dtype=np.float64)
        for start in range(0, X.shape[0], self.block_size):
            Q = X[start : start + self.block_size]
            d2 = (
                np.einsum("ij,ij->i", Q, Q)[:, None]
                + self._sq_norms[None, :]
                - 2.0 * (Q @ self._X.T)
            )
            np.maximum(d2, 0.0, out=d2)
            nbr = np.argpartition(d2, knn - 1, axis=1)[:, :knn]
            rows = np.arange(Q.shape[0])[:, None]
            votes = self._w[nbr]
            if self.weights == "distance":
                votes = votes / (np.sqrt(d2[rows, nbr]) + 1e-12)
            labels = self._y[nbr]
            block = np.zeros((Q.shape[0], k_classes))
            for c in range(k_classes):
                block[:, c] = np.where(labels == c, votes, 0.0).sum(axis=1)
            out[start : start + Q.shape[0]] = block / block.sum(
                axis=1, keepdims=True
            )
        return out

    def predict(self, X) -> np.ndarray:
        return self.classes_[np.argmax(self.predict_proba(X), axis=1)]
