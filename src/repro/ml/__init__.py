"""From-scratch machine-learning substrate used by the caching classifier.

The paper compares seven mainstream classifiers (Table 1) and finally selects
a CART decision tree with cost-sensitive learning.  scikit-learn is not a
dependency of this reproduction: every estimator here is implemented directly
on NumPy, following the textbook formulations the paper cites (Alpaydin,
*Introduction to Machine Learning*; Breiman et al., *Classification and
Regression Trees*; Elkan, *The Foundations of Cost-Sensitive Learning*).
A from-scratch gradient-boosting classifier (:mod:`repro.ml.gbdt`) is
included as the post-2018 baseline the learned-cache literature moved to.

Public API
----------
Estimators follow a small sklearn-like protocol: ``fit(X, y[, sample_weight])``,
``predict(X)`` and, where meaningful, ``predict_proba(X)``.  All estimators
accept 2-D float arrays and binary or multiclass integer labels.
"""

from repro.ml.base import BaseEstimator, check_X_y, check_array
from repro.ml.metrics import (
    accuracy_score,
    auc,
    confusion_matrix,
    f1_score,
    precision_score,
    recall_score,
    roc_auc_score,
    roc_curve,
    classification_report,
)
from repro.ml.tree import DecisionTreeClassifier, DecisionTreeRegressor
from repro.ml.forest import RandomForestClassifier
from repro.ml.adaboost import AdaBoostClassifier
from repro.ml.naive_bayes import GaussianNB, CategoricalNB
from repro.ml.knn import KNeighborsClassifier
from repro.ml.logistic import LogisticRegression
from repro.ml.neural_net import MLPClassifier
from repro.ml.gbdt import GradientBoostingClassifier, RegressionTree
from repro.ml.cost_sensitive import CostMatrix, CostSensitiveClassifier
from repro.ml.fastpath import (
    CompiledPredictor,
    compile_tree_arrays,
    fast_predictor,
)
from repro.ml.feature_selection import (
    information_gain,
    greedy_forward_selection,
)
from repro.ml.model_selection import (
    GridSearchCV,
    KFold,
    StratifiedKFold,
    cross_val_score,
    cross_validate_metrics,
    train_test_split,
)
from repro.ml.preprocessing import (
    LabelEncoder,
    StandardScaler,
    UniformDiscretizer,
)
from repro.ml.flashiness import LearnedFlashiness, learned_flashiness_for_trace

__all__ = [
    "LearnedFlashiness",
    "learned_flashiness_for_trace",
    "BaseEstimator",
    "check_X_y",
    "check_array",
    "accuracy_score",
    "auc",
    "confusion_matrix",
    "f1_score",
    "precision_score",
    "recall_score",
    "roc_auc_score",
    "roc_curve",
    "classification_report",
    "DecisionTreeClassifier",
    "DecisionTreeRegressor",
    "RandomForestClassifier",
    "AdaBoostClassifier",
    "GaussianNB",
    "CategoricalNB",
    "KNeighborsClassifier",
    "LogisticRegression",
    "MLPClassifier",
    "GradientBoostingClassifier",
    "RegressionTree",
    "CompiledPredictor",
    "compile_tree_arrays",
    "fast_predictor",
    "CostMatrix",
    "CostSensitiveClassifier",
    "information_gain",
    "greedy_forward_selection",
    "GridSearchCV",
    "KFold",
    "StratifiedKFold",
    "cross_val_score",
    "cross_validate_metrics",
    "train_test_split",
    "LabelEncoder",
    "StandardScaler",
    "UniformDiscretizer",
]
