"""Gradient-boosted decision trees (binary, logistic loss).

Not part of the paper's 2018 comparison, but the model family that later
learned-cache work (e.g. LRB's admission/eviction models) settled on — so
the natural "what would we deploy today" row next to Table 1.

Implementation: classic Friedman GBM with

* small **regression trees** fit to the negative gradient (residuals
  ``y − p`` of the logistic loss), grown depth-first with vectorised
  variance-reduction split search;
* **Newton leaf values** ``Σr / Σ p(1−p)`` (one second-order step per
  leaf), the standard LogitBoost-style refinement;
* shrinkage (``learning_rate``) and optional row subsampling.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import BaseEstimator, check_X_y, check_array, check_sample_weight

__all__ = ["GradientBoostingClassifier", "RegressionTree"]

_LEAF = -1


class RegressionTree:
    """Depth-limited CART regression tree (squared error).

    Supports per-sample weights and an auxiliary ``hessian`` array so
    boosting can place Newton values in the leaves.  Public, because a
    from-scratch regression tree is useful on its own.
    """

    def __init__(
        self,
        *,
        max_depth: int = 3,
        min_samples_leaf: int = 5,
    ):
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        if min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be >= 1")
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf

    def fit(self, X, y, sample_weight=None, hessian=None) -> "RegressionTree":
        X = check_array(X)
        y = np.ascontiguousarray(y, dtype=np.float64)
        if y.shape[0] != X.shape[0]:
            raise ValueError("X and y lengths differ")
        w = check_sample_weight(sample_weight, X.shape[0])
        h = (
            np.ascontiguousarray(hessian, dtype=np.float64)
            if hessian is not None
            else np.ones_like(y)
        )
        if h.shape != y.shape:
            raise ValueError("hessian must match y")
        self.n_features_in_ = X.shape[1]

        feature: list[int] = []
        threshold: list[float] = []
        left: list[int] = []
        right: list[int] = []
        value: list[float] = []

        def leaf_value(idx) -> float:
            denom = float(np.sum(w[idx] * h[idx]))
            if denom <= 1e-12:
                return 0.0
            return float(np.sum(w[idx] * y[idx]) / denom)

        def build(idx: np.ndarray, depth: int) -> int:
            node = len(feature)
            feature.append(_LEAF)
            threshold.append(0.0)
            left.append(_LEAF)
            right.append(_LEAF)
            value.append(leaf_value(idx))
            if depth >= self.max_depth or idx.shape[0] < 2 * self.min_samples_leaf:
                return node
            split = self._best_split(X, y, w, idx)
            if split is None:
                return node
            j, thr = split
            mask = X[idx, j] <= thr
            feature[node] = j
            threshold[node] = thr
            left[node] = build(idx[mask], depth + 1)
            right[node] = build(idx[~mask], depth + 1)
            return node

        build(np.arange(X.shape[0]), 0)
        self.feature_ = np.asarray(feature, dtype=np.int64)
        self.threshold_ = np.asarray(threshold)
        self.children_left_ = np.asarray(left, dtype=np.int64)
        self.children_right_ = np.asarray(right, dtype=np.int64)
        self.value_ = np.asarray(value)
        return self

    def _best_split(self, X, y, w, idx):
        """Max weighted-SSE reduction over all features; None if no gain."""
        y_node = y[idx]
        w_node = w[idx]
        total_w = w_node.sum()
        total_wy = float(np.dot(w_node, y_node))
        base_sse_term = total_wy * total_wy / total_w
        min_leaf = self.min_samples_leaf

        best_gain = 1e-12
        best = None
        for j in range(X.shape[1]):
            v = X[idx, j]
            order = np.argsort(v, kind="stable")
            vs = v[order]
            ws = w_node[order]
            wys = (w_node * y_node)[order]
            cut = np.nonzero(vs[:-1] != vs[1:])[0]
            if min_leaf > 1:
                n = idx.shape[0]
                cut = cut[(cut + 1 >= min_leaf) & (n - cut - 1 >= min_leaf)]
            if cut.shape[0] == 0:
                continue
            cw = np.cumsum(ws)[cut]
            cwy = np.cumsum(wys)[cut]
            rw = total_w - cw
            ok = (cw > 0) & (rw > 0)
            if not ok.any():
                continue
            gain = (
                cwy[ok] ** 2 / cw[ok]
                + (total_wy - cwy[ok]) ** 2 / rw[ok]
                - base_sse_term
            )
            pos = int(np.argmax(gain))
            if gain[pos] > best_gain:
                i = cut[ok][pos]
                thr = 0.5 * (vs[i] + vs[i + 1])
                if thr >= vs[i + 1]:
                    thr = vs[i]
                best_gain = float(gain[pos])
                best = (int(j), float(thr))
        return best

    def predict(self, X) -> np.ndarray:
        X = check_array(X)
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"expected {self.n_features_in_} features, got {X.shape[1]}"
            )
        node = np.zeros(X.shape[0], dtype=np.int64)
        while True:
            feat = self.feature_[node]
            active = feat != _LEAF
            if not active.any():
                return self.value_[node]
            rows = np.nonzero(active)[0]
            go_left = X[rows, feat[rows]] <= self.threshold_[node[rows]]
            node[rows] = np.where(
                go_left,
                self.children_left_[node[rows]],
                self.children_right_[node[rows]],
            )


def _sigmoid(z: np.ndarray) -> np.ndarray:
    out = np.empty_like(z)
    pos = z >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-z[pos]))
    ez = np.exp(z[~pos])
    out[~pos] = ez / (1.0 + ez)
    return out


class GradientBoostingClassifier(BaseEstimator):
    """Binary GBM with logistic loss and Newton leaves.

    Parameters
    ----------
    n_estimators / learning_rate:
        Boosting rounds and shrinkage.
    max_depth / min_samples_leaf:
        Capacity of each regression tree.
    subsample:
        Row-sampling fraction per round (stochastic gradient boosting).
    """

    def __init__(
        self,
        n_estimators: int = 50,
        *,
        learning_rate: float = 0.2,
        max_depth: int = 3,
        min_samples_leaf: int = 5,
        subsample: float = 1.0,
        rng: np.random.Generator | int | None = None,
    ):
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if not 0.0 < subsample <= 1.0:
            raise ValueError("subsample must be in (0, 1]")
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.subsample = subsample
        self.rng = rng

    def fit(self, X, y, sample_weight=None) -> "GradientBoostingClassifier":
        X, y_raw = check_X_y(X, y)
        y = self._encode_labels(y_raw).astype(np.float64)
        if self.classes_.shape[0] != 2:
            raise ValueError("GradientBoostingClassifier is binary-only")
        w = check_sample_weight(sample_weight, X.shape[0])
        rng = np.random.default_rng(self.rng)
        n = X.shape[0]
        self.n_features_in_ = X.shape[1]

        p0 = float(np.clip(np.average(y, weights=w), 1e-6, 1 - 1e-6))
        self.init_score_ = float(np.log(p0 / (1.0 - p0)))
        F = np.full(n, self.init_score_)
        self.estimators_: list[RegressionTree] = []

        for _ in range(self.n_estimators):
            p = _sigmoid(F)
            residual = y - p
            hessian = np.maximum(p * (1.0 - p), 1e-6)
            if self.subsample < 1.0:
                take = rng.random(n) < self.subsample
                if take.sum() < 2 * self.min_samples_leaf:
                    take = np.ones(n, dtype=bool)
            else:
                take = slice(None)
            tree = RegressionTree(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
            )
            tree.fit(
                X[take],
                residual[take],
                sample_weight=w[take] if self.subsample < 1.0 else w,
                hessian=hessian[take],
            )
            self.estimators_.append(tree)
            F = F + self.learning_rate * tree.predict(X)
        return self

    def decision_function(self, X) -> np.ndarray:
        self._check_fitted()
        X = check_array(X)
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"expected {self.n_features_in_} features, got {X.shape[1]}"
            )
        F = np.full(X.shape[0], self.init_score_)
        for tree in self.estimators_:
            F = F + self.learning_rate * tree.predict(X)
        return F

    def predict_proba(self, X) -> np.ndarray:
        p1 = _sigmoid(self.decision_function(X))
        return np.column_stack([1.0 - p1, p1])

    def predict(self, X) -> np.ndarray:
        return self.classes_[
            (self.decision_function(X) >= 0).astype(np.int64)
        ]

    # ------------------------------------------------------------- fast path

    def compile_decision_function(self):
        """Compiled margin functions, bit-identical to ``decision_function``.

        Every regression tree is code-generated through
        :func:`repro.ml.fastpath.compile_tree_arrays` (leaf values are the
        labels, so the compiled walkers return exact ``value_`` entries);
        the ensemble is then accumulated in the *same* float order as the
        reference — ``F = F + learning_rate * tree(x)``, one tree at a
        time from ``init_score_`` — so both the scalar and batch twins
        reproduce the reference margins to the last bit.

        Returns a :class:`~repro.ml.fastpath.CompiledPredictor` whose
        ``predict_one``/``predict`` yield raw margins, not class labels.
        """
        from repro.ml.fastpath import CompiledPredictor, compile_tree_arrays

        self._check_fitted()
        trees = [
            compile_tree_arrays(
                t.feature_,
                t.threshold_,
                t.children_left_,
                t.children_right_,
                t.value_,
                out_dtype=np.float64,
            )
            for t in self.estimators_
        ]
        ones = tuple(t.predict_one for t in trees)
        batches = tuple(t.predict for t in trees)
        init = self.init_score_
        lr = self.learning_rate

        def decision_one(x):
            F = init
            for f in ones:
                F = F + lr * f(x)
            return F

        def decision_batch(X):
            X = np.asarray(X, dtype=np.float64)
            F = np.full(X.shape[0], init)
            for f in batches:
                F = F + lr * f(X)
            return F

        return CompiledPredictor(
            predict_one=decision_one,
            predict=decision_batch,
            compiled=all(t.compiled for t in trees),
            n_nodes=sum(t.n_nodes for t in trees),
        )

    def compile_proba(self):
        """Compiled positive-class posterior (``predict_proba[:, 1]``).

        The scalar twin pushes its margin through :func:`_sigmoid` on a
        one-element array so the exact same elementwise exp is used as the
        batch/reference path — ``math.exp`` may differ from ``np.exp`` in
        the last ulp, which would break bit-parity at the threshold.
        """
        from repro.ml.fastpath import CompiledPredictor

        df = self.compile_decision_function()
        decision_one = df.predict_one
        decision_batch = df.predict

        def proba_one(x):
            return float(_sigmoid(np.array([decision_one(x)]))[0])

        def proba_batch(X):
            return _sigmoid(decision_batch(X))

        return CompiledPredictor(
            predict_one=proba_one,
            predict=proba_batch,
            compiled=df.compiled,
            n_nodes=df.n_nodes,
        )

    def compile_predictor(self):
        """Compiled class predictions, bit-identical to ``predict``."""
        from repro.ml.fastpath import CompiledPredictor

        df = self.compile_decision_function()
        decision_one = df.predict_one
        decision_batch = df.predict
        classes = self.classes_
        neg, pos = classes.tolist()

        def predict_one(x):
            return pos if decision_one(x) >= 0 else neg

        def predict(X):
            return classes[(decision_batch(X) >= 0).astype(np.int64)]

        return CompiledPredictor(
            predict_one=predict_one,
            predict=predict,
            compiled=df.compiled,
            n_nodes=df.n_nodes,
        )
