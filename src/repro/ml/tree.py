"""CART decision tree (Breiman et al. 1984), the paper's chosen classifier.

Design notes
------------
* Binary, axis-aligned splits on numeric features; the paper's features are
  discretised integers, which CART handles as ordered values.
* **Best-first growth with a split budget.**  §3.1.2 caps the number of
  *splitting times* at 30 (≈3× the feature count) to control over-fitting.
  We grow the tree by repeatedly applying the globally best remaining split
  (a max-heap on weighted impurity decrease), so a budget of 30 yields the
  30 most valuable splits rather than an arbitrary breadth-first prefix.
* **Sample weights** feed directly into the impurity computation, which is
  how :class:`repro.ml.cost_sensitive.CostSensitiveClassifier` implements the
  paper's cost matrix (Table 4).
* Split search is fully vectorised: one argsort + cumulative class-weight
  pass per (node, feature), so fitting is O(d · n log n) per tree level.

The fitted tree is flattened into parallel NumPy arrays
(``children_left/children_right/feature/threshold/value``) and prediction
walks all rows level-by-level with boolean masks — no per-row Python loop.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

from repro.ml.base import BaseEstimator, check_X_y, check_array, check_sample_weight

__all__ = ["DecisionTreeClassifier", "DecisionTreeRegressor"]

_LEAF = -1


def _node_impurity(class_w: np.ndarray, criterion: str) -> float:
    """Impurity of a node given its per-class weight totals."""
    total = class_w.sum()
    if total <= 0:
        return 0.0
    p = class_w / total
    if criterion == "gini":
        return float(1.0 - np.dot(p, p))
    # entropy: 0·log(0) := 0
    nz = p[p > 0]
    return float(-np.dot(nz, np.log2(nz)))


@dataclass
class _Candidate:
    """Best split found for a pending node, ordered by impurity decrease."""

    decrease: float
    node_id: int
    feature: int
    threshold: float
    indices: np.ndarray = field(repr=False)
    depth: int = 0

    def __lt__(self, other: "_Candidate") -> bool:  # max-heap via negation
        return self.decrease > other.decrease


class DecisionTreeClassifier(BaseEstimator):
    """CART classifier with a best-first split budget.

    Parameters
    ----------
    criterion:
        ``"gini"`` (CART default, used by the paper) or ``"entropy"``.
    max_splits:
        Maximum number of internal nodes; the paper uses 30.  ``None`` means
        unlimited.
    max_depth, min_samples_split, min_samples_leaf, min_impurity_decrease:
        Standard pre-pruning knobs.
    max_features:
        If set, each split considers a random subset of this many features
        (used by :class:`~repro.ml.forest.RandomForestClassifier`).
    rng:
        Seed or Generator for feature subsampling.
    """

    def __init__(
        self,
        *,
        criterion: str = "gini",
        max_splits: int | None = 30,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        min_impurity_decrease: float = 0.0,
        max_features: int | None = None,
        rng: np.random.Generator | int | None = None,
    ):
        if criterion not in ("gini", "entropy"):
            raise ValueError(f"unknown criterion: {criterion!r}")
        if max_splits is not None and max_splits < 1:
            raise ValueError("max_splits must be >= 1 or None")
        if min_samples_split < 2:
            raise ValueError("min_samples_split must be >= 2")
        if min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be >= 1")
        self.criterion = criterion
        self.max_splits = max_splits
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.min_impurity_decrease = min_impurity_decrease
        self.max_features = max_features
        self.rng = rng

    # ------------------------------------------------------------------ fit

    def fit(self, X, y, sample_weight=None) -> "DecisionTreeClassifier":
        X, y_raw = check_X_y(X, y)
        y = self._encode_labels(y_raw)
        w = check_sample_weight(sample_weight, X.shape[0])
        k = self.classes_.shape[0]
        rng = np.random.default_rng(self.rng)

        n_features = X.shape[1]
        if self.max_features is not None and not (
            1 <= self.max_features <= n_features
        ):
            raise ValueError(
                f"max_features must be in [1, {n_features}], got {self.max_features}"
            )
        self.n_features_in_ = n_features

        # Growable node storage; finalised into arrays at the end.
        feature: list[int] = []
        threshold: list[float] = []
        left: list[int] = []
        right: list[int] = []
        value: list[np.ndarray] = []
        depth_of: list[int] = []
        importances = np.zeros(n_features, dtype=np.float64)

        total_weight = w.sum()

        def new_node(indices: np.ndarray, depth: int) -> int:
            node_id = len(feature)
            feature.append(_LEAF)
            threshold.append(0.0)
            left.append(_LEAF)
            right.append(_LEAF)
            class_w = np.bincount(y[indices], weights=w[indices], minlength=k)
            value.append(class_w)
            depth_of.append(depth)
            return node_id

        heap: list[_Candidate] = []

        def consider(node_id: int, indices: np.ndarray, depth: int) -> None:
            """Find this node's best split and push it on the heap."""
            if indices.shape[0] < self.min_samples_split:
                return
            if self.max_depth is not None and depth >= self.max_depth:
                return
            cand = self._best_split(X, y, w, indices, k, rng)
            if cand is None:
                return
            decrease, feat, thr = cand
            if decrease <= self.min_impurity_decrease:
                return
            heapq.heappush(
                heap, _Candidate(decrease, node_id, feat, thr, indices, depth)
            )

        root_idx = np.arange(X.shape[0])
        new_node(root_idx, 0)
        consider(0, root_idx, 0)

        splits_done = 0
        budget = self.max_splits if self.max_splits is not None else np.inf
        while heap and splits_done < budget:
            cand = heapq.heappop(heap)
            go_left = X[cand.indices, cand.feature] <= cand.threshold
            li, ri = cand.indices[go_left], cand.indices[~go_left]
            # The candidate was validated at push time; leaf minima still hold.
            feature[cand.node_id] = cand.feature
            threshold[cand.node_id] = cand.threshold
            lid = new_node(li, cand.depth + 1)
            rid = new_node(ri, cand.depth + 1)
            left[cand.node_id] = lid
            right[cand.node_id] = rid
            importances[cand.feature] += cand.decrease / total_weight
            splits_done += 1
            consider(lid, li, cand.depth + 1)
            consider(rid, ri, cand.depth + 1)

        self.feature_ = np.asarray(feature, dtype=np.int64)
        self.threshold_ = np.asarray(threshold, dtype=np.float64)
        self.children_left_ = np.asarray(left, dtype=np.int64)
        self.children_right_ = np.asarray(right, dtype=np.int64)
        self.value_ = np.vstack(value)
        self.node_depth_ = np.asarray(depth_of, dtype=np.int64)
        self.node_count_ = len(feature)
        self.n_splits_ = splits_done
        total_imp = importances.sum()
        self.feature_importances_ = (
            importances / total_imp if total_imp > 0 else importances
        )
        self._walk_plan = None  # predict_one cache — rebuild lazily
        return self

    def _best_split(
        self,
        X: np.ndarray,
        y: np.ndarray,
        w: np.ndarray,
        indices: np.ndarray,
        k: int,
        rng: np.random.Generator,
    ) -> tuple[float, int, float] | None:
        """Best (decrease, feature, threshold) over candidate features.

        Returns ``None`` when no valid split exists (pure node, constant
        features, or ``min_samples_leaf`` unsatisfiable).
        """
        y_node = y[indices]
        w_node = w[indices]
        class_w = np.bincount(y_node, weights=w_node, minlength=k)
        parent_imp = _node_impurity(class_w, self.criterion)
        if parent_imp == 0.0:
            return None
        w_total = w_node.sum()
        n = indices.shape[0]
        min_leaf = self.min_samples_leaf

        if self.max_features is not None and self.max_features < X.shape[1]:
            feats = rng.choice(X.shape[1], size=self.max_features, replace=False)
        else:
            feats = np.arange(X.shape[1])

        onehot_w = np.zeros((n, k), dtype=np.float64)
        onehot_w[np.arange(n), y_node] = w_node

        best: tuple[float, int, float] | None = None
        for j in feats:
            v = X[indices, j]
            order = np.argsort(v, kind="stable")
            vs = v[order]
            # Split positions: boundaries between distinct adjacent values,
            # honouring the per-leaf sample minimum.
            cut = np.nonzero(vs[:-1] != vs[1:])[0]
            if min_leaf > 1:
                cut = cut[(cut + 1 >= min_leaf) & (n - cut - 1 >= min_leaf)]
            if cut.shape[0] == 0:
                continue

            cw = np.cumsum(onehot_w[order], axis=0)  # (n, k)
            left_cw = cw[cut]
            right_cw = class_w - left_cw
            wl = left_cw.sum(axis=1)
            wr = w_total - wl
            ok = (wl > 0) & (wr > 0)
            if not ok.any():
                continue
            left_cw, right_cw = left_cw[ok], right_cw[ok]
            wl, wr = wl[ok], wr[ok]
            cut = cut[ok]

            if self.criterion == "gini":
                imp_l = 1.0 - np.einsum("ij,ij->i", left_cw, left_cw) / (wl * wl)
                imp_r = 1.0 - np.einsum("ij,ij->i", right_cw, right_cw) / (wr * wr)
            else:
                pl = left_cw / wl[:, None]
                pr = right_cw / wr[:, None]
                with np.errstate(divide="ignore", invalid="ignore"):
                    imp_l = -np.nansum(
                        np.where(pl > 0, pl * np.log2(pl), 0.0), axis=1
                    )
                    imp_r = -np.nansum(
                        np.where(pr > 0, pr * np.log2(pr), 0.0), axis=1
                    )
            child_imp = (wl * imp_l + wr * imp_r) / w_total
            decrease = (parent_imp - child_imp) * (w_total / w.sum())
            best_pos = int(np.argmax(decrease))
            d = float(decrease[best_pos])
            if best is None or d > best[0]:
                i = cut[best_pos]
                thr = 0.5 * (vs[i] + vs[i + 1])
                # Guard against midpoint rounding onto the right value.
                if thr >= vs[i + 1]:
                    thr = vs[i]
                best = (d, int(j), float(thr))
        return best

    # -------------------------------------------------------------- predict

    def _leaf_ids(self, X: np.ndarray) -> np.ndarray:
        """Vectorised tree descent: leaf node id for every row."""
        node = np.zeros(X.shape[0], dtype=np.int64)
        while True:
            feat = self.feature_[node]
            active = feat != _LEAF
            if not active.any():
                return node
            rows = np.nonzero(active)[0]
            f = feat[rows]
            thr = self.threshold_[node[rows]]
            go_left = X[rows, f] <= thr
            nxt = np.where(
                go_left,
                self.children_left_[node[rows]],
                self.children_right_[node[rows]],
            )
            node[rows] = nxt

    def predict_proba(self, X) -> np.ndarray:
        self._check_fitted()
        X = check_array(X)
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"expected {self.n_features_in_} features, got {X.shape[1]}"
            )
        dist = self.value_[self._leaf_ids(X)]
        totals = dist.sum(axis=1, keepdims=True)
        totals[totals == 0] = 1.0
        return dist / totals

    def predict(self, X) -> np.ndarray:
        proba = self.predict_proba(X)
        return self.classes_[np.argmax(proba, axis=1)]

    # -------------------------------------------------- single-row hot path

    def _node_labels(self) -> np.ndarray:
        """Per-node majority label (what each node reports as a leaf)."""
        return self.classes_[np.argmax(self.value_, axis=1)]

    def _single_plan(self) -> tuple:
        """Flattened tree as plain Python lists — the zero-overhead walk.

        NumPy scalar indexing costs ~10× a list lookup, so the per-miss
        path (:meth:`predict_one`) walks cached ``tolist()`` copies.  The
        cache is invalidated by :meth:`fit` and rebuilt lazily.
        """
        plan = getattr(self, "_walk_plan", None)
        if plan is None:
            plan = (
                self.feature_.tolist(),
                self.threshold_.tolist(),
                self.children_left_.tolist(),
                self.children_right_.tolist(),
                self._node_labels().tolist(),
            )
            self._walk_plan = plan
        return plan

    def predict_one(self, x):
        """Verdict for a single row — iterative walk, zero allocation.

        ``x`` may be any indexable of at least ``n_features_in_`` floats
        (list, tuple, 1-D array).  Exactly equivalent to
        ``predict(x.reshape(1, -1))[0]`` at a fraction of the cost; no
        validation is performed — this is the per-miss hot path.
        """
        self._check_fitted()
        feature, threshold, left, right, labels = self._single_plan()
        node = 0
        f = feature[0]
        while f >= 0:
            node = left[node] if x[f] <= threshold[node] else right[node]
            f = feature[node]
        return labels[node]

    def predict_proba_one(self, x) -> np.ndarray:
        """Class distribution at the leaf ``x`` lands in (single row)."""
        self._check_fitted()
        feature, threshold, left, right, _ = self._single_plan()
        node = 0
        f = feature[0]
        while f >= 0:
            node = left[node] if x[f] <= threshold[node] else right[node]
            f = feature[node]
        dist = self.value_[node]
        total = dist.sum()
        return dist / total if total > 0 else dist

    def compile_predictor(self, leaf_labels=None):
        """Code-generate this fitted tree into native Python functions.

        Returns a :class:`~repro.ml.fastpath.CompiledPredictor` whose
        ``predict_one`` is nested ``if``/``else`` source (one float
        comparison per level, ≥5× faster than the batch path on single
        rows) and whose ``predict`` is the vectorised ``numpy.where``
        twin.  ``leaf_labels`` overrides the per-node labels, letting
        cost-sensitive wrappers bake their decision rule into the code.
        """
        from repro.ml.fastpath import compile_tree_arrays

        self._check_fitted()
        if leaf_labels is None:
            leaf_labels = self._node_labels()
        return compile_tree_arrays(
            self.feature_,
            self.threshold_,
            self.children_left_,
            self.children_right_,
            leaf_labels,
            out_dtype=self.classes_.dtype,
        )

    # ------------------------------------------------------------ inspection

    def get_depth(self) -> int:
        """Height of the fitted tree (paper reports ≈5 in practice)."""
        self._check_fitted()
        return int(self.node_depth_.max())

    def get_n_leaves(self) -> int:
        self._check_fitted()
        return int(np.sum(self.feature_ == _LEAF))

    def decision_path_lengths(self, X) -> np.ndarray:
        """Comparisons needed per row — the paper's 'five comparisons' claim."""
        self._check_fitted()
        X = check_array(X)
        return self.node_depth_[self._leaf_ids(X)]

    def cost_complexity_prune(self, ccp_alpha: float) -> "DecisionTreeClassifier":
        """Weakest-link pruning (Breiman et al., ch. 3): return a pruned copy.

        A subtree is collapsed into a leaf when its risk reduction per
        extra leaf, ``g(t) = (R(t) − R(T_t)) / (|leaves(T_t)| − 1)``, does
        not exceed ``ccp_alpha``.  The paper controls over-fitting with the
        split budget instead; pruning is the textbook alternative and
        composes with it.
        """
        self._check_fitted()
        if ccp_alpha < 0:
            raise ValueError("ccp_alpha must be non-negative")

        total_weight = self.value_[0].sum()

        def leaf_risk(node: int) -> float:
            dist = self.value_[node]
            return float(dist.sum() - dist.max()) / total_weight

        # Bottom-up: decide for each node whether its subtree survives.
        pruned_to_leaf = np.zeros(self.node_count_, dtype=bool)
        subtree_risk = np.zeros(self.node_count_)
        subtree_leaves = np.zeros(self.node_count_, dtype=np.int64)

        for node in reversed(range(self.node_count_)):
            # Children always have larger ids than their parent (growth
            # order), so a reverse scan is a valid bottom-up traversal.
            if self.feature_[node] == _LEAF:
                subtree_risk[node] = leaf_risk(node)
                subtree_leaves[node] = 1
                continue
            left = self.children_left_[node]
            right = self.children_right_[node]
            risk = subtree_risk[left] + subtree_risk[right]
            leaves = subtree_leaves[left] + subtree_leaves[right]
            own = leaf_risk(node)
            g = (own - risk) / (leaves - 1) if leaves > 1 else np.inf
            if g <= ccp_alpha:
                pruned_to_leaf[node] = True
                subtree_risk[node] = own
                subtree_leaves[node] = 1
            else:
                subtree_risk[node] = risk
                subtree_leaves[node] = leaves

        # Rebuild compact arrays keeping only reachable, unpruned nodes.
        import copy

        out = copy.deepcopy(self)
        keep_order: list[int] = []
        remap: dict[int, int] = {}

        def visit(node: int) -> None:
            remap[node] = len(keep_order)
            keep_order.append(node)
            if self.feature_[node] != _LEAF and not pruned_to_leaf[node]:
                visit(int(self.children_left_[node]))
                visit(int(self.children_right_[node]))

        visit(0)
        k = len(keep_order)
        out.feature_ = np.full(k, _LEAF, dtype=np.int64)
        out.threshold_ = np.zeros(k)
        out.children_left_ = np.full(k, _LEAF, dtype=np.int64)
        out.children_right_ = np.full(k, _LEAF, dtype=np.int64)
        out.value_ = self.value_[keep_order]
        out.node_depth_ = self.node_depth_[keep_order]
        for old in keep_order:
            new = remap[old]
            if self.feature_[old] != _LEAF and not pruned_to_leaf[old]:
                out.feature_[new] = self.feature_[old]
                out.threshold_[new] = self.threshold_[old]
                out.children_left_[new] = remap[int(self.children_left_[old])]
                out.children_right_[new] = remap[int(self.children_right_[old])]
        out.node_count_ = k
        out.n_splits_ = int(np.sum(out.feature_ != _LEAF))
        out._walk_plan = None  # the deepcopy'd cache describes the old tree
        return out

    def export_text(
        self, feature_names=None, *, max_depth: int | None = None
    ) -> str:
        """Human-readable dump of the fitted tree.

        One line per node, indented by depth; leaves show the class
        distribution.  Handy for sanity-checking what the admission
        classifier actually keys on.
        """
        self._check_fitted()
        if feature_names is not None and len(feature_names) < self.n_features_in_:
            raise ValueError("feature_names shorter than the feature count")

        def name(j: int) -> str:
            return feature_names[j] if feature_names is not None else f"x[{j}]"

        lines: list[str] = []

        def walk(node: int, depth: int) -> None:
            indent = "|   " * depth
            if max_depth is not None and depth > max_depth:
                lines.append(f"{indent}…")
                return
            feat = self.feature_[node]
            if feat == _LEAF:
                dist = self.value_[node]
                total = dist.sum()
                shares = ", ".join(
                    f"{cls}: {v / total:.2f}"
                    for cls, v in zip(self.classes_, dist)
                    if total > 0
                )
                winner = self.classes_[int(np.argmax(dist))]
                lines.append(f"{indent}class {winner}  ({shares})")
                return
            thr = self.threshold_[node]
            lines.append(f"{indent}{name(int(feat))} <= {thr:.4g}")
            walk(int(self.children_left_[node]), depth + 1)
            lines.append(f"{indent}{name(int(feat))} > {thr:.4g}")
            walk(int(self.children_right_[node]), depth + 1)

        walk(0, 0)
        return "\n".join(lines)


class DecisionTreeRegressor(BaseEstimator):
    """CART regression tree with the same best-first split budget.

    The regression twin of :class:`DecisionTreeClassifier`, added for the
    learned-eviction head (:mod:`repro.cache.learned`): it is trained on
    log-forward-reuse-distance targets and compiled through the same
    :mod:`repro.ml.fastpath` code generator, so a per-eviction prediction
    costs one nested-``if`` walk over float literals — the same ns-range
    budget as the admission verdict.

    Splits maximise weighted SSE reduction (variance criterion); growth is
    best-first under ``max_splits`` exactly like the classifier, so a small
    budget yields the most valuable splits rather than a breadth-first
    prefix.  Leaf predictions are weighted means.

    ``bins`` switches split *search* from exact (argsort every feature at
    every node — the cost that dominates an online refit) to histogram
    candidates: each feature is quantised once per fit onto its
    ``bins``-quantile edges, and every node scores splits with three
    ``bincount`` passes instead of a sort.  Thresholds remain real feature
    values (the bin edges), the tree structure and prediction path are
    unchanged, and routing is still ``x <= threshold`` on raw inputs —
    only which thresholds are *considered* is coarsened.  This is the
    LightGBM-style trade: for the online eviction head it cuts refit cost
    by roughly an order of magnitude at no measured quality loss.  The
    default (``None``) keeps the exact search.
    """

    def __init__(
        self,
        *,
        max_splits: int | None = 30,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        min_impurity_decrease: float = 0.0,
        bins: int | None = None,
    ):
        if max_splits is not None and max_splits < 1:
            raise ValueError("max_splits must be >= 1 or None")
        if min_samples_split < 2:
            raise ValueError("min_samples_split must be >= 2")
        if min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be >= 1")
        if min_impurity_decrease < 0:
            raise ValueError("min_impurity_decrease must be >= 0")
        if bins is not None and bins < 2:
            raise ValueError("bins must be >= 2 or None")
        self.max_splits = max_splits
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.min_impurity_decrease = min_impurity_decrease
        self.bins = bins

    # ------------------------------------------------------------------ fit

    def fit(self, X, y, sample_weight=None) -> "DecisionTreeRegressor":
        X = check_array(X)
        y = np.ascontiguousarray(y, dtype=np.float64)
        if y.ndim != 1 or y.shape[0] != X.shape[0]:
            raise ValueError("y must be 1-D and match X's sample count")
        if not np.isfinite(y).all():
            raise ValueError("y contains NaN or Inf")
        w = check_sample_weight(sample_weight, X.shape[0])
        self.n_features_in_ = X.shape[1]
        self._unit_weights = sample_weight is None
        codes, edges = (
            self._quantile_bins(X) if self.bins is not None else (None, None)
        )

        feature: list[int] = []
        threshold: list[float] = []
        left: list[int] = []
        right: list[int] = []
        value: list[float] = []
        depth_of: list[int] = []

        def new_node(indices: np.ndarray, depth: int) -> int:
            node_id = len(feature)
            feature.append(_LEAF)
            threshold.append(0.0)
            left.append(_LEAF)
            right.append(_LEAF)
            wi = w[indices]
            value.append(float(np.dot(wi, y[indices]) / wi.sum()))
            depth_of.append(depth)
            return node_id

        heap: list[_Candidate] = []

        def consider(node_id: int, indices: np.ndarray, depth: int) -> None:
            if indices.shape[0] < self.min_samples_split:
                return
            if self.max_depth is not None and depth >= self.max_depth:
                return
            if codes is None:
                cand = self._best_split(X, y, w, indices)
            else:
                cand = self._best_split_binned(codes, edges, y, w, indices)
            if cand is None:
                return
            decrease, feat, thr = cand
            if decrease <= self.min_impurity_decrease:
                return
            heapq.heappush(
                heap, _Candidate(decrease, node_id, feat, thr, indices, depth)
            )

        root_idx = np.arange(X.shape[0])
        new_node(root_idx, 0)
        consider(0, root_idx, 0)

        splits_done = 0
        budget = self.max_splits if self.max_splits is not None else np.inf
        while heap and splits_done < budget:
            cand = heapq.heappop(heap)
            go_left = X[cand.indices, cand.feature] <= cand.threshold
            li, ri = cand.indices[go_left], cand.indices[~go_left]
            feature[cand.node_id] = cand.feature
            threshold[cand.node_id] = cand.threshold
            lid = new_node(li, cand.depth + 1)
            rid = new_node(ri, cand.depth + 1)
            left[cand.node_id] = lid
            right[cand.node_id] = rid
            splits_done += 1
            consider(lid, li, cand.depth + 1)
            consider(rid, ri, cand.depth + 1)

        self.feature_ = np.asarray(feature, dtype=np.int64)
        self.threshold_ = np.asarray(threshold, dtype=np.float64)
        self.children_left_ = np.asarray(left, dtype=np.int64)
        self.children_right_ = np.asarray(right, dtype=np.int64)
        self.value_ = np.asarray(value, dtype=np.float64)
        self.node_depth_ = np.asarray(depth_of, dtype=np.int64)
        self.node_count_ = len(feature)
        self.n_splits_ = splits_done
        self._walk_plan = None
        return self

    def _best_split(
        self, X: np.ndarray, y: np.ndarray, w: np.ndarray, indices: np.ndarray
    ) -> tuple[float, int, float] | None:
        """Best (SSE decrease, feature, threshold), or None when no gain.

        Uses the cancellation-free identity
        ``SSE_parent − SSE_children = (Σwy_l)²/w_l + (Σwy_r)²/w_r − (Σwy)²/w``
        so one cumsum pass per feature scores every threshold at once.
        """
        y_node = y[indices]
        w_node = w[indices]
        total_w = float(w_node.sum())
        total_wy = float(np.dot(w_node, y_node))
        base = total_wy * total_wy / total_w
        n = indices.shape[0]
        min_leaf = self.min_samples_leaf

        best: tuple[float, int, float] | None = None
        for j in range(X.shape[1]):
            v = X[indices, j]
            order = np.argsort(v, kind="stable")
            vs = v[order]
            cut = np.nonzero(vs[:-1] != vs[1:])[0]
            if min_leaf > 1:
                cut = cut[(cut + 1 >= min_leaf) & (n - cut - 1 >= min_leaf)]
            if cut.shape[0] == 0:
                continue
            cw = np.cumsum(w_node[order])[cut]
            cwy = np.cumsum((w_node * y_node)[order])[cut]
            rw = total_w - cw
            ok = (cw > 0) & (rw > 0)
            if not ok.any():
                continue
            gain = cwy[ok] ** 2 / cw[ok] + (total_wy - cwy[ok]) ** 2 / rw[ok] - base
            pos = int(np.argmax(gain))
            g = float(gain[pos])
            if g > 0 and (best is None or g > best[0]):
                i = cut[ok][pos]
                thr = 0.5 * (vs[i] + vs[i + 1])
                if thr >= vs[i + 1]:
                    thr = vs[i]
                best = (g, int(j), float(thr))
        return best

    def _quantile_bins(
        self, X: np.ndarray
    ) -> tuple[np.ndarray, list[np.ndarray]]:
        """Quantise every feature onto its ``bins``-quantile edge grid.

        Returns ``(codes, edges)`` where ``edges[j]`` is the ascending
        array of candidate thresholds for feature ``j`` and
        ``codes[i, j] <= b`` iff ``X[i, j] <= edges[j][b]`` — the
        equivalence ``_best_split_binned`` relies on to emit thresholds
        that route raw inputs exactly like the histogram did.
        """
        qs = np.linspace(0.0, 1.0, self.bins + 1)[1:-1]
        codes = np.empty(X.shape, dtype=np.int64)
        edges: list[np.ndarray] = []
        for j in range(X.shape[1]):
            col = X[:, j]
            # Unique keeps codes dense; dropping the max removes the
            # everything-goes-left pseudo-split.
            e = np.unique(np.quantile(col, qs))
            if e.shape[0] and e[-1] >= col.max():
                e = e[:-1]
            edges.append(e)
            codes[:, j] = np.searchsorted(e, col, side="left")
        return codes, edges

    def _best_split_binned(
        self,
        codes: np.ndarray,
        edges: list[np.ndarray],
        y: np.ndarray,
        w: np.ndarray,
        indices: np.ndarray,
    ) -> tuple[float, int, float] | None:
        """Histogram twin of :meth:`_best_split`: bincount, not argsort."""
        n = indices.shape[0]
        y_node = y[indices]
        # The online trainer never weights samples; with unit weights the
        # weight histogram *is* the count histogram, saving a bincount.
        unweighted = getattr(self, "_unit_weights", False)
        w_node = None if unweighted else w[indices]
        wy_node = y_node if unweighted else w_node * y_node
        total_w = float(n) if unweighted else float(w_node.sum())
        total_wy = float(wy_node.sum())
        base = total_wy * total_wy / total_w
        min_leaf = self.min_samples_leaf
        sub = codes[indices]

        best: tuple[float, int, float] | None = None
        for j in range(sub.shape[1]):
            e = edges[j]
            nb = e.shape[0] + 1
            if nb < 2:
                continue
            c = sub[:, j]
            # Left-of-edge-b aggregates via one cumsum over the histogram.
            cn = np.cumsum(np.bincount(c, minlength=nb))[:-1]
            cwy = np.cumsum(np.bincount(c, weights=wy_node, minlength=nb))[:-1]
            cw = (
                cn.astype(np.float64)
                if unweighted
                else np.cumsum(np.bincount(c, weights=w_node, minlength=nb))[:-1]
            )
            ok = (cn >= min_leaf) & (n - cn >= min_leaf) & (cw > 0)
            rw = total_w - cw
            ok &= rw > 0
            if not ok.any():
                continue
            gain = cwy[ok] ** 2 / cw[ok] + (total_wy - cwy[ok]) ** 2 / rw[ok] - base
            pos = int(np.argmax(gain))
            g = float(gain[pos])
            if g > 0 and (best is None or g > best[0]):
                best = (g, int(j), float(e[np.nonzero(ok)[0][pos]]))
        return best

    # -------------------------------------------------------------- predict

    def _check_fitted(self) -> None:
        if not hasattr(self, "node_count_"):
            raise RuntimeError(
                f"{type(self).__name__} is not fitted; call fit() first"
            )

    def predict(self, X) -> np.ndarray:
        self._check_fitted()
        X = check_array(X)
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"expected {self.n_features_in_} features, got {X.shape[1]}"
            )
        node = np.zeros(X.shape[0], dtype=np.int64)
        while True:
            feat = self.feature_[node]
            active = feat != _LEAF
            if not active.any():
                return self.value_[node]
            rows = np.nonzero(active)[0]
            sub = node[rows]
            go_left = X[rows, feat[rows]] <= self.threshold_[sub]
            node[rows] = np.where(
                go_left, self.children_left_[sub], self.children_right_[sub]
            )

    def _single_plan(self) -> tuple:
        plan = getattr(self, "_walk_plan", None)
        if plan is None:
            plan = (
                self.feature_.tolist(),
                self.threshold_.tolist(),
                self.children_left_.tolist(),
                self.children_right_.tolist(),
                self.value_.tolist(),
            )
            self._walk_plan = plan
        return plan

    def predict_one(self, x) -> float:
        """Predicted target for a single row — iterative walk, zero alloc."""
        self._check_fitted()
        feature, threshold, left, right, values = self._single_plan()
        node = 0
        f = feature[0]
        while f >= 0:
            node = left[node] if x[f] <= threshold[node] else right[node]
            f = feature[node]
        return values[node]

    def compile_predictor(self):
        """Code-generate this fitted tree (see the classifier's twin).

        Leaf *values* take the place of leaf labels: the generated
        nested-``if`` returns float literals whose ``repr`` round-trips
        exactly, so compiled predictions are bit-identical to
        :meth:`predict`.
        """
        from repro.ml.fastpath import compile_tree_arrays

        self._check_fitted()
        return compile_tree_arrays(
            self.feature_,
            self.threshold_,
            self.children_left_,
            self.children_right_,
            self.value_,
            out_dtype=np.float64,
        )

    # ------------------------------------------------------------ inspection

    def get_depth(self) -> int:
        self._check_fitted()
        return int(self.node_depth_.max())

    def get_n_leaves(self) -> int:
        self._check_fitted()
        return int(np.sum(self.feature_ == _LEAF))
