"""Classification metrics used throughout the paper (Tables 1–3).

The paper reports precision, recall, accuracy and AUC for every classifier
(Table 1) and defines them via the confusion matrix (Tables 2–3).  All
functions operate on binary problems with a configurable positive label; the
confusion matrix additionally supports multiclass input.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "confusion_matrix",
    "precision_score",
    "recall_score",
    "accuracy_score",
    "f1_score",
    "roc_curve",
    "auc",
    "roc_auc_score",
    "classification_report",
    "calibration_curve",
]


def _validate_pair(y_true, y_pred) -> tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape or y_true.ndim != 1:
        raise ValueError(
            f"y_true and y_pred must be 1-D of equal length, "
            f"got {y_true.shape} and {y_pred.shape}"
        )
    if y_true.shape[0] == 0:
        raise ValueError("empty label arrays")
    return y_true, y_pred


def confusion_matrix(y_true, y_pred, labels=None) -> np.ndarray:
    """Confusion matrix ``C[i, j]``: truth = ``labels[i]``, predicted = ``labels[j]``.

    ``labels`` defaults to the sorted union of labels seen in either array.
    """
    y_true, y_pred = _validate_pair(y_true, y_pred)
    if labels is None:
        labels = np.unique(np.concatenate([y_true, y_pred]))
    else:
        labels = np.asarray(labels)
    k = labels.shape[0]
    lut = {lab: i for i, lab in enumerate(labels.tolist())}
    ti = np.fromiter((lut[v] for v in y_true.tolist()), dtype=np.int64)
    pi = np.fromiter((lut[v] for v in y_pred.tolist()), dtype=np.int64)
    out = np.zeros((k, k), dtype=np.int64)
    np.add.at(out, (ti, pi), 1)
    return out


def _binary_counts(y_true, y_pred, pos_label) -> tuple[int, int, int, int]:
    y_true, y_pred = _validate_pair(y_true, y_pred)
    tp = int(np.sum((y_true == pos_label) & (y_pred == pos_label)))
    fp = int(np.sum((y_true != pos_label) & (y_pred == pos_label)))
    fn = int(np.sum((y_true == pos_label) & (y_pred != pos_label)))
    tn = int(np.sum((y_true != pos_label) & (y_pred != pos_label)))
    return tp, fp, fn, tn


def precision_score(y_true, y_pred, pos_label=1) -> float:
    """P = TP / (TP + FP); 0.0 when nothing is predicted positive."""
    tp, fp, _, _ = _binary_counts(y_true, y_pred, pos_label)
    return tp / (tp + fp) if tp + fp else 0.0


def recall_score(y_true, y_pred, pos_label=1) -> float:
    """R = TP / (TP + FN); 0.0 when there are no positive samples."""
    tp, _, fn, _ = _binary_counts(y_true, y_pred, pos_label)
    return tp / (tp + fn) if tp + fn else 0.0


def accuracy_score(y_true, y_pred) -> float:
    """Fraction of samples classified correctly."""
    y_true, y_pred = _validate_pair(y_true, y_pred)
    return float(np.mean(y_true == y_pred))


def f1_score(y_true, y_pred, pos_label=1) -> float:
    """Harmonic mean of precision and recall."""
    p = precision_score(y_true, y_pred, pos_label)
    r = recall_score(y_true, y_pred, pos_label)
    return 2 * p * r / (p + r) if p + r else 0.0


def roc_curve(y_true, y_score, pos_label=1):
    """ROC points (fpr, tpr, thresholds), thresholds descending.

    Ties in ``y_score`` are collapsed to a single point, matching the
    standard construction; the curve always starts at (0, 0) with an
    effectively ``+inf`` threshold.
    """
    y_true = np.asarray(y_true)
    y_score = np.asarray(y_score, dtype=np.float64)
    if y_true.shape != y_score.shape or y_true.ndim != 1:
        raise ValueError("y_true and y_score must be 1-D of equal length")
    pos = (y_true == pos_label).astype(np.float64)
    n_pos = pos.sum()
    n_neg = pos.shape[0] - n_pos
    if n_pos == 0 or n_neg == 0:
        raise ValueError("roc_curve needs both positive and negative samples")

    order = np.argsort(-y_score, kind="stable")
    score_sorted = y_score[order]
    pos_sorted = pos[order]

    # Indices where the score value changes: each distinct score is one point.
    distinct = np.nonzero(np.diff(score_sorted))[0]
    idx = np.concatenate([distinct, [score_sorted.shape[0] - 1]])

    tps = np.cumsum(pos_sorted)[idx]
    fps = (idx + 1) - tps
    tpr = np.concatenate([[0.0], tps / n_pos])
    fpr = np.concatenate([[0.0], fps / n_neg])
    thresholds = np.concatenate([[np.inf], score_sorted[idx]])
    return fpr, tpr, thresholds


def auc(x, y) -> float:
    """Area under a curve given by points (x, y) via the trapezoid rule."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape or x.ndim != 1 or x.shape[0] < 2:
        raise ValueError("auc needs two 1-D arrays with at least 2 points")
    dx = np.diff(x)
    if (dx < 0).any() and (dx > 0).any():
        raise ValueError("x must be monotonic")
    return float(abs(np.trapezoid(y, x)))


def roc_auc_score(y_true, y_score, pos_label=1) -> float:
    """Area under the ROC curve (equivalently, the rank statistic)."""
    fpr, tpr, _ = roc_curve(y_true, y_score, pos_label)
    return auc(fpr, tpr)


def calibration_curve(
    y_true, y_prob, *, n_bins: int = 10, pos_label=1
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Reliability diagram data: (mean predicted, observed rate, bin count).

    Probabilities are bucketed into ``n_bins`` equal-width bins over [0, 1];
    empty bins are dropped.  A calibrated model tracks the diagonal — the
    premise behind Elkan's theoretical threshold
    (:meth:`repro.ml.cost_sensitive.CostMatrix.optimal_threshold`); when it
    doesn't, use :func:`repro.ml.cost_sensitive.tune_threshold` instead.
    """
    y_true = np.asarray(y_true)
    y_prob = np.asarray(y_prob, dtype=np.float64)
    if y_true.shape != y_prob.shape or y_true.ndim != 1 or y_true.shape[0] == 0:
        raise ValueError("y_true and y_prob must be non-empty 1-D of equal length")
    if n_bins < 1:
        raise ValueError("n_bins must be >= 1")
    if (y_prob < 0).any() or (y_prob > 1).any():
        raise ValueError("y_prob must lie in [0, 1]")
    pos = (y_true == pos_label).astype(np.float64)
    bins = np.minimum((y_prob * n_bins).astype(np.int64), n_bins - 1)
    counts = np.bincount(bins, minlength=n_bins)
    sum_prob = np.bincount(bins, weights=y_prob, minlength=n_bins)
    sum_pos = np.bincount(bins, weights=pos, minlength=n_bins)
    nz = counts > 0
    return (
        sum_prob[nz] / counts[nz],
        sum_pos[nz] / counts[nz],
        counts[nz],
    )


def classification_report(y_true, y_pred, y_score=None, pos_label=1) -> dict:
    """The four Table-1 metrics in one dict (AUC needs ``y_score``)."""
    report = {
        "precision": precision_score(y_true, y_pred, pos_label),
        "recall": recall_score(y_true, y_pred, pos_label),
        "accuracy": accuracy_score(y_true, y_pred),
    }
    if y_score is not None:
        report["auc"] = roc_auc_score(y_true, y_score, pos_label)
    return report
