"""Train/test splitting and cross-validation (used for Table 1).

The paper samples the log (100 records/minute), then "split[s] the sampled
data set into training data set and testing data set through cross
validation"; these helpers implement the standard machinery.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.ml.metrics import classification_report

__all__ = [
    "train_test_split",
    "KFold",
    "StratifiedKFold",
    "cross_val_score",
    "cross_validate_metrics",
    "GridSearchCV",
]


def train_test_split(
    X,
    y,
    *,
    test_size: float = 0.25,
    rng: np.random.Generator | int | None = None,
    stratify: bool = False,
):
    """Random split into (X_train, X_test, y_train, y_test).

    With ``stratify=True`` the class proportions of ``y`` are preserved in
    both halves (to the extent integer counts allow).
    """
    if not 0.0 < test_size < 1.0:
        raise ValueError("test_size must be in (0, 1)")
    X = np.asarray(X)
    y = np.asarray(y)
    n = X.shape[0]
    if y.shape[0] != n:
        raise ValueError("X and y lengths differ")
    rng = np.random.default_rng(rng)

    if stratify:
        test_idx_parts = []
        for cls in np.unique(y):
            cls_idx = np.nonzero(y == cls)[0]
            rng.shuffle(cls_idx)
            n_test = max(1, int(round(test_size * cls_idx.shape[0])))
            test_idx_parts.append(cls_idx[:n_test])
        test_idx = np.concatenate(test_idx_parts)
        mask = np.zeros(n, dtype=bool)
        mask[test_idx] = True
        train_idx = np.nonzero(~mask)[0]
    else:
        perm = rng.permutation(n)
        n_test = max(1, int(round(test_size * n)))
        test_idx, train_idx = perm[:n_test], perm[n_test:]
    if train_idx.shape[0] == 0:
        raise ValueError("split left no training samples")
    return X[train_idx], X[test_idx], y[train_idx], y[test_idx]


class KFold:
    """Standard k-fold splitter yielding (train_idx, test_idx) pairs."""

    def __init__(self, n_splits: int = 5, *, shuffle: bool = True, rng=None):
        if n_splits < 2:
            raise ValueError("n_splits must be >= 2")
        self.n_splits = n_splits
        self.shuffle = shuffle
        self.rng = rng

    def split(self, X, y=None) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        n = np.asarray(X).shape[0]
        if n < self.n_splits:
            raise ValueError(f"cannot split {n} samples into {self.n_splits} folds")
        idx = np.arange(n)
        if self.shuffle:
            np.random.default_rng(self.rng).shuffle(idx)
        for fold in np.array_split(idx, self.n_splits):
            mask = np.ones(n, dtype=bool)
            mask[fold] = False
            yield np.nonzero(mask)[0], fold


class StratifiedKFold(KFold):
    """K-fold preserving class balance in every fold."""

    def split(self, X, y=None) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        if y is None:
            raise ValueError("StratifiedKFold requires y")
        y = np.asarray(y)
        n = y.shape[0]
        rng = np.random.default_rng(self.rng)
        folds: list[list[np.ndarray]] = [[] for _ in range(self.n_splits)]
        for cls in np.unique(y):
            cls_idx = np.nonzero(y == cls)[0]
            if self.shuffle:
                rng.shuffle(cls_idx)
            for i, part in enumerate(np.array_split(cls_idx, self.n_splits)):
                folds[i].append(part)
        for parts in folds:
            fold = np.sort(np.concatenate(parts))
            if fold.shape[0] == 0:
                raise ValueError("a fold is empty; reduce n_splits")
            mask = np.ones(n, dtype=bool)
            mask[fold] = False
            yield np.nonzero(mask)[0], fold


def _clone(estimator):
    """Fresh copy of an estimator with the same constructor state."""
    import copy

    fresh = copy.deepcopy(estimator)
    # Drop any fitted state (attributes ending in "_", sklearn convention).
    for attr in [a for a in vars(fresh) if a.endswith("_")]:
        delattr(fresh, attr)
    return fresh


def cross_val_score(estimator, X, y, *, cv: KFold | None = None) -> np.ndarray:
    """Accuracy per fold."""
    X = np.asarray(X)
    y = np.asarray(y)
    cv = cv or StratifiedKFold(5, rng=0)
    scores = []
    for train_idx, test_idx in cv.split(X, y):
        model = _clone(estimator)
        model.fit(X[train_idx], y[train_idx])
        scores.append(model.score(X[test_idx], y[test_idx]))
    return np.asarray(scores)


class GridSearchCV:
    """Exhaustive hyper-parameter search by cross-validated accuracy.

    Minimal sklearn-style interface: pass an estimator *factory* — a
    callable accepting the grid's keyword arguments and returning an
    unfitted estimator — plus a dict of parameter lists.  After ``fit``,
    ``best_params_``/``best_score_`` hold the winner and ``best_estimator_``
    is refit on the full data.

    Example (tuning the paper's §3.1.2 split budget)::

        search = GridSearchCV(
            lambda **p: DecisionTreeClassifier(rng=0, **p),
            {"max_splits": [10, 30, 100], "min_samples_leaf": [1, 10]},
        )
        search.fit(X, y)
    """

    def __init__(self, factory, param_grid: dict, *, cv: KFold | None = None):
        if not param_grid:
            raise ValueError("param_grid must be non-empty")
        for name, values in param_grid.items():
            if not isinstance(values, (list, tuple)) or not values:
                raise ValueError(f"param {name!r} needs a non-empty list")
        self.factory = factory
        self.param_grid = dict(param_grid)
        self.cv = cv

    def _combinations(self):
        import itertools

        names = list(self.param_grid)
        for values in itertools.product(*(self.param_grid[n] for n in names)):
            yield dict(zip(names, values))

    def fit(self, X, y) -> "GridSearchCV":
        X = np.asarray(X)
        y = np.asarray(y)
        cv = self.cv or StratifiedKFold(3, rng=0)
        self.results_: list[dict] = []
        best = None
        for params in self._combinations():
            scores = cross_val_score(self.factory(**params), X, y, cv=cv)
            mean = float(scores.mean())
            self.results_.append({"params": params, "mean_accuracy": mean})
            if best is None or mean > best[0]:
                best = (mean, params)
        self.best_score_, self.best_params_ = best
        self.best_estimator_ = self.factory(**self.best_params_).fit(X, y)
        return self

    def predict(self, X):
        return self.best_estimator_.predict(X)


def cross_validate_metrics(
    estimator, X, y, *, cv: KFold | None = None, pos_label=1
) -> dict:
    """Mean precision/recall/accuracy/AUC across folds — one Table-1 row."""
    X = np.asarray(X)
    y = np.asarray(y)
    cv = cv or StratifiedKFold(5, rng=0)
    rows = []
    for train_idx, test_idx in cv.split(X, y):
        model = _clone(estimator)
        model.fit(X[train_idx], y[train_idx])
        y_pred = model.predict(X[test_idx])
        y_score = None
        if hasattr(model, "predict_proba"):
            proba = model.predict_proba(X[test_idx])
            pos_col = int(np.nonzero(model.classes_ == pos_label)[0][0])
            y_score = proba[:, pos_col]
        rows.append(
            classification_report(y[test_idx], y_pred, y_score, pos_label=pos_label)
        )
    keys = rows[0].keys()
    return {k: float(np.mean([r[k] for r in rows])) for k in keys}
