"""Cost-sensitive learning via the Elkan cost-matrix framework (§4.4.1).

The paper's Table 4 penalises the two misclassification directions
asymmetrically: predicting a *re-accessed* photo as one-time (a false
positive, causing future cache misses) costs ``v`` while the opposite error
(cache-space waste) costs 1.  ``v = 2`` for 2–12 GB caches and ``v = 3`` for
12–20 GB in the paper's configuration.

Two standard reductions are provided:

* **reweighting** — scale each training sample's weight by the cost of
  misclassifying it (works with any estimator accepting ``sample_weight``);
* **thresholding** — fit normally, then shift the decision threshold to the
  cost-minimising posterior p* = c01 / (c01 + c10) (Elkan 2001, Thm. 1),
  for estimators exposing ``predict_proba``.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass

import numpy as np

from repro.ml.base import BaseEstimator, check_array

__all__ = [
    "CostMatrix",
    "CostSensitiveClassifier",
    "select_cost_v",
    "tune_threshold",
]


@dataclass(frozen=True)
class CostMatrix:
    """2×2 misclassification costs for the binary one-time-access task.

    ``fn_cost``: true one-time predicted re-accessed → wasted cache write.
    ``fp_cost``: true re-accessed predicted one-time → extra cache misses
    (the paper's ``v``).  Correct decisions cost 0, per Table 4.
    """

    fn_cost: float = 1.0
    fp_cost: float = 2.0

    def __post_init__(self) -> None:
        if self.fn_cost <= 0 or self.fp_cost <= 0:
            raise ValueError("misclassification costs must be positive")

    @property
    def optimal_threshold(self) -> float:
        """Posterior threshold p* above which 'one-time' is the cheap call.

        Predicting positive (one-time) risks ``fp_cost`` with probability
        (1-p); predicting negative risks ``fn_cost`` with probability p.
        Positive is optimal when p ≥ fp/(fp+fn).
        """
        return self.fp_cost / (self.fp_cost + self.fn_cost)

    def sample_weights(self, y: np.ndarray, pos_label=1) -> np.ndarray:
        """Per-sample weights proportional to each sample's error cost."""
        y = np.asarray(y)
        return np.where(y == pos_label, self.fn_cost, self.fp_cost).astype(
            np.float64
        )


def select_cost_v(cache_bytes: float, *, boundary_bytes: float = 12 * 2**30) -> float:
    """The paper's capacity-dependent penalty: v=2 below 12 GB, v=3 above.

    ``cache_bytes`` is in the paper's sampled-trace scale (2–20 GB ≙
    200 GB–2 TB real); pass a rescaled ``boundary_bytes`` when running a
    down-scaled workload.
    """
    if cache_bytes <= 0:
        raise ValueError("cache_bytes must be positive")
    return 2.0 if cache_bytes < boundary_bytes else 3.0


def tune_threshold(
    y_true,
    scores,
    cost_matrix: CostMatrix,
    *,
    pos_label=1,
) -> tuple[float, float]:
    """Empirical cost-minimising score threshold.

    Elkan's p* = fp/(fp+fn) is optimal for *calibrated* posteriors; raw
    model scores often are not.  This sweeps every distinct score cut-off
    and returns ``(threshold, expected_cost_per_sample)`` minimising

        cost = fp_cost · FP + fn_cost · FN.

    Predict positive when ``score >= threshold``.
    """
    y_true = np.asarray(y_true)
    scores = np.asarray(scores, dtype=np.float64)
    if y_true.shape != scores.shape or y_true.ndim != 1 or y_true.shape[0] == 0:
        raise ValueError("y_true and scores must be non-empty 1-D of equal length")
    pos = (y_true == pos_label).astype(np.float64)
    n = pos.shape[0]

    order = np.argsort(-scores, kind="stable")
    pos_sorted = pos[order]
    score_sorted = scores[order]

    # Candidate k = number of samples predicted positive (0..n), cutting
    # only between distinct scores.
    tp_cum = np.r_[0.0, np.cumsum(pos_sorted)]
    k = np.arange(n + 1)
    fp = k - tp_cum
    fn = pos.sum() - tp_cum
    cost = cost_matrix.fp_cost * fp + cost_matrix.fn_cost * fn

    distinct_cut = np.r_[
        True, score_sorted[1:] != score_sorted[:-1], True
    ]  # valid k values: 0, boundaries, n
    valid = np.nonzero(distinct_cut)[0]
    best_k = valid[np.argmin(cost[valid])]
    if best_k == 0:
        threshold = np.inf  # predict nothing positive
    else:
        threshold = float(score_sorted[best_k - 1])
    return threshold, float(cost[best_k] / n)


class CostSensitiveClassifier(BaseEstimator):
    """Wrap any binary estimator with a :class:`CostMatrix`.

    Parameters
    ----------
    estimator:
        Unfitted base estimator (cloned at fit time).
    cost_matrix:
        The asymmetric costs.
    method:
        ``"reweight"`` (default; multiplies sample weights) or
        ``"threshold"`` (Elkan posterior shift; needs ``predict_proba``).
    pos_label:
        Label of the one-time-access class.
    """

    def __init__(
        self,
        estimator: BaseEstimator,
        cost_matrix: CostMatrix,
        *,
        method: str = "reweight",
        pos_label=1,
    ):
        if method not in ("reweight", "threshold"):
            raise ValueError(f"unknown method: {method!r}")
        self.estimator = estimator
        self.cost_matrix = cost_matrix
        self.method = method
        self.pos_label = pos_label

    def fit(self, X, y, sample_weight=None) -> "CostSensitiveClassifier":
        y = np.asarray(y)
        classes = np.unique(y)
        if classes.shape[0] != 2:
            raise ValueError("CostSensitiveClassifier is binary-only")
        if self.pos_label not in classes:
            raise ValueError(f"pos_label {self.pos_label!r} not present in y")
        self.classes_ = classes
        self.model_ = copy.deepcopy(self.estimator)
        if self.method == "reweight":
            w = self.cost_matrix.sample_weights(y, self.pos_label)
            if sample_weight is not None:
                w = w * np.asarray(sample_weight, dtype=np.float64)
            self.model_.fit(X, y, sample_weight=w)
        else:
            if not hasattr(self.estimator, "predict_proba"):
                raise TypeError("threshold method needs predict_proba")
            self.model_.fit(X, y, sample_weight=sample_weight)
        return self

    def predict_proba(self, X) -> np.ndarray:
        self._check_fitted()
        return self.model_.predict_proba(check_array(X))

    def predict(self, X) -> np.ndarray:
        self._check_fitted()
        X = check_array(X)
        if self.method == "reweight":
            return self.model_.predict(X)
        proba = self.model_.predict_proba(X)
        pos_col = int(np.nonzero(self.model_.classes_ == self.pos_label)[0][0])
        neg = self.classes_[self.classes_ != self.pos_label][0]
        positive = proba[:, pos_col] >= self.cost_matrix.optimal_threshold
        out = np.where(positive, self.pos_label, neg)
        return out.astype(self.classes_.dtype)

    # -------------------------------------------------- single-row hot path

    def predict_one(self, x):
        """Single-row verdict, exactly matching ``predict(x[None, :])[0]``.

        Reweighting delegates to the wrapped estimator's own fast path;
        thresholding applies the Elkan posterior shift to a single-row
        ``predict_proba`` (using the estimator's allocation-light
        ``predict_proba_one`` when it has one).
        """
        self._check_fitted()
        if self.method == "reweight":
            return self.model_.predict_one(x)
        proba_one = getattr(self.model_, "predict_proba_one", None)
        if proba_one is not None:
            proba = proba_one(x)
        else:
            proba = self.model_.predict_proba(
                np.asarray(x, dtype=np.float64).reshape(1, -1)
            )[0]
        pos_col = int(np.nonzero(self.model_.classes_ == self.pos_label)[0][0])
        neg = self.classes_[self.classes_ != self.pos_label][0]
        if proba[pos_col] >= self.cost_matrix.optimal_threshold:
            return self.pos_label
        return neg

    def compile_predictor(self):
        """Compile the fitted wrapper into fast exact-parity functions.

        With a decision-tree base the whole decision rule — including the
        thresholding method's posterior shift — is baked into the
        code-generated tree (each leaf's label is precomputed under the
        cost rule), so one compiled call replaces proba + threshold +
        relabel.  Margin models exposing ``compile_proba`` (the GBDT) get
        a compiled-posterior threshold instead: the ensemble's compiled
        walkers produce the margin, one sigmoid + comparison produces the
        verdict, bit-identical to ``predict``.  Other bases fall back to
        the generic fast wrapper.
        """
        from repro.ml.fastpath import CompiledPredictor, _wrap_generic, fast_predictor

        self._check_fitted()
        inner = self.model_
        if self.method == "reweight":
            return fast_predictor(inner)
        if hasattr(inner, "value_") and hasattr(inner, "compile_predictor"):
            pos_col = int(np.nonzero(inner.classes_ == self.pos_label)[0][0])
            neg = self.classes_[self.classes_ != self.pos_label][0]
            dist = inner.value_
            totals = dist.sum(axis=1)
            totals[totals == 0] = 1.0
            p_pos = dist[:, pos_col] / totals
            labels = np.where(
                p_pos >= self.cost_matrix.optimal_threshold, self.pos_label, neg
            ).astype(self.classes_.dtype)
            return inner.compile_predictor(leaf_labels=labels)
        proba_compile = getattr(inner, "compile_proba", None)
        if callable(proba_compile):
            cp = proba_compile()
            # ``compile_proba`` yields P(class 1); the reference compares
            # ``proba[:, pos_col]``, i.e. 1 − p1 when pos_label is class 0.
            pos_is_col1 = (
                int(np.nonzero(inner.classes_ == self.pos_label)[0][0]) == 1
            )
            neg = self.classes_[self.classes_ != self.pos_label][0]
            neg_scalar = neg.item()
            pos_label = self.pos_label
            thr = self.cost_matrix.optimal_threshold
            dtype = self.classes_.dtype
            proba_one = cp.predict_one
            proba_batch = cp.predict

            def predict_one(x):
                p1 = proba_one(x)
                p = p1 if pos_is_col1 else 1.0 - p1
                return pos_label if p >= thr else neg_scalar

            def predict(X):
                p1 = proba_batch(X)
                p = p1 if pos_is_col1 else 1.0 - p1
                return np.where(p >= thr, pos_label, neg).astype(dtype)

            return CompiledPredictor(
                predict_one=predict_one,
                predict=predict,
                compiled=cp.compiled,
                n_nodes=cp.n_nodes,
            )
        return _wrap_generic(self)
