"""Back-propagation neural network ("BP NN" in Table 1).

A single-hidden-layer sigmoid MLP trained with mini-batch gradient descent
and momentum — the classic textbook back-propagation network the paper
benchmarks.  All passes are matrix-at-a-time NumPy.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import BaseEstimator, check_X_y, check_array, check_sample_weight
from repro.ml.preprocessing import StandardScaler

__all__ = ["MLPClassifier"]


def _sigmoid(z: np.ndarray) -> np.ndarray:
    out = np.empty_like(z)
    pos = z >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-z[pos]))
    ez = np.exp(z[~pos])
    out[~pos] = ez / (1.0 + ez)
    return out


def _softmax(z: np.ndarray) -> np.ndarray:
    z = z - z.max(axis=1, keepdims=True)
    e = np.exp(z)
    return e / e.sum(axis=1, keepdims=True)


class MLPClassifier(BaseEstimator):
    """One-hidden-layer back-propagation classifier.

    Parameters
    ----------
    hidden_units:
        Width of the hidden layer.
    learning_rate / momentum:
        SGD hyper-parameters.
    epochs / batch_size:
        Training schedule; full passes over the (shuffled) data.
    """

    def __init__(
        self,
        hidden_units: int = 16,
        *,
        learning_rate: float = 0.1,
        momentum: float = 0.9,
        epochs: int = 50,
        batch_size: int = 256,
        rng: np.random.Generator | int | None = None,
    ):
        if hidden_units < 1:
            raise ValueError("hidden_units must be >= 1")
        if not 0 <= momentum < 1:
            raise ValueError("momentum must be in [0, 1)")
        if epochs < 1 or batch_size < 1:
            raise ValueError("epochs and batch_size must be >= 1")
        self.hidden_units = hidden_units
        self.learning_rate = learning_rate
        self.momentum = momentum
        self.epochs = epochs
        self.batch_size = batch_size
        self.rng = rng

    def fit(self, X, y, sample_weight=None) -> "MLPClassifier":
        X, y_raw = check_X_y(X, y)
        y = self._encode_labels(y_raw)
        w = check_sample_weight(sample_weight, X.shape[0])
        self.n_features_in_ = X.shape[1]
        self._scaler = StandardScaler().fit(X)
        Xs = self._scaler.transform(X)
        n, d = Xs.shape
        k = self.classes_.shape[0]
        rng = np.random.default_rng(self.rng)

        Y = np.zeros((n, k))
        Y[np.arange(n), y] = 1.0

        h = self.hidden_units
        # Xavier-style init keeps sigmoid activations in their linear range.
        W1 = rng.normal(0.0, np.sqrt(1.0 / d), size=(d, h))
        b1 = np.zeros(h)
        W2 = rng.normal(0.0, np.sqrt(1.0 / h), size=(h, k))
        b2 = np.zeros(k)
        vW1 = np.zeros_like(W1)
        vb1 = np.zeros_like(b1)
        vW2 = np.zeros_like(W2)
        vb2 = np.zeros_like(b2)

        lr = self.learning_rate
        mom = self.momentum
        for _ in range(self.epochs):
            order = rng.permutation(n)
            for start in range(0, n, self.batch_size):
                idx = order[start : start + self.batch_size]
                xb, yb, wb = Xs[idx], Y[idx], w[idx]
                # Forward
                a1 = _sigmoid(xb @ W1 + b1)
                p = _softmax(a1 @ W2 + b2)
                # Backward (cross-entropy + softmax)
                delta2 = (p - yb) * wb[:, None] / idx.shape[0]
                gW2 = a1.T @ delta2
                gb2 = delta2.sum(axis=0)
                delta1 = (delta2 @ W2.T) * a1 * (1.0 - a1)
                gW1 = xb.T @ delta1
                gb1 = delta1.sum(axis=0)
                # Momentum update
                vW2 = mom * vW2 - lr * gW2
                vb2 = mom * vb2 - lr * gb2
                vW1 = mom * vW1 - lr * gW1
                vb1 = mom * vb1 - lr * gb1
                W2 += vW2
                b2 += vb2
                W1 += vW1
                b1 += vb1

        self._params = (W1, b1, W2, b2)
        return self

    def predict_proba(self, X) -> np.ndarray:
        self._check_fitted()
        X = check_array(X)
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"expected {self.n_features_in_} features, got {X.shape[1]}"
            )
        W1, b1, W2, b2 = self._params
        a1 = _sigmoid(self._scaler.transform(X) @ W1 + b1)
        return _softmax(a1 @ W2 + b2)

    def predict(self, X) -> np.ndarray:
        return self.classes_[np.argmax(self.predict_proba(X), axis=1)]
