"""L2-regularised binary logistic regression via full-batch gradient descent.

Table 1 shows the characteristic behaviour this model exhibits on the
imbalanced one-time-access task: high precision (0.89) but very low recall
(0.17) at the 0.5 threshold, because a linear boundary cannot carve the
interaction structure of the photo features.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import BaseEstimator, check_X_y, check_array, check_sample_weight
from repro.ml.preprocessing import StandardScaler

__all__ = ["LogisticRegression"]


def _sigmoid(z: np.ndarray) -> np.ndarray:
    # Numerically stable piecewise evaluation.
    out = np.empty_like(z)
    pos = z >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-z[pos]))
    ez = np.exp(z[~pos])
    out[~pos] = ez / (1.0 + ez)
    return out


class LogisticRegression(BaseEstimator):
    """Binary logistic regression with gradient descent + adaptive step.

    Parameters
    ----------
    C:
        Inverse regularisation strength (larger = weaker L2 penalty).
    max_iter / tol:
        Convergence controls on the gradient norm.
    standardize:
        Standardise features internally (coefficients are reported in the
        standardised space; predictions are unaffected).
    """

    def __init__(
        self,
        *,
        C: float = 1.0,
        max_iter: int = 500,
        tol: float = 1e-6,
        standardize: bool = True,
    ):
        if C <= 0:
            raise ValueError("C must be positive")
        if max_iter < 1:
            raise ValueError("max_iter must be >= 1")
        self.C = C
        self.max_iter = max_iter
        self.tol = tol
        self.standardize = standardize

    def fit(self, X, y, sample_weight=None) -> "LogisticRegression":
        X, y_raw = check_X_y(X, y)
        y = self._encode_labels(y_raw)
        if self.classes_.shape[0] != 2:
            raise ValueError("LogisticRegression here is binary-only")
        w = check_sample_weight(sample_weight, X.shape[0])
        self.n_features_in_ = X.shape[1]
        self._scaler = StandardScaler().fit(X) if self.standardize else None
        Xs = self._scaler.transform(X) if self._scaler else X

        n, d = Xs.shape
        beta = np.zeros(d + 1)  # [bias, coefs]
        Xb = np.hstack([np.ones((n, 1)), Xs])
        lam = 1.0 / (self.C * n)
        reg_mask = np.ones(d + 1)
        reg_mask[0] = 0.0  # never regularise the bias

        # Lipschitz constant of the weighted logistic loss gradient bounds a
        # safe constant step: L <= ||X||^2 * max(w) / (4 n).
        col_sq = np.einsum("ij,ij->i", Xb, Xb)
        L = 0.25 * float((w * col_sq).sum()) / n + lam
        step = 1.0 / L

        wn = w / n
        for self.n_iter_ in range(1, self.max_iter + 1):
            p = _sigmoid(Xb @ beta)
            grad = Xb.T @ (wn * (p - y)) + lam * reg_mask * beta
            beta -= step * grad
            if np.linalg.norm(grad) < self.tol:
                break

        self.intercept_ = float(beta[0])
        self.coef_ = beta[1:].copy()
        return self

    def decision_function(self, X) -> np.ndarray:
        self._check_fitted()
        X = check_array(X)
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"expected {self.n_features_in_} features, got {X.shape[1]}"
            )
        if self._scaler:
            X = self._scaler.transform(X)
        return X @ self.coef_ + self.intercept_

    def predict_proba(self, X) -> np.ndarray:
        p1 = _sigmoid(self.decision_function(X))
        return np.column_stack([1.0 - p1, p1])

    def predict(self, X) -> np.ndarray:
        return self.classes_[(self.decision_function(X) >= 0).astype(np.int64)]
