"""AdaBoost (SAMME) over shallow CART trees.

The discrete SAMME formulation (Zhu et al. 2009) reduces to classic
AdaBoost.M1 for binary problems, which is what the paper benchmarks in
Table 1.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import BaseEstimator, check_X_y, check_array, check_sample_weight
from repro.ml.tree import DecisionTreeClassifier

__all__ = ["AdaBoostClassifier"]


class AdaBoostClassifier(BaseEstimator):
    """Boosted decision trees with exponential-loss reweighting.

    Parameters
    ----------
    n_estimators:
        Boosting rounds (the paper tries up to 30).
    base_max_splits / base_max_depth:
        Capacity of each weak learner; depth-2 trees by default, strong
        enough to be useful yet weak enough for boosting to help.
    learning_rate:
        Shrinkage applied to each stage weight.
    """

    def __init__(
        self,
        n_estimators: int = 10,
        *,
        base_max_splits: int | None = 3,
        base_max_depth: int | None = 2,
        learning_rate: float = 1.0,
        rng: np.random.Generator | int | None = None,
    ):
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        self.n_estimators = n_estimators
        self.base_max_splits = base_max_splits
        self.base_max_depth = base_max_depth
        self.learning_rate = learning_rate
        self.rng = rng

    def fit(self, X, y, sample_weight=None) -> "AdaBoostClassifier":
        X, y_raw = check_X_y(X, y)
        y = self._encode_labels(y_raw)
        w = check_sample_weight(sample_weight, X.shape[0])
        w = w / w.sum()
        k = self.classes_.shape[0]
        rng = np.random.default_rng(self.rng)

        self.estimators_: list[DecisionTreeClassifier] = []
        self.estimator_weights_: list[float] = []
        for _ in range(self.n_estimators):
            tree = DecisionTreeClassifier(
                max_splits=self.base_max_splits,
                max_depth=self.base_max_depth,
                rng=rng.integers(0, 2**63 - 1),
            )
            tree.fit(X, y, sample_weight=w * X.shape[0])
            pred = tree.predict(X)
            miss = pred != y
            err = float(w[miss].sum())
            if err >= 1.0 - 1.0 / k:
                # Weak learner no better than chance: stop boosting.
                if not self.estimators_:
                    self.estimators_.append(tree)
                    self.estimator_weights_.append(1.0)
                break
            err = max(err, 1e-12)
            alpha = self.learning_rate * (np.log((1 - err) / err) + np.log(k - 1))
            self.estimators_.append(tree)
            self.estimator_weights_.append(float(alpha))
            if err == 0.0 or alpha <= 0:
                break
            w = w * np.exp(alpha * miss)
            w = w / w.sum()
        return self

    def _decision(self, X: np.ndarray) -> np.ndarray:
        """Weighted vote tally per class."""
        k = self.classes_.shape[0]
        votes = np.zeros((X.shape[0], k), dtype=np.float64)
        for tree, alpha in zip(self.estimators_, self.estimator_weights_):
            pred = tree.predict(X)
            cols = np.searchsorted(self.classes_, pred)
            votes[np.arange(X.shape[0]), cols] += alpha
        return votes

    def predict_proba(self, X) -> np.ndarray:
        """Vote shares — a calibrated-enough score for ROC ranking."""
        self._check_fitted()
        X = check_array(X)
        votes = self._decision(X)
        totals = votes.sum(axis=1, keepdims=True)
        totals[totals == 0] = 1.0
        return votes / totals

    def predict(self, X) -> np.ndarray:
        self._check_fitted()
        X = check_array(X)
        return self.classes_[np.argmax(self._decision(X), axis=1)]
