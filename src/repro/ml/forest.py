"""Random forest: bagged CART trees with feature subsampling.

Included for the Table-1 comparison and the §3.1.1 observation that 30 base
learners buy only ~1% accuracy for ~30× the computational cost — the reason
the paper deploys a single tree.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import BaseEstimator, check_X_y, check_array, check_sample_weight
from repro.ml.tree import DecisionTreeClassifier

__all__ = ["RandomForestClassifier"]


class RandomForestClassifier(BaseEstimator):
    """Bootstrap-aggregated CART trees, soft-voted.

    Parameters
    ----------
    n_estimators:
        Number of trees (the paper experiments with up to 30).
    max_features:
        Features considered per split; ``None`` means ``ceil(sqrt(d))``.
    Remaining parameters are forwarded to each tree.
    """

    def __init__(
        self,
        n_estimators: int = 10,
        *,
        max_features: int | None = None,
        max_splits: int | None = 30,
        max_depth: int | None = None,
        min_samples_leaf: int = 1,
        criterion: str = "gini",
        rng: np.random.Generator | int | None = None,
    ):
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        self.n_estimators = n_estimators
        self.max_features = max_features
        self.max_splits = max_splits
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.criterion = criterion
        self.rng = rng

    def fit(self, X, y, sample_weight=None) -> "RandomForestClassifier":
        X, y_raw = check_X_y(X, y)
        y = self._encode_labels(y_raw)
        w = check_sample_weight(sample_weight, X.shape[0])
        rng = np.random.default_rng(self.rng)
        n, d = X.shape
        max_features = self.max_features or max(1, int(np.ceil(np.sqrt(d))))

        self.estimators_: list[DecisionTreeClassifier] = []
        for _ in range(self.n_estimators):
            boot = rng.integers(0, n, size=n)
            tree = DecisionTreeClassifier(
                criterion=self.criterion,
                max_splits=self.max_splits,
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=max_features,
                rng=rng.integers(0, 2**63 - 1),
            )
            yb = y[boot]
            if np.unique(yb).shape[0] < 2:
                # Degenerate bootstrap (tiny inputs): resample once more, then
                # fall back to the full data to keep the ensemble size exact.
                boot = rng.integers(0, n, size=n)
                yb = y[boot]
                if np.unique(yb).shape[0] < 2:
                    boot = np.arange(n)
                    yb = y
            tree.fit(X[boot], yb, sample_weight=w[boot])
            self.estimators_.append(tree)
        return self

    def predict_proba(self, X) -> np.ndarray:
        self._check_fitted()
        X = check_array(X)
        k = self.classes_.shape[0]
        out = np.zeros((X.shape[0], k), dtype=np.float64)
        for tree in self.estimators_:
            proba = tree.predict_proba(X)
            # Map tree-local class columns into the forest's class space.
            cols = np.searchsorted(self.classes_, tree.classes_)
            out[:, cols] += proba
        return out / len(self.estimators_)

    def predict(self, X) -> np.ndarray:
        return self.classes_[np.argmax(self.predict_proba(X), axis=1)]
