"""Compiled single-row inference for the per-miss admission hot path.

The paper's production argument (Eq. 6) assumes classification costs
``t_classify ≈ 0.4 µs`` — cheap enough to run on *every* cache miss.  The
generic :meth:`~repro.ml.base.BaseEstimator.predict` path cannot get there
in Python: it validates, copies to a contiguous 2-D array, descends the
tree with boolean masks and allocates several temporaries per call.  For a
fitted CART that is three orders of magnitude more work than the five
comparisons the verdict actually needs.

This module closes the gap by *code-generating* the fitted tree:

* :func:`compile_tree_arrays` turns the flattened
  ``feature/threshold/children`` arrays into Python source — nested
  ``if``/``else`` for single rows, nested ``numpy.where`` for batches —
  and ``exec``-compiles it.  The generated functions branch on plain
  float comparisons and return precomputed leaf labels, so a single-row
  verdict costs one attribute-free tree walk and zero allocations.
* :func:`fast_predictor` is the dispatch helper the admission/serving
  layers use: it asks the model to compile itself
  (``model.compile_predictor()``), falling back to ``model.predict_one``
  and finally to a ``predict(x.reshape(1, -1))[0]`` wrapper, so *any*
  estimator gets the fastest path it supports with identical verdicts.

Exactness is the contract: for every input, the compiled single-row and
batch functions return precisely what ``predict`` would (the property
suite in ``tests/ml/test_fastpath.py`` fuzzes this with hypothesis).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

__all__ = ["CompiledPredictor", "compile_tree_arrays", "fast_predictor"]

_LEAF = -1

#: Beyond this depth the generated nested-``if`` source risks the CPython
#: parser's nesting limits; fall back to the iterative array walk (same
#: verdicts, still allocation-free).
_MAX_CODEGEN_DEPTH = 120


@dataclass
class CompiledPredictor:
    """A matched pair of fast predict functions with exact-parity verdicts.

    ``predict_one(x)`` takes any indexable row (list, tuple, 1-D array)
    and returns a scalar label; ``predict(X)`` is its vectorised twin over
    a 2-D array.  ``compiled`` tells whether code generation succeeded
    (``False`` means a generic wrapper is in use — still correct, just
    slower); ``source`` keeps the generated code for inspection.
    """

    predict_one: Callable
    predict: Callable
    compiled: bool = False
    n_nodes: int = 0
    source: str = field(default="", repr=False)


def _tree_depths(feature, left, right) -> np.ndarray:
    depth = np.zeros(len(feature), dtype=np.int64)
    for node in range(len(feature)):
        if feature[node] != _LEAF:
            depth[left[node]] = depth[node] + 1
            depth[right[node]] = depth[node] + 1
    return depth


def _walker(feature, threshold, left, right, labels) -> Callable:
    """Iterative flattened-array walk — the non-codegen zero-alloc path."""

    def predict_one(x):
        node = 0
        f = feature[0]
        while f >= 0:
            node = left[node] if x[f] <= threshold[node] else right[node]
            f = feature[node]
        return labels[node]

    return predict_one


def compile_tree_arrays(
    feature,
    threshold,
    children_left,
    children_right,
    leaf_labels,
    *,
    out_dtype=None,
) -> CompiledPredictor:
    """Compile a flattened decision tree into native Python functions.

    Parameters mirror the fitted attributes of
    :class:`~repro.ml.tree.DecisionTreeClassifier`; ``leaf_labels`` holds
    the label every node would report *as a leaf* (internal-node entries
    are ignored), which lets callers bake custom decision rules — e.g. the
    Elkan threshold shift — directly into the compiled code.
    """
    feat = np.asarray(feature, dtype=np.int64).tolist()
    thr = np.asarray(threshold, dtype=np.float64).tolist()
    left = np.asarray(children_left, dtype=np.int64).tolist()
    right = np.asarray(children_right, dtype=np.int64).tolist()
    labels_arr = np.asarray(leaf_labels)
    labels = [v.item() for v in labels_arr]
    n_nodes = len(feat)
    if not (len(thr) == len(left) == len(right) == len(labels) == n_nodes):
        raise ValueError("tree arrays disagree on node count")
    if out_dtype is None:
        out_dtype = labels_arr.dtype

    depths = _tree_depths(feat, left, right)
    if int(depths.max(initial=0)) > _MAX_CODEGEN_DEPTH:
        one = _walker(feat, thr, left, right, labels)
        batch = _mask_batch(feat, thr, left, right, labels, out_dtype)
        return CompiledPredictor(
            predict_one=one, predict=batch, compiled=False, n_nodes=n_nodes
        )

    # ---- single-row source: nested if/else on plain float comparisons.
    one_lines = ["def _predict_one(x):"]

    def emit_one(node: int, indent: int) -> None:
        pad = "    " * indent
        f = feat[node]
        if f == _LEAF:
            one_lines.append(f"{pad}return {labels[node]!r}")
            return
        one_lines.append(f"{pad}if x[{f}] <= {thr[node]!r}:")
        emit_one(left[node], indent + 1)
        one_lines.append(f"{pad}else:")
        emit_one(right[node], indent + 1)

    emit_one(0, 1)

    # ---- batch source: the vectorised twin via nested numpy.where.
    used = sorted({f for f in feat if f != _LEAF})
    batch_lines = ["def _predict_batch(X):"]
    for f in used:
        batch_lines.append(f"    _c{f} = X[:, {f}]")

    def emit_batch(node: int) -> str:
        f = feat[node]
        if f == _LEAF:
            return repr(labels[node])
        return (
            f"_where(_c{f} <= {thr[node]!r}, "
            f"{emit_batch(left[node])}, {emit_batch(right[node])})"
        )

    if feat[0] == _LEAF:
        batch_lines.append(f"    return _full(X.shape[0], {labels[0]!r})")
    else:
        batch_lines.append(f"    return {emit_batch(0)}")

    source = "\n".join(one_lines) + "\n\n" + "\n".join(batch_lines) + "\n"
    namespace = {"_where": np.where, "_full": np.full}
    exec(compile(source, "<repro.ml.fastpath>", "exec"), namespace)
    one = namespace["_predict_one"]
    raw_batch = namespace["_predict_batch"]

    def batch(X, _raw=raw_batch, _dtype=out_dtype):
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D, got ndim={X.ndim}")
        return np.asarray(_raw(X)).astype(_dtype, copy=False)

    return CompiledPredictor(
        predict_one=one,
        predict=batch,
        compiled=True,
        n_nodes=n_nodes,
        source=source,
    )


def _mask_batch(feat, thr, left, right, labels, out_dtype) -> Callable:
    """Batch fallback for codegen-refused (very deep) trees."""
    feat_a = np.asarray(feat, dtype=np.int64)
    thr_a = np.asarray(thr, dtype=np.float64)
    left_a = np.asarray(left, dtype=np.int64)
    right_a = np.asarray(right, dtype=np.int64)
    labels_a = np.asarray(labels, dtype=out_dtype)

    def predict(X):
        X = np.asarray(X, dtype=np.float64)
        node = np.zeros(X.shape[0], dtype=np.int64)
        while True:
            f = feat_a[node]
            active = f != _LEAF
            if not active.any():
                return labels_a[node]
            rows = np.nonzero(active)[0]
            sub = node[rows]
            go_left = X[rows, f[rows]] <= thr_a[sub]
            node[rows] = np.where(go_left, left_a[sub], right_a[sub])

    return predict


def _wrap_generic(model) -> CompiledPredictor:
    """Best-effort fast pair for models without a compilable tree."""
    one = getattr(model, "predict_one", None)
    if one is None:
        def one(x, _m=model):
            return _m.predict(np.asarray(x, dtype=np.float64).reshape(1, -1))[0]

    return CompiledPredictor(predict_one=one, predict=model.predict, compiled=False)


def fast_predictor(model) -> CompiledPredictor:
    """The fastest exact-parity predictor ``model`` supports.

    Order of preference: ``model.compile_predictor()`` (code-generated
    tree), ``model.predict_one`` (iterative walk / estimator-specific
    scalar path), and finally a single-row wrapper around batch
    ``predict``.  The returned verdicts are identical across all three.
    """
    compile_fn = getattr(model, "compile_predictor", None)
    if callable(compile_fn):
        try:
            return compile_fn()
        except (NotImplementedError, TypeError, AttributeError):
            pass
    return _wrap_generic(model)
