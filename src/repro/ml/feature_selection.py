"""Information-gain feature scoring and greedy forward selection (§3.2.2).

The paper starts from the full feature set, repeatedly moves the feature
with the largest information gain into a goal set, and stops when adding a
feature no longer improves a cross-validated evaluation of the classifier.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field

import numpy as np

from repro.ml.model_selection import StratifiedKFold, cross_val_score

__all__ = ["entropy", "information_gain", "greedy_forward_selection", "SelectionResult"]


def entropy(y) -> float:
    """Shannon entropy (bits) of a label vector."""
    y = np.asarray(y)
    if y.shape[0] == 0:
        raise ValueError("empty label array")
    _, counts = np.unique(y, return_counts=True)
    p = counts / counts.sum()
    return float(-np.sum(p * np.log2(p)))


def information_gain(x, y, *, n_bins: int = 32) -> float:
    """IG(y; x) = H(y) − H(y|x) for one feature column.

    Continuous features are equal-width binned into ``n_bins``; discrete
    features with fewer distinct values use their natural categories.
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y)
    if x.shape != y.shape or x.ndim != 1:
        raise ValueError("x and y must be 1-D of equal length")
    distinct = np.unique(x)
    if distinct.shape[0] <= n_bins:
        codes = np.searchsorted(distinct, x)
        n_codes = distinct.shape[0]
    else:
        lo, hi = x.min(), x.max()
        codes = np.minimum(
            ((x - lo) / (hi - lo) * n_bins).astype(np.int64), n_bins - 1
        )
        n_codes = n_bins

    h_y = entropy(y)
    n = x.shape[0]
    h_cond = 0.0
    _, y_codes = np.unique(y, return_inverse=True)
    n_classes = y_codes.max() + 1
    joint = np.zeros((n_codes, n_classes))
    np.add.at(joint, (codes, y_codes), 1.0)
    group_sizes = joint.sum(axis=1)
    nz = group_sizes > 0
    p_group = group_sizes[nz] / n
    cond = joint[nz] / group_sizes[nz][:, None]
    logc = np.zeros_like(cond)
    np.log2(cond, where=cond > 0, out=logc)
    h_cond = float(-np.sum(p_group * np.sum(cond * logc, axis=1)))
    return h_y - h_cond


@dataclass
class SelectionResult:
    """Outcome of greedy forward selection."""

    selected: list[int]
    scores: list[float] = field(default_factory=list)
    gains: dict[int, float] = field(default_factory=dict)

    def names(self, feature_names: list[str]) -> list[str]:
        return [feature_names[i] for i in self.selected]


def greedy_forward_selection(
    estimator,
    X,
    y,
    *,
    min_improvement: float = 0.0,
    max_features: int | None = None,
    cv: StratifiedKFold | None = None,
) -> SelectionResult:
    """The paper's §3.2.2 procedure.

    At each step the not-yet-selected feature with the highest information
    gain is tentatively added; it is kept only if the cross-validated
    accuracy of ``estimator`` on the enlarged goal set improves by more than
    ``min_improvement``, otherwise selection stops.
    """
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y)
    if X.ndim != 2:
        raise ValueError("X must be 2-D")
    d = X.shape[1]
    cv = cv or StratifiedKFold(3, rng=0)
    budget = max_features if max_features is not None else d

    gains = {j: information_gain(X[:, j], y) for j in range(d)}
    remaining = sorted(range(d), key=lambda j: -gains[j])

    selected: list[int] = []
    scores: list[float] = []
    best_score = -np.inf
    for j in remaining:
        if len(selected) >= budget:
            break
        trial = selected + [j]
        model = copy.deepcopy(estimator)
        score = float(np.mean(cross_val_score(model, X[:, trial], y, cv=cv)))
        if score > best_score + min_improvement:
            selected.append(j)
            scores.append(score)
            best_score = score
        else:
            break
    return SelectionResult(selected=selected, scores=scores, gains=gains)
