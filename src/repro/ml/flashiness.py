"""Learned flashiness: a trained reuse model as the staging promotion bar.

:class:`~repro.cache.staging.CounterFlashiness` promotes on raw re-access
counts.  This module supplies the learned variant the ROADMAP item calls
for: the same per-request feature machinery the paper's admission
classifier runs on (:class:`repro.core.online.OnlineFeatureTracker`) feeds
a fitted one-time-vs-reused model through the compiled
:func:`repro.ml.fastpath.fast_predictor` scalar path, and a staged object
is promoted only when it has shown at least ``min_dram_hits`` re-accesses
*and* the model predicts further reuse.

The predicate is built for single-cache ``simulate()`` runs: the staging
cache's internal request clock is used as the trace index, which is valid
because the simulator replays the trace from position 0 and routes every
request through the policy exactly once (``StagingCache.can_batch_hits()``
is pinned ``False``).  Cluster nodes interleave and re-route requests, so
they stick with the counter bar.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.cache.staging import FlashinessPredicate
from repro.ml.fastpath import fast_predictor

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.core.online import OnlineFeatureTracker
    from repro.trace.records import Trace

# repro.core is imported lazily below: this module is pulled in by
# ``repro.ml.__init__`` while ``repro.cache`` may still be mid-import, and
# ``repro.core.__init__`` re-enters the cache package (pipeline →
# simulator), which would close an import cycle.
_SENTINEL = object()

__all__ = ["LearnedFlashiness", "learned_flashiness_for_trace"]


class LearnedFlashiness(FlashinessPredicate):
    """Promote staged objects the model predicts will be re-accessed.

    Parameters
    ----------
    model:
        A fitted classifier over ``tracker.feature_names`` whose positive
        label marks *one-time* objects (the paper's convention).
    tracker:
        The online feature tracker for the trace being replayed; must be
        exclusive to this predicate (``observe`` is driven from here).
    min_dram_hits:
        Evidence floor: a staged object needs at least this many DRAM
        re-accesses before the model is even consulted.  0 lets the model
        alone decide at miss time (a pure learned admission bar).
    pos_label:
        The model's one-time label; defaults to
        :data:`repro.core.labeling.ONE_TIME`.
    """

    def __init__(
        self,
        model,
        tracker: OnlineFeatureTracker,
        *,
        min_dram_hits: int = 1,
        pos_label=_SENTINEL,
    ):
        if pos_label is _SENTINEL:
            from repro.core.labeling import ONE_TIME

            pos_label = ONE_TIME
        if min_dram_hits < 0:
            raise ValueError("min_dram_hits must be >= 0")
        self.model = model
        self.tracker = tracker
        self.min_dram_hits = int(min_dram_hits)
        self.pos_label = pos_label
        self.decisions = 0
        self.predicted_reuse = 0
        self._predict_one = fast_predictor(model).predict_one
        self._buf = [0.0] * len(tracker.feature_names)

    def should_promote(self, index: int, oid: int, size: int, dram_hits: int) -> bool:
        if dram_hits < self.min_dram_hits:
            return False
        verdict = self._predict_one(self.tracker.features_into(index, self._buf))
        self.decisions += 1
        if verdict != self.pos_label:
            self.predicted_reuse += 1
            return True
        return False

    def on_request(self, index: int, oid: int, size: int) -> None:
        # The tracker must see every request in trace order (recency and
        # the trailing-minute counter depend on hits too).
        self.tracker.observe(index)

    def reset(self) -> None:
        self.tracker.reset()
        self.decisions = 0
        self.predicted_reuse = 0


def learned_flashiness_for_trace(
    trace: Trace,
    model,
    *,
    min_dram_hits: int = 1,
    feature_names=None,
) -> LearnedFlashiness:
    """Bundle a fresh tracker with ``model`` for one replay of ``trace``."""
    from repro.core.online import OnlineFeatureTracker

    if feature_names is None:
        tracker = OnlineFeatureTracker(trace)
    else:
        tracker = OnlineFeatureTracker(trace, feature_names=feature_names)
    return LearnedFlashiness(model, tracker, min_dram_hits=min_dram_hits)
