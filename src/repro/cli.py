"""Command-line interface: ``python -m repro <command>``.

Subcommands
-----------
``stats``       synthesise a trace and print its §2.2 statistics, or — with
                ``--watch`` — poll a live node's ``/statsz`` endpoint
``generate``    synthesise a trace and save it (.npz)
``simulate``    replay a trace through one policy/capacity
``experiment``  full Original/Proposal/Ideal/Belady comparison
``sweep``       capacity sweep for one policy (Fig.-2/6 style rows)
``grid``        the full policies × configs × capacities grid, fanned out
                over shared-memory workers (``--workers``,
                ``--start-method`` fork/spawn/forkserver/inline)
``serve``       run the asyncio cache-node service on a trace
                (``--metrics-port`` adds the HTTP observability side-car)
``loadgen``     open-loop trace replay against a running ``serve`` node
``trace-dump``  drain a serving node's sampled decision-trace ring buffer
                (the TCP ``TRACE`` verb) as JSON lines
``spans-dump``  drain a serving node's span ring buffer (the TCP ``SPANS``
                verb) as Chrome trace-event JSON for Perfetto
``bench-hotpath``  measure ns/decision through the admission hot path,
                assert fast/reference parity, write ``BENCH_hotpath.json``
``scenario``    deterministic fault-injection replay against the two-tier
                cluster (node kills/restarts, hot-key floods, rolling
                deploys) with per-phase stats and an oracle gap
``staging``     head-to-head admission comparison — no-admission vs the
                paper's classifier vs the Flashield-style flashiness bar
                vs their composition — judged at the device (writes, WA,
                CMT pressure, projected lifetime) per capacity point

All commands accept either ``--trace file.npz`` or generator parameters
(``--objects``, ``--days``, ``--seed``).  ``serve`` and ``loadgen`` must be
given the *same* trace (file or generator parameters) — the load generator
replays trace positions and the server validates them against its catalog.
"""

from __future__ import annotations

import argparse
import sys

from repro.cache import make_policy, simulate
from repro.config import paper_capacity_fractions, paper_equivalent_bytes
from repro.core.pipeline import run_experiment
from repro.trace.generator import WorkloadConfig, generate_trace
from repro.trace.io import load_trace, save_trace
from repro.trace.stats import compute_stats, type_request_histogram

__all__ = ["main", "build_parser"]


def _add_trace_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--trace", help="load a saved trace (.npz) instead of generating")
    p.add_argument("--objects", type=int, default=25_000, help="objects to synthesise")
    p.add_argument("--days", type=float, default=9.0)
    p.add_argument("--seed", type=int, default=0)


def _add_log_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--log-level", default="info",
                   choices=["debug", "info", "warning", "error"],
                   help="stdlib logging level for the repro.* loggers")
    p.add_argument("--log-json", action="store_true",
                   help="emit logs as JSON lines (same encoding as TRACE events)")


def _resolve_trace(args):
    if args.trace:
        return load_trace(args.trace)
    return generate_trace(
        WorkloadConfig(n_objects=args.objects, days=args.days, seed=args.seed)
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="One-time-access-exclusion SSD caching (ICPP 2018 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("stats", help="trace statistics (§2.2) and type histogram")
    _add_trace_args(p)
    p.add_argument("--types", action="store_true", help="print the Fig.-3 histogram")
    p.add_argument("--watch", action="store_true",
                   help="poll a live node's /statsz instead of analysing a trace")
    p.add_argument("--stats-host", default="127.0.0.1",
                   help="metrics exporter host (with --watch)")
    p.add_argument("--stats-port", type=int, default=9642,
                   help="metrics exporter port (with --watch)")
    p.add_argument("--interval", type=float, default=2.0,
                   help="seconds between polls (with --watch)")
    p.add_argument("--iterations", type=int, default=None,
                   help="stop after N polls (default: until interrupted)")

    p = sub.add_parser("generate", help="synthesise a trace and save it")
    _add_trace_args(p)
    p.add_argument("output", help="output path (.npz)")

    p = sub.add_parser("simulate", help="replay a trace through one cache")
    _add_trace_args(p)
    p.add_argument("--policy", default="lru")
    p.add_argument("--capacity-fraction", type=float, default=0.01,
                   help="capacity as a fraction of the trace footprint")
    p.add_argument("--no-segments", action="store_true",
                   help="disable vectorised hit-run batching (bit-identical "
                        "results; for parity checks and timing comparisons)")

    p = sub.add_parser("experiment", help="Original/Proposal/Ideal/Belady comparison")
    _add_trace_args(p)
    p.add_argument("--policy", default="lru")
    p.add_argument("--capacity-fraction", type=float, default=0.01)
    p.add_argument("--cost-v", type=float, default=None)
    p.add_argument("--no-belady", action="store_true")

    p = sub.add_parser("sweep", help="hit rate across the paper's capacity axis")
    _add_trace_args(p)
    p.add_argument("--policy", default="lru")
    p.add_argument("--no-segments", action="store_true",
                   help="disable vectorised hit-run batching")

    p = sub.add_parser(
        "grid",
        help="parallel policies × configs × capacities evaluation grid "
             "(Figs. 6–10)",
    )
    _add_trace_args(p)
    p.add_argument("--policies", nargs="+", default=None,
                   help="replacement policies to sweep (default: the "
                        "paper's five)")
    p.add_argument("--fractions", nargs="+", type=float, default=None,
                   help="capacity axis as footprint fractions (default: the "
                        "paper's 2–20 GB sweep)")
    p.add_argument("--metric", default="hit_rate",
                   choices=["hit_rate", "byte_hit_rate", "file_write_rate",
                            "byte_write_rate"])
    p.add_argument("--workers", type=int, default=None,
                   help="worker processes (default: min(blocks, cpus); "
                        "0 or 1 computes inline)")
    p.add_argument("--start-method", default=None,
                   help="multiprocessing start method: inline, fork, spawn "
                        "or forkserver (default: $REPRO_START_METHOD, then "
                        "the platform default)")
    p.add_argument("--no-segments", action="store_true",
                   help="disable vectorised hit-run batching")

    p = sub.add_parser("analyze", help="workload analysis: Zipf, reuse, stack profile")
    _add_trace_args(p)

    p = sub.add_parser(
        "report", help="markdown report: Original/Proposal/Ideal/Belady per policy"
    )
    _add_trace_args(p)
    p.add_argument("output", help="output markdown path")
    p.add_argument("--policies", nargs="+", default=["lru", "fifo"])
    p.add_argument("--capacity-fraction", type=float, default=0.01)

    p = sub.add_parser("serve", help="run the asyncio cache-node service")
    _add_trace_args(p)
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8642, help="0 picks a free port")
    p.add_argument("--policy", default="lru")
    p.add_argument("--capacity-fraction", type=float, default=0.01)
    p.add_argument("--dram-fraction", type=float, default=0.05,
                   help="DRAM tier as a fraction of SSD capacity; 0 disables")
    p.add_argument("--no-classifier", action="store_true",
                   help="admit every miss (the paper's Original baseline)")
    p.add_argument("--cost-v", type=float, default=2.0)
    p.add_argument("--max-batch", type=int, default=256,
                   help="max requests per micro-batched inference call")
    p.add_argument("--no-columnar", action="store_true",
                   help="fill the feature matrix row by row instead of the "
                        "vectorised columnar batch path (same verdicts)")
    p.add_argument("--no-uvloop", action="store_true",
                   help="stay on the stdlib asyncio loop even when uvloop "
                        "is installed")
    p.add_argument("--queue-depth", type=int, default=1024,
                   help="bounded request queue (backpressure threshold)")
    p.add_argument("--retrain-period", type=float, default=0.0,
                   help="trace seconds between retrains; 0 disables the "
                        "background retrainer (RELOAD still unavailable)")
    p.add_argument("--retrain-hour", type=float, default=5.0)
    p.add_argument("--metrics-port", type=int, default=None,
                   help="serve /metrics, /healthz and /statsz over HTTP on "
                        "this port (0 picks a free one); omit to disable")
    p.add_argument("--metrics-host", default="127.0.0.1")
    p.add_argument("--trace-sample", type=float, default=0.0,
                   help="fraction of admission decisions recorded in the "
                        "TRACE ring buffer (0 disables tracing)")
    p.add_argument("--trace-capacity", type=int, default=4096,
                   help="decision-trace ring-buffer size (events kept)")
    p.add_argument("--spans", action="store_true",
                   help="record request-lifecycle spans (drain with "
                        "'repro spans-dump'; off by default — the disabled "
                        "path is a strict no-op)")
    p.add_argument("--spans-capacity", type=int, default=16_384,
                   help="span ring-buffer size (finished spans kept)")
    p.add_argument("--drift-window", type=int, default=10_000,
                   help="matured-verdict window size for the live drift "
                        "monitor (0 disables it)")
    p.add_argument("--drift-threshold", type=float, default=None,
                   help="fire the drift alarm when a window's matured "
                        "accuracy drops below this (default: never)")
    p.add_argument("--retrain-on-drift", action="store_true",
                   help="schedule an immediate retrain when the drift alarm "
                        "fires (requires a retrainer and --drift-threshold)")
    _add_log_args(p)

    p = sub.add_parser("loadgen", help="open-loop replay against a serve node")
    _add_trace_args(p)
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8642)
    p.add_argument("--rate", type=float, default=2000.0,
                   help="offered load, requests/second")
    p.add_argument("--connections", type=int, default=4)
    p.add_argument("--start", type=int, default=0)
    p.add_argument("--limit", type=int, default=None,
                   help="replay only the first LIMIT positions from --start")
    p.add_argument("--protocol", choices=("json", "binary"), default="json",
                   help="wire protocol for GET replay (binary = compact v2 "
                        "frames; identical server verdicts and counters)")
    p.add_argument("--no-uvloop", action="store_true",
                   help="stay on the stdlib asyncio loop even when uvloop "
                        "is installed")
    p.add_argument("--chrome-trace", default=None,
                   help="record client-side send/recv spans and write them "
                        "as Chrome trace-event JSON to this path")
    _add_log_args(p)

    p = sub.add_parser(
        "bench-hotpath",
        help="benchmark the per-miss admission hot path (BENCH_hotpath.json)",
    )
    _add_trace_args(p)
    p.add_argument("--quick", action="store_true",
                   help="small trace + short timing budgets (CI smoke mode)")
    p.add_argument("--output", default="BENCH_hotpath.json",
                   help="report path (default: ./BENCH_hotpath.json)")
    p.add_argument("--min-speedup", type=float, default=None,
                   help="compiled single-row speedup floor (default: 5.0 in "
                        "full mode, unchecked with --quick)")
    p.add_argument("--min-segment-speedup", type=float, default=None,
                   help="segmented-simulation speedup floor (default: 3.0 in "
                        "full mode, unchecked with --quick)")
    p.add_argument("--components", default=None,
                   help="comma-separated measurement groups "
                        "(tree,tracker,admission,segments,spans,gbdt; "
                        "default: all)")

    p = sub.add_parser(
        "scenario",
        help="replay a fault-injection scenario against the two-tier cluster",
    )
    _add_trace_args(p)
    p.add_argument("--spec", default=None,
                   help="JSON scenario file (default: the built-in reference "
                        "scenario — 4 nodes, replication 2, kill/restart + "
                        "hot-key flood + rolling deploy)")
    p.add_argument("--requests", type=int, default=None,
                   help="base requests for the reference scenario (default: "
                        "the whole trace; ignored with --spec)")
    p.add_argument("--json", default=None,
                   help="also write the full report as JSON to this path")
    p.add_argument("--no-baseline", action="store_true",
                   help="skip the failure-free baseline replay (and its "
                        "exact-equality check on pristine phases)")
    p.add_argument("--no-oracle", action="store_true",
                   help="skip the single-node oracle comparator")
    p.add_argument("--chrome-trace", default=None,
                   help="record per-phase replay spans and write them as "
                        "Chrome trace-event JSON (loads in Perfetto)")

    p = sub.add_parser(
        "staging",
        help="classifier vs flashiness vs composed, judged at the device "
             "(writes, WA, CMT pressure, lifetime)",
    )
    _add_trace_args(p)
    p.add_argument("--fractions", nargs="+", type=float, default=None,
                   help="capacity axis as footprint fractions (default: "
                        "0.02 0.05 0.10)")
    p.add_argument("--dram-fraction", type=float, default=0.05,
                   help="staging/DRAM tier as a fraction of SSD capacity")
    p.add_argument("--flashiness-threshold", type=int, default=1,
                   help="DRAM re-accesses required before a staged object "
                        "earns its SSD write")
    p.add_argument("--redemption-delta", type=int, default=1,
                   help="extra re-accesses (beyond the bar) that let the "
                        "composed scheme override a classifier denial")
    p.add_argument("--learned-flashiness", action="store_true",
                   help="consult the trained classifier model inside the "
                        "flashiness bar (LearnedFlashiness) instead of the "
                        "pure counter")
    p.add_argument("--cmt-fraction", type=float, default=0.25,
                   help="cached mapping table size as a fraction of the "
                        "device's user pages")
    p.add_argument("--json", default=None,
                   help="also write the full comparison as JSON to this path")
    p.add_argument("--no-check", action="store_true",
                   help="skip the composition write-ordering gate (report "
                        "only)")

    p = sub.add_parser(
        "trace-dump",
        help="drain a serving node's decision-trace buffer as JSON lines",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8642,
                   help="the node's TCP protocol port (not the metrics port)")
    p.add_argument("--limit", type=int, default=None,
                   help="at most N most-recent events (default: all buffered)")
    p.add_argument("--clear", action="store_true",
                   help="clear the ring buffer after dumping")
    p.add_argument("--output", default=None,
                   help="write events to this file instead of stdout")

    p = sub.add_parser(
        "spans-dump",
        help="drain a serving node's span buffer as Chrome trace-event JSON",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8642,
                   help="the node's TCP protocol port (not the metrics port)")
    p.add_argument("--limit", type=int, default=None,
                   help="at most N most-recent spans (default: all buffered)")
    p.add_argument("--output", default=None,
                   help="write the trace JSON to this file instead of stdout")

    return parser


def _cmd_stats(args) -> int:
    if args.watch:
        return _watch_stats(args)
    trace = _resolve_trace(args)
    print(compute_stats(trace).summary())
    if args.types:
        for name, share in sorted(
            type_request_histogram(trace).items(), key=lambda kv: -kv[1]
        ):
            print(f"  {name}: {100 * share:5.1f}%")
    return 0


def _watch_stats(args) -> int:
    """Live dashboard: poll /statsz and re-render the metrics table."""
    import json
    import time
    import urllib.error
    import urllib.request

    from repro.server.metrics import format_metrics

    url = f"http://{args.stats_host}:{args.stats_port}/statsz"
    polls = 0
    try:
        while args.iterations is None or polls < args.iterations:
            if polls:
                time.sleep(args.interval)
            polls += 1
            try:
                with urllib.request.urlopen(url, timeout=5.0) as resp:
                    snap = json.loads(resp.read().decode("utf-8"))
            except (urllib.error.URLError, OSError, ValueError) as exc:
                print(f"[{time.strftime('%H:%M:%S')}] {url}: {exc}")
                continue
            done = snap["processed"]
            total = snap["trace_requests"]
            pct = 100.0 * done / total if total else 0.0
            print(f"\n[{time.strftime('%H:%M:%S')}] {url}  "
                  f"replay {done:,}/{total:,} ({pct:.1f}%)")
            print(format_metrics(snap))
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_generate(args) -> int:
    trace = _resolve_trace(args)
    save_trace(trace, args.output)
    print(f"saved {trace.n_accesses:,} accesses / {trace.n_objects:,} objects "
          f"to {args.output}")
    return 0


def _cmd_simulate(args) -> int:
    trace = _resolve_trace(args)
    cap = max(1, int(args.capacity_fraction * trace.footprint_bytes))
    result = simulate(
        trace, make_policy(args.policy, cap, trace), policy_name=args.policy,
        use_segments=not args.no_segments,
    )
    s = result.stats
    print(f"policy={args.policy} capacity={cap / 2**20:.1f} MiB")
    print(f"hit rate          {s.hit_rate:.4f}")
    print(f"byte hit rate     {s.byte_hit_rate:.4f}")
    print(f"file write rate   {s.file_write_rate:.4f}")
    print(f"byte write rate   {s.byte_write_rate:.4f}")
    print(f"requests={s.requests:,} hits={s.hits:,} writes={s.files_written:,}")
    return 0


def _cmd_experiment(args) -> int:
    trace = _resolve_trace(args)
    result = run_experiment(
        trace,
        policy=args.policy,
        capacity_fraction=args.capacity_fraction,
        cost_v=args.cost_v,
        include_belady=not args.no_belady,
    )
    print(result.summary())
    o = result.training.overall
    print(f"classifier: precision={o['precision']:.3f} recall={o['recall']:.3f} "
          f"accuracy={o['accuracy']:.3f}")
    return 0


def _cmd_sweep(args) -> int:
    trace = _resolve_trace(args)
    print(f"{'paper GB':>9s} {'capacity MiB':>13s} {'hit rate':>9s}")
    for frac in paper_capacity_fractions():
        sc = paper_equivalent_bytes(frac, trace.footprint_bytes)
        r = simulate(trace, make_policy(args.policy, sc.bytes, trace),
                     use_segments=not args.no_segments)
        print(f"{sc.paper_gb:9.0f} {sc.bytes / 2**20:13.1f} {r.hit_rate:9.4f}")
    return 0


def _cmd_grid(args) -> int:
    from repro.experiments import (
        POLICIES,
        GridRunner,
        format_sweep_table,
        resolve_start_method,
    )

    start_method = resolve_start_method(args.start_method)  # fail fast
    trace = _resolve_trace(args)
    runner = GridRunner(
        trace,
        fractions=args.fractions,
        policies=tuple(args.policies) if args.policies else POLICIES,
        use_segments=not args.no_segments,
    )
    runner.precompute(max_workers=args.workers, start_method=start_method)
    print(
        format_sweep_table(
            f"{args.metric} across the capacity axis", runner, args.metric
        )
    )
    return 0


def _cmd_analyze(args) -> int:
    import numpy as np

    from repro.trace.analysis import (
        one_time_share_by_hour,
        popularity_zipf_fit,
        reuse_interval_stats,
        stack_distance_profile,
    )

    trace = _resolve_trace(args)
    fit = popularity_zipf_fit(trace, min_rank=5)
    print(f"Zipf: alpha={fit.exponent:.2f} R2={fit.r_squared:.3f} "
          f"zipf-like={fit.is_zipf_like} top1%={100 * fit.top_1pct_share:.1f}%")
    ri = reuse_interval_stats(trace)
    print(f"reuse: median={ri.median_seconds / 3600:.2f}h "
          f"p90={ri.p90_seconds / 3600:.2f}h "
          f"within-day={100 * ri.within_day_fraction:.0f}%")
    caps = np.unique(
        np.logspace(1, np.log10(trace.n_objects), 6).astype(int)
    )
    profile = stack_distance_profile(trace, caps)
    print("LRU stack profile (objects: hit rate): "
          + "  ".join(f"{c}: {h:.3f}" for c, h in zip(caps, profile)))
    share = one_time_share_by_hour(trace)
    print(f"one-time share: max at {int(np.argmax(share))}:00 "
          f"({share.max():.3f}), min at {int(np.argmin(share))}:00 "
          f"({share.min():.3f})")
    return 0


def _cmd_report(args) -> int:
    from repro.reporting import write_report

    trace = _resolve_trace(args)
    results = [
        run_experiment(
            trace, policy=policy, capacity_fraction=args.capacity_fraction
        )
        for policy in args.policies
    ]
    path = write_report(args.output, trace, results)
    print(f"report written to {path}")
    return 0


def _cmd_serve(args) -> int:
    import asyncio

    from repro.obs import DecisionTrace, DriftMonitor, Tracer, configure_logging
    from repro.server.loop import install_uvloop, loop_label
    from repro.server.metrics import format_metrics, metrics_snapshot
    from repro.server.node import CacheNode, NodeConfig, run_server
    from repro.server.retrainer import Retrainer, RetrainerConfig

    configure_logging(args.log_level, json_format=args.log_json)
    uv = install_uvloop(enable=not args.no_uvloop)
    print(f"event loop: {loop_label(uv)}")
    trace = _resolve_trace(args)
    tracer = None
    if args.trace_sample > 0:
        tracer = DecisionTrace(
            capacity=args.trace_capacity, sample_rate=args.trace_sample
        )
    spans = Tracer(capacity=args.spans_capacity) if args.spans else None
    node = CacheNode(
        trace,
        NodeConfig(
            policy=args.policy,
            capacity_fraction=args.capacity_fraction,
            dram_fraction=args.dram_fraction,
            classifier=not args.no_classifier,
            cost_v=args.cost_v,
            seed=args.seed,
            max_batch=args.max_batch,
            columnar=not args.no_columnar,
        ),
        tracer=tracer,
        spans=spans,
    )
    if node.criteria is not None and args.drift_window > 0:
        node.drift = DriftMonitor(
            node.criteria.m_threshold,
            window_size=args.drift_window,
            alarm_threshold=args.drift_threshold,
            registry=node.registry,
        )
    retrainer = None
    if args.retrain_period > 0 and node.model is not None:
        retrainer = Retrainer(
            node,
            RetrainerConfig(
                period=args.retrain_period, retrain_hour=args.retrain_hour
            ),
        )

    async def _main() -> None:
        server = await run_server(
            node,
            args.host,
            args.port,
            queue_depth=args.queue_depth,
            retrainer=retrainer,
            metrics_host=args.metrics_host,
            metrics_port=args.metrics_port,
            retrain_on_drift=args.retrain_on_drift,
        )
        print(format_metrics(metrics_snapshot(node, server)))

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:  # windows-style ^C without signal handlers
        pass
    return 0


def _cmd_loadgen(args) -> int:
    import asyncio

    from repro.obs import Tracer, configure_logging
    from repro.server.loadgen import LoadgenConfig, run_loadgen
    from repro.server.loop import install_uvloop, loop_label
    from repro.server.metrics import format_metrics

    configure_logging(args.log_level, json_format=args.log_json)
    uv = install_uvloop(enable=not args.no_uvloop)
    print(f"event loop: {loop_label(uv)}")
    trace = _resolve_trace(args)
    tracer = Tracer() if args.chrome_trace else None
    result = asyncio.run(
        run_loadgen(
            trace,
            LoadgenConfig(
                host=args.host,
                port=args.port,
                rate=args.rate,
                connections=args.connections,
                start=args.start,
                limit=args.limit,
                protocol=args.protocol,
            ),
            tracer=tracer,
        )
    )
    if tracer is not None:
        _write_chrome_trace(tracer, args.chrome_trace, "repro-loadgen")
    print(result.summary())
    if result.server_stats is not None:
        print("\nserver STATS snapshot:")
        print(format_metrics(result.server_stats))
    return 0 if result.errors == 0 else 1


def _cmd_bench_hotpath(args) -> int:
    from repro.perf.hotpath import (
        BenchError,
        check_report,
        format_report,
        run_hotpath_bench,
        write_report,
    )

    trace = load_trace(args.trace) if args.trace else None
    # Without an explicit trace, let the harness pick its mode-dependent
    # scale unless the generator knobs were changed from the CLI defaults.
    objects = args.objects if args.objects != 25_000 else None
    days = args.days if args.days != 9.0 else None
    components = None
    if args.components is not None:
        components = [c.strip() for c in args.components.split(",") if c.strip()]
    report = run_hotpath_bench(
        trace=trace, objects=objects, days=days, seed=args.seed,
        quick=args.quick, components=components,
    )
    path = write_report(report, args.output)
    print(format_report(report))
    print(f"[saved to {path}]")
    min_speedup = args.min_speedup
    if min_speedup is None:
        min_speedup = 0.0 if args.quick else 5.0
    min_segment_speedup = args.min_segment_speedup
    if min_segment_speedup is None:
        min_segment_speedup = 0.0 if args.quick else 3.0
    try:
        check_report(report, min_speedup=min_speedup,
                     min_segment_speedup=min_segment_speedup)
    except BenchError as exc:
        print(f"FAILED: {exc}", file=sys.stderr)
        return 1
    return 0


def _write_chrome_trace(tracer, path: str, process_name: str) -> None:
    """Validate and write a tracer's buffer as Chrome trace-event JSON."""
    import json

    from repro.obs import validate_chrome_trace

    doc = tracer.to_chrome(process_name=process_name)
    n_spans = validate_chrome_trace(doc)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh)
    print(f"[{n_spans} span(s) written to {path} — open in ui.perfetto.dev]")


def _cmd_scenario(args) -> int:
    import json

    from repro.obs import Tracer
    from repro.scenario import (
        format_report,
        load_spec,
        reference_scenario,
        run_scenario,
    )

    trace = _resolve_trace(args)
    if args.spec:
        spec = load_spec(args.spec)
    else:
        requests = args.requests if args.requests else trace.n_accesses
        spec = reference_scenario(requests, seed=args.seed)
    tracer = Tracer() if args.chrome_trace else None
    report = run_scenario(
        spec,
        trace,
        with_baseline=not args.no_baseline,
        with_oracle=not args.no_oracle,
        tracer=tracer,
    )
    print(format_report(report))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(report.to_dict(), fh, indent=2)
        print(f"[report written to {args.json}]")
    if tracer is not None:
        _write_chrome_trace(tracer, args.chrome_trace, "repro-scenario")
    if report.baseline_checked and not report.baseline_equal:
        print(
            "FAILED: pristine phases diverged from the failure-free baseline",
            file=sys.stderr,
        )
        return 1
    if report.ledger is not None and not report.ledger["exact"]:
        print(
            "FAILED: write ledger does not sum to the cluster's SSD writes",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_staging(args) -> int:
    import json

    from repro.experiments.staging import (
        DEFAULT_FRACTIONS,
        check_write_ordering,
        format_staging_table,
        run_staging_comparison,
    )

    trace = _resolve_trace(args)
    comparison = run_staging_comparison(
        trace,
        fractions=tuple(args.fractions) if args.fractions else DEFAULT_FRACTIONS,
        dram_fraction=args.dram_fraction,
        flashiness_threshold=args.flashiness_threshold,
        redemption_delta=args.redemption_delta,
        use_learned_flashiness=args.learned_flashiness,
        training_rng=args.seed,
        cmt_fraction=args.cmt_fraction,
    )
    print(format_staging_table(comparison))
    for warning in comparison.warnings:
        print(f"warning: {warning}", file=sys.stderr)
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(comparison.to_dict(), fh, indent=2)
        print(f"[comparison written to {args.json}]")
    if not args.no_check:
        problems = check_write_ordering(comparison)
        if problems:
            for problem in problems:
                print(f"FAILED: {problem}", file=sys.stderr)
            return 1
    return 0


def _cmd_trace_dump(args) -> int:
    import asyncio

    from repro.obs.structlog import json_line
    from repro.server.protocol import read_message, write_message

    async def _dump() -> tuple[dict, list]:
        reader, writer = await asyncio.open_connection(args.host, args.port)
        try:
            request = {"op": "TRACE", "clear": bool(args.clear)}
            if args.limit is not None:
                request["limit"] = args.limit
            await write_message(writer, request)
            msg = await read_message(reader)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        if msg is None or not msg.get("ok"):
            error = (msg or {}).get("error", "connection closed")
            raise ConnectionError(error)
        return msg, msg["events"]

    try:
        msg, events = asyncio.run(_dump())
    except (ConnectionError, OSError) as exc:
        print(f"trace-dump failed: {exc}", file=sys.stderr)
        return 1
    lines = "\n".join(json_line(event) for event in events)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            if lines:
                fh.write(lines + "\n")
    elif lines:
        print(lines)
    print(
        f"{len(events)} event(s) dumped "
        f"(seen {msg['seen']:,}, sampled {msg['sampled']:,}, "
        f"dropped {msg['dropped']:,}, rate {msg['sample_rate']})",
        file=sys.stderr,
    )
    return 0


def _cmd_spans_dump(args) -> int:
    import asyncio
    import json

    from repro.obs import chrome_trace, validate_chrome_trace
    from repro.server.protocol import read_message, write_message

    async def _dump() -> dict:
        reader, writer = await asyncio.open_connection(args.host, args.port)
        try:
            request = {"op": "SPANS"}
            if args.limit is not None:
                request["limit"] = args.limit
            await write_message(writer, request)
            msg = await read_message(reader)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        if msg is None or not msg.get("ok"):
            error = (msg or {}).get("error", "connection closed")
            raise ConnectionError(error)
        return msg

    try:
        msg = asyncio.run(_dump())
    except (ConnectionError, OSError) as exc:
        print(f"spans-dump failed: {exc}", file=sys.stderr)
        return 1
    doc = chrome_trace(msg["spans"], process_name="repro-serve")
    n_spans = validate_chrome_trace(doc)
    text = json.dumps(doc)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
    else:
        print(text)
    print(
        f"{n_spans} span(s) dumped "
        f"(recorded {msg['recorded']:,}, dropped {msg['dropped']:,}, "
        f"capacity {msg['capacity']:,}) — open in ui.perfetto.dev",
        file=sys.stderr,
    )
    return 0


_COMMANDS = {
    "stats": _cmd_stats,
    "generate": _cmd_generate,
    "simulate": _cmd_simulate,
    "experiment": _cmd_experiment,
    "sweep": _cmd_sweep,
    "grid": _cmd_grid,
    "analyze": _cmd_analyze,
    "report": _cmd_report,
    "serve": _cmd_serve,
    "loadgen": _cmd_loadgen,
    "bench-hotpath": _cmd_bench_hotpath,
    "scenario": _cmd_scenario,
    "staging": _cmd_staging,
    "trace-dump": _cmd_trace_dump,
    "spans-dump": _cmd_spans_dump,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
