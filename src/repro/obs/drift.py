"""Live admission-quality (drift) monitoring with delayed labels.

:func:`repro.core.monitoring.evaluate_admission_decisions` scores a
*recorded* verdict stream after the fact.  :class:`DriftMonitor` computes
the identical windowed precision/recall/accuracy *online*: the node feeds
it every request as it is processed, verdicts mature once ``M`` further
requests have been observed (the §4.4.2 horizon), and completed windows
update ``repro_admission_accuracy{window=...}`` gauges and — when
accuracy collapses below a threshold — fire pluggable alarm hooks.  That
alarm is the observable retraining trigger the paper's blind daily
schedule lacks.

Equivalence with the offline scorer is exact and tested: on a full
replay, :meth:`DriftMonitor.quality` reproduces
``evaluate_admission_decisions(object_ids, denied, M, window_size)``
bit-for-bit.  The streaming trick is that an access at position ``j``
settles the verdict of the *previous* access of the same object (reused
iff ``j - i <= M``), so at most one verdict per object is ever "open" and
memory stays O(pending horizon + objects in flight), independent of
stream length.
"""

from __future__ import annotations

import math
from collections import deque

import numpy as np

from repro.core.monitoring import WindowedQuality
from repro.obs.structlog import get_logger

__all__ = ["DriftMonitor"]

logger = get_logger("obs.drift")

# Per-window confusion counts: [tp, fp, fn, tn] with "one-time" positive.
_TP, _FP, _FN, _TN = range(4)


class DriftMonitor:
    """Streaming windowed verdict scoring + threshold alarm.

    Parameters
    ----------
    m_threshold:
        The deployed criterion window ``M`` (re-access distances > M are
        one-time), identical to the offline scorer's.
    window_size:
        Requests per evaluation window.
    alarm_threshold:
        Fire the alarm when a completed window's accuracy drops below
        this; ``None`` disables alarming (scoring still runs).
    registry:
        Optional :class:`~repro.obs.registry.MetricsRegistry` to export
        ``repro_admission_accuracy{window=}``, the worst/latest gauges
        and the alarm counter through.
    on_alarm:
        Iterable of callables ``hook(monitor, window, accuracy)`` invoked
        (after logging/counting) for each alarming window.
    """

    def __init__(
        self,
        m_threshold: float,
        *,
        window_size: int = 10_000,
        alarm_threshold: float | None = None,
        registry=None,
        on_alarm=(),
    ):
        if not (m_threshold > 0 and math.isfinite(m_threshold)):
            raise ValueError("m_threshold must be positive and finite")
        if window_size < 1:
            raise ValueError("window_size must be >= 1")
        if alarm_threshold is not None and not 0.0 <= alarm_threshold <= 1.0:
            raise ValueError("alarm_threshold must be in [0, 1]")
        self.m_threshold = float(m_threshold)
        self.horizon = int(math.ceil(m_threshold))
        self.window_size = int(window_size)
        self.alarm_threshold = alarm_threshold
        self.on_alarm = list(on_alarm)

        # Entries are mutable lists [index, oid, denied, reused].
        self._pending: deque[list] = deque()
        self._open: dict[int, list] = {}
        self._n_obs = 0
        self._counts: dict[int, list[int]] = {}
        self._next_window = 0

        self.matured = 0
        self.alarms = 0
        self.last_alarm: tuple[int, float] | None = None
        self.last_accuracy: float | None = None
        self.worst_accuracy: float | None = None

        self._g_window = self._g_last = self._g_worst = None
        self._c_alarms = self._c_matured = None
        if registry is not None:
            self._g_window = registry.gauge(
                "repro_admission_accuracy",
                "Matured admission-verdict accuracy per completed window.",
                ("window",),
            )
            self._g_last = registry.gauge(
                "repro_admission_accuracy_last",
                "Accuracy of the most recently completed window.",
            )
            self._g_worst = registry.gauge(
                "repro_admission_accuracy_worst",
                "Lowest completed-window accuracy so far.",
            )
            self._c_alarms = registry.counter(
                "repro_drift_alarms_total",
                "Completed windows whose accuracy fell below the threshold.",
            )
            self._c_matured = registry.counter(
                "repro_matured_verdicts_total",
                "Admission verdicts scored against matured labels.",
            )

    # ---------------------------------------------------------------- feed

    def observe(self, index: int, oid: int, denied: bool) -> None:
        """Record one request (trace order; hits pass ``denied=False``)."""
        prev = self._open.get(oid)
        if prev is not None:
            # This access settles the previous verdict for the object:
            # within M requests -> reused, otherwise one-time forever.
            prev[3] = (index - prev[0]) <= self.m_threshold
        entry = [index, oid, denied, False]
        self._open[oid] = entry
        self._pending.append(entry)
        self._n_obs += 1

        pending = self._pending
        while pending and pending[0][0] + self.horizon < self._n_obs:
            self._mature(pending.popleft())
        self._complete_windows()

    def _mature(self, entry: list) -> None:
        index, oid, denied, reused = entry
        if self._open.get(oid) is entry:
            # Never re-accessed inside the observed stream: one-time.
            del self._open[oid]
        one_time = not reused
        counts = self._counts.get(index // self.window_size)
        if counts is None:
            counts = self._counts[index // self.window_size] = [0, 0, 0, 0]
        if denied:
            counts[_TP if one_time else _FP] += 1
        else:
            counts[_FN if one_time else _TN] += 1
        self.matured += 1
        if self._c_matured is not None:
            self._c_matured.inc()

    def _complete_windows(self) -> None:
        frontier = self._pending[0][0] if self._pending else self._n_obs
        while frontier >= (self._next_window + 1) * self.window_size:
            self._finish_window(self._next_window)
            self._next_window += 1

    def _finish_window(self, w: int) -> None:
        counts = self._counts.get(w)
        total = sum(counts) if counts else 0
        if not total:
            return
        accuracy = (counts[_TP] + counts[_TN]) / total
        self.last_accuracy = accuracy
        if self.worst_accuracy is None or accuracy < self.worst_accuracy:
            self.worst_accuracy = accuracy
        if self._g_window is not None:
            self._g_window.labels(window=w).set(accuracy)
            self._g_last.set(accuracy)
            self._g_worst.set(self.worst_accuracy)
        if self.alarm_threshold is not None and accuracy < self.alarm_threshold:
            self.alarms += 1
            self.last_alarm = (w, accuracy)
            if self._c_alarms is not None:
                self._c_alarms.inc()
            logger.warning(
                "admission accuracy %.4f in window %d below threshold %.4f",
                accuracy, w, self.alarm_threshold,
                extra={"window": w, "accuracy": accuracy,
                       "threshold": self.alarm_threshold},
            )
            for hook in self.on_alarm:
                hook(self, w, accuracy)

    def finish(self) -> None:
        """Force-complete every window holding matured verdicts.

        Call at end of stream: trailing windows whose positions have all
        matured-or-expired never cross the streaming completion frontier.
        Unmatured tail verdicts stay unscored, exactly like the offline
        scorer's excluded final horizon.
        """
        for w in sorted(self._counts):
            if w >= self._next_window:
                self._finish_window(w)
        self._next_window = max(self._counts, default=-1) + 1

    # ------------------------------------------------------------- outputs

    def quality(self, n_total: int | None = None) -> WindowedQuality:
        """Windowed quality over everything matured so far.

        With ``n_total`` (the full stream length) the result is shaped
        exactly like ``evaluate_admission_decisions`` on that stream —
        including trailing all-NaN windows — so the two can be compared
        element-wise.
        """
        if n_total is None:
            n_windows = max(1, max(self._counts, default=0) + 1)
        else:
            n_windows = max(1, -(-n_total // self.window_size))
        precision = np.full(n_windows, np.nan)
        recall = np.full(n_windows, np.nan)
        accuracy = np.full(n_windows, np.nan)
        n_scored = np.zeros(n_windows, dtype=np.int64)
        for w, (tp, fp, fn, tn) in self._counts.items():
            if w >= n_windows:
                continue
            total = tp + fp + fn + tn
            n_scored[w] = total
            if total:
                accuracy[w] = (tp + tn) / total
            precision[w] = tp / (tp + fp) if tp + fp else np.nan
            recall[w] = tp / (tp + fn) if tp + fn else np.nan
        return WindowedQuality(
            window_size=self.window_size,
            precision=precision,
            recall=recall,
            accuracy=accuracy,
            n_scored=n_scored,
        )

    def snapshot(self) -> dict:
        """JSON-able summary for STATS / ``/statsz``."""
        return {
            "window_size": self.window_size,
            "m_threshold": self.m_threshold,
            "observed": self._n_obs,
            "matured": self.matured,
            "windows_completed": self._next_window,
            "last_accuracy": self.last_accuracy,
            "worst_accuracy": self.worst_accuracy,
            "alarm_threshold": self.alarm_threshold,
            "alarms": self.alarms,
            "last_alarm": (
                {"window": self.last_alarm[0], "accuracy": self.last_alarm[1]}
                if self.last_alarm is not None
                else None
            ),
        }

    def reset(self) -> None:
        self._pending.clear()
        self._open.clear()
        self._counts.clear()
        self._n_obs = 0
        self._next_window = 0
        self.matured = 0
        self.alarms = 0
        self.last_alarm = None
        self.last_accuracy = None
        self.worst_accuracy = None
