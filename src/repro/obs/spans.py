"""Dependency-free span tracing with Chrome trace-event export.

A *span* is one named, timed interval of work (``perf_counter_ns``
endpoints) with a category and free-form ``args``.  :class:`Tracer`
collects finished spans into a bounded ring buffer; the buffer drains
through the TCP ``SPANS`` verb (``repro spans-dump``) or in-process via
:meth:`Tracer.events` / :meth:`Tracer.to_chrome`, producing Chrome
trace-event JSON that loads directly in Perfetto / ``chrome://tracing``.

Design constraints, in order:

* **Strict no-op when disabled.**  ``Tracer(enabled=False)`` (and the
  shared :data:`NULL_TRACER`) return a singleton :data:`NULL_SPAN` from
  :meth:`Tracer.span` — no allocation, no clock read, no buffer touch.
  The hot-path bench (``bench-hotpath --components spans``) measures
  exactly this path so regressions gate CI.
* **Trees survive asyncio interleaving.**  Chrome "complete" events
  (``ph: "X"``) nest purely by time containment *per tid*; concurrent
  request batches would interleave into nonsense on a single track.  The
  current track id travels in a :class:`contextvars.ContextVar`, so a
  span opened with no enclosing span starts a fresh track, children
  (including those in ``await``-ed code and tasks created inside the
  span) inherit it, and independent roots never share a tid.
* **Bounded memory.**  The ring keeps the newest ``capacity`` finished
  spans; :attr:`Tracer.dropped` counts evictions so a drain can report
  loss honestly.

Span bodies use the context-manager form::

    with tracer.span("batch_inference", "node", n=len(rows)):
        verdicts = predictor.predict(rows)

and already-timed intervals (e.g. queue wait measured from a request's
enqueue timestamp) are recorded post-hoc with :meth:`Tracer.add`.
"""

from __future__ import annotations

import contextvars
import time
from collections import deque

__all__ = [
    "NULL_SPAN",
    "NULL_TRACER",
    "Span",
    "Tracer",
    "chrome_trace",
    "validate_chrome_trace",
]

#: Track id (Chrome ``tid``) of the innermost open span in this context;
#: ``None`` means "no enclosing span — the next span roots a new track".
_CURRENT_TRACK: contextvars.ContextVar[int | None] = contextvars.ContextVar(
    "repro_span_track", default=None
)


class _NullSpan:
    """Shared do-nothing span: the disabled tracer's entire overhead."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def annotate(self, **args) -> "_NullSpan":
        return self

    @property
    def track(self) -> None:
        return None


NULL_SPAN = _NullSpan()


class _TrackScope:
    """Context manager pinning the current track id (see ``use_track``)."""

    __slots__ = ("track", "_token")

    def __init__(self, track: int):
        self.track = track

    def __enter__(self) -> int:
        self._token = _CURRENT_TRACK.set(self.track)
        return self.track

    def __exit__(self, *exc) -> bool:
        _CURRENT_TRACK.reset(self._token)
        return False


class Span:
    """One in-flight timed interval; record via ``with`` (enter = start,
    exit = stop + append to the owning tracer's ring)."""

    __slots__ = ("tracer", "name", "cat", "args", "track",
                 "start_ns", "end_ns", "_start_override", "_token")

    def __init__(self, tracer: "Tracer", name: str, cat: str,
                 args: dict, start_ns: int | None):
        self.tracer = tracer
        self.name = name
        self.cat = cat
        self.args = args
        self.track: int | None = None
        self.start_ns = 0
        self.end_ns = 0
        self._start_override = start_ns

    def __enter__(self) -> "Span":
        parent = _CURRENT_TRACK.get()
        self.track = parent if parent is not None else self.tracer.new_track()
        self._token = _CURRENT_TRACK.set(self.track)
        self.start_ns = (
            self._start_override
            if self._start_override is not None
            else self.tracer.clock()
        )
        return self

    def __exit__(self, *exc) -> bool:
        self.end_ns = self.tracer.clock()
        _CURRENT_TRACK.reset(self._token)
        self.tracer._record(
            self.name, self.cat, self.track, self.start_ns, self.end_ns,
            self.args,
        )
        return False

    def annotate(self, **args) -> "Span":
        """Attach/overwrite args mid-span (e.g. a result count)."""
        self.args.update(args)
        return self


class Tracer:
    """Bounded ring of finished spans with contextvar track propagation.

    One tracer is shared per process (node + server + retrainer see the
    same instance), so a drain sees a coherent timeline.  Single-writer
    asyncio use needs no locking; the deque append is atomic enough for
    the read-mostly drain path.
    """

    def __init__(self, capacity: int = 16_384, *, enabled: bool = True,
                 clock=time.perf_counter_ns):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.enabled = enabled
        self.clock = clock
        self._spans: deque[dict] = deque(maxlen=capacity)
        self.recorded = 0      # spans ever finished (ring may have evicted)
        self._next_track = _TrackCounter()

    # ------------------------------------------------------------ recording

    def span(self, name: str, cat: str = "task",
             start_ns: int | None = None, **args):
        """A context-managed span; :data:`NULL_SPAN` when disabled.

        ``start_ns`` backdates the start (for intervals that began before
        the span object could exist, e.g. a batch whose root starts at
        the earliest request's enqueue time); children opened inside
        still nest on the same track.
        """
        if not self.enabled:
            return NULL_SPAN
        return Span(self, name, cat, args, start_ns)

    def add(self, name: str, cat: str, start_ns: int, end_ns: int, *,
            track: int | None = None, args: dict | None = None) -> None:
        """Record an already-measured interval without entering a span."""
        if not self.enabled:
            return
        if track is None:
            track = _CURRENT_TRACK.get()
            if track is None:
                track = self.new_track()
        self._record(name, cat, track, start_ns, end_ns,
                     {} if args is None else args)

    def use_track(self, track: int | None = None):
        """Pin the current track for a block, so spans opened inside —
        including manual :meth:`add` calls and nested context-managed
        spans — land on one tid.  No-op context when disabled."""
        if not self.enabled:
            return NULL_SPAN
        return _TrackScope(self.new_track() if track is None else track)

    def new_track(self) -> int:
        return self._next_track()

    def current_track(self) -> int | None:
        return _CURRENT_TRACK.get()

    def _record(self, name, cat, track, start_ns, end_ns, args) -> None:
        self._spans.append(
            {
                "name": name,
                "cat": cat,
                "track": track,
                "start_ns": start_ns,
                "end_ns": end_ns,
                "args": args,
            }
        )
        self.recorded += 1

    # -------------------------------------------------------------- reading

    def __len__(self) -> int:
        return len(self._spans)

    def __bool__(self) -> bool:
        # Never buffer-dependent: ``tracer or NULL_TRACER`` must keep the
        # real tracer even while its ring is still empty.
        return True

    @property
    def dropped(self) -> int:
        """Finished spans evicted by the ring bound."""
        return self.recorded - len(self._spans)

    def events(self, limit: int | None = None, *, clear: bool = False) -> list[dict]:
        """The newest buffered spans, oldest-first (up to ``limit``)."""
        spans = list(self._spans)
        if limit is not None and limit < len(spans):
            spans = spans[len(spans) - limit:]
        if clear:
            self._spans.clear()
        return spans

    def clear(self) -> None:
        self._spans.clear()
        self.recorded = 0

    def to_chrome(self, *, process_name: str = "repro") -> dict:
        """Chrome trace-event JSON of the buffered spans."""
        return chrome_trace(self.events(), process_name=process_name)


class _TrackCounter:
    """Monotonic track-id source (plain int counter, picklable-free)."""

    __slots__ = ("_n",)

    def __init__(self):
        self._n = 0

    def __call__(self) -> int:
        self._n += 1
        return self._n


#: Shared disabled tracer: lets call sites write
#: ``spans = node.spans or NULL_TRACER`` and drop the None checks.
NULL_TRACER = Tracer(capacity=1, enabled=False)


# --------------------------------------------------------------------------
# Chrome trace-event export
# --------------------------------------------------------------------------

def chrome_trace(events: list[dict], *, process_name: str = "repro",
                 pid: int = 1) -> dict:
    """Convert drained span dicts to the Chrome trace-event JSON format.

    Emits one "complete" (``ph: "X"``) event per span with microsecond
    ``ts``/``dur`` rebased to the earliest span, plus a ``process_name``
    metadata record so Perfetto labels the track group.  The output loads
    in https://ui.perfetto.dev (open → drop the JSON file).
    """
    trace_events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": process_name},
        }
    ]
    if events:
        origin = min(e["start_ns"] for e in events)
        for e in events:
            trace_events.append(
                {
                    "name": e["name"],
                    "cat": e["cat"],
                    "ph": "X",
                    "ts": (e["start_ns"] - origin) / 1000.0,
                    "dur": max(e["end_ns"] - e["start_ns"], 0) / 1000.0,
                    "pid": pid,
                    "tid": e["track"],
                    "args": e["args"],
                }
            )
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def validate_chrome_trace(obj) -> int:
    """Sanity-check a Chrome trace-event document; returns the span count.

    Verifies the subset of the trace-event schema this repo emits (and
    that Perfetto requires to load a file): a top-level ``traceEvents``
    list whose entries have a string ``name``/``ph``, and whose complete
    (``"X"``) events carry numeric non-negative ``ts``/``dur`` plus
    integer ``pid``/``tid``.  Raises :class:`ValueError` on the first
    violation; the CI scenario-smoke artifact is gated on this.
    """
    if not isinstance(obj, dict):
        raise ValueError("trace document must be a JSON object")
    events = obj.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("traceEvents must be a list")
    n_spans = 0
    for pos, e in enumerate(events):
        where = f"traceEvents[{pos}]"
        if not isinstance(e, dict):
            raise ValueError(f"{where}: not an object")
        if not isinstance(e.get("name"), str):
            raise ValueError(f"{where}: missing string 'name'")
        ph = e.get("ph")
        if not isinstance(ph, str) or not ph:
            raise ValueError(f"{where}: missing string 'ph'")
        if ph != "X":
            continue
        for key in ("ts", "dur"):
            v = e.get(key)
            if not isinstance(v, (int, float)) or isinstance(v, bool) or v < 0:
                raise ValueError(f"{where}: {key!r} must be a number >= 0")
        for key in ("pid", "tid"):
            v = e.get(key)
            if not isinstance(v, int) or isinstance(v, bool):
                raise ValueError(f"{where}: {key!r} must be an integer")
        if "args" in e and not isinstance(e["args"], dict):
            raise ValueError(f"{where}: 'args' must be an object")
        n_spans += 1
    return n_spans
