"""Dependency-free metrics primitives for the serving stack.

A deliberately small subset of the Prometheus data model — enough to make
every layer of the node observable without adding a client-library
dependency:

* :class:`Counter` — monotone float, ``inc()``.
* :class:`Gauge` — settable float, ``set()/inc()/dec()``.
* :class:`Histogram` — fixed-bucket distribution, ``observe()``.  The
  default buckets are log-scale latency buckets (1 µs … ~8 s), matching
  the quantities the node actually measures (``t_classify``, service
  latency).
* :class:`Reservoir` — a bounded uniform sample (Vitter's Algorithm R)
  with *exact* count/sum/max tracking, used where percentile fidelity
  over the raw stream matters more than bucket counts (the STATS table's
  p50/p95/p99).  O(capacity) memory regardless of stream length.

All metric kinds support labels.  A family created with label names hands
out per-label-value children via :meth:`MetricFamily.labels`; a family
created without label names is used directly.  The registry renders the
Prometheus text exposition format (version 0.0.4) for the HTTP exporter
and a JSON-able snapshot for ``/statsz`` / the TCP STATS verb.

Everything here is synchronous and single-threaded by design: in the
serving stack all mutation happens on the node's single writer task, so
no locks are needed (the same invariant the cache state relies on).
"""

from __future__ import annotations

import math
import random
import re

import numpy as np

__all__ = [
    "latency_buckets",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "Reservoir",
]

_METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def latency_buckets(start: float = 1e-6, factor: float = 2.0, count: int = 24):
    """Log-scale bucket upper bounds: ``start * factor**i`` (1 µs … ~8 s)."""
    if start <= 0 or factor <= 1 or count < 1:
        raise ValueError("need start > 0, factor > 1, count >= 1")
    return tuple(start * factor**i for i in range(count))


def _format_value(value: float) -> str:
    """Prometheus sample-value formatting: integral floats without '.0'."""
    if value != value:  # NaN
        return "NaN"
    if value in (math.inf, -math.inf):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 2**53:
        return str(int(value))
    return repr(float(value))


def _escape_label_value(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _render_labels(names, values) -> str:
    if not names:
        return ""
    inner = ",".join(
        f'{n}="{_escape_label_value(v)}"' for n, v in zip(names, values)
    )
    return "{" + inner + "}"


# --------------------------------------------------------------------------
# Children (one per label-value combination)
# --------------------------------------------------------------------------


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters can only increase")
        self.value += amount

    def _reset(self) -> None:
        self.value = 0.0


class Gauge:
    """A value that can go up and down."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def _reset(self) -> None:
        self.value = 0.0


class Histogram:
    """Fixed-bucket distribution with exact sum/count.

    ``observe_many`` records ``n`` identical observations in O(log buckets)
    — the micro-batched inference path amortises one measured duration over
    a whole batch, and looping would cost O(batch) for no information gain.
    """

    __slots__ = ("buckets", "counts", "sum", "count")

    def __init__(self, buckets):
        self.buckets = buckets  # ascending upper bounds, +Inf implicit
        self.counts = [0] * (len(buckets) + 1)
        self.sum = 0.0
        self.count = 0

    def _index(self, value: float) -> int:
        lo, hi = 0, len(self.buckets)
        while lo < hi:
            mid = (lo + hi) // 2
            if value <= self.buckets[mid]:
                hi = mid
            else:
                lo = mid + 1
        return lo

    def observe(self, value: float) -> None:
        self.counts[self._index(value)] += 1
        self.sum += value
        self.count += 1

    def observe_many(self, value: float, n: int) -> None:
        if n < 0:
            raise ValueError("n must be non-negative")
        if n:
            self.counts[self._index(value)] += n
            self.sum += value * n
            self.count += n

    def cumulative(self):
        """(upper_bound, cumulative_count) pairs, ending with +Inf."""
        total = 0
        out = []
        for le, c in zip((*self.buckets, math.inf), self.counts):
            total += c
            out.append((le, total))
        return out

    def _reset(self) -> None:
        self.counts = [0] * len(self.counts)
        self.sum = 0.0
        self.count = 0


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


# --------------------------------------------------------------------------
# Families and the registry
# --------------------------------------------------------------------------


class MetricFamily:
    """One named metric with zero or more labelled children.

    Without label names the family proxies directly to its single child,
    so ``registry.counter("x").inc()`` works; with label names, call
    :meth:`labels` first.
    """

    def __init__(self, name: str, kind: str, help: str, labelnames=(), **kwargs):
        if not _METRIC_NAME.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        for label in labelnames:
            if not _LABEL_NAME.match(label) or label == "le":
                raise ValueError(f"invalid label name {label!r}")
        self.name = name
        self.kind = kind
        self.help = help
        self.labelnames = tuple(labelnames)
        self._kwargs = kwargs
        self._children: dict[tuple, object] = {}
        if not self.labelnames:
            self._default = self._make_child(())
        else:
            self._default = None

    def _make_child(self, key: tuple):
        child = (
            Histogram(**self._kwargs)
            if self.kind == "histogram"
            else _KINDS[self.kind]()
        )
        self._children[key] = child
        return child

    def labels(self, *values, **kv):
        """The child for one label-value combination (created on demand)."""
        if kv:
            if values:
                raise ValueError("pass label values positionally or by name")
            try:
                values = tuple(str(kv[n]) for n in self.labelnames)
            except KeyError as exc:
                raise ValueError(f"missing label {exc}") from exc
            if len(kv) != len(self.labelnames):
                raise ValueError("unexpected label names")
        else:
            values = tuple(str(v) for v in values)
        if len(values) != len(self.labelnames):
            raise ValueError(
                f"{self.name} expects labels {self.labelnames}, got {values}"
            )
        child = self._children.get(values)
        if child is None:
            child = self._make_child(values)
        return child

    # Proxy the child API for unlabelled families.

    def _single(self):
        if self._default is None:
            raise ValueError(f"{self.name} is labelled; call .labels() first")
        return self._default

    def inc(self, amount: float = 1.0) -> None:
        self._single().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._single().dec(amount)

    def set(self, value: float) -> None:
        self._single().set(value)

    def observe(self, value: float) -> None:
        self._single().observe(value)

    def observe_many(self, value: float, n: int) -> None:
        self._single().observe_many(value, n)

    @property
    def value(self) -> float:
        return self._single().value

    def children(self):
        return self._children.items()

    def reset(self) -> None:
        for child in self._children.values():
            child._reset()


class MetricsRegistry:
    """Ordered collection of metric families with two output formats."""

    def __init__(self):
        self._families: dict[str, MetricFamily] = {}

    def _register(self, name, kind, help, labelnames, **kwargs) -> MetricFamily:
        existing = self._families.get(name)
        if existing is not None:
            if existing.kind != kind or existing.labelnames != tuple(labelnames):
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{existing.kind}{existing.labelnames}"
                )
            return existing
        family = MetricFamily(name, kind, help, labelnames, **kwargs)
        self._families[name] = family
        return family

    def counter(self, name: str, help: str = "", labelnames=()) -> MetricFamily:
        return self._register(name, "counter", help, labelnames)

    def gauge(self, name: str, help: str = "", labelnames=()) -> MetricFamily:
        return self._register(name, "gauge", help, labelnames)

    def histogram(
        self, name: str, help: str = "", labelnames=(), *, buckets=None
    ) -> MetricFamily:
        buckets = tuple(buckets) if buckets is not None else latency_buckets()
        if list(buckets) != sorted(buckets) or len(set(buckets)) != len(buckets):
            raise ValueError("buckets must be strictly increasing")
        return self._register(name, "histogram", help, labelnames, buckets=buckets)

    def get(self, name: str) -> MetricFamily | None:
        return self._families.get(name)

    def __iter__(self):
        return iter(self._families.values())

    def reset(self) -> None:
        """Zero every child (registrations and label children are kept)."""
        for family in self._families.values():
            family.reset()

    # ------------------------------------------------------------- outputs

    def render_prometheus(self) -> str:
        """The text exposition format (version 0.0.4) for ``/metrics``."""
        lines: list[str] = []
        for fam in self._families.values():
            if fam.help:
                lines.append(f"# HELP {fam.name} {_escape_help(fam.help)}")
            lines.append(f"# TYPE {fam.name} {fam.kind}")
            for key, child in fam.children():
                if fam.kind == "histogram":
                    for le, cum in child.cumulative():
                        labels = _render_labels(
                            (*fam.labelnames, "le"),
                            (*key, "+Inf" if le == math.inf else _format_value(le)),
                        )
                        lines.append(f"{fam.name}_bucket{labels} {cum}")
                    labels = _render_labels(fam.labelnames, key)
                    lines.append(
                        f"{fam.name}_sum{labels} {_format_value(child.sum)}"
                    )
                    lines.append(f"{fam.name}_count{labels} {child.count}")
                else:
                    labels = _render_labels(fam.labelnames, key)
                    lines.append(
                        f"{fam.name}{labels} {_format_value(child.value)}"
                    )
        return "\n".join(lines) + "\n"

    def snapshot(self) -> dict:
        """JSON-able view of every family — the ``/statsz`` payload body."""
        out: dict = {}
        for fam in self._families.values():
            values = []
            for key, child in fam.children():
                labels = dict(zip(fam.labelnames, key))
                if fam.kind == "histogram":
                    values.append(
                        {
                            "labels": labels,
                            "count": child.count,
                            "sum": child.sum,
                            "buckets": {
                                ("+Inf" if le == math.inf else _format_value(le)): c
                                for le, c in child.cumulative()
                            },
                        }
                    )
                else:
                    values.append({"labels": labels, "value": child.value})
            out[fam.name] = {"type": fam.kind, "help": fam.help, "values": values}
        return out


# --------------------------------------------------------------------------
# Bounded sampling
# --------------------------------------------------------------------------


class Reservoir:
    """Uniform sample of a float stream at O(capacity) memory.

    Tracks ``count``/``sum``/``max``/``min`` exactly; percentiles are
    estimated from the retained sample (exact while ``count <= capacity``).
    ``len()`` reports the *total* observations recorded, iteration yields
    the retained sample — the pair every caller actually wants (exact
    totals for rates, a bounded sample for quantiles).
    """

    __slots__ = ("capacity", "count", "total", "max_value", "min_value",
                 "_samples", "_rng", "_seed")

    def __init__(self, capacity: int = 10_000, seed: int = 0):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = int(capacity)
        self._seed = seed
        self._rng = random.Random(seed)
        self.count = 0
        self.total = 0.0
        self.max_value = -math.inf
        self.min_value = math.inf
        self._samples: list[float] = []

    def add(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value > self.max_value:
            self.max_value = value
        if value < self.min_value:
            self.min_value = value
        samples = self._samples
        if len(samples) < self.capacity:
            samples.append(value)
        else:
            j = self._rng.randrange(self.count)
            if j < self.capacity:
                samples[j] = value

    def add_repeated(self, value: float, n: int) -> None:
        """Record ``n`` identical observations (micro-batch amortisation).

        State-for-state equivalent to calling :meth:`add` ``n`` times —
        the same totals and the same RNG draw sequence, so the retained
        sample is bit-identical — but totals/extrema update once and the
        fill phase is a single ``extend``, keeping the serving hot loop's
        per-batch cost near O(replacement draws) instead of O(n).
        """
        if n <= 0:
            return
        value = float(value)
        count = self.count
        self.count = count + n
        self.total += value * n
        if value > self.max_value:
            self.max_value = value
        if value < self.min_value:
            self.min_value = value
        samples = self._samples
        capacity = self.capacity
        fill = min(n, capacity - len(samples))
        if fill > 0:
            samples.extend([value] * fill)
        randrange = self._rng.randrange
        for i in range(count + fill + 1, count + n + 1):
            j = randrange(i)
            if j < capacity:
                samples[j] = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def values(self) -> np.ndarray:
        """The retained sample as an array (for percentile estimation)."""
        return np.asarray(self._samples, dtype=np.float64)

    def percentile(self, q) -> float | np.ndarray:
        """Percentile estimate(s) from the retained sample.

        ``q`` is a percentile in [0, 100] or a sequence of them (as for
        :func:`numpy.percentile`); scenario reports use ``(50, 99, 99.9)``.
        Exact while ``count <= capacity``; 0.0 on an empty reservoir.
        """
        if not self._samples:
            q_arr = np.asarray(q, dtype=np.float64)
            return 0.0 if q_arr.ndim == 0 else np.zeros_like(q_arr)
        out = np.percentile(self.values(), q)
        return float(out) if np.ndim(out) == 0 else out

    def summary(self) -> dict:
        """count/mean/p50/p95/p99/max — count, mean and max are exact."""
        if not self.count:
            return {
                "count": 0, "mean": 0.0,
                "p50": 0.0, "p95": 0.0, "p99": 0.0, "max": 0.0,
            }
        arr = self.values()
        p50, p95, p99 = np.percentile(arr, [50, 95, 99])
        return {
            "count": int(self.count),
            "mean": float(self.mean),
            "p50": float(p50),
            "p95": float(p95),
            "p99": float(p99),
            "max": float(self.max_value),
        }

    def clear(self) -> None:
        self.count = 0
        self.total = 0.0
        self.max_value = -math.inf
        self.min_value = math.inf
        self._samples.clear()
        self._rng = random.Random(self._seed)

    def __len__(self) -> int:
        return self.count

    def __iter__(self):
        return iter(self._samples)

    @property
    def retained(self) -> int:
        """Samples currently held (``min(count, capacity)``)."""
        return len(self._samples)
