"""Asyncio HTTP exporter: ``/metrics``, ``/healthz``, ``/statsz``.

A minimal dependency-free HTTP/1.0-style server (every response closes
the connection) that runs *alongside* the node's TCP protocol on its own
port — scrapers never contend with the request path, and a wedged writer
task still answers ``/healthz``.

Endpoints
---------
``/metrics``
    Prometheus text exposition (version 0.0.4) of the shared registry.
``/healthz``
    Liveness JSON: ``{"status": "ok", ...}`` from the pluggable health
    callable (HTTP 503 + ``"status": "draining"`` once shutdown begins).
``/statsz``
    The *same* snapshot dict the TCP ``STATS`` verb returns, as JSON —
    one code path (:func:`repro.server.metrics.metrics_snapshot`), so the
    two surfaces can never disagree.

Deliberately not a general web server: requests bigger than a few KB,
non-GET/HEAD methods, and unknown paths are rejected; there is no
keep-alive, TLS, or routing table to maintain.
"""

from __future__ import annotations

import asyncio
import json

from repro.obs.structlog import get_logger

__all__ = ["MetricsExporter"]

logger = get_logger("obs.exporter")

_MAX_REQUEST_LINE = 4096
_MAX_HEADER_LINES = 64

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"
JSON_CONTENT_TYPE = "application/json; charset=utf-8"


class MetricsExporter:
    """Serve a registry (and optional stats/health callables) over HTTP.

    ``statsz`` and ``healthz`` are zero-argument callables evaluated per
    request; ``healthz`` may return ``(dict, status_code)`` to signal
    not-ready states.
    """

    def __init__(
        self,
        registry,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        statsz=None,
        healthz=None,
    ):
        self.registry = registry
        self.host = host
        self.port = port
        self._statsz = statsz
        self._healthz = healthz
        self._server: asyncio.AbstractServer | None = None
        self._m_requests = registry.counter(
            "repro_http_requests_total",
            "Exporter HTTP requests by path and status code.",
            ("path", "code"),
        )

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        logger.info(
            "metrics exporter listening on %s:%d", self.host, self.port,
            extra={"host": self.host, "port": self.port},
        )

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # ------------------------------------------------------------ handling

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                method, path = await asyncio.wait_for(
                    self._read_request(reader), timeout=10.0
                )
            except (ValueError, asyncio.TimeoutError, asyncio.IncompleteReadError):
                await self._respond(writer, "", 400, JSON_CONTENT_TYPE,
                                    b'{"error":"bad request"}')
                return
            if method not in ("GET", "HEAD"):
                await self._respond(writer, path, 405, JSON_CONTENT_TYPE,
                                    b'{"error":"method not allowed"}')
                return
            status, ctype, body = self._route(path)
            await self._respond(
                writer, path, status, ctype, b"" if method == "HEAD" else body,
                full_length=len(body),
            )
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(self, reader) -> tuple[str, str]:
        line = await reader.readline()
        if not line or len(line) > _MAX_REQUEST_LINE:
            raise ValueError("bad request line")
        parts = line.decode("latin-1").split()
        if len(parts) != 3:
            raise ValueError("malformed request line")
        method, target, _version = parts
        for _ in range(_MAX_HEADER_LINES):
            header = await reader.readline()
            if header in (b"\r\n", b"\n", b""):
                break
        path = target.split("?", 1)[0]
        return method.upper(), path

    def _route(self, path: str) -> tuple[int, str, bytes]:
        try:
            if path == "/metrics":
                body = self.registry.render_prometheus().encode("utf-8")
                return 200, PROMETHEUS_CONTENT_TYPE, body
            if path == "/healthz":
                payload = self._healthz() if self._healthz else {"status": "ok"}
                status = 200
                if isinstance(payload, tuple):
                    payload, status = payload
                return status, JSON_CONTENT_TYPE, _json_bytes(payload)
            if path == "/statsz":
                if self._statsz is None:
                    return 404, JSON_CONTENT_TYPE, b'{"error":"no statsz source"}'
                return 200, JSON_CONTENT_TYPE, _json_bytes(self._statsz())
            return 404, JSON_CONTENT_TYPE, b'{"error":"not found"}'
        except Exception:
            logger.exception("exporter handler failed for %s", path)
            return 500, JSON_CONTENT_TYPE, b'{"error":"internal error"}'

    async def _respond(
        self, writer, path, status, ctype, body, *, full_length=None
    ) -> None:
        if path:
            self._m_requests.labels(path=path, code=status).inc()
        length = len(body) if full_length is None else full_length
        head = (
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}\r\n"
            f"Content-Type: {ctype}\r\n"
            f"Content-Length: {length}\r\n"
            f"Connection: close\r\n\r\n"
        )
        writer.write(head.encode("latin-1") + body)
        await writer.drain()


def _json_bytes(obj) -> bytes:
    return json.dumps(obj, separators=(",", ":"), default=str).encode("utf-8")
