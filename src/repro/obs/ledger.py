"""SSD write-provenance ledger: every flash write gets a cause.

The paper's value proposition is counted in SSD writes avoided, but a
bare ``writes_total`` counter cannot say *why* a write happened — was it
a front-door admission, a replica warm-standby fill, churn from a
hot-key flood, or a cold restart re-warming objects the cluster had
already paid for once?  Flashield (PAPERS.md) argues each flash write is
a costed, attributable event; :class:`WriteLedger` is that attribution.

Causes (:data:`CAUSES`):

``admission_accept``
    The admission path accepted a miss into the cache — the default.
``replica_fill``
    A write-through copy onto a non-primary owner
    (:meth:`repro.cluster.node.CacheNode.fill`).
``rewarm_after_restart``
    A write on a cold-restarted node for an object first requested
    *before* the restart: the cluster already wrote (or declined) this
    object once, and the restart is paying the flash cost again.
``flood``
    A write caused by a request injected by a hot-key flood event.
``eviction_churn``
    A re-admission of an object a learned eviction policy previously
    evicted (:attr:`repro.cache.learned.LearnedCache.last_insert_was_churn`):
    flash spent paying for an eviction misprediction rather than for new
    bytes.
``staging_promote``
    A staged-then-admitted write: the object crossed a Flashield-style
    flashiness bar while staged in DRAM
    (:class:`repro.cache.staging.StagingCache`) and earned its flash
    write on a later hit, not at miss time.

Every write also carries a **model label** — which admission policy or
classifier version made the call (``v3`` on a live server, the
admission kind under the scenario engine) — and every denial is an
*avoided* write with its estimated bytes, making the paper's headline
metric a first-class counter.

The ledger is exact, not sampled: per-cause totals sum to the same
integers as the cluster's ``files_written`` counters (including stats
parked by :attr:`repro.cluster.cluster.TwoTierCluster.retired_stats`),
an invariant the scenario report checks on every run.  Counts live in
plain dicts; an optional :class:`~repro.obs.registry.MetricsRegistry`
mirrors them as labelled Prometheus counters.
"""

from __future__ import annotations

__all__ = ["CAUSES", "WriteLedger"]

#: Write causes, in report order.  Order is part of the byte-identical
#: report contract — append new causes, never reorder.
CAUSES = (
    "admission_accept",
    "replica_fill",
    "rewarm_after_restart",
    "flood",
    "eviction_churn",
    "staging_promote",
)

_UNLABELLED = "none"


class WriteLedger:
    """Exact per-cause / per-model accounting of SSD writes and denials.

    Single-writer use (the simulator loop or the asyncio node's writer
    task); increments are plain dict updates so the hot path stays in
    the tens of nanoseconds.
    """

    def __init__(self, *, registry=None, default_model: str = _UNLABELLED):
        self.default_model = default_model
        self._writes: dict[tuple[str, str], int] = {}
        self._bytes: dict[tuple[str, str], int] = {}
        self._avoided: dict[str, int] = {}
        self._avoided_bytes: dict[str, int] = {}
        self._registry = registry
        self._m_writes = self._m_bytes = None
        self._m_avoided = self._m_avoided_bytes = None
        if registry is not None:
            self._m_writes = registry.counter(
                "repro_ledger_writes_total",
                "SSD writes by provenance cause and deciding model.",
                ("cause", "model"),
            )
            self._m_bytes = registry.counter(
                "repro_ledger_write_bytes_total",
                "SSD bytes written by provenance cause and deciding model.",
                ("cause", "model"),
            )
            self._m_avoided = registry.counter(
                "repro_ledger_avoided_writes_total",
                "Denied admissions (writes avoided) by deciding model.",
                ("model",),
            )
            self._m_avoided_bytes = registry.counter(
                "repro_ledger_avoided_bytes_total",
                "Estimated bytes not written thanks to denials, by model.",
                ("model",),
            )

    # ------------------------------------------------------------ recording

    def record_write(self, cause: str, nbytes: int, *,
                     model: str | None = None, n: int = 1) -> None:
        """Account ``n`` writes totalling ``nbytes`` to ``cause``."""
        if cause not in CAUSES:
            raise ValueError(f"unknown write cause {cause!r}")
        label = model if model is not None else self.default_model
        key = (cause, label)
        self._writes[key] = self._writes.get(key, 0) + n
        self._bytes[key] = self._bytes.get(key, 0) + nbytes
        if self._m_writes is not None:
            self._m_writes.labels(cause=cause, model=label).inc(n)
            self._m_bytes.labels(cause=cause, model=label).inc(nbytes)

    def record_avoided(self, nbytes: int, *, model: str | None = None,
                       n: int = 1) -> None:
        """Account ``n`` denials that avoided writing ``nbytes``."""
        label = model if model is not None else self.default_model
        self._avoided[label] = self._avoided.get(label, 0) + n
        self._avoided_bytes[label] = self._avoided_bytes.get(label, 0) + nbytes
        if self._m_avoided is not None:
            self._m_avoided.labels(model=label).inc(n)
            self._m_avoided_bytes.labels(model=label).inc(nbytes)

    # -------------------------------------------------------------- reading

    @property
    def total_writes(self) -> int:
        return sum(self._writes.values())

    @property
    def total_bytes(self) -> int:
        return sum(self._bytes.values())

    @property
    def avoided_writes(self) -> int:
        return sum(self._avoided.values())

    @property
    def avoided_bytes(self) -> int:
        return sum(self._avoided_bytes.values())

    def writes_by_cause(self) -> dict[str, int]:
        """``{cause: writes}`` over :data:`CAUSES` (zeros included)."""
        out = dict.fromkeys(CAUSES, 0)
        for (cause, _model), count in self._writes.items():
            out[cause] += count
        return out

    def bytes_by_cause(self) -> dict[str, int]:
        out = dict.fromkeys(CAUSES, 0)
        for (cause, _model), total in self._bytes.items():
            out[cause] += total
        return out

    def writes_by_model(self) -> dict[str, int]:
        """``{model_label: writes}``, sorted by label for determinism."""
        out: dict[str, int] = {}
        for (_cause, model), count in self._writes.items():
            out[model] = out.get(model, 0) + count
        return dict(sorted(out.items()))

    def avoided_by_model(self) -> dict[str, int]:
        return dict(sorted(self._avoided.items()))

    def snapshot(self) -> dict:
        """Deterministically ordered JSON-able section for reports."""
        return {
            "writes_by_cause": self.writes_by_cause(),
            "bytes_by_cause": self.bytes_by_cause(),
            "writes_by_model": self.writes_by_model(),
            "avoided_writes": self.avoided_writes,
            "avoided_bytes": self.avoided_bytes,
            "avoided_by_model": self.avoided_by_model(),
            "total_writes": self.total_writes,
            "total_bytes": self.total_bytes,
        }

    def checkpoint(self) -> dict:
        """Cheap copy of the cause counters for later :meth:`delta`."""
        return {
            "writes_by_cause": self.writes_by_cause(),
            "avoided_writes": self.avoided_writes,
            "avoided_bytes": self.avoided_bytes,
        }

    def delta(self, since: dict) -> dict:
        """Per-cause growth since a :meth:`checkpoint` (phase accounting)."""
        before = since["writes_by_cause"]
        now = self.writes_by_cause()
        return {
            "writes_by_cause": {c: now[c] - before.get(c, 0) for c in CAUSES},
            "avoided_writes": self.avoided_writes - since["avoided_writes"],
            "avoided_bytes": self.avoided_bytes - since["avoided_bytes"],
        }

    def clear(self) -> None:
        """Drop all accounting (registry counters are left to their owner)."""
        self._writes.clear()
        self._bytes.clear()
        self._avoided.clear()
        self._avoided_bytes.clear()
