"""Structured logging for the serving stack.

Every server module logs through a named stdlib logger under the
``repro`` hierarchy; :func:`configure_logging` (called by the CLI's
``--log-level``/``--log-json`` flags) attaches a single handler at the
root of that hierarchy.  The JSON formatter emits one object per line
with the same compact encoding the decision-trace dump uses
(:func:`json_line`), so server logs and trace events can be processed by
the same tooling.

Library use stays silent by default: without :func:`configure_logging`
the loggers propagate to the (unconfigured) Python root logger exactly
like any other library.
"""

from __future__ import annotations

import json
import logging
import sys

__all__ = ["configure_logging", "get_logger", "json_line", "JsonLogFormatter"]

ROOT_LOGGER = "repro"

#: LogRecord attributes that are plumbing, not user context.
_RESERVED = frozenset(
    logging.LogRecord("", 0, "", 0, "", (), None).__dict__
) | {"message", "asctime", "taskName"}


def json_line(obj: dict) -> str:
    """One compact JSON object per line (shared with trace-event dumps)."""
    return json.dumps(obj, separators=(",", ":"), default=str)


class JsonLogFormatter(logging.Formatter):
    """``{"ts": ..., "level": ..., "logger": ..., "msg": ..., **extra}``.

    Anything passed via ``logger.info(..., extra={...})`` is merged into
    the object, which is how call sites attach structured context.
    """

    def format(self, record: logging.LogRecord) -> str:
        out = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "msg": record.getMessage(),
        }
        for key, value in record.__dict__.items():
            if key not in _RESERVED and not key.startswith("_"):
                out[key] = value
        if record.exc_info and record.exc_info[0] is not None:
            out["exc"] = self.formatException(record.exc_info)
        return json_line(out)


def get_logger(name: str) -> logging.Logger:
    """A logger under the ``repro`` hierarchy (idempotent on the prefix)."""
    if name != ROOT_LOGGER and not name.startswith(ROOT_LOGGER + "."):
        name = f"{ROOT_LOGGER}.{name}"
    return logging.getLogger(name)


def configure_logging(
    level: str = "info", *, json_format: bool = False, stream=None
) -> logging.Logger:
    """Attach one stream handler to the ``repro`` logger tree.

    Idempotent: reconfiguring replaces the previously attached handler
    (so tests and repeated CLI invocations don't stack duplicates).
    """
    numeric = logging.getLevelName(level.upper())
    if not isinstance(numeric, int):
        raise ValueError(f"unknown log level {level!r}")
    root = logging.getLogger(ROOT_LOGGER)
    for handler in list(root.handlers):
        root.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    if json_format:
        handler.setFormatter(JsonLogFormatter())
    else:
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(levelname)s %(name)s %(message)s")
        )
    root.addHandler(handler)
    root.setLevel(numeric)
    root.propagate = False
    return root
