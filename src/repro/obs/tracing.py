"""Sampled structured decision tracing for the cache node.

A :class:`DecisionTrace` is a fixed-capacity ring buffer of per-request
event dicts recorded on the node's hot path.  Sampling is *deterministic
in the trace position* (a multiplicative hash of ``index``), so two
replays of the same trace sample the same requests — and a distributed
deployment sampling by position would trace the same request on every
tier it touches.

Event schema (all keys always present)::

    {
      "index":      int,          # trace position
      "object_id":  int,
      "trace_time": float,        # trace-clock seconds
      "hit":        bool,
      "verdict":    int | null,   # classifier output (null: hit / no model)
      "denied":     bool,         # admission refused
      "rectified":  bool,         # history-table override (§4.4.2)
      "features":   [float] | null,   # classifier input row
      "t_classify": float,        # amortised per-decision seconds
    }

The buffer is drained over the TCP ``TRACE`` verb (``repro trace-dump``)
as JSON lines via :func:`repro.obs.structlog.json_line` — the same
encoding the structured logs use.
"""

from __future__ import annotations

from collections import deque

from repro.obs.structlog import json_line

__all__ = ["EVENT_FIELDS", "DecisionTrace"]

EVENT_FIELDS = (
    "index",
    "object_id",
    "trace_time",
    "hit",
    "verdict",
    "denied",
    "rectified",
    "features",
    "t_classify",
)

#: Knuth's multiplicative hash constant (2**32 / phi): spreads consecutive
#: indices uniformly over [0, 2**32) so rate-based sampling is unbiased
#: even for strided access patterns.
_HASH = 2654435761
_DENOM = float(2**32)


class DecisionTrace:
    """Ring-buffered, sampled per-decision event log."""

    def __init__(self, capacity: int = 4096, sample_rate: float = 1.0):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError("sample_rate must be in [0, 1]")
        self.capacity = int(capacity)
        self.sample_rate = float(sample_rate)
        self._events: deque[dict] = deque(maxlen=self.capacity)
        self.seen = 0      # requests offered to the sampler
        self.sampled = 0   # events actually recorded

    def should_sample(self, index: int) -> bool:
        """Deterministic per-position sampling decision."""
        self.seen += 1
        if self.sample_rate >= 1.0:
            return True
        if self.sample_rate <= 0.0:
            return False
        return ((index * _HASH) & 0xFFFFFFFF) / _DENOM < self.sample_rate

    def record(self, event: dict) -> None:
        self.sampled += 1
        self._events.append(event)

    @property
    def dropped(self) -> int:
        """Sampled events evicted by the ring bound."""
        return self.sampled - len(self._events)

    def events(self, limit: int | None = None, *, clear: bool = False) -> list[dict]:
        """Most recent events, oldest first (at most ``limit``)."""
        out = list(self._events)
        if limit is not None:
            if limit < 0:
                raise ValueError("limit must be >= 0")
            out = out[-limit:] if limit else []
        if clear:
            self._events.clear()
        return out

    def clear(self) -> None:
        self._events.clear()
        self.seen = 0
        self.sampled = 0

    def __len__(self) -> int:
        return len(self._events)

    @staticmethod
    def to_jsonl(events: list[dict]) -> str:
        """Render events as JSON lines (one object per line)."""
        return "\n".join(json_line(e) for e in events)
