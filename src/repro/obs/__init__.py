"""Observability for the serving stack: metrics, tracing, drift, logging.

The substrate every benchmark and robustness change reports through:

* :mod:`repro.obs.registry`  — dependency-free ``Counter``/``Gauge``/
  ``Histogram`` (log-scale latency buckets) with labels, a bounded
  :class:`~repro.obs.registry.Reservoir` for exact-count percentile
  telemetry, and Prometheus text exposition.
* :mod:`repro.obs.exporter`  — asyncio HTTP endpoint (``/metrics``,
  ``/healthz``, ``/statsz``) running beside the TCP protocol
  (``repro serve --metrics-port``).
* :mod:`repro.obs.tracing`   — sampled ring-buffered per-decision event
  log, drained via the TCP ``TRACE`` verb / ``repro trace-dump``.
* :mod:`repro.obs.drift`     — live windowed admission-verdict quality
  with matured labels, gauges, and a pluggable drift alarm (the
  retrainer's observable trigger).
* :mod:`repro.obs.structlog` — named stdlib loggers + JSON line
  formatting shared with the trace-event dump.

See ``docs/OBSERVABILITY.md`` for the metric catalogue and schemas.
"""

from repro.obs.drift import DriftMonitor
from repro.obs.exporter import MetricsExporter
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
    Reservoir,
    latency_buckets,
)
from repro.obs.structlog import (
    JsonLogFormatter,
    configure_logging,
    get_logger,
    json_line,
)
from repro.obs.tracing import EVENT_FIELDS, DecisionTrace

__all__ = [
    "DriftMonitor",
    "MetricsExporter",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "Reservoir",
    "latency_buckets",
    "JsonLogFormatter",
    "configure_logging",
    "get_logger",
    "json_line",
    "EVENT_FIELDS",
    "DecisionTrace",
]
