"""Observability for the serving stack: metrics, tracing, drift, logging.

The substrate every benchmark and robustness change reports through:

* :mod:`repro.obs.registry`  — dependency-free ``Counter``/``Gauge``/
  ``Histogram`` (log-scale latency buckets) with labels, a bounded
  :class:`~repro.obs.registry.Reservoir` for exact-count percentile
  telemetry, and Prometheus text exposition.
* :mod:`repro.obs.exporter`  — asyncio HTTP endpoint (``/metrics``,
  ``/healthz``, ``/statsz``) running beside the TCP protocol
  (``repro serve --metrics-port``).
* :mod:`repro.obs.tracing`   — sampled ring-buffered per-decision event
  log, drained via the TCP ``TRACE`` verb / ``repro trace-dump``.
* :mod:`repro.obs.spans`     — dependency-free span tracer
  (``perf_counter_ns`` intervals, contextvar track propagation, bounded
  ring, strict no-op when disabled) with Chrome trace-event export,
  drained via the TCP ``SPANS`` verb / ``repro spans-dump``.
* :mod:`repro.obs.ledger`    — :class:`~repro.obs.ledger.WriteLedger`,
  exact per-cause / per-model SSD write provenance plus avoided-write
  (denial) accounting.
* :mod:`repro.obs.drift`     — live windowed admission-verdict quality
  with matured labels, gauges, and a pluggable drift alarm (the
  retrainer's observable trigger).
* :mod:`repro.obs.structlog` — named stdlib loggers + JSON line
  formatting shared with the trace-event dump.

See ``docs/OBSERVABILITY.md`` for the metric catalogue and schemas.
"""

from repro.obs.drift import DriftMonitor
from repro.obs.exporter import MetricsExporter
from repro.obs.ledger import CAUSES, WriteLedger
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
    Reservoir,
    latency_buckets,
)
from repro.obs.spans import (
    NULL_SPAN,
    NULL_TRACER,
    Span,
    Tracer,
    chrome_trace,
    validate_chrome_trace,
)
from repro.obs.structlog import (
    JsonLogFormatter,
    configure_logging,
    get_logger,
    json_line,
)
from repro.obs.tracing import EVENT_FIELDS, DecisionTrace

__all__ = [
    "DriftMonitor",
    "MetricsExporter",
    "CAUSES",
    "WriteLedger",
    "NULL_SPAN",
    "NULL_TRACER",
    "Span",
    "Tracer",
    "chrome_trace",
    "validate_chrome_trace",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "Reservoir",
    "latency_buckets",
    "JsonLogFormatter",
    "configure_logging",
    "get_logger",
    "json_line",
    "EVENT_FIELDS",
    "DecisionTrace",
]
