"""Post-hoc admission-quality monitoring with delayed labels.

In production the ground truth of an admission verdict *matures*: once
``M`` further requests have passed, whether the object was re-accessed
within the window is known, so the verdict at position *i* can be scored at
position ``i + M``.  This module evaluates a recorded decision stream that
way — the ops-side complement to the §4.4.3 retraining schedule (it tells
you *when* the deployed model has drifted enough to matter).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.labeling import ONE_TIME, one_time_labels

__all__ = ["WindowedQuality", "evaluate_admission_decisions"]


@dataclass(frozen=True)
class WindowedQuality:
    """Verdict quality over consecutive windows of the request stream."""

    window_size: int
    precision: np.ndarray   # per window; NaN where undefined
    recall: np.ndarray
    accuracy: np.ndarray
    n_scored: np.ndarray    # matured verdicts per window

    @property
    def n_windows(self) -> int:
        return int(self.n_scored.shape[0])

    def worst_window(self) -> int:
        """Index of the lowest-accuracy window (drift alarm candidate)."""
        acc = np.where(self.n_scored > 0, self.accuracy, np.inf)
        return int(np.argmin(acc))


def evaluate_admission_decisions(
    object_ids: np.ndarray,
    denied: np.ndarray,
    m_threshold: float,
    *,
    window_size: int = 10_000,
) -> WindowedQuality:
    """Score a denial stream against matured one-time labels.

    Parameters
    ----------
    object_ids:
        The request stream (trace order).
    denied:
        Boolean per request: True where the system refused admission (its
        "one-time" verdicts).  Requests that hit in the cache should be
        recorded as ``False`` (the system implicitly treated them as
        re-accessed).
    m_threshold:
        The criterion window ``M`` used by the deployed system.
    window_size:
        Requests per evaluation window.

    Only verdicts that have matured — position ``i`` with
    ``i + M < n`` — are scored; the final partial horizon is excluded so
    end-of-stream truncation doesn't masquerade as one-time traffic.
    """
    object_ids = np.asarray(object_ids)
    denied = np.asarray(denied, dtype=bool)
    if object_ids.shape != denied.shape or object_ids.ndim != 1:
        raise ValueError("object_ids and denied must be 1-D of equal length")
    if m_threshold <= 0:
        raise ValueError("m_threshold must be positive")
    if window_size < 1:
        raise ValueError("window_size must be >= 1")

    n = object_ids.shape[0]
    labels = one_time_labels(object_ids, m_threshold) == ONE_TIME
    horizon = int(np.ceil(m_threshold))
    scored_n = max(0, n - horizon)

    n_windows = max(1, -(-n // window_size))
    precision = np.full(n_windows, np.nan)
    recall = np.full(n_windows, np.nan)
    accuracy = np.full(n_windows, np.nan)
    counts = np.zeros(n_windows, dtype=np.int64)

    for w in range(n_windows):
        lo = w * window_size
        hi = min((w + 1) * window_size, scored_n)
        if hi <= lo:
            continue
        y = labels[lo:hi]
        d = denied[lo:hi]
        counts[w] = hi - lo
        tp = int(np.sum(d & y))
        fp = int(np.sum(d & ~y))
        fn = int(np.sum(~d & y))
        accuracy[w] = float(np.mean(d == y))
        precision[w] = tp / (tp + fp) if tp + fp else np.nan
        recall[w] = tp / (tp + fn) if tp + fn else np.nan

    return WindowedQuality(
        window_size=window_size,
        precision=precision,
        recall=recall,
        accuracy=accuracy,
        n_scored=counts,
    )
