"""Oracle labelling: reaccess distances and one-time-access labels (§4.3).

The paper's criterion declares the access at position *i* "one-time" when
the same object is not requested again within the next ``M`` accesses.
Both quantities derive from the next-occurrence index, computed in one
vectorised pass (shared with the Belady oracle).
"""

from __future__ import annotations

import numpy as np

from repro.cache.belady import compute_next_use

__all__ = [
    "reaccess_distances",
    "one_time_labels",
    "rudimentary_one_time_labels",
    "ONE_TIME",
    "REUSED",
]

#: Label conventions: one-time-access is the *positive* class throughout the
#: package, matching the paper's Tables 2 and 4.
ONE_TIME = 1
REUSED = 0


def reaccess_distances(object_ids: np.ndarray) -> np.ndarray:
    """Accesses until the same object recurs; ``np.inf`` when it never does.

    Distance is counted in *requests*: an object requested again by the very
    next request has distance 1.
    """
    object_ids = np.asarray(object_ids)
    if object_ids.ndim != 1 or object_ids.shape[0] == 0:
        raise ValueError("object_ids must be a non-empty 1-D array")
    nxt = compute_next_use(object_ids)
    never = nxt == np.iinfo(np.int64).max
    dist = np.where(
        never, np.inf, nxt.astype(np.float64) - np.arange(object_ids.shape[0])
    )
    return dist


def rudimentary_one_time_labels(object_ids: np.ndarray) -> np.ndarray:
    """§4.3's *rudimentary* criterion: objects accessed exactly once.

    Labels every access of a single-access object as one-time.  The paper
    rejects this in favour of the reaccess-distance criterion because it
    misses objects whose re-access comes *after* they would have been
    evicted — those writes are equally useless.  Kept for the comparison.
    """
    object_ids = np.asarray(object_ids)
    if object_ids.ndim != 1 or object_ids.shape[0] == 0:
        raise ValueError("object_ids must be a non-empty 1-D array")
    counts = np.bincount(object_ids)
    return (counts[object_ids] == 1).astype(np.int64)


def one_time_labels(object_ids: np.ndarray, m_threshold: float) -> np.ndarray:
    """Per-access one-time labels under reaccess-distance threshold ``M``.

    Returns an int array with 1 (``ONE_TIME``) where the object is not
    re-requested within the next ``M`` accesses — the ground truth the
    classifier is trained against and the Ideal admission filter uses.
    """
    if m_threshold <= 0:
        raise ValueError("m_threshold must be positive")
    dist = reaccess_distances(object_ids)
    return (dist > m_threshold).astype(np.int64)
