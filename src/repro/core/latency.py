"""Response-time model (§5.3.5, Eqs. 3–6) behind Fig. 10.

    T = h · HitCost + (1 − h) · MissPenalty                     (Eq. 3)
    HitCost        = t_query + t_ssdr                           (Eq. 4)
    MissPenalty_o  = t_query + t_hddr                           (Eq. 5, original)
    MissPenalty_p  = t_query + t_classify + t_hddr              (Eq. 6, proposed)

SSD writes are excluded from the critical path (they happen in the
background), so the proposal pays ``t_classify`` on every miss but recoups
far more through its higher hit rate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import DEFAULT_LATENCY, LatencyConstants

__all__ = ["LatencyModel"]


@dataclass(frozen=True)
class LatencyModel:
    """Evaluate Eqs. 3–6 for a given set of device constants."""

    constants: LatencyConstants = DEFAULT_LATENCY

    @property
    def hit_cost(self) -> float:
        """Eq. 4: index lookup + SSD read."""
        c = self.constants
        return c.t_query + c.t_ssdr

    def miss_penalty(self, *, classified: bool) -> float:
        """Eq. 5 (original) or Eq. 6 (with the classification system)."""
        c = self.constants
        penalty = c.t_query + c.t_hddr
        if classified:
            penalty += c.t_classify
        return penalty

    def average_latency(self, hit_rate: float, *, classified: bool) -> float:
        """Eq. 3: expected response time at the given hit rate (seconds)."""
        if not 0.0 <= hit_rate <= 1.0:
            raise ValueError("hit_rate must be in [0, 1]")
        return hit_rate * self.hit_cost + (1.0 - hit_rate) * self.miss_penalty(
            classified=classified
        )

    def improvement(self, hit_rate_original: float, hit_rate_proposal: float) -> float:
        """Relative latency reduction of the proposal vs the original.

        Positive values mean the proposal is faster (Fig. 10 reports
        1.5 %–11 % depending on the replacement policy).
        """
        t_orig = self.average_latency(hit_rate_original, classified=False)
        t_prop = self.average_latency(hit_rate_proposal, classified=True)
        return (t_orig - t_prop) / t_orig
