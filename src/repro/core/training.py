"""Daily cost-sensitive training of the caching classifier (§4.4).

The paper trains a CART tree every day at 05:00 on the previous 24 hours of
(sampled) log data, with the Table-4 cost matrix, then classifies the next
day's traffic.  :func:`train_daily_classifier` reproduces that loop over a
trace and returns per-access predictions plus per-day quality metrics (the
data behind Fig. 5).

Labelling note: like the paper's own data tagging, a training sample's
label needs up to ``M`` accesses of lookahead beyond the training cut — in
production one simply waits until the label matures.  The *features* are
strictly request-time information.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.features import FeatureMatrix, PAPER_FEATURE_NAMES
from repro.core.labeling import ONE_TIME
from repro.ml.cost_sensitive import CostMatrix, CostSensitiveClassifier
from repro.ml.metrics import accuracy_score, precision_score, recall_score
from repro.ml.tree import DecisionTreeClassifier
from repro.trace.records import Trace

__all__ = ["DailyTrainingResult", "train_daily_classifier", "sample_per_minute"]

DAY = 86400.0


@dataclass
class DailyTrainingResult:
    """Predictions and per-day telemetry from the daily training loop."""

    predictions: np.ndarray          # per-access verdict (1 = one-time)
    daily_metrics: list[dict] = field(default_factory=list)
    feature_names: tuple[str, ...] = ()
    models: list = field(default_factory=list)

    @property
    def overall(self) -> dict:
        """Request-weighted means of the daily metrics (scored days only)."""
        scored = [m for m in self.daily_metrics if m["n_eval"] > 0 and m["trained"]]
        if not scored:
            return {"precision": 0.0, "recall": 0.0, "accuracy": 0.0}
        w = np.array([m["n_eval"] for m in scored], dtype=np.float64)
        w = w / w.sum()
        return {
            k: float(np.sum(w * np.array([m[k] for m in scored])))
            for k in ("precision", "recall", "accuracy")
        }

    def feature_importances(self) -> dict[str, float]:
        """Mean split importance per feature across the daily trees.

        Answers "what does the deployed classifier actually key on" —
        the interpretability view behind the paper's §3.2.2 selection.
        Returns an empty dict when no trained model exposes importances
        (e.g. a custom ``model_factory`` without them).
        """
        stacks = []
        for model in self.models:
            if model is None:
                continue
            inner = getattr(model, "model_", model)
            imp = getattr(inner, "feature_importances_", None)
            if imp is not None and len(imp) == len(self.feature_names):
                stacks.append(np.asarray(imp))
        if not stacks:
            return {}
        mean = np.mean(stacks, axis=0)
        return {
            name: float(v)
            for name, v in sorted(
                zip(self.feature_names, mean), key=lambda kv: -kv[1]
            )
        }


def sample_per_minute(
    timestamps: np.ndarray,
    limit: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Indices of at most ``limit`` records per wall-clock minute (§3.1.1).

    Vectorised: a random tie-break key inside each minute, then keep the
    first ``limit`` per group.
    """
    if limit < 1:
        raise ValueError("limit must be >= 1")
    ts = np.asarray(timestamps, dtype=np.float64)
    minute = (ts // 60.0).astype(np.int64)
    jitter = rng.random(ts.shape[0])
    order = np.lexsort((jitter, minute))
    sorted_minute = minute[order]
    # Rank of each record within its minute group.
    new_group = np.r_[True, sorted_minute[1:] != sorted_minute[:-1]]
    group_start = np.maximum.accumulate(np.where(new_group, np.arange(ts.shape[0]), 0))
    rank = np.arange(ts.shape[0]) - group_start
    return np.sort(order[rank < limit])


def train_daily_classifier(
    trace: Trace,
    features: FeatureMatrix,
    labels: np.ndarray,
    *,
    cost_v: float = 2.0,
    retrain_hour: float = 5.0,
    retrain_period: float = DAY,
    train_window: float | None = None,
    samples_per_minute: int = 100,
    max_splits: int = 30,
    feature_subset: tuple[str, ...] | None = PAPER_FEATURE_NAMES,
    min_train_samples: int = 50,
    static_model: bool = False,
    model_factory=None,
    rng: np.random.Generator | int | None = None,
) -> DailyTrainingResult:
    """Run the §4.4.3 daily training loop over a full trace.

    Parameters
    ----------
    trace / features / labels:
        The workload, its extracted feature matrix, and ground-truth
        one-time labels under the chosen criterion ``M``.
    cost_v:
        The Table-4 false-positive penalty ``v`` (see
        :func:`repro.ml.cost_sensitive.select_cost_v`).
    retrain_hour:
        Hour of day of the first (and, with daily cadence, every) retrain —
        05:00 in the paper, the system-load trough.
    retrain_period:
        Seconds between retrains.  The paper's offline scheme retrains
        daily (the default); smaller periods approximate the "incrementally
        updating … in a real-time manner" alternative of §4.4.3.
    train_window:
        Seconds of history per training set (default: one ``retrain_period``,
        i.e. the paper's previous-24-hours rule).
    samples_per_minute:
        Training-set thinning, 100 records/minute in §3.1.1.
    feature_subset:
        Feature names to train on (default: the paper's final five);
        ``None`` uses every extracted feature.
    static_model:
        Train only the first model and reuse it for all later days — the
        §4.4.3 ablation showing accuracy decay without refresh.
    model_factory:
        ``callable(seed) -> estimator`` building a fresh unfitted model per
        retrain.  Default: the paper's cost-sensitive CART (30-split budget,
        Table-4 cost matrix).  Lets the daily loop drive any classifier,
        e.g. :class:`repro.ml.gbdt.GradientBoostingClassifier`.
    min_train_samples:
        Segments whose training window has fewer samples (or a single
        class) fall back to admit-everything for that segment.

    Returns per-access predictions: the first (model-less) segment predicts
    "re-accessed" for everything, i.e. classic always-admit behaviour.
    """
    if not 0.0 <= retrain_hour < 24.0:
        raise ValueError("retrain_hour must be in [0, 24)")
    if retrain_period <= 0:
        raise ValueError("retrain_period must be positive")
    if train_window is not None and train_window <= 0:
        raise ValueError("train_window must be positive")
    if cost_v <= 0:
        raise ValueError("cost_v must be positive")
    window = train_window if train_window is not None else retrain_period
    labels = np.asarray(labels)
    if labels.shape[0] != trace.n_accesses or features.X.shape[0] != trace.n_accesses:
        raise ValueError("features/labels must cover every access")
    rng = np.random.default_rng(rng)

    fm = features.select(feature_subset) if feature_subset else features
    X = fm.X
    ts = trace.timestamps

    # Segment boundaries: first retrain at retrain_hour o'clock, then every
    # retrain_period seconds.
    first = retrain_hour * 3600.0
    boundaries = np.arange(first, trace.duration, retrain_period)
    edges = np.r_[0.0, boundaries, trace.duration]
    edges = np.unique(edges)  # guard against first == 0 duplicating an edge

    predictions = np.zeros(trace.n_accesses, dtype=np.int64)
    result = DailyTrainingResult(predictions=predictions, feature_names=fm.names)

    reusable_model = None
    for seg in range(len(edges) - 1):
        lo, hi = np.searchsorted(ts, [edges[seg], edges[seg + 1]])
        seg_slice = slice(lo, hi)
        n_eval = hi - lo
        model = None
        trained = False

        if seg > 0:  # segment 0 has no history to train on
            if static_model and reusable_model is not None:
                model, trained = reusable_model, True
            else:
                t_train = edges[seg]
                w_lo, w_hi = np.searchsorted(
                    ts, [max(0.0, t_train - window), t_train]
                )
                if w_hi - w_lo >= min_train_samples:
                    window_idx = np.arange(w_lo, w_hi)
                    picked = window_idx[
                        sample_per_minute(ts[window_idx], samples_per_minute, rng)
                    ]
                    y_train = labels[picked]
                    if np.unique(y_train).shape[0] == 2:
                        seed = int(rng.integers(0, 2**63 - 1))
                        if model_factory is not None:
                            model = model_factory(seed)
                        else:
                            model = CostSensitiveClassifier(
                                DecisionTreeClassifier(
                                    max_splits=max_splits, rng=seed
                                ),
                                CostMatrix(fn_cost=1.0, fp_cost=cost_v),
                            )
                        model.fit(X[picked], y_train)
                        trained = True
                        if static_model and reusable_model is None:
                            reusable_model = model

        if trained and n_eval > 0:
            predictions[seg_slice] = model.predict(X[seg_slice])

        metrics = {
            "segment": seg,
            "t_start": float(edges[seg]),
            "t_end": float(edges[seg + 1]),
            "n_eval": int(n_eval),
            "trained": trained,
            "precision": 0.0,
            "recall": 0.0,
            "accuracy": 0.0,
        }
        if trained and n_eval > 0:
            y_true = labels[seg_slice]
            y_pred = predictions[seg_slice]
            metrics["precision"] = precision_score(y_true, y_pred, pos_label=ONE_TIME)
            metrics["recall"] = recall_score(y_true, y_pred, pos_label=ONE_TIME)
            metrics["accuracy"] = accuracy_score(y_true, y_pred)
        result.daily_metrics.append(metrics)
        result.models.append(model)

    return result
