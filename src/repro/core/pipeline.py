"""End-to-end experiment driver: the Figs. 6–10 comparison in one call.

:func:`run_experiment` wires the whole system together for one (policy,
capacity) point:

1. synthesise (or accept) a trace;
2. simulate the **Original** configuration (plain replacement policy) —
   its measured hit rate feeds the criterion solve;
3. solve the one-time-access **criterion** ``M`` (LIRS gets ``M·R_s``);
4. label every access, extract features, run the **daily training loop**;
5. simulate **Proposal** (classifier + history table), **Ideal** (oracle
   labels) and **Belady** (offline optimal);
6. evaluate the Eq. 3–6 latency model on each configuration.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.lirs import LIRSCache
from repro.cache.simulator import SimulationResult, make_policy, simulate
from repro.config import PAPER_TRACE_FOOTPRINT_GB, LatencyConstants, DEFAULT_LATENCY
from repro.core.admission import AlwaysAdmit, ClassifierAdmission, OracleAdmission
from repro.core.criteria import Criteria, solve_criteria
from repro.core.features import PAPER_FEATURE_NAMES, extract_features
from repro.core.labeling import one_time_labels, reaccess_distances
from repro.core.latency import LatencyModel
from repro.core.training import DailyTrainingResult, train_daily_classifier
from repro.ml.cost_sensitive import select_cost_v
from repro.trace.generator import WorkloadConfig, generate_trace
from repro.trace.records import Trace

__all__ = ["ExperimentResult", "run_experiment"]

#: The paper's cost-matrix boundary (12 GB on its trace) as a footprint
#: fraction, so the v=2→3 switch scales with the synthetic workload.
_COST_BOUNDARY_FRACTION = 12.0 / PAPER_TRACE_FOOTPRINT_GB


@dataclass
class ExperimentResult:
    """All four configurations of one (policy, capacity) grid point."""

    policy: str
    capacity_bytes: int
    capacity_fraction: float
    criteria: Criteria
    original: SimulationResult
    proposal: SimulationResult
    ideal: SimulationResult | None = None
    belady: SimulationResult | None = None
    training: DailyTrainingResult | None = None
    latency_original: float = 0.0
    latency_proposal: float = 0.0
    cost_v: float = 2.0

    @property
    def hit_rate_gain(self) -> float:
        """Proposal − Original file hit rate (Fig. 6 deltas)."""
        return self.proposal.hit_rate - self.original.hit_rate

    @property
    def write_reduction(self) -> float:
        """Relative drop in SSD file writes (Fig. 8 deltas)."""
        orig = self.original.stats.files_written
        if orig == 0:
            return 0.0
        return 1.0 - self.proposal.stats.files_written / orig

    @property
    def byte_write_reduction(self) -> float:
        orig = self.original.stats.bytes_written
        if orig == 0:
            return 0.0
        return 1.0 - self.proposal.stats.bytes_written / orig

    @property
    def latency_improvement(self) -> float:
        if self.latency_original == 0:
            return 0.0
        return (self.latency_original - self.latency_proposal) / self.latency_original

    def summary(self) -> str:
        lines = [
            f"policy={self.policy}  capacity={self.capacity_bytes / 2**20:.1f} MiB "
            f"({100 * self.capacity_fraction:.2f}% of footprint)  "
            f"M={self.criteria.m_threshold:,.0f}  v={self.cost_v:g}",
            f"{'config':10s} {'hit':>7s} {'byte hit':>9s} {'fwrite':>8s} {'bwrite':>8s}",
        ]
        rows = [("original", self.original), ("proposal", self.proposal)]
        if self.ideal is not None:
            rows.append(("ideal", self.ideal))
        if self.belady is not None:
            rows.append(("belady", self.belady))
        for name, r in rows:
            lines.append(
                f"{name:10s} {r.hit_rate:7.3f} {r.byte_hit_rate:9.3f} "
                f"{r.file_write_rate:8.3f} {r.byte_write_rate:8.3f}"
            )
        lines.append(
            f"latency: {1e3 * self.latency_original:.3f} ms → "
            f"{1e3 * self.latency_proposal:.3f} ms "
            f"({100 * self.latency_improvement:+.1f}%)"
        )
        return "\n".join(lines)


def run_experiment(
    workload: WorkloadConfig | Trace,
    *,
    policy: str = "lru",
    capacity_fraction: float | None = None,
    capacity_bytes: int | None = None,
    cost_v: float | None = None,
    include_ideal: bool = True,
    include_belady: bool = True,
    feature_subset: tuple[str, ...] | None = PAPER_FEATURE_NAMES,
    latency_constants: LatencyConstants = DEFAULT_LATENCY,
    training_kwargs: dict | None = None,
    system_iterations: int = 1,
    rng: int | None = 0,
) -> ExperimentResult:
    """Run the full Original / Proposal / Ideal / Belady comparison.

    Exactly one of ``capacity_fraction`` (of the trace's unique-byte
    footprint) or ``capacity_bytes`` must be given.  ``cost_v`` defaults to
    the paper's capacity-dependent rule (§4.4.1).

    ``system_iterations`` extends the paper's §4.3 fixed point to the whole
    system: iteration 1 solves ``M`` with the *Original* run's hit rate (the
    paper's procedure); each further iteration re-solves ``M`` with the
    previous *Proposal*'s hit rate, re-labels, retrains and re-simulates —
    closing the loop between the criterion and the system it shapes.
    """
    trace = workload if isinstance(workload, Trace) else generate_trace(workload)

    footprint = trace.footprint_bytes
    if (capacity_fraction is None) == (capacity_bytes is None):
        raise ValueError("give exactly one of capacity_fraction / capacity_bytes")
    if capacity_bytes is None:
        if not 0.0 < capacity_fraction:
            raise ValueError("capacity_fraction must be positive")
        capacity_bytes = max(1, int(capacity_fraction * footprint))
    else:
        capacity_fraction = capacity_bytes / footprint

    if cost_v is None:
        cost_v = select_cost_v(
            capacity_bytes,
            boundary_bytes=_COST_BOUNDARY_FRACTION * footprint,
        )

    # ---- Original run: the baseline and the measured h for the criterion.
    original = simulate(
        trace,
        make_policy(policy, capacity_bytes, trace),
        admission=AlwaysAdmit(),
        policy_name=policy,
    )

    if system_iterations < 1:
        raise ValueError("system_iterations must be >= 1")

    distances = reaccess_distances(trace.object_ids)
    features = extract_features(trace)

    h_for_criteria = original.hit_rate
    criteria = labels = training = proposal = None
    for _ in range(system_iterations):
        criteria = solve_criteria(
            distances,
            capacity_bytes,
            trace.mean_object_size(),
            hit_rate=min(h_for_criteria, 0.999),
        )
        if policy.lower() == "lirs":
            criteria = criteria.for_lirs(LIRSCache(capacity_bytes).rs)

        labels = one_time_labels(trace.object_ids, criteria.m_threshold)

        # ---- Classifier: features + daily training (§3.2, §4.4).
        training = train_daily_classifier(
            trace,
            features,
            labels,
            cost_v=cost_v,
            feature_subset=feature_subset,
            rng=rng,
            **(training_kwargs or {}),
        )

        proposal = simulate(
            trace,
            make_policy(policy, capacity_bytes, trace),
            admission=ClassifierAdmission.from_criteria(
                training.predictions, criteria
            ),
            policy_name=policy,
        )
        h_for_criteria = proposal.hit_rate

    ideal = None
    if include_ideal:
        ideal = simulate(
            trace,
            make_policy(policy, capacity_bytes, trace),
            admission=OracleAdmission(labels),
            policy_name=policy,
        )

    belady = None
    if include_belady:
        belady = simulate(
            trace,
            make_policy("belady", capacity_bytes, trace),
            policy_name="belady",
        )

    lm = LatencyModel(latency_constants)
    return ExperimentResult(
        policy=policy,
        capacity_bytes=capacity_bytes,
        capacity_fraction=capacity_fraction,
        criteria=criteria,
        original=original,
        proposal=proposal,
        ideal=ideal,
        belady=belady,
        training=training,
        latency_original=lm.average_latency(original.hit_rate, classified=False),
        latency_proposal=lm.average_latency(proposal.hit_rate, classified=True),
        cost_v=cost_v,
    )
