"""The history table (§4.4.2): FIFO rectification of one-time verdicts.

The table remembers photos recently classified as one-time.  When such a
photo misses again *within* the criterion window ``M``, the earlier verdict
is proven wrong: the photo is admitted this time and dropped from the table.
The paper sizes the DRAM table at ``M·(1−h)·p × 0.05`` entries (≈2–5 % of
the SSD metadata table) with FIFO eviction.
"""

from __future__ import annotations

from collections import OrderedDict

__all__ = ["HistoryTable"]


class HistoryTable:
    """Bounded FIFO map: object id → trace index of its one-time verdict."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = int(capacity)
        self._entries: OrderedDict[int, int] = OrderedDict()
        self.rectifications = 0  # misclassifications corrected (telemetry)

    @staticmethod
    def paper_capacity(m_threshold: float, hit_rate: float, one_time_share: float) -> int:
        """The paper's sizing rule: ``M (1−h) p × 0.05`` entries."""
        return max(
            1, int(m_threshold * (1.0 - hit_rate) * one_time_share * 0.05)
        )

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, oid: int) -> bool:
        return oid in self._entries

    def record(self, oid: int, index: int) -> None:
        """Remember that ``oid`` was judged one-time at trace position ``index``."""
        entries = self._entries
        if oid in entries:
            # Refresh the verdict position; keep FIFO age (no move_to_end —
            # FIFO evicts by insertion order, not recency).
            entries[oid] = index
            return
        if len(entries) >= self.capacity:
            entries.popitem(last=False)
        entries[oid] = index

    def rectify(self, oid: int, index: int, m_threshold: float) -> bool:
        """Check whether a renewed miss proves the earlier verdict wrong.

        Returns True — and forgets the entry — when ``oid`` was tabled and
        has come back within ``m_threshold`` requests; the caller should
        then admit the object.  Returns False otherwise (entry, if any, is
        left in place).
        """
        stored = self._entries.get(oid)
        if stored is None:
            return False
        if index - stored < m_threshold:
            del self._entries[oid]
            self.rectifications += 1
            return True
        return False

    def clear(self) -> None:
        self._entries.clear()
        self.rectifications = 0
