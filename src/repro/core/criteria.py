"""The one-time-access criterion: solving for the threshold ``M`` (§4.3).

The paper models a full cache in steady state: over ``M`` consecutive
requests a fraction ``1−h`` miss, and of those only the non-one-time share
``1−p`` is written, so an un-reused object survives roughly

    M · (1−h) · (1−p) = C / S                                   (Eq. 2)

replacements before eviction.  ``M`` is therefore the horizon beyond which a
re-access cannot hit anyway — the principled cut-off for "one-time".

Both ``h`` (hit rate) and ``p`` (one-time share) depend on ``M`` in turn, so
the paper iterates from ``p = 0`` until convergence ("empirically, we set
the iterations to be 3").  :func:`solve_criteria` reproduces that loop using
the empirical reaccess-distance distribution of the trace; ``h`` is either
supplied (e.g. measured from a prior simulation) or estimated from the same
distribution via the stack-distance approximation of
:func:`estimate_hit_rate`.

For LIRS the effective protected capacity is the stack share, giving
``M_LIRS = M_LRU · R_s`` (§5.2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Criteria", "solve_criteria", "estimate_hit_rate"]


@dataclass(frozen=True)
class Criteria:
    """A solved one-time-access criterion."""

    m_threshold: float        # M, in requests
    one_time_share: float     # p at the fixed point
    hit_rate: float           # h used in the solve
    cache_bytes: int
    mean_object_size: float
    iterations: int
    rs: float = 1.0           # LIRS stack ratio; 1.0 for LRU-family

    def for_lirs(self, rs: float) -> "Criteria":
        """Derive the LIRS criterion: ``M_LIRS = M_LRU × R_s`` (§5.2)."""
        if not 0.0 < rs <= 1.0:
            raise ValueError("rs must be in (0, 1]")
        return Criteria(
            m_threshold=self.m_threshold * rs,
            one_time_share=self.one_time_share,
            hit_rate=self.hit_rate,
            cache_bytes=self.cache_bytes,
            mean_object_size=self.mean_object_size,
            iterations=self.iterations,
            rs=rs,
        )


def _finite_distance_cdf(distances: np.ndarray):
    """Empirical P(distance ≤ x) over *all* accesses (inf counts as never)."""
    finite = np.sort(distances[np.isfinite(distances)])
    n_total = distances.shape[0]

    def cdf(x: float) -> float:
        return float(np.searchsorted(finite, x, side="right")) / n_total

    return cdf


def estimate_hit_rate(
    distances: np.ndarray,
    cache_bytes: int,
    mean_object_size: float,
    *,
    iterations: int = 10,
) -> float:
    """Stack-distance estimate of the LRU hit rate.

    In the paper's steady-state model an object admitted now is evicted
    after ``C/S`` writes, i.e. after about ``C/(S(1−h))`` requests; a
    re-access hits iff its reaccess distance is below that horizon.  This
    gives the fixed point ``h = F(C / (S(1−h)))`` on the empirical distance
    CDF ``F``, solved by damped iteration from ``h = 0``.
    """
    if cache_bytes <= 0 or mean_object_size <= 0:
        raise ValueError("cache_bytes and mean_object_size must be positive")
    cdf = _finite_distance_cdf(np.asarray(distances, dtype=np.float64))
    slots = cache_bytes / mean_object_size
    h = 0.0
    for _ in range(iterations):
        horizon = slots / max(1.0 - h, 1e-9)
        h = 0.5 * h + 0.5 * cdf(horizon)
    return float(min(h, 0.999))


def solve_criteria(
    distances: np.ndarray,
    cache_bytes: int,
    mean_object_size: float,
    *,
    hit_rate: float | None = None,
    iterations: int = 3,
) -> Criteria:
    """The paper's §4.3 fixed point: start at ``p = 0``, iterate Eq. 2.

    Parameters
    ----------
    distances:
        Per-access reaccess distances
        (:func:`repro.core.labeling.reaccess_distances`).
    cache_bytes / mean_object_size:
        ``C`` and ``S`` of Eq. 2.
    hit_rate:
        ``h``; measured value if available, otherwise estimated via
        :func:`estimate_hit_rate`.
    iterations:
        Fixed-point iterations (the paper uses 3).
    """
    distances = np.asarray(distances, dtype=np.float64)
    if distances.ndim != 1 or distances.shape[0] == 0:
        raise ValueError("distances must be a non-empty 1-D array")
    if cache_bytes <= 0 or mean_object_size <= 0:
        raise ValueError("cache_bytes and mean_object_size must be positive")
    if iterations < 1:
        raise ValueError("iterations must be >= 1")

    h = (
        hit_rate
        if hit_rate is not None
        else estimate_hit_rate(distances, cache_bytes, mean_object_size)
    )
    if not 0.0 <= h < 1.0:
        raise ValueError("hit_rate must be in [0, 1)")

    slots = cache_bytes / mean_object_size
    p = 0.0
    m = slots / (1.0 - h)  # Eq. 1 (p = 0 start)
    for _ in range(iterations):
        p = float(np.mean(distances > m))  # measure p under the current M
        if p >= 1.0:  # degenerate trace: everything one-time
            p = 1.0 - 1e-9
        m = slots / ((1.0 - h) * (1.0 - p))  # Eq. 2
    return Criteria(
        m_threshold=float(m),
        one_time_share=p,
        hit_rate=float(h),
        cache_bytes=int(cache_bytes),
        mean_object_size=float(mean_object_size),
        iterations=iterations,
    )
