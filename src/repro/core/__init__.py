"""The paper's contribution: the one-time-access-exclusion caching system.

Components (mapped to paper sections):

* :mod:`repro.core.criteria`   — the reaccess-distance threshold ``M`` and
  its iterative fixed point (§4.3, Eqs. 1–2).
* :mod:`repro.core.labeling`   — oracle labels: is each access one-time
  under a given ``M``?
* :mod:`repro.core.features`   — the §3.2 feature pipeline.
* :mod:`repro.core.history_table` — the FIFO rectification table (§4.4.2).
* :mod:`repro.core.admission`  — admission policies: always/never, the
  Ideal oracle, and the classifier + history-table system (Fig. 4).
* :mod:`repro.core.training`   — cost-sensitive CART training with daily
  model refresh (§4.4.1/§4.4.3).
* :mod:`repro.core.latency`    — the Eq. 3–6 response-time model (§5.3.5).
* :mod:`repro.core.pipeline`   — end-to-end experiment driver producing the
  Original / Proposal / Ideal / Belady comparison of Figs. 6–10.
"""

from repro.core.criteria import Criteria, estimate_hit_rate, solve_criteria
from repro.core.labeling import one_time_labels, reaccess_distances
from repro.core.features import (
    FEATURE_NAMES,
    PAPER_FEATURE_NAMES,
    FeatureMatrix,
    extract_features,
)
from repro.core.history_table import HistoryTable
from repro.core.admission import (
    AlwaysAdmit,
    ClassifierAdmission,
    NeverAdmit,
    OracleAdmission,
)
from repro.core.adaptive import AdaptiveThresholdAdmission
from repro.core.monitoring import WindowedQuality, evaluate_admission_decisions
from repro.core.online import OnlineClassifierAdmission, OnlineFeatureTracker
from repro.core.training import DailyTrainingResult, train_daily_classifier
from repro.core.latency import LatencyModel
from repro.core.pipeline import ExperimentResult, run_experiment

__all__ = [
    "Criteria",
    "estimate_hit_rate",
    "solve_criteria",
    "one_time_labels",
    "reaccess_distances",
    "FEATURE_NAMES",
    "PAPER_FEATURE_NAMES",
    "FeatureMatrix",
    "extract_features",
    "HistoryTable",
    "AlwaysAdmit",
    "ClassifierAdmission",
    "NeverAdmit",
    "OracleAdmission",
    "AdaptiveThresholdAdmission",
    "WindowedQuality",
    "evaluate_admission_decisions",
    "OnlineClassifierAdmission",
    "OnlineFeatureTracker",
    "DailyTrainingResult",
    "train_daily_classifier",
    "LatencyModel",
    "ExperimentResult",
    "run_experiment",
]
