"""Admission policies, including the paper's classification system (Fig. 4).

Four implementations of :class:`repro.cache.base.AdmissionPolicy`:

* :class:`AlwaysAdmit` — the traditional cache ("Original" curves);
* :class:`NeverAdmit`  — degenerate bound, useful in tests;
* :class:`OracleAdmission` — the "Ideal" 100 %-accurate classifier: admits
  exactly the accesses whose ground-truth label is *not* one-time;
* :class:`ClassifierAdmission` — the deployed system: a (daily-retrained)
  classifier's per-access verdicts, softened by the §4.4.2 history table.
"""

from __future__ import annotations

import numpy as np

from repro.cache.base import AdmissionPolicy
from repro.core.history_table import HistoryTable
from repro.core.labeling import ONE_TIME

__all__ = [
    "AlwaysAdmit",
    "NeverAdmit",
    "OracleAdmission",
    "NoisyOracleAdmission",
    "ClassifierAdmission",
]


class AlwaysAdmit(AdmissionPolicy):
    """Traditional caching: every miss is written to the SSD."""

    def should_admit(self, index: int, oid: int, size: int) -> bool:
        return True


class NeverAdmit(AdmissionPolicy):
    """Degenerate filter: nothing is ever cached."""

    def should_admit(self, index: int, oid: int, size: int) -> bool:
        return False


class OracleAdmission(AdmissionPolicy):
    """The paper's *Ideal* configuration: perfect one-time knowledge.

    Takes the ground-truth per-access labels
    (:func:`repro.core.labeling.one_time_labels`) and denies exactly the
    one-time accesses.
    """

    def __init__(self, labels: np.ndarray):
        labels = np.asarray(labels)
        if labels.ndim != 1:
            raise ValueError("labels must be 1-D")
        self._deny = labels == ONE_TIME

    def should_admit(self, index: int, oid: int, size: int) -> bool:
        return not self._deny[index]


class NoisyOracleAdmission(AdmissionPolicy):
    """An oracle corrupted with controlled error rates.

    The knob for accuracy-sensitivity studies (§5.2 claims advanced
    policies need a *more accurate* classifier to profit): flip true
    one-time labels to "reused" with probability ``fn_rate`` (missed
    exclusions → wasted writes) and true reused labels to "one-time" with
    probability ``fp_rate`` (wrong exclusions → lost hits).  With both
    rates 0 this is exactly :class:`OracleAdmission`.

    Flips are drawn once at construction so repeated simulations see the
    same corrupted classifier.
    """

    def __init__(
        self,
        labels: np.ndarray,
        *,
        fn_rate: float = 0.0,
        fp_rate: float = 0.0,
        rng: np.random.Generator | int | None = 0,
    ):
        labels = np.asarray(labels)
        if labels.ndim != 1:
            raise ValueError("labels must be 1-D")
        if not 0.0 <= fn_rate <= 1.0 or not 0.0 <= fp_rate <= 1.0:
            raise ValueError("error rates must be in [0, 1]")
        self.fn_rate = fn_rate
        self.fp_rate = fp_rate
        gen = np.random.default_rng(rng)
        is_one_time = labels == ONE_TIME
        flips = np.where(
            is_one_time,
            gen.random(labels.shape[0]) < fn_rate,
            gen.random(labels.shape[0]) < fp_rate,
        )
        self._truth = is_one_time
        self._deny = is_one_time ^ flips

    @property
    def effective_accuracy(self) -> float:
        """Fraction of verdicts agreeing with the true labels."""
        return float(np.mean(self._deny == self._truth))

    def should_admit(self, index: int, oid: int, size: int) -> bool:
        return not self._deny[index]


class ClassifierAdmission(AdmissionPolicy):
    """Classifier + history table: the deployed Fig.-4 workflow.

    Parameters
    ----------
    predicted_one_time:
        Boolean/int verdict per trace position (1 = predicted one-time).
        Predictions are computed up front (offline classification, §4.2) —
        they depend only on request-time features, so batching them does
        not change semantics, only speed.
    m_threshold:
        The criterion window used by the history-table rectification.
    history_table:
        Optional pre-built table; by default one is sized by the paper's
        rule from ``criteria`` telemetry via :meth:`from_criteria`.
    """

    def __init__(
        self,
        predicted_one_time: np.ndarray,
        m_threshold: float,
        history_table: HistoryTable | None = None,
    ):
        pred = np.asarray(predicted_one_time)
        if pred.ndim != 1:
            raise ValueError("predicted_one_time must be 1-D")
        if m_threshold <= 0:
            raise ValueError("m_threshold must be positive")
        self._pred = pred == ONE_TIME if pred.dtype != bool else pred
        self.m_threshold = float(m_threshold)
        # Explicit None check: HistoryTable defines __len__, so an empty
        # (freshly sized) table would be falsy under `or`.
        self.history = (
            history_table if history_table is not None else HistoryTable(1024)
        )
        self.denied = 0
        self.rectified_admits = 0

    @classmethod
    def from_criteria(cls, predicted_one_time, criteria) -> "ClassifierAdmission":
        """Build with the §4.4.2 history-table sizing rule."""
        cap = HistoryTable.paper_capacity(
            criteria.m_threshold, criteria.hit_rate, criteria.one_time_share
        )
        return cls(
            predicted_one_time,
            criteria.m_threshold,
            HistoryTable(capacity=cap),
        )

    def should_admit(self, index: int, oid: int, size: int) -> bool:
        if not self._pred[index]:
            return True  # predicted to be re-accessed → cache it
        # Predicted one-time: the history table may overrule (§4.4.2).
        if self.history.rectify(oid, index, self.m_threshold):
            self.rectified_admits += 1
            return True
        self.history.record(oid, index)
        self.denied += 1
        return False

    def reset(self) -> None:
        self.history.clear()
        self.denied = 0
        self.rectified_admits = 0
