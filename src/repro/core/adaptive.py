"""Self-tuning admission: threshold control from delayed-label feedback.

The paper fixes the precision/recall trade statically — the Table-4 cost
matrix picks ``v`` per capacity band.  But verdict ground truth *matures*
in production (after ``M`` further requests the re-access outcome is
known, cf. :mod:`repro.core.monitoring`), so the operating point can be
controlled instead of configured:

* the classifier supplies a *score* per request (P(one-time));
* the filter denies requests whose score clears a threshold ``τ``;
* matured verdicts stream back as (denied?, was-one-time?) pairs;
* a proportional controller nudges ``τ`` to hold the measured denial
  precision at a target (e.g. the 2/3 implied by v = 2).

This keeps the false-positive rate — the expensive error — pinned even as
the workload drifts, where a fixed cost matrix slowly mis-calibrates.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.cache.base import AdmissionPolicy
from repro.core.history_table import HistoryTable

__all__ = ["AdaptiveThresholdAdmission"]


class AdaptiveThresholdAdmission(AdmissionPolicy):
    """Score-threshold admission with precision feedback control.

    Parameters
    ----------
    scores:
        Per-request one-time scores from the classifier (e.g.
        ``predict_proba[:, 1]`` of the daily models).
    reaccess_distance:
        Per-request reaccess distances
        (:func:`repro.core.labeling.reaccess_distances`).  In production
        this information arrives naturally ``M`` requests later; the
        simulator reveals each verdict's truth only once it has matured.
    m_threshold:
        The one-time criterion window ``M``.
    target_precision:
        Denial precision to hold (fraction of denials that were truly
        one-time).  ``v = 2`` corresponds to 2/3, ``v = 3`` to 3/4
        (the Elkan thresholds of Table 4).
    initial_threshold / step:
        Controller start point and per-update nudge.
    feedback_window:
        Matured verdicts per controller update.
    history_table:
        Optional §4.4.2 rectification table (same semantics as
        :class:`~repro.core.admission.ClassifierAdmission`).
    """

    def __init__(
        self,
        scores: np.ndarray,
        reaccess_distance: np.ndarray,
        m_threshold: float,
        *,
        target_precision: float = 2.0 / 3.0,
        initial_threshold: float = 0.5,
        step: float = 0.02,
        feedback_window: int = 200,
        history_table: HistoryTable | None = None,
    ):
        scores = np.asarray(scores, dtype=np.float64)
        dist = np.asarray(reaccess_distance, dtype=np.float64)
        if scores.ndim != 1 or scores.shape != dist.shape:
            raise ValueError("scores and reaccess_distance must be 1-D, equal length")
        if m_threshold <= 0:
            raise ValueError("m_threshold must be positive")
        if not 0.0 < target_precision < 1.0:
            raise ValueError("target_precision must be in (0, 1)")
        if not 0.0 <= initial_threshold <= 1.0:
            raise ValueError("initial_threshold must be in [0, 1]")
        if step <= 0 or feedback_window < 1:
            raise ValueError("step must be positive, feedback_window >= 1")

        self._scores = scores
        self._is_one_time = dist > m_threshold
        self.m_threshold = float(m_threshold)
        self.target_precision = target_precision
        self.step = step
        self.feedback_window = feedback_window
        self._tau0 = initial_threshold
        self.history = history_table if history_table is not None else HistoryTable(1024)
        self.reset()

    def reset(self) -> None:
        self.tau = self._tau0
        self.denied = 0
        self.rectified_admits = 0
        self.threshold_trace: list[float] = [self.tau]
        self._pending: deque[tuple[int, bool]] = deque()  # (index, denied?)
        self._window_tp = 0
        self._window_fp = 0
        self._window_n = 0
        self.history.clear()

    # ---------------------------------------------------------- controller

    def _mature(self, now: int) -> None:
        """Absorb verdicts whose truth is now known; maybe adjust τ."""
        horizon = self.m_threshold
        pending = self._pending
        while pending and now - pending[0][0] > horizon:
            index, was_denied = pending.popleft()
            if not was_denied:
                continue  # precision control only needs denial outcomes
            if self._is_one_time[index]:
                self._window_tp += 1
            else:
                self._window_fp += 1
            self._window_n += 1
            if self._window_n >= self.feedback_window:
                precision = self._window_tp / max(
                    self._window_tp + self._window_fp, 1
                )
                if precision < self.target_precision:
                    self.tau = min(1.0, self.tau + self.step)
                else:
                    self.tau = max(0.0, self.tau - self.step)
                self.threshold_trace.append(self.tau)
                self._window_tp = self._window_fp = self._window_n = 0

    # -------------------------------------------------------------- policy

    def should_admit(self, index: int, oid: int, size: int) -> bool:
        self._mature(index)
        if self._scores[index] < self.tau:
            self._pending.append((index, False))
            return True
        if self.history.rectify(oid, index, self.m_threshold):
            self.rectified_admits += 1
            self._pending.append((index, False))
            return True
        self.history.record(oid, index)
        self.denied += 1
        self._pending.append((index, True))
        return False

    def on_hit(self, index: int, oid: int, size: int) -> None:
        self._mature(index)

    # ------------------------------------------------------------- telemetry

    @property
    def final_threshold(self) -> float:
        return self.tau
